//! `presat` — an all-solutions SAT solver for efficient preimage
//! computation.
//!
//! This umbrella crate re-exports the whole workspace under one roof:
//!
//! * [`logic`] — variables, literals, cubes, CNF, DIMACS, truth-table
//!   oracle;
//! * [`sat`] — the from-scratch incremental CDCL solver;
//! * [`bdd`] — the from-scratch ROBDD package (baseline and oracle);
//! * [`circuit`] — AIG netlists, `.bench` parsing, Tseitin encoding,
//!   simulation, and the benchmark-circuit generators;
//! * [`allsat`] — the all-solutions engines (blocking, minimized blocking,
//!   and the novel success-driven solver with its solution graph);
//! * [`preimage`] — preimage computation and backward reachability;
//! * [`obs`] — zero-dependency observability: per-layer counters, event
//!   sinks, and the [`obs::Stats`] snapshot with JSON/CSV emitters.
//!
//! # Quickstart
//!
//! ```
//! use presat::circuit::generators;
//! use presat::preimage::{PreimageEngine, SatPreimage, StateSet};
//!
//! // Which states of a 4-bit counter step into state 9?
//! let circuit = generators::counter(4, false);
//! let target = StateSet::from_state_bits(9, 4);
//! let pre = SatPreimage::success_driven().preimage(&circuit, &target);
//! assert!(pre.states.contains_bits(8, 4));
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the reproduced evaluation.

#![forbid(unsafe_code)]

pub use presat_allsat as allsat;
pub use presat_bdd as bdd;
pub use presat_circuit as circuit;
pub use presat_logic as logic;
pub use presat_obs as obs;
pub use presat_preimage as preimage;
pub use presat_sat as sat;
