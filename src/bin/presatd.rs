//! The `presatd` daemon binary.
//!
//! ```text
//! presatd --stdin                          serve one client on stdin/stdout
//! presatd --listen 127.0.0.1:7979         serve TCP clients
//! presatd --unix /tmp/presatd.sock        serve Unix-socket clients (unix)
//! ```
//!
//! Options:
//!
//! * `--jobs <n>` — scheduler worker threads (`0` = auto, the default).
//! * `--slice-conflicts <n>` — conflict quantum per slice (default 20000):
//!   the fairness granularity at which jobs round-robin.
//! * `--max-arena-bytes <n>` — admission ceiling: reject *new* sessions
//!   while the live jobs' summed solver-arena bytes are at or above this.
//! * `--global-conflict-budget <n>` — one shared conflict pot for the
//!   whole fleet; when drained, every running job finishes with a sound
//!   partial result (`stop_reason` set).
//!
//! Protocol: one JSON request per line (see `presatd::protocol`); every
//! response event echoes the request's `"id"`. Quick start:
//!
//! ```text
//! echo '{"op":"allsat","id":"r1","cnf":"p cnf 2 1\n1 2 0\n","project":2}' \
//!   | presatd --stdin
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use presatd::scheduler::{Config, Scheduler};
use presatd::server;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_u64(args: &[String], flag: &str) -> Result<Option<u64>, String> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("bad {flag} (want a non-negative number)")),
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return Ok(ExitCode::SUCCESS);
    }
    let mut config = Config::default();
    if let Some(jobs) = parse_u64(args, "--jobs")? {
        config.jobs = usize::try_from(jobs).map_err(|_| String::from("bad --jobs"))?;
    }
    if let Some(quantum) = parse_u64(args, "--slice-conflicts")? {
        config.slice_conflicts = quantum.max(1);
    }
    config.max_arena_bytes = parse_u64(args, "--max-arena-bytes")?;
    config.global_conflict_budget = parse_u64(args, "--global-conflict-budget")?;

    let stdin_mode = args.iter().any(|a| a == "--stdin");
    let listen = flag_value(args, "--listen");
    let unix = flag_value(args, "--unix");
    let modes = usize::from(stdin_mode) + usize::from(listen.is_some()) + usize::from(unix.is_some());
    if modes != 1 {
        print_usage();
        return Err("give exactly one of --stdin, --listen <addr>, --unix <path>".into());
    }

    let scheduler = Arc::new(Scheduler::new(config));
    if stdin_mode {
        server::run_stdin(&scheduler);
    } else if let Some(addr) = listen {
        server::run_tcp(&scheduler, addr)?;
    } else if let Some(path) = unix {
        #[cfg(unix)]
        server::run_unix(&scheduler, path)?;
        #[cfg(not(unix))]
        return Err(format!("--unix {path:?} is not supported on this platform"));
    }
    match Arc::try_unwrap(scheduler) {
        Ok(sched) => sched.join(),
        Err(shared) => shared.begin_shutdown(),
    }
    Ok(ExitCode::SUCCESS)
}

fn print_usage() {
    eprintln!(
        "usage: presatd (--stdin | --listen <addr> | --unix <path>) [options]\n\
         options:\n\
         \x20 --jobs <n>                    worker threads (0 = auto)\n\
         \x20 --slice-conflicts <n>         conflict quantum per slice (default 20000)\n\
         \x20 --max-arena-bytes <n>         reject new sessions past this live-arena sum\n\
         \x20 --global-conflict-budget <n>  shared conflict pot for all jobs\n\
         protocol: one JSON request per line, e.g.\n\
         \x20 {{\"op\":\"allsat\",\"id\":\"r1\",\"cnf\":\"p cnf 2 1\\n1 2 0\\n\",\"project\":2}}\n\
         ops: solve, allsat, preimage, reach, stats, cancel, shutdown"
    );
}
