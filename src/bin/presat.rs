//! The `presat` command-line tool.
//!
//! ```text
//! presat solve <file.cnf>                          SAT-solve a DIMACS file
//! presat allsat <file.cnf> --project <k>           enumerate models projected
//!                                                  onto variables 1..k
//! presat info <circuit>                            circuit summary
//! presat preimage <circuit> --target <spec>        one-step preimage
//! presat image <circuit> --source <spec>           one-step forward image
//! presat reach <circuit> --target <spec>           backward reachability
//! presat justify <circuit> --from <bits> --target <spec>
//!                                                  extract an input trace
//! presat excite <circuit> --output <k> [--value 0|1]
//!                                                  output excitation set
//! ```
//!
//! `<circuit>` is a `.bench` (ISCAS89) or `.aag` (ASCII AIGER) file.
//! `<spec>` is either a bit pattern (`0b1010` / decimal) naming one state,
//! or a cube `latch=value,...` such as `3=1,0=0` (unlisted latches free).
//! `--engine` selects `blocking`, `min-blocking`, `success-driven`
//! (default), `chrono` (blocking-clause-free chronological backtracking),
//! `bdd-sub`, or `bdd-mono` where applicable; an unrecognized name is a
//! hard error listing the valid engines.
//! `--jobs <n>` runs the success-driven enumeration on `n` worker threads
//! (`0` = auto-detect, default 1); the output is bit-identical at every
//! thread count.
//! `--no-adaptive` turns off adaptive cube-and-conquer (lookahead-scored
//! partitioning plus dynamic work splitting) and falls back to the static
//! prefix partition; `--split-threshold <n>` sets the conflict count at
//! which a worker splits its running cube (`0` = never);
//! `--par-threshold <n>` sets the size product below which a preimage
//! step skips the worker fleet and runs sequentially (`0` = always
//! parallel). All three only move scheduling and work counters — the
//! output is bit-identical regardless.
//! `--no-inprocess` disables root-level solver inprocessing at incremental
//! session boundaries (subsumption, self-subsuming resolution,
//! vivification). Inprocessing is equivalence-preserving, so results are
//! identical either way — only work counters and live clause volume move.
//! Combining `--engine` with an option the selected engine ignores prints
//! a one-line warning on stderr naming the options that engine consumes.
//! `reach` drives the fixed point through one persistent solver session by
//! default (`--incremental`); `--no-incremental` rebuilds the encoding per
//! iteration. The report is bit-identical either way.
//! `--stats` appends one JSON object with the run's counters (SAT,
//! all-SAT, and preimage layers) to stdout — see `presat_obs::Stats`.
//! `--timeout-ms <n>` / `--conflict-budget <n>` bound `solve`, `allsat`,
//! and `reach`; `--max-solutions <n>` bounds `allsat`. A run that trips a
//! limit stops with a *partial but sound* result flagged
//! `"complete":false` (plus a `stop_reason`) in the stats JSON — `solve`
//! then prints `s UNKNOWN` (exit 0) rather than lying about UNSAT.

use std::path::Path;
use std::process::ExitCode;

use presat::allsat::{
    AllSatEngine, AllSatProblem, BlockingAllSat, ChronoAllSat, EnumLimits,
    MinimizedBlockingAllSat, ParallelAllSat, SuccessDrivenAllSat,
};
use presat::circuit::{aiger, bench, Circuit};
use presat::logic::{dimacs, Var};
use presat::obs::{NullSink, Stats, Timer};
// `parse_state_spec`/`parse_bits64` are the shared spec-parsing path: the
// `presatd` daemon protocol accepts and rejects exactly the same state
// specs as this CLI, including arbitrary-width 0b/0x patterns for circuits
// with more than 64 latches.
use presat::preimage::{
    backward_reach, bdd_image, justify, parse_bits64, parse_state_spec, sat_image, BddPreimage,
    PreimageEngine, ReachOptions, SatPreimage, StateSet,
};
use presat::sat::{Budget, SolveResult, Solver};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(ExitCode::from(2));
    };
    let rest = &args[1..];
    match command.as_str() {
        "solve" => cmd_solve(rest),
        "allsat" => cmd_allsat(rest),
        "info" => cmd_info(rest),
        "preimage" => cmd_preimage(rest),
        "image" => cmd_image(rest),
        "reach" => cmd_reach(rest),
        "justify" => cmd_justify(rest),
        "excite" => cmd_excite(rest),
        "depth" => cmd_depth(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}; try `presat help`")),
    }
}

fn print_usage() {
    eprintln!(
        "usage: presat <command> [options]\n\
         commands:\n\
         \x20 solve <file.cnf>                         decide satisfiability\n\
         \x20 allsat <file.cnf> --project <k>          enumerate projected models\n\
         \x20 info <circuit>                           circuit summary\n\
         \x20 preimage <circuit> --target <spec>       one-step preimage\n\
         \x20 image <circuit> --source <spec>          one-step forward image\n\
         \x20 reach <circuit> --target <spec>          backward reachability\n\
         \x20 justify <circuit> --from <bits> --target <spec>\n\
         \x20 excite <circuit> --output <k> [--value 0|1]\n\
         \x20 depth <circuit> [--initial <spec>]\n\
         options: --engine blocking|min-blocking|success-driven|chrono|bdd-sub|bdd-mono\n\
         \x20        --max-iter <n>\n\
         \x20        --incremental / --no-incremental  (reach only; default on:\n\
         \x20                    one persistent solver session across the whole\n\
         \x20                    fixed point; results are bit-identical)\n\
         \x20        --jobs <n>  success-driven worker threads (0 = auto,\n\
         \x20                    default 1; the result is bit-identical at\n\
         \x20                    every thread count)\n\
         \x20        --no-adaptive  static prefix partitioning instead of\n\
         \x20                    adaptive cube-and-conquer (identical results;\n\
         \x20                    only scheduling moves)\n\
         \x20        --split-threshold <n>  conflicts before a worker splits\n\
         \x20                    its running cube (0 = never split)\n\
         \x20        --par-threshold <n>  size product below which a step\n\
         \x20                    runs sequentially despite --jobs (0 = always\n\
         \x20                    parallel)\n\
         \x20        --no-inprocess  disable root-level inprocessing at\n\
         \x20                    incremental session boundaries (results are\n\
         \x20                    identical either way; only counters move)\n\
         \x20        --timeout-ms <n>       wall-clock budget (solve/allsat/reach);\n\
         \x20                    on expiry the run stops with a partial result\n\
         \x20                    flagged incomplete, never a fake UNSAT\n\
         \x20        --conflict-budget <n>  CDCL conflict budget (solve/allsat/reach)\n\
         \x20        --max-solutions <n>    stop allsat after ~n solutions\n\
         \x20        --stats   (emit a JSON counters object on stdout)\n\
         spec:    a state bit pattern (42, 0b1010, 0x2a) or a cube `j=v,...`"
    );
}

/// Fetches the value following a `--flag`.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// True if the bare flag is present.
fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn load_circuit(path: &str) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let mut circuit = match ext {
        "aag" => aiger::parse(&text).map_err(|e| format!("{path}: {e}"))?,
        _ => bench::parse(&text).map_err(|e| format!("{path}: {e}"))?,
    };
    if let Some(stem) = Path::new(path).file_stem().and_then(|s| s.to_str()) {
        circuit.set_name(stem);
    }
    circuit.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(circuit)
}

/// Parses the anytime flags shared by `solve`, `allsat`, and `reach`:
/// `--timeout-ms <n>`, `--conflict-budget <n>`, `--max-solutions <n>`.
/// A run that trips one of these stops early and reports a partial result
/// flagged incomplete — it never claims UNSAT or a converged fixed point.
fn limits_from_flags(args: &[String]) -> Result<EnumLimits, String> {
    let mut budget = Budget::unlimited();
    if let Some(v) = flag_value(args, "--timeout-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|_| String::from("bad --timeout-ms (want milliseconds)"))?;
        budget = budget.with_timeout(std::time::Duration::from_millis(ms));
    }
    if let Some(v) = flag_value(args, "--conflict-budget") {
        let n: u64 = v
            .parse()
            .map_err(|_| String::from("bad --conflict-budget (want a number)"))?;
        budget = budget.with_conflicts(n);
    }
    let mut limits = EnumLimits::none().with_budget(budget);
    if let Some(v) = flag_value(args, "--max-solutions") {
        let n: u64 = v
            .parse()
            .map_err(|_| String::from("bad --max-solutions (want a number)"))?;
        limits = limits.with_max_solutions(n);
    }
    Ok(limits)
}

/// Parses `--jobs <n>` (worker threads; `0` = auto, default `1`).
fn jobs_from_flag(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--jobs") {
        Some(v) => v.parse().map_err(|_| "bad --jobs (want a number)".into()),
        None => Ok(1),
    }
}

/// The `--engine` names the circuit commands accept, for error messages.
const CIRCUIT_ENGINES: &str = "blocking, min-blocking, success-driven, chrono, bdd-sub, bdd-mono";

/// Parses `--inprocess` / `--no-inprocess` (default: on). Inprocessing is
/// equivalence-preserving, so this only moves work counters, never results.
fn inprocess_from_flags(args: &[String]) -> Result<bool, String> {
    if has_flag(args, "--inprocess") && has_flag(args, "--no-inprocess") {
        return Err("--inprocess and --no-inprocess are mutually exclusive".into());
    }
    Ok(!has_flag(args, "--no-inprocess"))
}

/// Engine-tunable options and the engines that consume them. Any other
/// engine silently ignores the flag, which [`warn_ignored_engine_flags`]
/// turns into a visible stderr warning.
const ENGINE_FLAGS: &[(&str, &[&str])] = &[
    ("--jobs", &["success-driven"]),
    ("--inprocess", &["success-driven"]),
    ("--no-inprocess", &["success-driven"]),
    ("--no-adaptive", &["success-driven"]),
    ("--split-threshold", &["success-driven"]),
    ("--par-threshold", &["success-driven"]),
];

/// Warns once on stderr when `--engine` is combined with engine-tunable
/// options the selected engine ignores, listing what it does consume.
/// A typo'd pipeline otherwise runs to completion with the option silently
/// dropped — e.g. `--engine chrono --jobs 8` enumerating single-threaded.
fn warn_ignored_engine_flags(args: &[String], engine: &str) {
    let ignored: Vec<&str> = ENGINE_FLAGS
        .iter()
        .filter(|(flag, consumers)| has_flag(args, flag) && !consumers.contains(&engine))
        .map(|(flag, _)| *flag)
        .collect();
    if ignored.is_empty() {
        return;
    }
    let consumed: Vec<&str> = ENGINE_FLAGS
        .iter()
        .filter(|(_, consumers)| consumers.contains(&engine))
        .map(|(flag, _)| *flag)
        .collect();
    let consumes = if consumed.is_empty() {
        String::from("no engine-specific options")
    } else {
        consumed.join(", ")
    };
    eprintln!(
        "warning: engine {engine:?} ignores {}; it consumes {consumes}",
        ignored.join(", ")
    );
}

/// Parses the adaptive cube-and-conquer flags: `--no-adaptive`,
/// `--split-threshold <n>`, `--par-threshold <n>` (the latter two `None`
/// when absent — the engine's defaults apply).
fn par_tuning_from_flags(args: &[String]) -> Result<(bool, Option<u64>, Option<u64>), String> {
    let adaptive = !has_flag(args, "--no-adaptive");
    let split = match flag_value(args, "--split-threshold") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| String::from("bad --split-threshold (want a number)"))?,
        ),
        None => None,
    };
    let par = match flag_value(args, "--par-threshold") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| String::from("bad --par-threshold (want a number)"))?,
        ),
        None => None,
    };
    Ok((adaptive, split, par))
}

fn sat_engine_from_flag(args: &[String]) -> Result<Box<dyn PreimageEngine>, String> {
    let jobs = jobs_from_flag(args)?;
    let inprocess = inprocess_from_flags(args)?;
    let name = flag_value(args, "--engine").unwrap_or("success-driven");
    let engine: Box<dyn PreimageEngine> = match name {
        "blocking" => Box::new(SatPreimage::blocking()),
        "min-blocking" => Box::new(SatPreimage::min_blocking()),
        "chrono" => Box::new(SatPreimage::chrono()),
        "success-driven" => {
            let (adaptive, split, par) = par_tuning_from_flags(args)?;
            let mut engine = SatPreimage::success_driven()
                .with_jobs(jobs)
                .with_inprocess(inprocess)
                .with_adaptive(adaptive);
            if let Some(t) = split {
                engine = engine.with_split_threshold(t);
            }
            if let Some(t) = par {
                engine = engine.with_par_threshold(t);
            }
            Box::new(engine)
        }
        "bdd-sub" => Box::new(BddPreimage::substitution()),
        "bdd-mono" => Box::new(BddPreimage::monolithic()),
        other => {
            return Err(format!(
                "unknown engine {other:?} (valid engines: {CIRCUIT_ENGINES})"
            ))
        }
    };
    warn_ignored_engine_flags(args, name);
    Ok(engine)
}

fn cmd_solve(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("solve: missing DIMACS file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let cnf = dimacs::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let limits = limits_from_flags(args)?;
    let timer = Timer::start();
    let mut solver = Solver::from_cnf(&cnf);
    solver.set_budget(limits.budget);
    let solved = solver.solve();
    if has_flag(args, "--stats") {
        let stop = match &solved {
            SolveResult::Unknown(reason) => Some(*reason),
            _ => None,
        };
        let mut stats = Stats::from_sat("cdcl", solver.stats()).with_stop(stop.is_none(), stop);
        stats.wall_time_ns = timer.elapsed_ns();
        println!("{}", stats.to_json());
    }
    match solved {
        SolveResult::Sat(model) => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for i in 0..cnf.num_vars() {
                let value = model.value(Var::new(i)) == Some(true);
                line.push_str(&format!(
                    " {}",
                    if value {
                        (i + 1) as i64
                    } else {
                        -((i + 1) as i64)
                    }
                ));
            }
            println!("{line} 0");
            Ok(ExitCode::from(10)) // SAT-competition convention
        }
        SolveResult::Unsat => {
            println!("s UNSATISFIABLE");
            Ok(ExitCode::from(20))
        }
        SolveResult::Unknown(reason) => {
            // Resource exhaustion is not a verdict: the formula may still
            // be satisfiable, so neither SAT nor UNSAT may be claimed.
            println!("s UNKNOWN ({})", reason.as_str());
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn cmd_allsat(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("allsat: missing DIMACS file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let cnf = dimacs::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let k: usize = flag_value(args, "--project")
        .ok_or("allsat: --project <k> required")?
        .parse()
        .map_err(|_| "allsat: --project expects a number")?;
    if k > cnf.num_vars() {
        return Err(format!(
            "allsat: --project {k} exceeds the formula's {} variables",
            cnf.num_vars()
        ));
    }
    let important: Vec<Var> = Var::range(k).collect();
    let problem = AllSatProblem::new(cnf, important.clone());
    let engine_name = flag_value(args, "--engine").unwrap_or("success-driven");
    let jobs = jobs_from_flag(args)?;
    let limits = limits_from_flags(args)?;
    warn_ignored_engine_flags(args, engine_name);
    let timer = Timer::start();
    let result = match engine_name {
        "blocking" => BlockingAllSat::new().enumerate_limited(&problem, &limits, &mut NullSink),
        "min-blocking" => {
            MinimizedBlockingAllSat::new().enumerate_limited(&problem, &limits, &mut NullSink)
        }
        "success-driven" if jobs == 1 => {
            SuccessDrivenAllSat::new().enumerate_limited(&problem, &limits, &mut NullSink)
        }
        "success-driven" => {
            let (adaptive, split, par) = par_tuning_from_flags(args)?;
            let mut engine = ParallelAllSat::new(jobs).with_adaptive(adaptive);
            if let Some(t) = split {
                engine = engine.with_split_threshold(t);
            }
            if let Some(t) = par {
                engine = engine.with_par_threshold(t);
            }
            engine.enumerate_limited(&problem, &limits, &mut NullSink)
        }
        "chrono" => ChronoAllSat::new().enumerate_limited(&problem, &limits, &mut NullSink),
        other => {
            return Err(format!(
                "unknown engine {other:?} (valid engines: blocking, min-blocking, success-driven, chrono)"
            ))
        }
    };
    if has_flag(args, "--stats") {
        let mut stats = Stats::from_allsat(engine_name, &result.stats_with_store())
            .with_stop(result.complete, result.stop_reason);
        stats.wall_time_ns = timer.elapsed_ns();
        println!("{}", stats.to_json());
    }
    println!(
        "c {} cubes, {} minterms over {} variables [{}]",
        result.cubes.len(),
        result.minterm_count(k),
        k,
        result.stats
    );
    if let Some(reason) = result.stop_reason {
        println!(
            "c INCOMPLETE: stopped by {} — the cubes below are a sound partial enumeration",
            reason.as_str()
        );
    }
    for cube in &result.cubes {
        let mut row = String::new();
        for &l in cube.lits() {
            let v = l.var().index() as i64 + 1;
            row.push_str(&format!("{} ", if l.is_pos() { v } else { -v }));
        }
        println!("{row}0");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_info(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("info: missing circuit file")?;
    let circuit = load_circuit(path)?;
    println!("{}", circuit.summary());
    for (k, (name, _)) in circuit.outputs().iter().enumerate() {
        println!("  output {k}: {name}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_preimage(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("preimage: missing circuit file")?;
    let circuit = load_circuit(path)?;
    let n = circuit.num_latches();
    let target = parse_state_spec(
        flag_value(args, "--target").ok_or("preimage: --target <spec> required")?,
        n,
    )?;
    let engine = sat_engine_from_flag(args)?;
    let result = engine.preimage(&circuit, &target);
    if has_flag(args, "--stats") {
        println!(
            "{}",
            Stats::from_preimage(engine.name(), &result.stats).to_json()
        );
    }
    println!(
        "{}: {} states in {} cubes [{}] in {:.2?}",
        engine.name(),
        result.states.minterm_count(n),
        result.states.num_cubes(),
        result.stats,
        result.elapsed
    );
    for cube in result.states.cubes() {
        println!("  {cube}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_image(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("image: missing circuit file")?;
    let circuit = load_circuit(path)?;
    let n = circuit.num_latches();
    let source = parse_state_spec(
        flag_value(args, "--source").ok_or("image: --source <spec> required")?,
        n,
    )?;
    // The SAT image path enumerates with the default engine regardless of
    // which SAT engine was named, but an unrecognized name must still be a
    // hard error — a typo silently falling through to the SAT path used to
    // mask itself as a valid run.
    let engine_name = flag_value(args, "--engine").unwrap_or("success-driven");
    warn_ignored_engine_flags(args, engine_name);
    let result = match engine_name {
        "bdd-sub" | "bdd-mono" => bdd_image(&circuit, &source),
        "blocking" | "min-blocking" | "success-driven" | "chrono" => sat_image(&circuit, &source),
        other => {
            return Err(format!(
                "unknown engine {other:?} (valid engines: {CIRCUIT_ENGINES})"
            ))
        }
    };
    println!(
        "image: {} states in {} cubes in {:.2?}",
        result.states.minterm_count(n),
        result.states.num_cubes(),
        result.elapsed
    );
    for cube in result.states.cubes() {
        println!("  {cube}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_reach(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("reach: missing circuit file")?;
    let circuit = load_circuit(path)?;
    let n = circuit.num_latches();
    let target = parse_state_spec(
        flag_value(args, "--target").ok_or("reach: --target <spec> required")?,
        n,
    )?;
    let max_iterations = match flag_value(args, "--max-iter") {
        Some(v) => Some(v.parse().map_err(|_| "reach: bad --max-iter")?),
        None => None,
    };
    if has_flag(args, "--incremental") && has_flag(args, "--no-incremental") {
        return Err("reach: --incremental and --no-incremental are mutually exclusive".into());
    }
    let engine = sat_engine_from_flag(args)?;
    // --timeout-ms / --conflict-budget bound the whole fixed point (the
    // total budget); --max-solutions does not apply to reach.
    let limits = limits_from_flags(args)?;
    // --par-threshold also rides into the session via ReachOptions, so it
    // applies on the incremental path (the engine-level setting covers the
    // per-call path).
    let (_, _, parallel_threshold) = par_tuning_from_flags(args)?;
    let report = backward_reach(
        engine.as_ref(),
        &circuit,
        &target,
        ReachOptions {
            max_iterations,
            // Incremental sessions are the default; --no-incremental is
            // the rebuild-per-iteration escape hatch. Results are
            // bit-identical either way.
            incremental: !has_flag(args, "--no-incremental"),
            inprocess: inprocess_from_flags(args)?,
            total_budget: limits.budget,
            parallel_threshold,
            ..ReachOptions::default()
        },
    );
    if has_flag(args, "--stats") {
        println!(
            "{}",
            Stats::from_preimage(engine.name(), &report.stats)
                .with_stop(report.complete, report.stop_reason)
                .to_json()
        );
    }
    println!(
        "{}: {} iterations, {} backward-reachable states, converged={}, complete={}",
        engine.name(),
        report.iterations.len(),
        report.reached_states,
        report.converged,
        report.complete
    );
    if let Some(reason) = report.stop_reason {
        println!(
            "  INCOMPLETE: stopped by {} — every state below is verified backward-reachable,\n\
             \x20 but deeper predecessors may exist",
            reason.as_str()
        );
    }
    for row in &report.iterations {
        println!(
            "  iter {:>3}: +{} states (total {}) in {:.2?}",
            row.iteration, row.new_states, row.reached_states, row.elapsed
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_excite(args: &[String]) -> Result<ExitCode, String> {
    use presat::preimage::excitation_set;
    let path = args.first().ok_or("excite: missing circuit file")?;
    let circuit = load_circuit(path)?;
    let n = circuit.num_latches();
    let k: usize = flag_value(args, "--output")
        .ok_or("excite: --output <k> required")?
        .parse()
        .map_err(|_| "excite: bad --output index")?;
    if k >= circuit.num_outputs() {
        return Err(format!(
            "excite: output {k} out of range ({} outputs)",
            circuit.num_outputs()
        ));
    }
    let value = match flag_value(args, "--value").unwrap_or("1") {
        "0" => false,
        "1" => true,
        other => return Err(format!("excite: bad --value {other:?}")),
    };
    let result = excitation_set(&circuit, k, value);
    println!(
        "output {k} = {} excitable from {} states in {} cubes",
        u8::from(value),
        result.states.minterm_count(n),
        result.states.num_cubes()
    );
    for cube in result.states.cubes() {
        println!("  {cube}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_depth(args: &[String]) -> Result<ExitCode, String> {
    use presat::preimage::sequential_depth;
    let path = args.first().ok_or("depth: missing circuit file")?;
    let circuit = load_circuit(path)?;
    let n = circuit.num_latches();
    let initial = match flag_value(args, "--initial") {
        Some(spec) => parse_state_spec(spec, n)?,
        None => StateSet::from_state_bits(0, n), // all-zero reset
    };
    let depth = sequential_depth(&circuit, &initial);
    println!("sequential depth from the initial set: {depth}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_justify(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("justify: missing circuit file")?;
    let circuit = load_circuit(path)?;
    let n = circuit.num_latches();
    let from = parse_bits64(
        flag_value(args, "--from").ok_or("justify: --from <bits> required")?,
        n,
    )?;
    let target = parse_state_spec(
        flag_value(args, "--target").ok_or("justify: --target <spec> required")?,
        n,
    )?;
    let engine = sat_engine_from_flag(args)?;
    match justify(engine.as_ref(), &circuit, from, &target) {
        Some(trace) => {
            println!("justifiable in {} cycles:", trace.len());
            for (t, step) in trace.steps.iter().enumerate() {
                println!(
                    "  cycle {:>3}: state {:0width$b}  inputs {:0iwidth$b}  -> {:0width$b}",
                    t,
                    step.state,
                    step.inputs,
                    step.next_state,
                    width = n,
                    iwidth = circuit.num_inputs().max(1),
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        None => {
            println!("target not reachable from state {from:0n$b}");
            Ok(ExitCode::from(1))
        }
    }
}
