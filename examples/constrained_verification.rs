//! Verification under environment assumptions.
//!
//! Real blocks never see free inputs: the arbiter below is verified under
//! the standard *one-hot request* environment, and the analysis combines
//! three library features — output excitation sets, environment-constrained
//! preimages, and reachability with frontier simplification.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example constrained_verification
//! ```

use presat::circuit::generators;
use presat::logic::{Cube, CubeSet, Lit, Var};
use presat::preimage::{
    backward_reach, excitation_set, PreimageEngine, ReachOptions, SatPreimage, StateSet,
};

fn one_hot_env(n: usize) -> CubeSet {
    // At most one request asserted per cycle.
    let mut env = CubeSet::new();
    for hot in 0..=n {
        let cube = Cube::from_lits((0..n).map(|i| {
            Lit::with_phase(Var::new(i), hot < n && i == hot)
        }))
        .expect("distinct inputs");
        env.insert(cube);
    }
    env
}

fn main() {
    let n = 3;
    let circuit = generators::round_robin_arbiter(n);
    println!("circuit: {}", circuit.summary());

    // 1. Excitation: which states can raise the any_grant output at all?
    let exc = excitation_set(&circuit, 0, true);
    println!(
        "\nany_grant excitable from {} / {} states ({} cubes)",
        exc.states.minterm_count(2 * n),
        1u64 << (2 * n),
        exc.states.num_cubes()
    );

    // 2. The bad set: two grants at once.
    let bad = StateSet::from_partial(&[(n, true), (n + 1, true)]);

    // 3. Preimage under the one-hot environment vs. free inputs.
    let free = SatPreimage::success_driven().preimage(&circuit, &bad);
    let constrained = SatPreimage::success_driven()
        .with_env(one_hot_env(n))
        .preimage(&circuit, &bad);
    println!(
        "\npreimage of double-grant:  free inputs {} states, one-hot env {} states",
        free.states.minterm_count(2 * n),
        constrained.states.minterm_count(2 * n)
    );

    // 4. Full backward reachability under the environment, with frontier
    // simplification.
    let engine = SatPreimage::success_driven().with_env(one_hot_env(n));
    let report = backward_reach(
        &engine,
        &circuit,
        &bad,
        ReachOptions {
            simplify_frontier: true,
            ..ReachOptions::default()
        },
    );
    println!(
        "backward-reachable (one-hot env): {} states in {} iterations (converged={})",
        report.reached_states,
        report.iterations.len(),
        report.converged
    );

    // Under a one-hot environment only one grant can load per cycle, so the
    // double-grant set has a much smaller (or empty) basin than with free
    // inputs — which is the point of verifying under assumptions.
    let reset = 0b000001u64; // token at position 0, no grants
    println!(
        "reset can reach double-grant under the environment: {}",
        report.reached.contains_bits(reset, 2 * n)
    );
}
