//! Quickstart: compute one preimage three ways and check they agree.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use presat::circuit::generators;
use presat::preimage::{BddPreimage, PreimageEngine, SatPreimage, StateSet};

fn main() {
    // An 8-bit binary counter with an enable input: s' = en ? s + 1 : s.
    let circuit = generators::counter(8, true);
    println!("circuit: {}", circuit.summary());

    // Target: the counter reads 0x2A next cycle.
    let target = StateSet::from_state_bits(0x2A, 8);
    println!("target : state 0x2A\n");

    let engines: Vec<Box<dyn PreimageEngine>> = vec![
        Box::new(SatPreimage::blocking()),
        Box::new(SatPreimage::min_blocking()),
        Box::new(SatPreimage::success_driven()),
        Box::new(BddPreimage::substitution()),
    ];

    let mut sizes = Vec::new();
    for engine in &engines {
        let result = engine.preimage(&circuit, &target);
        let count = result.states.minterm_count(8);
        println!(
            "{:<24} {:>4} states in {:>3} cubes   [{}]   {:?}",
            engine.name(),
            count,
            result.states.num_cubes(),
            result.stats,
            result.elapsed
        );
        sizes.push(count);
    }
    assert!(
        sizes.windows(2).all(|w| w[0] == w[1]),
        "engines disagree on the preimage size"
    );

    // With enable, 0x2A is reachable from 0x29 (en=1) and 0x2A (en=0).
    println!("\npredecessor states: 0x29 (enable high) and 0x2A (enable low)");
    let sd = SatPreimage::success_driven().preimage(&circuit, &target);
    assert!(sd.states.contains_bits(0x29, 8));
    assert!(sd.states.contains_bits(0x2A, 8));
    assert_eq!(sd.states.minterm_count(8), 2);
    println!("all engines agree ✓");
}
