//! Engine shootout on the blocking-clause worst case.
//!
//! The parity circuit's preimage has `2^(n-1)` minterms and **no** wider
//! prime cubes, so every blocking-style enumerator must emit one clause per
//! minterm — while the success-driven solver's solution graph stays linear
//! in `n`. This example prints the scaling table (the live version of
//! figures F1/F2 in `EXPERIMENTS.md`).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example solver_shootout
//! ```

use std::time::Instant;

use presat::circuit::generators;
use presat::preimage::{PreimageEngine, SatPreimage, StateSet};

fn main() {
    println!("parity(n): preimage of «parity latch = 1» (2^(n-1) solution minterms)\n");
    println!(
        "{:>3} {:>10} | {:>10} {:>9} | {:>10} {:>9} | {:>10} {:>9} {:>7}",
        "n", "solutions", "blk-time", "blk-cls", "min-time", "min-cls", "sd-time", "sd-nodes", "hits"
    );

    for n in [4usize, 6, 8, 10, 12] {
        let circuit = generators::parity(n);
        let target = StateSet::from_partial(&[(n, true)]);

        let run = |engine: &dyn PreimageEngine| {
            let t0 = Instant::now();
            let r = engine.preimage(&circuit, &target);
            (t0.elapsed(), r)
        };

        let (t_blk, r_blk) = run(&SatPreimage::blocking());
        let (t_min, r_min) = run(&SatPreimage::min_blocking());
        let (t_sd, r_sd) = run(&SatPreimage::success_driven());

        let solutions = r_sd.states.minterm_count(n + 1);
        assert_eq!(solutions, r_blk.states.minterm_count(n + 1));
        assert_eq!(solutions, r_min.states.minterm_count(n + 1));

        println!(
            "{:>3} {:>10} | {:>10.2?} {:>9} | {:>10.2?} {:>9} | {:>10.2?} {:>9} {:>7}",
            n,
            solutions,
            t_blk,
            r_blk.stats.blocking_clauses,
            t_min,
            r_min.stats.blocking_clauses,
            t_sd,
            r_sd.stats.graph_nodes,
            r_sd.stats.cache_hits,
        );
    }

    println!("\nshape to observe: blocking clauses double with n; the solution graph");
    println!("grows linearly and the success cache absorbs the exponential re-exploration.");
}
