//! Backward reachability of a safety target — the workload that motivates
//! preimage computation in unbounded model checking.
//!
//! The circuit is a round-robin arbiter; the "bad" states are those where
//! both requesters hold a grant simultaneously. Backward reachability from
//! the bad set tells us every state from which the failure is reachable;
//! intersecting with the reset state decides the safety property.
//!
//! Run with:
//!
//! ```text
//! cargo run --example backward_reachability
//! ```

use presat::circuit::generators;
use presat::preimage::{backward_reach, ReachOptions, SatPreimage, StateSet};

fn main() {
    let n = 3; // three requesters
    let circuit = generators::round_robin_arbiter(n);
    println!("circuit: {}", circuit.summary());

    // Latches: 0..n = token ring, n..2n = grants. Bad: grants 0 and 1 both
    // high at once.
    let bad = StateSet::from_partial(&[(n, true), (n + 1, true)]);
    println!("bad set: grant0 ∧ grant1 (simultaneous grants)\n");

    let engine = SatPreimage::success_driven();
    let report = backward_reach(&engine, &circuit, &bad, ReachOptions::default());

    println!("iter  frontier-cubes  new-states  reached-states      time");
    for row in &report.iterations {
        println!(
            "{:>4}  {:>14}  {:>10}  {:>14}  {:>8.2?}",
            row.iteration, row.frontier_cubes, row.new_states, row.reached_states, row.elapsed
        );
    }
    println!(
        "\nconverged: {}   backward-reachable states: {}",
        report.converged, report.reached_states
    );

    // The reset state (all latches zero: one-hot token not set) — in this
    // simplified arbiter the canonical reset is token at position 0, no
    // grants: bits = 0b001 (token ring) with grant bits zero.
    let reset_bits = 0b1u64; // token_0 = 1, everything else 0
    let reachable_from_reset = report.reached.contains_bits(reset_bits, 2 * n);
    println!(
        "reset state can reach the bad set: {}",
        if reachable_from_reset { "YES — unsafe" } else { "no — safe from reset" }
    );

    // Sanity: a single-token ring can only grant the token holder, so both
    // grants can only fire if two tokens circulate — bad states *are*
    // backward-reachable only from multi-token states.
    assert!(report.converged);
}
