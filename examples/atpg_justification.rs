//! Sequential justification — the ATPG-flavoured use of preimage
//! computation.
//!
//! To test a fault, sequential ATPG must *justify* a required state: find
//! an input sequence driving the circuit from reset into a state that
//! excites the fault. Backward reachability from the required state set
//! answers (a) whether the state is justifiable at all and (b) how many
//! cycles are needed; the per-iteration frontiers then yield the actual
//! vector sequence step by step.
//!
//! The circuit here is the ISCAS89 benchmark `s27` (shipped embedded).
//!
//! Run with:
//!
//! ```text
//! cargo run --example atpg_justification
//! ```

use presat::circuit::embedded;
use presat::preimage::{backward_reach, PreimageEngine, ReachOptions, SatPreimage, StateSet};

fn main() {
    let circuit = embedded::s27().expect("embedded netlist parses");
    println!("circuit: {}", circuit.summary());

    // Suppose exciting a fault requires latches (G5,G6,G7) = (0,1,1).
    let required = StateSet::from_state_bits(0b110, 3);
    println!("required state for fault excitation: G5=0 G6=1 G7=1\n");

    let engine = SatPreimage::success_driven();
    let report = backward_reach(&engine, &circuit, &required, ReachOptions::default());

    println!("iter  new-states  reached");
    for row in &report.iterations {
        println!(
            "{:>4}  {:>10}  {:>7}",
            row.iteration, row.new_states, row.reached_states
        );
    }

    let reset = 0b000u64; // ISCAS89 convention: DFFs reset to 0
    let justifiable = report.reached.contains_bits(reset, 3);
    println!(
        "\nstate justifiable from reset: {}",
        if justifiable { "YES" } else { "no (untestable fault)" }
    );
    println!(
        "states that can justify it: {} / 8",
        report.reached_states
    );

    // Depth = first iteration whose cumulative set contains reset.
    if justifiable {
        let mut depth = 0;
        let mut cumulative = required.clone();
        for row in &report.iterations {
            if cumulative.contains_bits(reset, 3) {
                break;
            }
            depth = row.iteration;
            let pre = engine.preimage(&circuit, &cumulative);
            cumulative = cumulative.union(&pre.states);
        }
        println!("justification sequence length: ≤ {depth} cycles");
    }
}
