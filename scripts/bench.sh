#!/usr/bin/env bash
# Regenerates the checked-in benchmark JSON:
#
#   BENCH_PR2.json — thread-scaling sweep (preimage-step + reachability
#                    workloads at --jobs 1/2/4);
#   BENCH_PR3.json — incremental-session sweep (rebuild-per-iteration vs
#                    one persistent solver session across the backward
#                    fixed point, with session-reuse counters);
#   BENCH_PR4.json — budget-polling overhead probe (unlimited enumeration
#                    vs a generous never-tripping budget + cancel token);
#   BENCH_PR5.json — propagation-throughput probe (flat clause arena vs a
#                    faithful replica of the pre-arena Vec-of-Vec store:
#                    BCP sweeps, resident clause bytes, worker-clone cost);
#   BENCH_PR6.json — clause-DB flatness probe (peak clause-DB size vs
#                    solution count, blocking vs chrono enumeration);
#   BENCH_PR7.json — propagation-throughput rerun after the binary-watch
#                    split plus the root-level inprocessing row (live
#                    clause words before/after on the churn workload).
#                    Supersedes BENCH_PR5.json, kept for history.
#   BENCH_PR8.json — cube-balance sweep (static prefix partitioning vs
#                    adaptive cube-and-conquer on the preimage-step
#                    workloads, plus the spawn-gate check on the small
#                    reachability workloads; records cpu_count — on a
#                    single-CPU host the gated rows are the meaningful
#                    ones).
#   BENCH_PR10.json — cube-store scaling sweep (occurrence-indexed CubeSet
#                    vs the retained naive two-scan store on seeded insert
#                    streams: sparse growth regime at 1k–10k inserts plus a
#                    dense absorption regime, with the index work counters).
#
# All binaries assert result equality between the compared configurations
# before timing anything, so a successful run is also a determinism check.
#
#   scripts/bench.sh              # 5 samples per case (default)
#   PRESAT_BENCH_SAMPLES=11 scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p presat-bench
./target/release/thread_scaling BENCH_PR2.json
./target/release/reach_incremental BENCH_PR3.json
./target/release/budget_overhead BENCH_PR4.json
./target/release/propagation_throughput BENCH_PR7.json
./target/release/chrono_db_flatness BENCH_PR6.json
./target/release/cube_balance BENCH_PR8.json
./target/release/cubeset_scaling BENCH_PR10.json

# Show how the checked-in numbers moved (informational; timings drift with
# hardware, the structure should not).
if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  git --no-pager diff --stat -- BENCH_PR2.json BENCH_PR3.json BENCH_PR4.json BENCH_PR5.json BENCH_PR6.json BENCH_PR7.json BENCH_PR8.json BENCH_PR10.json || true
fi
echo "bench: OK"
