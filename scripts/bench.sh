#!/usr/bin/env bash
# Regenerates BENCH_PR2.json: the thread-scaling sweep (median-of-N via the
# in-tree harness) over the preimage-step and reachability workloads at
# --jobs 1/2/4. The binary asserts parallel/sequential result equality
# before timing anything, so a successful run is also a determinism check.
#
#   scripts/bench.sh              # 5 samples per case (default)
#   PRESAT_BENCH_SAMPLES=11 scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p presat-bench
./target/release/thread_scaling BENCH_PR2.json

# Show how the checked-in numbers moved (informational; timings drift with
# hardware, the structure should not).
if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  git --no-pager diff --stat -- BENCH_PR2.json || true
fi
echo "bench: OK"
