#!/usr/bin/env bash
# Tier-1 verification: hermetic build + full test suite + lint, all offline.
# Referenced from ROADMAP.md; CI and pre-merge checks run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline

# The suite runs twice: sequential and multi-threaded enumeration. The
# parallel determinism tests consult PRESAT_TEST_JOBS, so the =4 pass
# exercises real worker threads and the =1 pass the delegation path.
PRESAT_TEST_JOBS=1 cargo test -q --workspace --offline
PRESAT_TEST_JOBS=4 cargo test -q --workspace --offline

# Both partitioning modes get the full determinism treatment: the parallel
# and differential suites consult PRESAT_TEST_ADAPTIVE, so =1 runs the
# adaptive cube tree (lookahead-scored split plus dynamic work splitting)
# and =0 the static guiding-path prefix partition.
PRESAT_TEST_ADAPTIVE=0 cargo test -q -p presat --test parallel --test differential --test anytime --offline
PRESAT_TEST_ADAPTIVE=1 cargo test -q -p presat --test parallel --test differential --test anytime --offline

# Differential cross-engine fuzz harness (fixed seed): every enumeration
# engine — blocking, min-blocking, success-driven, parallel, chrono — must
# produce semantically identical model sets, pinned against the BDD
# package's existential projection and satcount. Run explicitly at both
# thread counts so a workspace-filter change can never silently skip it.
PRESAT_TEST_JOBS=1 cargo test -q -p presat --test differential --offline
PRESAT_TEST_JOBS=4 cargo test -q -p presat --test differential --offline

# The incremental cross-check suite already compares both reachability
# paths head-to-head; its oracle test additionally honours
# PRESAT_TEST_INCREMENTAL, so run it once per mode (=1 session path,
# =0 rebuild path) to pin both against ground truth.
PRESAT_TEST_INCREMENTAL=0 cargo test -q -p presat --test incremental --offline
PRESAT_TEST_INCREMENTAL=1 cargo test -q -p presat --test incremental --offline

# Root-level inprocessing is equivalence-preserving, so the determinism
# suites must hold with it on (the default) and off. The incremental and
# inprocess suites honour PRESAT_TEST_INPROCESS; =0 additionally proves
# the off switch is a true no-op on every identity asserted there.
PRESAT_TEST_INPROCESS=0 cargo test -q -p presat --test incremental --test inprocess --offline
PRESAT_TEST_INPROCESS=1 cargo test -q -p presat --test incremental --test inprocess --offline

cargo clippy --workspace --all-targets --offline -- -D warnings

# Lint gate: unordered float comparisons must use total_cmp, never
# partial_cmp(..).expect(..) — NaN-poisoned activities once turned a sort
# into a panic deep inside reduce_db.
if grep -rn --include='*.rs' 'partial_cmp' crates src examples 2>/dev/null \
    | grep '\.expect' | grep -v '/tests/'; then
  echo "verify: FAIL — partial_cmp(..).expect in non-test code (use total_cmp)" >&2
  exit 1
fi

# Lint gate: the chrono enumeration engine is blocking-clause-free by
# construction — nothing in crates/core/src/chrono.rs may reach for
# add_clause (or any other clause-DB mutation). The differential and
# cross-engine suites check the counters at runtime; this pins the source.
# (Comments and the in-file unit tests — which build Cnf fixtures — are
# out of scope; only engine code above the #[cfg(test)] marker counts.)
if sed -n '1,/#\[cfg(test)\]/p' crates/core/src/chrono.rs \
    | grep -v '^\s*//' | grep -n 'add_clause\|add_blocking'; then
  echo "verify: FAIL — chrono enumeration must not touch the clause DB" >&2
  exit 1
fi

# Anytime smoke test: a backward-reachability run on a 24-bit LFSR (cycle
# length ~16M states, far beyond any 50 ms budget) must stop on the
# deadline with exit code 0 and report "complete":false in the stats JSON
# — never hang, crash, or claim a converged fixed point.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
{
  echo "# 24-bit LFSR (taps 24,23,22,17) for the anytime smoke test"
  echo "OUTPUT(z)"
  echo "x0 = XOR(s23, s22)"
  echo "x1 = XOR(s21, s16)"
  echo "fb = XOR(x0, x1)"
  echo "s0 = DFF(fb)"
  for j in $(seq 1 23); do echo "s$j = DFF(s$((j-1)))"; done
  echo "z = BUF(s0)"
} > "$smoke_dir/lfsr24.bench"
smoke_out="$(timeout 30 ./target/release/presat reach "$smoke_dir/lfsr24.bench" \
  --target 1 --timeout-ms 50 --stats)"
if ! printf '%s\n' "$smoke_out" | grep -q '"complete":false'; then
  echo "verify: FAIL — budgeted reach did not report \"complete\":false" >&2
  printf '%s\n' "$smoke_out" >&2
  exit 1
fi
if ! printf '%s\n' "$smoke_out" | grep -q '"stop_reason":"deadline"'; then
  echo "verify: FAIL — budgeted reach did not report the deadline stop" >&2
  printf '%s\n' "$smoke_out" >&2
  exit 1
fi
# The clause-memory counters must surface in the stats JSON: the arena
# gauge is non-zero on any real run, the GC counters merely present.
if ! printf '%s\n' "$smoke_out" | grep -q '"arena_bytes":[1-9]'; then
  echo "verify: FAIL — stats JSON missing a non-zero arena_bytes gauge" >&2
  printf '%s\n' "$smoke_out" >&2
  exit 1
fi
for field in db_compactions clauses_reclaimed cones_skipped \
    inprocess_rounds subsumed_clauses strengthened_lits vivified_clauses \
    lookahead_probes cubes_split max_cube_conflicts steal_waits \
    subsumption_checks sig_rejects index_candidates; do
  if ! printf '%s\n' "$smoke_out" | grep -q "\"$field\":"; then
    echo "verify: FAIL — stats JSON missing the $field counter" >&2
    printf '%s\n' "$smoke_out" >&2
    exit 1
  fi
done

# Adaptive-fleet smoke: a 6-bit LFSR reachability with the spawn gate
# forced open must run the lookahead-scored partitioner (non-zero probe
# counter) and still converge to the full cycle.
{
  echo "# 6-bit LFSR for the adaptive-fleet smoke test"
  echo "OUTPUT(z)"
  echo "fb = XOR(s5, s4)"
  echo "s0 = DFF(fb)"
  for j in $(seq 1 5); do echo "s$j = DFF(s$((j-1)))"; done
  echo "z = BUF(s0)"
} > "$smoke_dir/lfsr6.bench"
adaptive_out="$(timeout 60 ./target/release/presat reach "$smoke_dir/lfsr6.bench" \
  --target 1 --jobs 4 --par-threshold 0 --stats)"
if ! printf '%s\n' "$adaptive_out" | grep -q '"lookahead_probes":[1-9]'; then
  echo "verify: FAIL — forced-open spawn gate ran no lookahead probes" >&2
  printf '%s\n' "$adaptive_out" >&2
  exit 1
fi
if ! printf '%s\n' "$adaptive_out" | grep -q '"complete":true'; then
  echo "verify: FAIL — adaptive-fleet reach did not converge" >&2
  printf '%s\n' "$adaptive_out" >&2
  exit 1
fi

# Propagation-throughput smoke: the bench binary cross-checks the flat
# arena against a replica of the pre-arena clause store probe-by-probe,
# so one cheap sample doubles as a layout-equivalence test. The binary
# also asserts internally that the inprocessing row shrinks the churn
# arena's live clause words.
PRESAT_BENCH_SAMPLES=1 timeout 300 ./target/release/propagation_throughput \
  "$smoke_dir/bench_pr7.json" > /dev/null
for record in churn churn_inprocess inprocess; do
  if ! grep -q "\"$record\":{" "$smoke_dir/bench_pr7.json"; then
    echo "verify: FAIL — propagation_throughput produced no $record record" >&2
    exit 1
  fi
done

# Cube-balance smoke: the static-vs-adaptive bench gates on structural
# equality of all three engines before timing, so one cheap sample is
# also a determinism check across both partitioning modes; the emitted
# JSON must carry both sections of the R11 table.
PRESAT_BENCH_SAMPLES=1 timeout 300 ./target/release/cube_balance \
  "$smoke_dir/bench_pr8.json" > /dev/null
for record in preimage_step reach_gate; do
  if ! grep -q "\"$record\":{" "$smoke_dir/bench_pr8.json"; then
    echo "verify: FAIL — cube_balance produced no $record record" >&2
    exit 1
  fi
done

# Cube-store smoke: the scaling bench asserts bit-identity between the
# occurrence-indexed store and the naive reference on every stream before
# timing it, so one cheap sample is also a differential check on streams
# larger than the unit suites use; the JSON must carry both regimes and
# the headline speedup field the R12 table reads.
PRESAT_BENCH_SAMPLES=1 timeout 300 ./target/release/cubeset_scaling \
  "$smoke_dir/bench_pr10.json" > /dev/null
for record in sparse_10000 dense_10000; do
  if ! grep -q "\"$record\":{" "$smoke_dir/bench_pr10.json"; then
    echo "verify: FAIL — cubeset_scaling produced no $record record" >&2
    exit 1
  fi
done
if ! grep -q '"speedup_at_10000":' "$smoke_dir/bench_pr10.json"; then
  echo "verify: FAIL — cubeset_scaling emitted no speedup_at_10000 field" >&2
  exit 1
fi

# Lint gate: every hot-path cube-store insert goes through the indexed
# CubeSet — the naive linear scan `cubes.iter().any(|c| c.subsumes(..))`
# lives only in the reference module the differential suites pin the
# index against. (cover_rec's `cover.iter().any(..)` walks a bounded
# cover argument, not a store, and stays legal.)
if grep -rn --include='*.rs' -F 'cubes.iter().any(|c| c.subsumes(' \
    crates src examples 2>/dev/null | grep -v 'crates/logic/src/naive\.rs'; then
  echo "verify: FAIL — naive subsumption scan outside crates/logic/src/naive.rs (use CubeSet)" >&2
  exit 1
fi

# Lint gate: daemon code never .unwrap()s values derived from untrusted
# requests — every parse/lock/IO edge must degrade to an error event.
# (Tests use expect; unwrap_or / unwrap_or_else / unwrap_or_default stay
# legal — only bare .unwrap() is banned.)
if grep -rn --include='*.rs' '\.unwrap()' crates/presatd/src src/bin/presatd.rs \
    2>/dev/null | grep -v '^\s*//'; then
  echo "verify: FAIL — bare .unwrap() in presatd (degrade to an error event)" >&2
  exit 1
fi

# Daemon smoke: a budget-capped reach, a solve, a cancel race, and a clean
# shutdown over --stdin, all answered with line-JSON carrying the request
# ids. The 16-bit counter reach (65k-state cycle) cannot finish inside 40
# conflicts, so its done event must report the conflicts stop; the solve
# must come back sat; every request's terminal event must be present.
{
  echo "# 16-bit binary counter for the daemon smoke test"
  echo "INPUT(en)"
  echo "OUTPUT(z)"
  echo "n0 = NOT(s0)"
  echo "c0 = BUF(s0)"
  echo "s0 = DFF(n0)"
  for j in $(seq 1 15); do
    echo "n$j = XOR(s$j, c$((j-1)))"
    echo "s$j = DFF(n$j)"
    if [ "$j" -lt 15 ]; then echo "c$j = AND(s$j, c$((j-1)))"; fi
  done
  echo "z = BUF(s0)"
} > "$smoke_dir/counter16.bench"
counter16="$(awk '{printf "%s\\n", $0}' "$smoke_dir/counter16.bench")"
# `shutdown` cancels whatever is still running by design, so it must not
# be piped in the same burst as the jobs: on a single-CPU host the reader
# thread can process all five lines before the worker runs its first
# slice, cancelling even the trivial solve. Drive stdin through a FIFO
# and hold the shutdown line until both jobs have printed their terminal
# events.
daemon_in="$smoke_dir/presatd.in"
daemon_log="$smoke_dir/presatd.out"
mkfifo "$daemon_in"
(
  printf '{"op":"solve","id":"q1","session":"smoke","cnf":"p cnf 2 2\\n1 2 0\\n-1 2 0\\n"}\n'
  printf '{"op":"reach","id":"q2","session":"smoke","circuit":"%s","target":"0b0000000000000000","conflict_budget":40}\n' "$counter16"
  printf '{"op":"cancel","id":"q3","job":"q2"}\n'
  for _ in $(seq 1 600); do
    if grep -q '"id":"q1","event":"done"' "$daemon_log" 2>/dev/null \
        && grep -q '"id":"q2","event":"done"' "$daemon_log" 2>/dev/null; then
      break
    fi
    sleep 0.1
  done
  printf '{"op":"stats","id":"q4"}\n'
  printf '{"op":"shutdown","id":"q5"}\n'
) > "$daemon_in" &
daemon_writer=$!
timeout 120 ./target/release/presatd --stdin --slice-conflicts 10 \
  < "$daemon_in" > "$daemon_log"
wait "$daemon_writer" || true
daemon_out="$(cat "$daemon_log")"
daemon_check() {
  if ! printf '%s\n' "$daemon_out" | grep -q "$1"; then
    echo "verify: FAIL — daemon smoke output missing $1" >&2
    printf '%s\n' "$daemon_out" >&2
    exit 1
  fi
}
daemon_check '"id":"q1","event":"done".*"result":"sat"'
# Cancel vs budget is a race; either stop is a sound incomplete answer.
daemon_check '"id":"q2","event":"done".*"complete":false'
daemon_check '"stop_reason":"\(conflicts\|cancelled\)"'
daemon_check '"id":"q4","event":"stats".*"session":"smoke"'
daemon_check '"id":"q5","event":"ok"'
# Every line the daemon emits must be one standalone JSON object.
if printf '%s\n' "$daemon_out" | grep -v '^{.*}$' | grep -q .; then
  echo "verify: FAIL — daemon emitted a non-JSON line" >&2
  printf '%s\n' "$daemon_out" >&2
  exit 1
fi

echo "verify: OK"
