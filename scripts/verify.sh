#!/usr/bin/env bash
# Tier-1 verification: hermetic build + full test suite + lint, all offline.
# Referenced from ROADMAP.md; CI and pre-merge checks run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline

# The suite runs twice: sequential and multi-threaded enumeration. The
# parallel determinism tests consult PRESAT_TEST_JOBS, so the =4 pass
# exercises real worker threads and the =1 pass the delegation path.
PRESAT_TEST_JOBS=1 cargo test -q --workspace --offline
PRESAT_TEST_JOBS=4 cargo test -q --workspace --offline

# The incremental cross-check suite already compares both reachability
# paths head-to-head; its oracle test additionally honours
# PRESAT_TEST_INCREMENTAL, so run it once per mode (=1 session path,
# =0 rebuild path) to pin both against ground truth.
PRESAT_TEST_INCREMENTAL=0 cargo test -q -p presat --test incremental --offline
PRESAT_TEST_INCREMENTAL=1 cargo test -q -p presat --test incremental --offline

cargo clippy --workspace --all-targets --offline -- -D warnings

echo "verify: OK"
