#!/usr/bin/env bash
# Tier-1 verification: hermetic build + full test suite + lint, all offline.
# Referenced from ROADMAP.md; CI and pre-merge checks run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --workspace --offline
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "verify: OK"
