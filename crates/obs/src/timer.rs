//! Wall-clock timing helpers.

use std::time::{Duration, Instant};

/// A started wall-clock timer.
#[derive(Clone, Copy, Debug)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts timing now.
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Timer::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturated into `u64` (584 years of headroom).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::start()
    }
}

/// Times one closure call, returning its result and the elapsed time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Timer::start();
    let out = f();
    (out, t.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_monotone() {
        let t = Timer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn time_returns_the_closure_result() {
        let (v, d) = time(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(d <= Duration::from_secs(60));
    }
}
