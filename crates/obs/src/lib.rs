//! # presat-obs
//!
//! Zero-dependency observability for the presat engines: plain-`u64`
//! counters for each layer (SAT search, all-solutions enumeration,
//! preimage/fixed-point), an [`ObsSink`] structured event trace with a
//! no-op default, wall-clock [`Timer`]s, and a [`Stats`] snapshot with
//! JSON and CSV emitters.
//!
//! Design constraints (and why):
//!
//! - **Cheap by default.** Counters are plain `u64` fields incremented
//!   in-place by the owning engine — no atomics, no `RefCell`, nothing on
//!   the CDCL hot loop beyond the `+= 1` the solver already did. The event
//!   trace fires only on enumeration-level steps (one event per solution,
//!   blocking clause, or reachability iteration) through `&mut dyn
//!   ObsSink`, whose default [`NullSink`] makes the call a no-op.
//! - **Zero dependencies.** The JSON and CSV emitters are hand-rolled so
//!   the workspace builds hermetically offline; [`json::validate`] lets
//!   tests check emitted text is well-formed JSON without serde.
//!
//! The counter structs here are the canonical definitions; `presat-sat`,
//! `presat-allsat`, and `presat-preimage` re-export them under their
//! historical names (`SolverStats`, `EnumerationStats`, `PreimageStats`).

#![forbid(unsafe_code)]

pub mod counters;
pub mod csv;
pub mod json;
pub mod sink;
pub mod stop;
pub mod timer;

pub use counters::{AllSatCounters, PreimageCounters, SatCounters};
pub use sink::{Event, NullSink, ObsSink, VecSink};
pub use stop::StopReason;
pub use timer::{time, Timer};

pub use json::JsonObject;

/// A point-in-time snapshot of every counter layer for one engine run,
/// ready for JSON/CSV emission.
///
/// Layers the run did not exercise stay at their zero defaults (e.g. the
/// `sat` block of a BDD preimage run).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stats {
    /// Engine name as reported by the engine (`"sat-success-driven"`, …).
    pub engine: String,
    /// CDCL search counters.
    pub sat: SatCounters,
    /// All-solutions enumeration counters.
    pub allsat: AllSatCounters,
    /// Preimage/fixed-point counters.
    pub preimage: PreimageCounters,
    /// Wall-clock time of the whole run in nanoseconds.
    pub wall_time_ns: u64,
    /// Whether the run finished exhaustively (`true`, the default) or was
    /// stopped early by a budget, deadline, or cancellation (`false`).
    pub complete: bool,
    /// Why the run stopped early; `None` on a complete run.
    pub stop_reason: Option<StopReason>,
}

impl Default for Stats {
    fn default() -> Self {
        Stats {
            engine: String::new(),
            sat: SatCounters::default(),
            allsat: AllSatCounters::default(),
            preimage: PreimageCounters::default(),
            wall_time_ns: 0,
            complete: true,
            stop_reason: None,
        }
    }
}

impl Stats {
    /// Snapshot of a bare SAT solve.
    pub fn from_sat(engine: impl Into<String>, sat: &SatCounters) -> Self {
        Stats {
            engine: engine.into(),
            sat: *sat,
            ..Stats::default()
        }
    }

    /// Snapshot of an all-solutions enumeration (the SAT layer is lifted
    /// out of the enumeration's nested solver snapshot).
    pub fn from_allsat(engine: impl Into<String>, allsat: &AllSatCounters) -> Self {
        Stats {
            engine: engine.into(),
            sat: allsat.sat,
            allsat: *allsat,
            ..Stats::default()
        }
    }

    /// Snapshot of a preimage (or backward-reachability) run; the allsat
    /// and SAT layers are lifted out of the nested snapshots.
    pub fn from_preimage(engine: impl Into<String>, preimage: &PreimageCounters) -> Self {
        Stats {
            engine: engine.into(),
            sat: preimage.allsat.sat,
            allsat: preimage.allsat,
            preimage: *preimage,
            wall_time_ns: preimage.wall_time_ns,
            ..Stats::default()
        }
    }

    /// Marks the snapshot as a partial (anytime) result and records why it
    /// stopped.
    pub fn with_stop(mut self, complete: bool, stop_reason: Option<StopReason>) -> Self {
        self.complete = complete;
        self.stop_reason = stop_reason;
        self
    }

    /// Emits the snapshot as one JSON object labeled with the session it
    /// belongs to — the per-session export a multi-tenant metrics endpoint
    /// streams (one object per session, `"session"` leading).
    pub fn to_json_named(&self, session: &str) -> String {
        let mut o = JsonObject::new();
        o.field_str("session", session)
            .field_raw("stats", &self.to_json());
        o.finish()
    }

    /// Emits the snapshot as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_str("engine", &self.engine)
            .field_u64("wall_time_ns", self.wall_time_ns)
            .field_bool("complete", self.complete);
        if let Some(reason) = self.stop_reason {
            o.field_str("stop_reason", reason.as_str());
        }
        o.begin_object("sat")
            .field_u64("solves", self.sat.solves)
            .field_u64("decisions", self.sat.decisions)
            .field_u64("propagations", self.sat.propagations)
            .field_u64("binary_skips", self.sat.binary_skips)
            .field_u64("conflicts", self.sat.conflicts)
            .field_u64("restarts", self.sat.restarts)
            .field_u64("learnt_clauses", self.sat.learnt_clauses)
            .field_u64("deleted_clauses", self.sat.deleted_clauses)
            .field_u64("problem_clauses", self.sat.problem_clauses)
            .field_u64("arena_bytes", self.sat.arena_bytes)
            .field_u64("db_compactions", self.sat.db_compactions)
            .field_u64("clauses_reclaimed", self.sat.clauses_reclaimed)
            .field_u64("inprocess_rounds", self.sat.inprocess_rounds)
            .field_u64("subsumed_clauses", self.sat.subsumed_clauses)
            .field_u64("strengthened_lits", self.sat.strengthened_lits)
            .field_u64("vivified_clauses", self.sat.vivified_clauses)
            .field_u64("lookahead_probes", self.sat.lookahead_probes)
            .end_object();
        o.begin_object("allsat")
            .field_u64("solver_calls", self.allsat.solver_calls)
            .field_u64("solutions", self.allsat.cubes_emitted)
            .field_u64("blocking_clauses", self.allsat.blocking_clauses)
            .field_u64("literals_before_lift", self.allsat.literals_before_lift)
            .field_u64("literals_after_lift", self.allsat.literals_after_lift)
            .field_u64("cache_hits", self.allsat.cache_hits)
            .field_u64("cache_misses", self.allsat.cache_misses)
            .field_u64("graph_nodes", self.allsat.graph_nodes)
            .field_u64("budget_stops", self.allsat.budget_stops)
            .field_u64("cancelled_cubes", self.allsat.cancelled_cubes)
            .field_u64("chrono_backtracks", self.allsat.chrono_backtracks)
            .field_u64("db_clauses_peak", self.allsat.db_clauses_peak)
            .field_u64("cubes_split", self.allsat.cubes_split)
            .field_u64("max_cube_conflicts", self.allsat.max_cube_conflicts)
            .field_u64("steal_waits", self.allsat.steal_waits)
            .field_u64("subsumption_checks", self.allsat.subsumption_checks)
            .field_u64("sig_rejects", self.allsat.sig_rejects)
            .field_u64("index_candidates", self.allsat.index_candidates)
            .end_object();
        o.begin_object("preimage")
            .field_u64("result_cubes", self.preimage.result_cubes)
            .field_u64("iterations", self.preimage.iterations)
            .field_u64("solver_calls", self.preimage.solver_calls)
            .field_u64("blocking_clauses", self.preimage.blocking_clauses)
            .field_u64("graph_nodes", self.preimage.graph_nodes)
            .field_u64("cache_hits", self.preimage.cache_hits)
            .field_u64("bdd_nodes", self.preimage.bdd_nodes)
            .field_u64("sat_conflicts", self.preimage.sat_conflicts)
            .field_u64("wall_time_ns", self.preimage.wall_time_ns)
            .field_u64("encodings_reused", self.preimage.encodings_reused)
            .field_u64("learnts_carried", self.preimage.learnts_carried)
            .field_u64("activation_lits", self.preimage.activation_lits)
            .field_u64("cones_skipped", self.preimage.cones_skipped)
            .end_object();
        o.finish()
    }

    /// Column names for [`Stats::to_csv_row`], as one CSV header line.
    pub fn csv_header() -> String {
        csv::row([
            "engine",
            "wall_time_ns",
            "sat_solves",
            "sat_decisions",
            "sat_propagations",
            "sat_binary_skips",
            "sat_conflicts",
            "sat_restarts",
            "sat_learnt_clauses",
            "sat_arena_bytes",
            "sat_db_compactions",
            "sat_clauses_reclaimed",
            "sat_inprocess_rounds",
            "sat_subsumed_clauses",
            "sat_strengthened_lits",
            "sat_vivified_clauses",
            "sat_lookahead_probes",
            "allsat_solver_calls",
            "allsat_solutions",
            "allsat_blocking_clauses",
            "allsat_literals_before_lift",
            "allsat_literals_after_lift",
            "allsat_cache_hits",
            "allsat_cache_misses",
            "allsat_graph_nodes",
            "allsat_budget_stops",
            "allsat_cancelled_cubes",
            "allsat_chrono_backtracks",
            "allsat_db_clauses_peak",
            "allsat_cubes_split",
            "allsat_max_cube_conflicts",
            "allsat_steal_waits",
            "allsat_subsumption_checks",
            "allsat_sig_rejects",
            "allsat_index_candidates",
            "preimage_result_cubes",
            "preimage_iterations",
            "preimage_bdd_nodes",
            "preimage_encodings_reused",
            "preimage_learnts_carried",
            "preimage_activation_lits",
            "preimage_cones_skipped",
            "complete",
        ])
    }

    /// Emits the snapshot as one CSV row matching [`Stats::csv_header`].
    pub fn to_csv_row(&self) -> String {
        let nums = [
            self.wall_time_ns,
            self.sat.solves,
            self.sat.decisions,
            self.sat.propagations,
            self.sat.binary_skips,
            self.sat.conflicts,
            self.sat.restarts,
            self.sat.learnt_clauses,
            self.sat.arena_bytes,
            self.sat.db_compactions,
            self.sat.clauses_reclaimed,
            self.sat.inprocess_rounds,
            self.sat.subsumed_clauses,
            self.sat.strengthened_lits,
            self.sat.vivified_clauses,
            self.sat.lookahead_probes,
            self.allsat.solver_calls,
            self.allsat.cubes_emitted,
            self.allsat.blocking_clauses,
            self.allsat.literals_before_lift,
            self.allsat.literals_after_lift,
            self.allsat.cache_hits,
            self.allsat.cache_misses,
            self.allsat.graph_nodes,
            self.allsat.budget_stops,
            self.allsat.cancelled_cubes,
            self.allsat.chrono_backtracks,
            self.allsat.db_clauses_peak,
            self.allsat.cubes_split,
            self.allsat.max_cube_conflicts,
            self.allsat.steal_waits,
            self.allsat.subsumption_checks,
            self.allsat.sig_rejects,
            self.allsat.index_candidates,
            self.preimage.result_cubes,
            self.preimage.iterations,
            self.preimage.bdd_nodes,
            self.preimage.encodings_reused,
            self.preimage.learnts_carried,
            self.preimage.activation_lits,
            self.preimage.cones_skipped,
            u64::from(self.complete),
        ];
        let mut fields = vec![csv::escape_field(&self.engine)];
        fields.extend(nums.iter().map(u64::to_string));
        fields.join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Stats {
        let mut p = PreimageCounters {
            result_cubes: 3,
            iterations: 2,
            wall_time_ns: 1234,
            ..PreimageCounters::default()
        };
        p.allsat.cubes_emitted = 4;
        p.allsat.blocking_clauses = 4;
        p.allsat.sat.decisions = 17;
        p.allsat.sat.conflicts = 5;
        Stats::from_preimage("sat-blocking", &p)
    }

    #[test]
    fn json_is_valid_and_carries_all_layers() {
        let text = sample().to_json();
        json::validate(&text).unwrap();
        assert_eq!(json::extract_u64(&text, "decisions"), Some(17));
        assert_eq!(json::extract_u64(&text, "conflicts"), Some(5));
        assert_eq!(json::extract_u64(&text, "solutions"), Some(4));
        assert_eq!(json::extract_u64(&text, "blocking_clauses"), Some(4));
        assert_eq!(json::extract_u64(&text, "result_cubes"), Some(3));
        assert!(text.contains("\"engine\":\"sat-blocking\""));
    }

    #[test]
    fn from_snapshots_lift_nested_layers() {
        let s = sample();
        assert_eq!(s.sat.decisions, 17);
        assert_eq!(s.allsat.cubes_emitted, 4);
        assert_eq!(s.wall_time_ns, 1234);

        let mut a = AllSatCounters::default();
        a.sat.conflicts = 9;
        let s = Stats::from_allsat("blocking", &a);
        assert_eq!(s.sat.conflicts, 9);

        let sat = SatCounters {
            solves: 1,
            ..SatCounters::default()
        };
        let s = Stats::from_sat("cdcl", &sat);
        assert_eq!(s.sat.solves, 1);
        assert_eq!(s.allsat, AllSatCounters::default());
    }

    #[test]
    fn complete_defaults_true_and_stop_reason_serializes() {
        let s = sample();
        assert!(s.complete);
        assert!(s.stop_reason.is_none());
        let text = s.to_json();
        assert!(text.contains("\"complete\":true"));
        assert!(!text.contains("stop_reason"));

        let s = sample().with_stop(false, Some(StopReason::Deadline));
        let text = s.to_json();
        json::validate(&text).unwrap();
        assert!(text.contains("\"complete\":false"));
        assert!(text.contains("\"stop_reason\":\"deadline\""));
        assert!(s.to_csv_row().ends_with(",0"));
    }

    #[test]
    fn named_snapshot_nests_the_plain_one() {
        let s = sample();
        let text = s.to_json_named("tenant \"a\"");
        json::validate(&text).unwrap();
        assert!(text.starts_with("{\"session\":\"tenant \\\"a\\\"\""));
        assert!(text.contains(&format!("\"stats\":{}", s.to_json())));
    }

    #[test]
    fn csv_row_matches_header_width() {
        let header = Stats::csv_header();
        let row = sample().to_csv_row();
        assert_eq!(
            header.split(',').count(),
            row.split(',').count(),
            "header: {header}\nrow: {row}"
        );
        assert!(row.starts_with("sat-blocking,1234,"));
    }
}
