//! Structured event trace: an [`ObsSink`] receives [`Event`]s from the
//! engines as they happen.
//!
//! The default sink is [`NullSink`], whose `record` is an empty inlineable
//! body — engines thread `&mut dyn ObsSink` through their outer loops (one
//! event per solution / blocking clause / reachability iteration, never per
//! propagation), so the no-op case costs one indirect call per *solution*,
//! not per solver step.

/// One observable step of an engine run.
///
/// Events are deliberately coarse: they fire on the enumeration and
/// fixed-point loops, not on the CDCL hot loop (which is covered by the
/// plain counters in [`crate::SatCounters`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// An all-SAT engine emitted a solution cube of `width` literals.
    Solution {
        /// Literal count of the emitted cube (after lifting, if any).
        width: u32,
    },
    /// A blocking clause of `width` literals was added to the sub-solver.
    BlockingClause {
        /// Literal count of the blocking clause.
        width: u32,
    },
    /// The success-driven engine reused a cached subspace at branch `depth`.
    CacheHit {
        /// Branching depth (index into the important-variable order).
        depth: u32,
    },
    /// The success-driven engine explored a fresh subspace at branch `depth`.
    CacheMiss {
        /// Branching depth (index into the important-variable order).
        depth: u32,
    },
    /// The parallel engine finished one partition cube of the search
    /// space. Cubes are reported in deterministic branching order (the
    /// per-cube traces are replayed at merge time), not completion order.
    CubeDone {
        /// Index of the partition cube over the prefix of the important
        /// variables (bit *j* = phase of branching level *j*).
        cube_index: u32,
        /// CDCL sub-solver calls spent inside this cube's subspace.
        solver_calls: u64,
    },
    /// The adaptive parallel engine split a running partition cube into
    /// two children. Replayed at merge time in cube-*tree* DFS order
    /// (immediately before the first leaf below the split), not in the
    /// nondeterministic order splits happened at run time.
    CubeSplit {
        /// The split cube's path through the cube tree: bit *j* = phase
        /// chosen at tree level *j* (low bits first).
        path: u32,
        /// Length of `path` in bits (tree depth of the split cube).
        depth: u8,
        /// Index of the important variable the cube was split on.
        var: u32,
    },
    /// One backward-reachability iteration completed.
    ReachIteration {
        /// 1-based iteration number (the fixed-point depth so far).
        iteration: u32,
        /// Cubes in this iteration's preimage frontier.
        frontier_cubes: u64,
        /// States newly discovered this iteration.
        new_states: u64,
    },
    /// A top-level engine run finished.
    EngineDone {
        /// Wall-clock time of the run in nanoseconds.
        wall_time_ns: u64,
    },
    /// An engine stopped early because a budget, deadline, or cancellation
    /// fired; the result it returned is partial (`complete = false`).
    BudgetStop {
        /// Why the engine stopped.
        reason: crate::StopReason,
    },
}

/// A receiver for engine [`Event`]s.
///
/// The provided no-op `record` makes any `impl ObsSink` observability-free
/// by default; override it to collect a trace.
pub trait ObsSink {
    /// Called once per event, in program order.
    #[inline]
    fn record(&mut self, _event: &Event) {}
}

/// The do-nothing sink used by every `enumerate`/`preimage` convenience
/// wrapper.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl ObsSink for NullSink {}

/// A sink that stores every event, for tests and offline analysis.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// The recorded trace, in arrival order.
    pub events: Vec<Event>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Number of recorded events matching `pred`.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

impl ObsSink for VecSink {
    fn record(&mut self, event: &Event) {
        self.events.push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_ignores_events() {
        let mut s = NullSink;
        s.record(&Event::Solution { width: 3 });
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::new();
        s.record(&Event::Solution { width: 2 });
        s.record(&Event::BlockingClause { width: 2 });
        s.record(&Event::Solution { width: 1 });
        assert_eq!(s.events.len(), 3);
        assert_eq!(s.count(|e| matches!(e, Event::Solution { .. })), 2);
        assert_eq!(s.events[1], Event::BlockingClause { width: 2 });
    }
}
