//! Tiny CSV emission helpers (RFC-4180-style quoting, no dependency).

/// Quotes `field` if it contains a comma, quote, or newline.
pub fn escape_field(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Joins already-stringified fields into one CSV row (no trailing newline).
pub fn row<I, S>(fields: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    fields
        .into_iter()
        .map(|f| escape_field(f.as_ref()))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_pass_through() {
        assert_eq!(row(["a", "b", "42"]), "a,b,42");
    }

    #[test]
    fn special_fields_are_quoted() {
        assert_eq!(escape_field("a,b"), "\"a,b\"");
        assert_eq!(escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(row(["x", "a,b"]), "x,\"a,b\"");
    }
}
