//! Why an engine stopped before finishing: the shared [`StopReason`] enum.
//!
//! The type lives here (rather than in `presat-sat`) because the
//! observability layer is the dependency root of the workspace: the
//! [`Event::BudgetStop`](crate::Event::BudgetStop) trace event carries a
//! `StopReason`, and every layer above — solver, enumeration engines,
//! preimage/fixed-point — re-exports it so that a partial result can say
//! *why* it is partial.

use std::fmt;

/// The reason an anytime engine stopped before exhausting its search space.
///
/// A result carrying a `StopReason` is *partial but sound*: everything
/// reported was verified, nothing is fabricated. `StopReason` never means
/// "unsatisfiable" — that is a definitive answer, not a stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The conflict budget was exhausted.
    Conflicts,
    /// The propagation budget was exhausted.
    Propagations,
    /// The wall-clock deadline passed.
    Deadline,
    /// A cooperative cancellation token was triggered.
    Cancelled,
    /// The requested maximum number of solutions was reached.
    MaxSolutions,
    /// An internal resource limit (e.g. the clause arena) was hit.
    ResourceExhausted,
}

impl StopReason {
    /// Stable lower-snake-case name, used in JSON output and CLI messages.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Conflicts => "conflicts",
            StopReason::Propagations => "propagations",
            StopReason::Deadline => "deadline",
            StopReason::Cancelled => "cancelled",
            StopReason::MaxSolutions => "max_solutions",
            StopReason::ResourceExhausted => "resource_exhausted",
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_snake_case() {
        for r in [
            StopReason::Conflicts,
            StopReason::Propagations,
            StopReason::Deadline,
            StopReason::Cancelled,
            StopReason::MaxSolutions,
            StopReason::ResourceExhausted,
        ] {
            let s = r.as_str();
            assert!(!s.is_empty());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_'));
            assert_eq!(r.to_string(), s);
        }
    }
}
