//! A minimal hand-rolled JSON writer and checker — enough to emit stats
//! objects and to let tests assert that emitted text is well-formed,
//! without any external dependency.

use std::fmt::Write as _;

/// Incremental writer for a flat-or-nested JSON object.
///
/// Keys and string values are escaped; numbers are emitted verbatim. The
/// writer tracks comma placement so callers just push fields in order.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    /// Whether the object at each open nesting level already has a field.
    has_field: Vec<bool>,
}

impl JsonObject {
    /// Starts a fresh top-level object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            has_field: vec![false],
        }
    }

    fn key(&mut self, name: &str) {
        let depth = self.has_field.len() - 1;
        if self.has_field[depth] {
            self.buf.push(',');
        }
        self.has_field[depth] = true;
        self.buf.push('"');
        escape_into(&mut self.buf, name);
        self.buf.push_str("\":");
    }

    /// Adds an unsigned-integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a boolean field (`true`/`false` literals).
    pub fn field_bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a floating-point field (finite values only; non-finite values
    /// are emitted as `null`, which JSON requires).
    pub fn field_f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a field whose value is pre-rendered JSON text, spliced in
    /// verbatim — the composition hook for nesting one emitter's output
    /// (e.g. a [`crate::Stats`] snapshot) inside another object. The caller
    /// is responsible for `raw` being well-formed; [`validate`] the final
    /// text in tests.
    pub fn field_raw(&mut self, name: &str, raw: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(raw);
        self
    }

    /// Adds a string field.
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Opens a nested object field; close it with [`JsonObject::end_object`].
    pub fn begin_object(&mut self, name: &str) -> &mut Self {
        self.key(name);
        self.buf.push('{');
        self.has_field.push(false);
        self
    }

    /// Closes the innermost nested object.
    pub fn end_object(&mut self) -> &mut Self {
        assert!(self.has_field.len() > 1, "no nested object open");
        self.has_field.pop();
        self.buf.push('}');
        self
    }

    /// Closes the top-level object and returns the JSON text.
    pub fn finish(mut self) -> String {
        assert_eq!(self.has_field.len(), 1, "unclosed nested object");
        self.buf.push('}');
        self.buf
    }
}

fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

/// Checks that `text` is one well-formed JSON value (with optional
/// surrounding whitespace). Returns `Err` with a byte offset and message on
/// the first violation. This is a validator, not a full parser: it builds
/// no tree, so tests can assert emitter output is valid JSON without a
/// serde dependency.
pub fn validate(text: &str) -> Result<(), String> {
    let b = text.as_bytes();
    let mut pos = 0;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

/// Extracts the unsigned-integer value of top-level or nested key `name`
/// from JSON text produced by [`JsonObject`]. Searches for the exact quoted
/// key; returns `None` if absent or not an unsigned integer. Intended for
/// tests and table plumbing, not general JSON consumption.
pub fn extract_u64(text: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err(format!("unexpected end of input at {pos}", pos = *pos)),
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}", pos = *pos));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        for i in 1..=4 {
                            if !b.get(*pos + i).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                            }
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == digits_from {
        return Err(format!("expected digits at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_from = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == frac_from {
            return Err(format!("expected fraction digits at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_from = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == exp_from {
            return Err(format!("expected exponent digits at byte {start}"));
        }
    }
    Ok(())
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_json() {
        let mut o = JsonObject::new();
        o.field_str("engine", "sat-\"quoted\"\n")
            .field_u64("decisions", 42)
            .begin_object("nested")
            .field_u64("x", 1)
            .field_f64("ratio", 0.5)
            .end_object()
            .field_f64("nan", f64::NAN)
            .field_bool("complete", false)
            .field_bool("ok", true);
        let text = o.finish();
        validate(&text).unwrap();
        assert!(text.contains("\"decisions\":42"));
        assert!(text.contains("\"nested\":{\"x\":1"));
        assert!(text.contains("\"nan\":null"));
        assert!(text.contains("\"complete\":false"));
        assert!(text.contains("\"ok\":true"));
    }

    #[test]
    fn field_raw_splices_verbatim() {
        let mut inner = JsonObject::new();
        inner.field_u64("x", 7);
        let inner = inner.finish();
        let mut o = JsonObject::new();
        o.field_str("name", "n").field_raw("nested", &inner);
        let text = o.finish();
        validate(&text).unwrap();
        assert_eq!(text, "{\"name\":\"n\",\"nested\":{\"x\":7}}");
    }

    #[test]
    fn empty_object_is_valid() {
        let text = JsonObject::new().finish();
        assert_eq!(text, "{}");
        validate(&text).unwrap();
    }

    #[test]
    fn validator_accepts_standard_values() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e+3",
            "[1, {\"a\": [null, \"x\\u00e9\"]}]",
            "  {\"k\": \"v\"}  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "\"unterminated",
            "01abc",
            "{\"a\":1} extra",
            "tru",
            "1.",
            "1e",
        ] {
            assert!(validate(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn extract_u64_finds_nested_keys() {
        let text = "{\"sat\":{\"decisions\":17},\"solutions\":4}";
        assert_eq!(extract_u64(text, "decisions"), Some(17));
        assert_eq!(extract_u64(text, "solutions"), Some(4));
        assert_eq!(extract_u64(text, "missing"), None);
    }
}
