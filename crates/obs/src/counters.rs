//! Plain-`u64` work counters for the three instrumented layers.
//!
//! These are the *canonical* homes of the structs historically defined as
//! `presat_sat::SolverStats`, `presat_allsat::EnumerationStats`, and
//! `presat_preimage::PreimageStats`; those crates re-export them under the
//! old names so downstream code and the increment sites on the solver hot
//! loop are unchanged. Everything here is `Copy`, allocation-free, and
//! cheap enough to stay enabled in release builds.

use std::fmt;

/// Running counters describing the work a CDCL solver has done; useful for
/// the benchmark tables and for regression tests on search behaviour.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SatCounters {
    /// Number of top-level `solve*` calls.
    pub solves: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Binary-clause propagations served directly from the watcher entry
    /// (the clause arena was never touched).
    pub binary_skips: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Number of problem (non-learnt) clauses added.
    pub problem_clauses: u64,
    /// High-water resident size of the flat clause arena in bytes (a gauge,
    /// not a rate: absorbing snapshots takes the maximum).
    pub arena_bytes: u64,
    /// Garbage-collecting compactions of the clause arena.
    pub db_compactions: u64,
    /// Tombstoned clauses whose arena storage a compaction reclaimed.
    pub clauses_reclaimed: u64,
    /// Root-level inprocessing rounds run at session boundaries.
    pub inprocess_rounds: u64,
    /// Clauses deleted because another (sub)clause subsumes them —
    /// includes clauses satisfied by root units during inprocessing.
    pub subsumed_clauses: u64,
    /// Literals erased from clauses by self-subsuming resolution, root
    /// falsification, or vivification during inprocessing.
    pub strengthened_lits: u64,
    /// Clauses shortened by vivification (assume the negated clause
    /// literal-by-literal under propagation, keep the implied core).
    pub vivified_clauses: u64,
    /// Lookahead probes (`probe_lit`) run to score candidate splitting
    /// variables for adaptive cube-and-conquer partitioning.
    pub lookahead_probes: u64,
}

impl SatCounters {
    /// Accumulates another snapshot into this one (work counters additive;
    /// the `arena_bytes` gauge takes the maximum).
    pub fn absorb(&mut self, other: &SatCounters) {
        self.solves += other.solves;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.binary_skips += other.binary_skips;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.learnt_clauses += other.learnt_clauses;
        self.deleted_clauses += other.deleted_clauses;
        self.problem_clauses += other.problem_clauses;
        self.arena_bytes = self.arena_bytes.max(other.arena_bytes);
        self.db_compactions += other.db_compactions;
        self.clauses_reclaimed += other.clauses_reclaimed;
        self.inprocess_rounds += other.inprocess_rounds;
        self.subsumed_clauses += other.subsumed_clauses;
        self.strengthened_lits += other.strengthened_lits;
        self.vivified_clauses += other.vivified_clauses;
        self.lookahead_probes += other.lookahead_probes;
    }
}

impl fmt::Display for SatCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "solves={} decisions={} propagations={} binskips={} conflicts={} restarts={} learnts={} deleted={}",
            self.solves,
            self.decisions,
            self.propagations,
            self.binary_skips,
            self.conflicts,
            self.restarts,
            self.learnt_clauses,
            self.deleted_clauses
        )
    }
}

/// Work counters shared by every all-solutions engine, reported in the
/// evaluation tables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllSatCounters {
    /// Calls into the CDCL sub-solver.
    pub solver_calls: u64,
    /// Blocking clauses added (zero for the success-driven engine).
    pub blocking_clauses: u64,
    /// Cubes emitted before any set-level absorption.
    pub cubes_emitted: u64,
    /// Total literal count of emitted cubes before lifting.
    pub literals_before_lift: u64,
    /// Total literal count of emitted cubes after lifting.
    pub literals_after_lift: u64,
    /// Success-cache hits (subspace reuse) — success-driven engine only.
    pub cache_hits: u64,
    /// Success-cache misses — success-driven engine only.
    pub cache_misses: u64,
    /// Nodes in the resulting solution graph (success-driven engine only).
    pub graph_nodes: u64,
    /// Conflicts reported by the underlying CDCL solver.
    pub sat_conflicts: u64,
    /// Decisions reported by the underlying CDCL solver.
    pub sat_decisions: u64,
    /// Times an enumeration stopped early on a budget, deadline, or
    /// cancellation (0 on a complete run).
    pub budget_stops: u64,
    /// Partition cubes abandoned without enumeration after a stop
    /// (parallel engine only; they are reported as empty and the result is
    /// flagged incomplete).
    pub cancelled_cubes: u64,
    /// Chronological flips: one-level backtracks that replaced a blocking
    /// clause (chrono engine only).
    pub chrono_backtracks: u64,
    /// Peak live clause count (problem + learnt) in the sub-solver's
    /// database during the run — the gauge the DB-flatness experiment
    /// reads. Constant in the solution count for the chrono engine, linear
    /// for the blocking baselines.
    pub db_clauses_peak: u64,
    /// Dynamic cube splits performed by the adaptive parallel engine: a
    /// cube whose enumeration crossed the split threshold was abandoned
    /// and re-queued as two child cubes.
    pub cubes_split: u64,
    /// Peak CDCL conflict count spent inside one (finished) cube — a
    /// gauge of partition balance: absorbing snapshots takes the maximum.
    pub max_cube_conflicts: u64,
    /// Times a parallel worker went to sleep waiting for the shared work
    /// queue to refill (a gauge of fleet idleness under poor balance).
    pub steal_waits: u64,
    /// Literal-inclusion subsumption tests actually performed by the
    /// result cube store (after the signature prefilter).
    pub subsumption_checks: u64,
    /// Candidate pairs the cube store's signature mask rejected with one
    /// AND, skipping the literal walk.
    pub sig_rejects: u64,
    /// Candidate cubes the store's occurrence index handed to the
    /// prefilter — versus the full-store scans a naive insert would do.
    pub index_candidates: u64,
    /// Full counter snapshot of the underlying CDCL solver.
    pub sat: SatCounters,
}

impl AllSatCounters {
    /// Accumulates another snapshot into this one. Work counters are
    /// additive; `graph_nodes` (a per-run peak) takes the maximum.
    pub fn absorb(&mut self, other: &AllSatCounters) {
        self.solver_calls += other.solver_calls;
        self.blocking_clauses += other.blocking_clauses;
        self.cubes_emitted += other.cubes_emitted;
        self.literals_before_lift += other.literals_before_lift;
        self.literals_after_lift += other.literals_after_lift;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.graph_nodes = self.graph_nodes.max(other.graph_nodes);
        self.sat_conflicts += other.sat_conflicts;
        self.sat_decisions += other.sat_decisions;
        self.budget_stops += other.budget_stops;
        self.cancelled_cubes += other.cancelled_cubes;
        self.chrono_backtracks += other.chrono_backtracks;
        self.db_clauses_peak = self.db_clauses_peak.max(other.db_clauses_peak);
        self.cubes_split += other.cubes_split;
        self.max_cube_conflicts = self.max_cube_conflicts.max(other.max_cube_conflicts);
        self.steal_waits += other.steal_waits;
        self.subsumption_checks += other.subsumption_checks;
        self.sig_rejects += other.sig_rejects;
        self.index_candidates += other.index_candidates;
        self.sat.absorb(&other.sat);
    }
}

impl fmt::Display for AllSatCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calls={} blocks={} cubes={} lift={}→{} cache={}/{} graph={}",
            self.solver_calls,
            self.blocking_clauses,
            self.cubes_emitted,
            self.literals_before_lift,
            self.literals_after_lift,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.graph_nodes
        )
    }
}

/// Work and memory counters for one preimage computation, merging the
/// SAT-side and BDD-side metrics into the columns the evaluation tables
/// report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreimageCounters {
    /// Cubes in the returned state set.
    pub result_cubes: u64,
    /// Calls into the CDCL solver (SAT engines).
    pub solver_calls: u64,
    /// Blocking clauses added (blocking-style SAT engines).
    pub blocking_clauses: u64,
    /// Solution-graph nodes (success-driven engine).
    pub graph_nodes: u64,
    /// Success-cache hits (success-driven engine).
    pub cache_hits: u64,
    /// Peak BDD manager node count (BDD engine).
    pub bdd_nodes: u64,
    /// CDCL conflicts (SAT engines).
    pub sat_conflicts: u64,
    /// Fixed-point iterations (1 for a one-step preimage; the frontier
    /// depth for backward reachability).
    pub iterations: u64,
    /// Engine wall-clock time in nanoseconds.
    pub wall_time_ns: u64,
    /// Preimage calls answered by a warm session encoding instead of a
    /// fresh transition-relation encoding (incremental sessions).
    pub encodings_reused: u64,
    /// Learnt clauses alive in the persistent solver at call start, summed
    /// over calls (incremental sessions; 0 on the rebuild path).
    pub learnts_carried: u64,
    /// Activation literals allocated for per-iteration clause groups
    /// (incremental sessions).
    pub activation_lits: u64,
    /// Next-state cones skipped by the cone-of-influence reduction because
    /// the target's support never reaches them (single-step SAT encodings).
    pub cones_skipped: u64,
    /// Full counter snapshot of the underlying all-SAT layer (SAT engines).
    pub allsat: AllSatCounters,
}

impl PreimageCounters {
    /// Accumulates one preimage run's counters into a multi-iteration
    /// total (used by the backward-reachability fixed-point loop). Work
    /// counters and times are additive; `iterations` counts absorbed runs;
    /// peak sizes (`bdd_nodes`, `graph_nodes`, `result_cubes`) take the
    /// maximum.
    pub fn absorb(&mut self, other: &PreimageCounters) {
        self.result_cubes = self.result_cubes.max(other.result_cubes);
        self.solver_calls += other.solver_calls;
        self.blocking_clauses += other.blocking_clauses;
        self.graph_nodes = self.graph_nodes.max(other.graph_nodes);
        self.cache_hits += other.cache_hits;
        self.bdd_nodes = self.bdd_nodes.max(other.bdd_nodes);
        self.sat_conflicts += other.sat_conflicts;
        self.iterations += other.iterations.max(1);
        self.wall_time_ns += other.wall_time_ns;
        self.encodings_reused += other.encodings_reused;
        self.learnts_carried += other.learnts_carried;
        self.activation_lits += other.activation_lits;
        self.cones_skipped += other.cones_skipped;
        self.allsat.absorb(&other.allsat);
    }
}

impl fmt::Display for PreimageCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cubes={} calls={} blocks={} graph={} hits={} bdd={}",
            self.result_cubes,
            self.solver_calls,
            self.blocking_clauses,
            self.graph_nodes,
            self.cache_hits,
            self.bdd_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let s = SatCounters::default();
        assert_eq!(s.decisions + s.conflicts + s.propagations, 0);
        let a = AllSatCounters::default();
        assert_eq!(a.cubes_emitted + a.blocking_clauses, 0);
        assert_eq!(a.sat, SatCounters::default());
        let p = PreimageCounters::default();
        assert_eq!(p.iterations + p.wall_time_ns, 0);
    }

    #[test]
    fn absorb_treats_arena_bytes_as_a_gauge() {
        let mut a = SatCounters {
            arena_bytes: 100,
            db_compactions: 1,
            clauses_reclaimed: 3,
            ..SatCounters::default()
        };
        let b = SatCounters {
            arena_bytes: 40,
            db_compactions: 2,
            clauses_reclaimed: 5,
            ..SatCounters::default()
        };
        a.absorb(&b);
        assert_eq!(a.arena_bytes, 100, "gauge takes the max, not the sum");
        assert_eq!(a.db_compactions, 3);
        assert_eq!(a.clauses_reclaimed, 8);
    }

    #[test]
    fn display_formats_are_compact() {
        assert!(SatCounters::default().to_string().contains("solves=0"));
        assert!(AllSatCounters::default().to_string().contains("calls=0"));
        assert!(PreimageCounters::default().to_string().contains("cubes=0"));
    }
}
