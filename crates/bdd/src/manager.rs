//! The node arena, unique table, and core Boolean operators.

use std::collections::HashMap;

use presat_logic::{Cnf, Cube, Lit, Var};

use crate::node::{BddId, Node, TERMINAL_LEVEL};

/// Cache key for binary/ternary operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum CacheKey {
    Ite(BddId, BddId, BddId),
    Not(BddId),
}

/// A manager owning a forest of ROBDDs over a fixed identity variable order
/// (variable index == decision level).
///
/// All functions created by one manager share structure via hash-consing;
/// equality of [`BddId`]s is functional equality. See the
/// [crate documentation](crate) for an overview and examples.
#[derive(Clone, Debug)]
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    unique: HashMap<(u32, BddId, BddId), BddId>,
    cache: HashMap<CacheKey, BddId>,
    num_vars: usize,
}

impl BddManager {
    /// Creates a manager over variables `x0..x(num_vars-1)`.
    pub fn new(num_vars: usize) -> Self {
        BddManager {
            nodes: vec![
                // Slot 0: ⊥ terminal, slot 1: ⊤ terminal.
                Node {
                    var: TERMINAL_LEVEL,
                    lo: BddId::FALSE,
                    hi: BddId::FALSE,
                },
                Node {
                    var: TERMINAL_LEVEL,
                    lo: BddId::TRUE,
                    hi: BddId::TRUE,
                },
            ],
            unique: HashMap::new(),
            cache: HashMap::new(),
            num_vars,
        }
    }

    /// Number of variables in the manager's order.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Grows the variable space to at least `n` variables.
    pub fn ensure_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Total number of live nodes in the arena (including both terminals) —
    /// the standard memory metric reported in the evaluation tables.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The constant function for `value`.
    pub fn constant(&self, value: bool) -> BddId {
        if value {
            BddId::TRUE
        } else {
            BddId::FALSE
        }
    }

    /// The projection function of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is outside the manager's variable space.
    pub fn var(&mut self, var: Var) -> BddId {
        assert!(var.index() < self.num_vars, "variable outside manager order");
        self.mk(var.index() as u32, BddId::FALSE, BddId::TRUE)
    }

    /// The literal function: `var` or its negation.
    pub fn literal(&mut self, lit: Lit) -> BddId {
        if lit.is_pos() {
            self.var(lit.var())
        } else {
            self.mk(lit.var().index() as u32, BddId::TRUE, BddId::FALSE)
        }
    }

    /// The decision variable of node `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn node_var(&self, f: BddId) -> Var {
        assert!(!f.is_terminal(), "terminals have no decision variable");
        Var::new(self.nodes[f.index()].var as usize)
    }

    /// The low (else) child of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn node_lo(&self, f: BddId) -> BddId {
        assert!(!f.is_terminal());
        self.nodes[f.index()].lo
    }

    /// The high (then) child of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a terminal.
    pub fn node_hi(&self, f: BddId) -> BddId {
        assert!(!f.is_terminal());
        self.nodes[f.index()].hi
    }

    #[inline]
    pub(crate) fn level(&self, f: BddId) -> u32 {
        self.nodes[f.index()].var
    }

    /// Find-or-create a node, enforcing the reduction rules.
    pub(crate) fn mk(&mut self, var: u32, lo: BddId, hi: BddId) -> BddId {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            var < self.level(lo) && var < self.level(hi),
            "ordering violated in mk"
        );
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return id;
        }
        let id = BddId(u32::try_from(self.nodes.len()).expect("BDD arena overflow"));
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        id
    }

    /// Shannon cofactors of `f` with respect to the top variable `level`.
    #[inline]
    pub(crate) fn cofactors(&self, f: BddId, level: u32) -> (BddId, BddId) {
        let n = &self.nodes[f.index()];
        if n.var == level {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// If-then-else: `f ? g : h` — the universal ternary operator all binary
    /// operators reduce to.
    pub fn ite(&mut self, f: BddId, g: BddId, h: BddId) -> BddId {
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        let key = CacheKey::Ite(f, g, h);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let level = self
            .level(f)
            .min(self.level(g))
            .min(self.level(h));
        let (f0, f1) = self.cofactors(f, level);
        let (g0, g1) = self.cofactors(g, level);
        let (h0, h1) = self.cofactors(h, level);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(level, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddId, g: BddId) -> BddId {
        self.ite(f, g, BddId::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddId, g: BddId) -> BddId {
        self.ite(f, BddId::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddId, g: BddId) -> BddId {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Negation.
    pub fn not(&mut self, f: BddId) -> BddId {
        if f.is_true() {
            return BddId::FALSE;
        }
        if f.is_false() {
            return BddId::TRUE;
        }
        let key = CacheKey::Not(f);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let n = self.nodes[f.index()];
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: BddId, g: BddId) -> BddId {
        self.ite(f, g, BddId::TRUE)
    }

    /// Biconditional `f ↔ g`.
    pub fn iff(&mut self, f: BddId, g: BddId) -> BddId {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// The conjunction of a cube's literals.
    pub fn cube(&mut self, cube: &Cube) -> BddId {
        // Conjoin from the highest variable down so each `mk` is O(1).
        let mut acc = BddId::TRUE;
        for &lit in cube.lits().iter().rev() {
            let v = lit.var().index() as u32;
            acc = if lit.is_pos() {
                self.mk(v, BddId::FALSE, acc)
            } else {
                self.mk(v, acc, BddId::FALSE)
            };
        }
        acc
    }

    /// Builds the BDD of a CNF formula by conjoining clause BDDs.
    pub fn from_cnf(&mut self, cnf: &Cnf) -> BddId {
        self.ensure_vars(cnf.num_vars());
        let mut acc = BddId::TRUE;
        for clause in cnf.clauses() {
            let mut cl = BddId::FALSE;
            // Build the disjunction from the highest variable down.
            let mut lits: Vec<Lit> = clause.clone();
            lits.sort_unstable_by_key(|l| std::cmp::Reverse(l.var()));
            for &lit in &lits {
                let lbdd = self.literal(lit);
                cl = self.or(lbdd, cl);
            }
            acc = self.and(acc, cl);
            if acc.is_false() {
                break;
            }
        }
        acc
    }

    /// Evaluates `f` under a total assignment.
    pub fn eval(&self, f: BddId, assignment: &presat_logic::Assignment) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let n = &self.nodes[cur.index()];
            let v = Var::new(n.var as usize);
            cur = match assignment.value(v) {
                Some(true) => n.hi,
                Some(false) | None => n.lo,
            };
        }
        cur.is_true()
    }

    /// Drops the operation cache (the unique table is kept, so canonicity is
    /// unaffected). Useful between mega-operations to bound memory.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Garbage-collects the arena, keeping only nodes reachable from
    /// `roots`. Returns the re-mapped roots (all previously issued ids are
    /// invalidated).
    pub fn gc(&mut self, roots: &[BddId]) -> Vec<BddId> {
        let mut remap: HashMap<BddId, BddId> = HashMap::new();
        remap.insert(BddId::FALSE, BddId::FALSE);
        remap.insert(BddId::TRUE, BddId::TRUE);
        let old_nodes = std::mem::take(&mut self.nodes);
        self.unique.clear();
        self.cache.clear();
        self.nodes = vec![old_nodes[0], old_nodes[1]];

        fn rebuild(
            m: &mut BddManager,
            old_nodes: &[Node],
            remap: &mut HashMap<BddId, BddId>,
            f: BddId,
        ) -> BddId {
            if let Some(&r) = remap.get(&f) {
                return r;
            }
            let n = old_nodes[f.index()];
            let lo = rebuild(m, old_nodes, remap, n.lo);
            let hi = rebuild(m, old_nodes, remap, n.hi);
            let r = m.mk(n.var, lo, hi);
            remap.insert(f, r);
            r
        }

        roots
            .iter()
            .map(|&r| rebuild(self, &old_nodes, &mut remap, r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::Assignment;

    fn mgr(n: usize) -> BddManager {
        BddManager::new(n)
    }

    #[test]
    fn constants() {
        let m = mgr(0);
        assert!(m.constant(true).is_true());
        assert!(m.constant(false).is_false());
    }

    #[test]
    fn var_is_canonical() {
        let mut m = mgr(2);
        let a = m.var(Var::new(0));
        let b = m.var(Var::new(0));
        assert_eq!(a, b);
    }

    #[test]
    fn and_or_terminal_laws() {
        let mut m = mgr(1);
        let x = m.var(Var::new(0));
        assert_eq!(m.and(x, BddId::TRUE), x);
        assert_eq!(m.and(x, BddId::FALSE), BddId::FALSE);
        assert_eq!(m.or(x, BddId::FALSE), x);
        assert_eq!(m.or(x, BddId::TRUE), BddId::TRUE);
    }

    #[test]
    fn negation_is_involutive() {
        let mut m = mgr(3);
        let x = m.var(Var::new(0));
        let y = m.var(Var::new(2));
        let f = m.and(x, y);
        let nf = m.not(f);
        assert_ne!(f, nf);
        assert_eq!(m.not(nf), f);
    }

    #[test]
    fn xor_truth_table() {
        let mut m = mgr(2);
        let x = m.var(Var::new(0));
        let y = m.var(Var::new(1));
        let f = m.xor(x, y);
        for bits in 0..4u64 {
            let a = Assignment::from_bits(bits, 2);
            let expect = (bits & 1 == 1) ^ (bits >> 1 & 1 == 1);
            assert_eq!(m.eval(f, &a), expect);
        }
    }

    #[test]
    fn iff_is_not_xor() {
        let mut m = mgr(2);
        let x = m.var(Var::new(0));
        let y = m.var(Var::new(1));
        let f = m.xor(x, y);
        let g = m.iff(x, y);
        assert_eq!(m.not(f), g);
    }

    #[test]
    fn cube_builds_conjunction() {
        let mut m = mgr(3);
        let c = Cube::from_lits([
            Lit::pos(Var::new(0)),
            Lit::neg(Var::new(2)),
        ])
        .unwrap();
        let f = m.cube(&c);
        assert!(m.eval(f, &Assignment::from_bits(0b001, 3)));
        assert!(!m.eval(f, &Assignment::from_bits(0b101, 3)));
        assert!(!m.eval(f, &Assignment::from_bits(0b000, 3)));
    }

    #[test]
    fn from_cnf_matches_truth_table() {
        use presat_logic::truth_table;
        let mut cnf = Cnf::new(3);
        cnf.add_clause([Lit::pos(Var::new(0)), Lit::neg(Var::new(1))]);
        cnf.add_clause([Lit::pos(Var::new(1)), Lit::pos(Var::new(2))]);
        let mut m = mgr(3);
        let f = m.from_cnf(&cnf);
        for bits in 0..8u64 {
            let a = Assignment::from_bits(bits, 3);
            assert_eq!(m.eval(f, &a), cnf.eval(&a) == Some(true));
        }
        assert_eq!(truth_table::count_models(&cnf), m.satcount(f, 3) as u64);
    }

    #[test]
    fn ite_equals_composition() {
        let mut m = mgr(3);
        let f = m.var(Var::new(0));
        let g = m.var(Var::new(1));
        let h = m.var(Var::new(2));
        let ite = m.ite(f, g, h);
        // f·g ∨ ¬f·h
        let fg = m.and(f, g);
        let nf = m.not(f);
        let nfh = m.and(nf, h);
        let expect = m.or(fg, nfh);
        assert_eq!(ite, expect);
    }

    #[test]
    fn canonical_equality_detects_tautology() {
        let mut m = mgr(2);
        let x = m.var(Var::new(0));
        let nx = m.not(x);
        assert_eq!(m.or(x, nx), BddId::TRUE);
        assert_eq!(m.and(x, nx), BddId::FALSE);
    }

    #[test]
    fn gc_preserves_roots_and_shrinks() {
        let mut m = mgr(4);
        let mut keep = BddId::TRUE;
        for i in 0..4 {
            let v = m.var(Var::new(i));
            keep = m.and(keep, v);
        }
        // Build garbage.
        for i in 0..4 {
            let v = m.var(Var::new(i));
            let n = m.not(v);
            let _ = m.xor(v, n);
        }
        let before = m.node_count();
        let roots = m.gc(&[keep]);
        assert!(m.node_count() < before);
        // Remapped root still the AND of all vars.
        assert!(m.eval(roots[0], &Assignment::from_bits(0b1111, 4)));
        assert!(!m.eval(roots[0], &Assignment::from_bits(0b0111, 4)));
    }
}
