//! Don't-care simplification: the Coudert–Madre `restrict` operator.

use std::collections::HashMap;

use crate::manager::BddManager;
use crate::node::BddId;

impl BddManager {
    /// Simplifies `f` against the care set `care`: returns a function `g`
    /// with `g ∧ care = f ∧ care` (outside the care set `g` is arbitrary),
    /// using the sibling-substitution rule, which usually shrinks `g`
    /// well below `f` when the care set prunes whole branches.
    ///
    /// This is the classical frontier-simplification operator of symbolic
    /// reachability: iterating with `restrict(frontier, ¬reached)` keeps
    /// intermediate sets small.
    ///
    /// # Panics
    ///
    /// Panics if `care` is the constant-false function (there is nothing
    /// to agree on).
    pub fn restrict(&mut self, f: BddId, care: BddId) -> BddId {
        assert!(!care.is_false(), "restrict needs a nonempty care set");
        let mut memo = HashMap::new();
        self.restrict_rec(f, care, &mut memo)
    }

    fn restrict_rec(
        &mut self,
        f: BddId,
        care: BddId,
        memo: &mut HashMap<(BddId, BddId), BddId>,
    ) -> BddId {
        if care.is_true() || f.is_terminal() {
            return f;
        }
        if let Some(&r) = memo.get(&(f, care)) {
            return r;
        }
        let top = self.level(f).min(self.level(care));
        let (c0, c1) = self.cofactors(care, top);
        let r = if c0.is_false() {
            // The care set forces the variable to 1: substitute the sibling.
            let (_, f1) = self.cofactors(f, top);
            self.restrict_rec(f1, c1, memo)
        } else if c1.is_false() {
            let (f0, _) = self.cofactors(f, top);
            self.restrict_rec(f0, c0, memo)
        } else {
            let (f0, f1) = self.cofactors(f, top);
            let lo = self.restrict_rec(f0, c0, memo);
            let hi = self.restrict_rec(f1, c1, memo);
            self.mk(top, lo, hi)
        };
        memo.insert((f, care), r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::{Assignment, Var};

    #[test]
    fn restrict_with_full_care_is_identity() {
        let mut m = BddManager::new(2);
        let x = m.var(Var::new(0));
        let y = m.var(Var::new(1));
        let f = m.xor(x, y);
        assert_eq!(m.restrict(f, BddId::TRUE), f);
    }

    #[test]
    fn restrict_agrees_inside_care_set() {
        let mut m = BddManager::new(3);
        let x = m.var(Var::new(0));
        let y = m.var(Var::new(1));
        let z = m.var(Var::new(2));
        let xy = m.xor(x, y);
        let f = m.and(xy, z);
        let care = m.and(x, z); // only care where x=1 ∧ z=1
        let g = m.restrict(f, care);
        // g ∧ care == f ∧ care
        let fg = m.and(f, care);
        let gg = m.and(g, care);
        assert_eq!(fg, gg);
        // And g is no larger than f.
        assert!(m.size(g) <= m.size(f));
    }

    #[test]
    fn restrict_can_collapse_to_constant() {
        let mut m = BddManager::new(2);
        let x = m.var(Var::new(0));
        let y = m.var(Var::new(1));
        let f = m.and(x, y);
        // Care set forces both variables true: f is constant there.
        let g = m.restrict(f, f);
        assert_eq!(g, BddId::TRUE);
    }

    #[test]
    #[should_panic(expected = "nonempty care set")]
    fn restrict_rejects_empty_care() {
        let mut m = BddManager::new(1);
        let x = m.var(Var::new(0));
        let _ = m.restrict(x, BddId::FALSE);
    }

    #[test]
    fn restrict_randomized_contract() {
        use presat_logic::rng::SplitMix64;
        use presat_logic::{Cnf, Lit};
        let mut rng = SplitMix64::seed_from_u64(23);
        for round in 0..30 {
            let n = 6;
            let mut f_cnf = Cnf::new(n);
            let mut c_cnf = Cnf::new(n);
            for _ in 0..6 {
                let mk = |rng: &mut SplitMix64| {
                    (0..3)
                        .map(|_| {
                            Lit::with_phase(Var::new(rng.gen_range(0..n)), rng.gen_bool(0.5))
                        })
                        .collect::<Vec<Lit>>()
                };
                let a = mk(&mut rng);
                f_cnf.add_clause(a);
                let b = mk(&mut rng);
                c_cnf.add_clause(b);
            }
            let mut m = BddManager::new(n);
            let f = m.from_cnf(&f_cnf);
            let care = m.from_cnf(&c_cnf);
            if care.is_false() {
                continue;
            }
            let g = m.restrict(f, care);
            // Pointwise agreement inside the care set.
            for bits in 0..(1u64 << n) {
                let a = Assignment::from_bits(bits, n);
                if m.eval(care, &a) {
                    assert_eq!(
                        m.eval(g, &a),
                        m.eval(f, &a),
                        "round {round}, bits {bits:b}"
                    );
                }
            }
        }
    }
}
