//! Existential/universal quantification and the relational product
//! (and-exists), the workhorse of BDD-based preimage computation.

use std::collections::HashMap;

use presat_logic::Var;

use crate::manager::BddManager;
use crate::node::BddId;

/// A sorted set of variable levels to quantify over.
#[derive(Clone, Debug, PartialEq, Eq)]
struct LevelSet(Vec<u32>);

impl LevelSet {
    fn new(vars: &[Var]) -> Self {
        let mut v: Vec<u32> = vars.iter().map(|v| v.index() as u32).collect();
        v.sort_unstable();
        v.dedup();
        LevelSet(v)
    }

    #[inline]
    fn contains(&self, level: u32) -> bool {
        self.0.binary_search(&level).is_ok()
    }

    /// `true` if no level in the set is ≥ `level` (nothing left to
    /// quantify below this point).
    #[inline]
    fn none_at_or_below(&self, level: u32) -> bool {
        self.0.last().is_none_or(|&max| max < level)
    }
}

impl BddManager {
    /// Existential quantification `∃ vars . f`.
    pub fn exists(&mut self, f: BddId, vars: &[Var]) -> BddId {
        let set = LevelSet::new(vars);
        let mut memo = HashMap::new();
        self.exists_rec(f, &set, &mut memo)
    }

    fn exists_rec(
        &mut self,
        f: BddId,
        set: &LevelSet,
        memo: &mut HashMap<BddId, BddId>,
    ) -> BddId {
        if f.is_terminal() || set.none_at_or_below(self.level(f)) {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let level = self.level(f);
        let (lo, hi) = self.cofactors(f, level);
        let lo_q = self.exists_rec(lo, set, memo);
        let hi_q = self.exists_rec(hi, set, memo);
        let r = if set.contains(level) {
            self.or(lo_q, hi_q)
        } else {
            self.mk(level, lo_q, hi_q)
        };
        memo.insert(f, r);
        r
    }

    /// Universal quantification `∀ vars . f`.
    pub fn forall(&mut self, f: BddId, vars: &[Var]) -> BddId {
        let nf = self.not(f);
        let e = self.exists(nf, vars);
        self.not(e)
    }

    /// The relational product `∃ vars . (f ∧ g)` computed in one recursive
    /// pass — the operation that makes BDD-based image/preimage competitive,
    /// because the conjunction is never materialized in full.
    pub fn and_exists(&mut self, f: BddId, g: BddId, vars: &[Var]) -> BddId {
        let set = LevelSet::new(vars);
        let mut memo = HashMap::new();
        self.and_exists_rec(f, g, &set, &mut memo)
    }

    fn and_exists_rec(
        &mut self,
        f: BddId,
        g: BddId,
        set: &LevelSet,
        memo: &mut HashMap<(BddId, BddId), BddId>,
    ) -> BddId {
        if f.is_false() || g.is_false() {
            return BddId::FALSE;
        }
        if f.is_true() && g.is_true() {
            return BddId::TRUE;
        }
        // Below the last quantified level, fall back to plain AND.
        let top = self.level(f).min(self.level(g));
        if set.none_at_or_below(top) {
            return self.and(f, g);
        }
        let key = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let r = if set.contains(top) {
            let lo = self.and_exists_rec(f0, g0, set, memo);
            // Early termination: ⊤ absorbs the disjunction.
            if lo.is_true() {
                lo
            } else {
                let hi = self.and_exists_rec(f1, g1, set, memo);
                self.or(lo, hi)
            }
        } else {
            let lo = self.and_exists_rec(f0, g0, set, memo);
            let hi = self.and_exists_rec(f1, g1, set, memo);
            self.mk(top, lo, hi)
        };
        memo.insert(key, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::Assignment;

    #[test]
    fn exists_removes_variable_from_support() {
        let mut m = BddManager::new(2);
        let x = m.var(Var::new(0));
        let y = m.var(Var::new(1));
        let f = m.and(x, y);
        let e = m.exists(f, &[Var::new(0)]);
        assert_eq!(e, y);
    }

    #[test]
    fn exists_of_tautology_branch() {
        let mut m = BddManager::new(2);
        let x = m.var(Var::new(0));
        let nx = m.not(x);
        let y = m.var(Var::new(1));
        // (x ∧ y) ∨ (¬x ∧ ¬y): ∃x gives ⊤
        let a = m.and(x, y);
        let ny = m.not(y);
        let b = m.and(nx, ny);
        let f = m.or(a, b);
        assert_eq!(m.exists(f, &[Var::new(0)]), BddId::TRUE);
    }

    #[test]
    fn forall_dual_of_exists() {
        let mut m = BddManager::new(2);
        let x = m.var(Var::new(0));
        let y = m.var(Var::new(1));
        let f = m.or(x, y);
        // ∀x. (x ∨ y) = y
        assert_eq!(m.forall(f, &[Var::new(0)]), y);
        // ∃x. (x ∨ y) = ⊤
        assert_eq!(m.exists(f, &[Var::new(0)]), BddId::TRUE);
    }

    #[test]
    fn multi_var_quantification() {
        let mut m = BddManager::new(3);
        let x = m.var(Var::new(0));
        let y = m.var(Var::new(1));
        let z = m.var(Var::new(2));
        let xy = m.and(x, y);
        let f = m.and(xy, z);
        let e = m.exists(f, &[Var::new(0), Var::new(2)]);
        assert_eq!(e, y);
    }

    #[test]
    fn and_exists_equals_sequential() {
        let mut m = BddManager::new(4);
        // f = (x0 ↔ x2) ∧ (x1 ↔ x3), g = x2 ∧ ¬x3; ∃{x2,x3} f∧g = x0 ∧ ¬x1
        let x0 = m.var(Var::new(0));
        let x1 = m.var(Var::new(1));
        let x2 = m.var(Var::new(2));
        let x3 = m.var(Var::new(3));
        let e1 = m.iff(x0, x2);
        let e2 = m.iff(x1, x3);
        let f = m.and(e1, e2);
        let nx3 = m.not(x3);
        let g = m.and(x2, nx3);
        let qvars = [Var::new(2), Var::new(3)];
        let direct = m.and_exists(f, g, &qvars);
        let fg = m.and(f, g);
        let sequential = m.exists(fg, &qvars);
        assert_eq!(direct, sequential);
        // And semantically: x0 ∧ ¬x1.
        let nx1 = m.not(x1);
        let expect = m.and(x0, nx1);
        assert_eq!(direct, expect);
    }

    #[test]
    fn and_exists_randomized_against_sequential() {
        use presat_logic::rng::SplitMix64;
        use presat_logic::{Cnf, Lit};
        let mut rng = SplitMix64::seed_from_u64(11);
        for _ in 0..25 {
            let n = 6;
            let mut f_cnf = Cnf::new(n);
            let mut g_cnf = Cnf::new(n);
            for _ in 0..6 {
                let mk = |rng: &mut SplitMix64| {
                    (0..3)
                        .map(|_| {
                            Lit::with_phase(Var::new(rng.gen_range(0..n)), rng.gen_bool(0.5))
                        })
                        .collect::<Vec<_>>()
                };
                let c1 = mk(&mut rng);
                f_cnf.add_clause(c1);
                let c2 = mk(&mut rng);
                g_cnf.add_clause(c2);
            }
            let mut m = BddManager::new(n);
            let f = m.from_cnf(&f_cnf);
            let g = m.from_cnf(&g_cnf);
            let qvars = [Var::new(1), Var::new(3), Var::new(5)];
            let direct = m.and_exists(f, g, &qvars);
            let fg = m.and(f, g);
            let sequential = m.exists(fg, &qvars);
            assert_eq!(direct, sequential);
        }
    }

    #[test]
    fn quantifying_unused_variable_is_identity() {
        let mut m = BddManager::new(3);
        let x = m.var(Var::new(0));
        assert_eq!(m.exists(x, &[Var::new(2)]), x);
        assert_eq!(m.forall(x, &[Var::new(2)]), x);
    }

    #[test]
    fn exists_semantics_by_evaluation() {
        let mut m = BddManager::new(3);
        let x0 = m.var(Var::new(0));
        let x1 = m.var(Var::new(1));
        let x2 = m.var(Var::new(2));
        let x01 = m.xor(x0, x1);
        let f = m.and(x01, x2);
        let e = m.exists(f, &[Var::new(1)]);
        // e(x0,x2) should be x2 (x1 can always be chosen to make the xor 1)
        for bits in 0..8u64 {
            let a = Assignment::from_bits(bits, 3);
            let expect = bits >> 2 & 1 == 1;
            assert_eq!(m.eval(e, &a), expect);
        }
    }
}
