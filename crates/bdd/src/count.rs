//! Model counting, size metrics, and cube extraction.

use std::collections::HashMap;

use presat_logic::{Cube, CubeSet, Lit, Var};

use crate::manager::BddManager;
use crate::node::BddId;

impl BddManager {
    /// Number of nodes reachable from `f` (including terminals) — the
    /// per-function size metric used in the evaluation tables.
    pub fn size(&self, f: BddId) -> usize {
        let mut seen = HashMap::new();
        self.mark(f, &mut seen);
        seen.len()
    }

    fn mark(&self, f: BddId, seen: &mut HashMap<BddId, ()>) {
        if seen.insert(f, ()).is_some() || f.is_terminal() {
            return;
        }
        self.mark(self.node_lo(f), seen);
        self.mark(self.node_hi(f), seen);
    }

    /// Exact number of satisfying total assignments of `f` over the
    /// universe `x0..x(num_vars-1)`.
    ///
    /// # Panics
    ///
    /// Panics if a variable of `f` lies outside `num_vars` or the count
    /// overflows `u128`.
    pub fn satcount(&self, f: BddId, num_vars: usize) -> u128 {
        let mut memo = HashMap::new();
        self.satcount_rec(f, 0, num_vars as u32, &mut memo)
    }

    fn satcount_rec(
        &self,
        f: BddId,
        from_level: u32,
        num_vars: u32,
        memo: &mut HashMap<BddId, u128>,
    ) -> u128 {
        if f.is_false() {
            return 0;
        }
        let level = if f.is_true() {
            num_vars
        } else {
            self.level(f).min(num_vars)
        };
        assert!(
            from_level <= level,
            "BDD variable below the declared universe"
        );
        let below = if f.is_true() {
            1u128
        } else if let Some(&c) = memo.get(&f) {
            c
        } else {
            let lvl = self.level(f);
            let lo = self.satcount_rec(self.node_lo(f), lvl + 1, num_vars, memo);
            let hi = self.satcount_rec(self.node_hi(f), lvl + 1, num_vars, memo);
            let c = lo + hi;
            memo.insert(f, c);
            c
        };
        below << (level - from_level)
    }

    /// Extracts the function as an irredundant set of disjoint path cubes:
    /// one cube per path from the root to ⊤ (variables skipped on the path
    /// are left free). Disjointness is inherent to BDD paths.
    pub fn to_cube_set(&self, f: BddId) -> CubeSet {
        let mut out = CubeSet::new();
        let mut path: Vec<Lit> = Vec::new();
        self.paths_rec(f, &mut path, &mut out);
        out
    }

    fn paths_rec(&self, f: BddId, path: &mut Vec<Lit>, out: &mut CubeSet) {
        if f.is_false() {
            return;
        }
        if f.is_true() {
            // BDD paths are pairwise disjoint, so skip the absorption scans.
            out.push_disjoint(
                Cube::from_lits(path.iter().copied()).expect("path literals are distinct"),
            );
            return;
        }
        let v = self.node_var(f);
        path.push(Lit::neg(v));
        self.paths_rec(self.node_lo(f), path, out);
        path.pop();
        path.push(Lit::pos(v));
        self.paths_rec(self.node_hi(f), path, out);
        path.pop();
    }

    /// Builds the BDD of a [`CubeSet`] (the union of its cubes).
    pub fn from_cube_set(&mut self, set: &CubeSet) -> BddId {
        let mut acc = BddId::FALSE;
        for c in set {
            let cb = self.cube(c);
            acc = self.or(acc, cb);
        }
        acc
    }

    /// One satisfying cube (a shortest root-to-⊤ path), or `None` if
    /// `f` is unsatisfiable.
    pub fn any_sat_cube(&self, f: BddId) -> Option<Cube> {
        if f.is_false() {
            return None;
        }
        let mut lits = Vec::new();
        let mut cur = f;
        while !cur.is_terminal() {
            let v = self.node_var(cur);
            if self.node_hi(cur).is_false() {
                lits.push(Lit::neg(v));
                cur = self.node_lo(cur);
            } else {
                lits.push(Lit::pos(v));
                cur = self.node_hi(cur);
            }
        }
        Some(Cube::from_lits(lits).expect("path literals are distinct"))
    }

    /// The support of `f`: the variables it actually depends on, sorted.
    pub fn support(&self, f: BddId) -> Vec<Var> {
        let mut seen = HashMap::new();
        self.mark(f, &mut seen);
        let mut vars: Vec<Var> = seen
            .keys()
            .filter(|id| !id.is_terminal())
            .map(|&id| self.node_var(id))
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satcount_basic() {
        let mut m = BddManager::new(3);
        let x = m.var(Var::new(0));
        assert_eq!(m.satcount(x, 3), 4);
        assert_eq!(m.satcount(BddId::TRUE, 3), 8);
        assert_eq!(m.satcount(BddId::FALSE, 3), 0);
    }

    #[test]
    fn satcount_respects_skipped_levels() {
        let mut m = BddManager::new(4);
        let x1 = m.var(Var::new(1));
        let x3 = m.var(Var::new(3));
        let f = m.and(x1, x3);
        assert_eq!(m.satcount(f, 4), 4);
    }

    #[test]
    fn size_counts_shared_nodes_once() {
        let mut m = BddManager::new(2);
        let x = m.var(Var::new(0));
        let y = m.var(Var::new(1));
        let f = m.xor(x, y);
        // xor over 2 vars: root + two x1 nodes + 2 terminals = 5
        assert_eq!(m.size(f), 5);
    }

    #[test]
    fn to_cube_set_round_trips() {
        let mut m = BddManager::new(3);
        let x = m.var(Var::new(0));
        let y = m.var(Var::new(1));
        let z = m.var(Var::new(2));
        let xy = m.and(x, y);
        let f = m.or(xy, z);
        let cubes = m.to_cube_set(f);
        let g = m.from_cube_set(&cubes);
        assert_eq!(f, g);
        assert_eq!(
            cubes.minterm_count(3),
            m.satcount(f, 3)
        );
    }

    #[test]
    fn any_sat_cube_satisfies() {
        let mut m = BddManager::new(3);
        let x = m.var(Var::new(0));
        let ny = {
            let y = m.var(Var::new(1));
            m.not(y)
        };
        let f = m.and(x, ny);
        let cube = m.any_sat_cube(f).expect("satisfiable");
        let a = cube.to_assignment(3);
        assert!(m.eval(f, &a));
        assert_eq!(m.any_sat_cube(BddId::FALSE), None);
    }

    #[test]
    fn support_lists_dependencies() {
        let mut m = BddManager::new(4);
        let x0 = m.var(Var::new(0));
        let x3 = m.var(Var::new(3));
        let f = m.xor(x0, x3);
        assert_eq!(m.support(f), vec![Var::new(0), Var::new(3)]);
        assert!(m.support(BddId::TRUE).is_empty());
    }
}
