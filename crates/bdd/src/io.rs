//! Graphviz/DOT export for debugging and documentation figures.

use std::collections::HashSet;
use std::fmt::Write;

use crate::manager::BddManager;
use crate::node::BddId;

impl BddManager {
    /// Renders the DAG rooted at `f` in Graphviz DOT syntax. Solid edges are
    /// high (then) branches, dashed edges low (else) branches.
    pub fn to_dot(&self, f: BddId, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  f [shape=box,label=\"0\"];");
        let _ = writeln!(out, "  t [shape=box,label=\"1\"];");
        let mut seen = HashSet::new();
        self.dot_rec(f, &mut seen, &mut out);
        let _ = writeln!(out, "}}");
        out
    }

    fn dot_rec(&self, f: BddId, seen: &mut HashSet<BddId>, out: &mut String) {
        if f.is_terminal() || !seen.insert(f) {
            return;
        }
        let name = |id: BddId| match id {
            BddId::FALSE => "f".to_string(),
            BddId::TRUE => "t".to_string(),
            other => format!("n{}", other.index()),
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\"];",
            f.index(),
            self.node_var(f)
        );
        let _ = writeln!(
            out,
            "  n{} -> {} [style=dashed];",
            f.index(),
            name(self.node_lo(f))
        );
        let _ = writeln!(out, "  n{} -> {};", f.index(), name(self.node_hi(f)));
        self.dot_rec(self.node_lo(f), seen, out);
        self.dot_rec(self.node_hi(f), seen, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::Var;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut m = BddManager::new(2);
        let x = m.var(Var::new(0));
        let y = m.var(Var::new(1));
        let f = m.and(x, y);
        let dot = m.to_dot(f, "and2");
        assert!(dot.starts_with("digraph \"and2\""));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_of_terminal_is_minimal() {
        let m = BddManager::new(0);
        let dot = m.to_dot(BddId::TRUE, "one");
        // Just the two terminal boxes, no internal nodes.
        assert!(!dot.contains("n2"));
    }
}
