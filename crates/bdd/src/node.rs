use std::fmt;

/// Handle to a node in a [`crate::BddManager`].
///
/// Ids `0` and `1` are the constant terminals ⊥ and ⊤; all other ids refer
/// to internal decision nodes. Handles are only meaningful relative to the
/// manager that produced them, and canonical within it: two functions are
/// equal iff their `BddId`s are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddId(pub(crate) u32);

impl BddId {
    /// The constant-false terminal.
    pub const FALSE: BddId = BddId(0);
    /// The constant-true terminal.
    pub const TRUE: BddId = BddId(1);

    /// `true` for either terminal.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// `true` for the ⊥ terminal.
    #[inline]
    pub fn is_false(self) -> bool {
        self == BddId::FALSE
    }

    /// `true` for the ⊤ terminal.
    #[inline]
    pub fn is_true(self) -> bool {
        self == BddId::TRUE
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BddId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BddId::FALSE => write!(f, "⊥"),
            BddId::TRUE => write!(f, "⊤"),
            BddId(n) => write!(f, "n{n}"),
        }
    }
}

/// An internal decision node: branch on `var` (level == variable index),
/// `lo` when false, `hi` when true.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct Node {
    pub(crate) var: u32,
    pub(crate) lo: BddId,
    pub(crate) hi: BddId,
}

/// Sentinel variable level for terminal slots (sorts after every real var).
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_terminal() {
        assert!(BddId::FALSE.is_terminal());
        assert!(BddId::TRUE.is_terminal());
        assert!(BddId::FALSE.is_false());
        assert!(BddId::TRUE.is_true());
        assert!(!BddId(2).is_terminal());
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", BddId::FALSE), "⊥");
        assert_eq!(format!("{:?}", BddId::TRUE), "⊤");
        assert_eq!(format!("{:?}", BddId(5)), "n5");
    }
}
