//! A from-scratch ROBDD (reduced ordered binary decision diagram) package.
//!
//! This crate provides the BDD baseline that any SAT-based preimage paper of
//! the DATE 2004 era compares against, and doubles as a semantics oracle for
//! the all-solutions engines: every engine's output can be converted to a
//! BDD and checked for functional equality.
//!
//! The design is the classic one: a [`BddManager`] owns a node arena with a
//! unique table (hash-consing guarantees canonicity under a fixed variable
//! order), an ITE computed-cache, quantification and relational-product
//! operators, order-preserving renaming, model counting, and cube
//! enumeration. Negation is a cached recursive operation — complement edges
//! are deliberately omitted for simplicity and debuggability.
//!
//! # Examples
//!
//! ```
//! use presat_bdd::BddManager;
//! use presat_logic::Var;
//!
//! let mut m = BddManager::new(2);
//! let x = m.var(Var::new(0));
//! let y = m.var(Var::new(1));
//! let f = m.and(x, y);
//! assert_eq!(m.satcount(f, 2), 1);
//! let g = m.or(x, y);
//! assert_eq!(m.satcount(g, 2), 3);
//! // ∃x. (x ∧ y) = y
//! let e = m.exists(f, &[Var::new(0)]);
//! assert_eq!(e, y);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compose;
mod count;
mod io;
mod manager;
mod node;
mod quantify;
mod restrict;

pub use manager::BddManager;
pub use node::BddId;
