//! Variable renaming and functional composition.

use std::collections::HashMap;

use presat_logic::Var;

use crate::manager::BddManager;
use crate::node::{BddId, TERMINAL_LEVEL};

impl BddManager {
    /// Renames variables according to `map` (a `from → to` table), which
    /// must be *order-preserving*: if `a < b` are both in the map then
    /// `map[a] < map[b]`, and unmapped variables must not interleave with
    /// mapped targets in a way that changes relative order. This is the
    /// cheap O(|f|) rename used for swapping next-state and present-state
    /// variable blocks in preimage computation, where the blocks are laid
    /// out to keep renaming monotone.
    ///
    /// # Panics
    ///
    /// Panics if the rename would violate the variable order (detected
    /// during reconstruction) or maps outside the manager space.
    pub fn rename(&mut self, f: BddId, map: &HashMap<Var, Var>) -> BddId {
        for (from, to) in map {
            assert!(from.index() < self.num_vars(), "rename source outside order");
            assert!(to.index() < self.num_vars(), "rename target outside order");
        }
        let mut memo = HashMap::new();
        self.rename_rec(f, map, &mut memo)
    }

    fn rename_rec(
        &mut self,
        f: BddId,
        map: &HashMap<Var, Var>,
        memo: &mut HashMap<BddId, BddId>,
    ) -> BddId {
        if f.is_terminal() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let level = self.level(f);
        let (lo, hi) = self.cofactors(f, level);
        let lo_r = self.rename_rec(lo, map, memo);
        let hi_r = self.rename_rec(hi, map, memo);
        let var = Var::new(level as usize);
        let new_level = map.get(&var).map_or(level, |v| v.index() as u32);
        // `mk` debug-asserts ordering, but check in release too: a silent
        // ordering violation would produce a non-canonical (wrong) BDD.
        let lo_level = self.level(lo_r);
        let hi_level = self.level(hi_r);
        assert!(
            (new_level < lo_level || lo_level == TERMINAL_LEVEL)
                && (new_level < hi_level || hi_level == TERMINAL_LEVEL),
            "rename is not order-preserving at level {level} -> {new_level}"
        );
        let r = self.mk(new_level, lo_r, hi_r);
        memo.insert(f, r);
        r
    }

    /// Functional composition: `f[var := g]` (substitute the function `g`
    /// for the variable `var` in `f`). Works for arbitrary `g`, at ITE
    /// cost.
    pub fn compose(&mut self, f: BddId, var: Var, g: BddId) -> BddId {
        let mut memo = HashMap::new();
        self.compose_rec(f, var.index() as u32, g, &mut memo)
    }

    fn compose_rec(
        &mut self,
        f: BddId,
        var: u32,
        g: BddId,
        memo: &mut HashMap<BddId, BddId>,
    ) -> BddId {
        if f.is_terminal() || self.level(f) > var {
            // `var` cannot appear below its own level.
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let level = self.level(f);
        let (lo, hi) = self.cofactors(f, level);
        let r = if level == var {
            self.ite(g, hi, lo)
        } else {
            let lo_c = self.compose_rec(lo, var, g, memo);
            let hi_c = self.compose_rec(hi, var, g, memo);
            // Levels may shift arbitrarily after composition; rebuild with
            // ITE on the branch variable to stay canonical.
            let v = self.mk(level, BddId::FALSE, BddId::TRUE);
            self.ite(v, hi_c, lo_c)
        };
        memo.insert(f, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::Assignment;

    #[test]
    fn rename_shifts_block() {
        let mut m = BddManager::new(4);
        let x0 = m.var(Var::new(0));
        let x1 = m.var(Var::new(1));
        let f = m.and(x0, x1);
        let map: HashMap<Var, Var> =
            [(Var::new(0), Var::new(2)), (Var::new(1), Var::new(3))].into();
        let g = m.rename(f, &map);
        let x2 = m.var(Var::new(2));
        let x3 = m.var(Var::new(3));
        let expect = m.and(x2, x3);
        assert_eq!(g, expect);
    }

    #[test]
    fn rename_identity_map_is_identity() {
        let mut m = BddManager::new(2);
        let x0 = m.var(Var::new(0));
        let x1 = m.var(Var::new(1));
        let f = m.xor(x0, x1);
        assert_eq!(m.rename(f, &HashMap::new()), f);
    }

    #[test]
    #[should_panic(expected = "not order-preserving")]
    fn rename_rejects_order_violation() {
        let mut m = BddManager::new(4);
        let x0 = m.var(Var::new(0));
        let x1 = m.var(Var::new(1));
        let f = m.and(x0, x1);
        // Swapping the two variables reverses their order: must panic.
        let map: HashMap<Var, Var> =
            [(Var::new(0), Var::new(1)), (Var::new(1), Var::new(0))].into();
        let _ = m.rename(f, &map);
    }

    #[test]
    fn compose_substitutes_function() {
        let mut m = BddManager::new(3);
        let x0 = m.var(Var::new(0));
        let x1 = m.var(Var::new(1));
        let x2 = m.var(Var::new(2));
        // f = x0 ∧ x1 ; f[x0 := x1 ∨ x2] = (x1 ∨ x2) ∧ x1 = x1
        let f = m.and(x0, x1);
        let g = m.or(x1, x2);
        let h = m.compose(f, Var::new(0), g);
        assert_eq!(h, x1);
    }

    #[test]
    fn compose_with_swapped_order() {
        // Substituting a function over a *lower* variable: f = x2, replace
        // x2 by ¬x0 — result must be canonical.
        let mut m = BddManager::new(3);
        let x2 = m.var(Var::new(2));
        let x0 = m.var(Var::new(0));
        let nx0 = m.not(x0);
        let h = m.compose(x2, Var::new(2), nx0);
        assert_eq!(h, nx0);
    }

    #[test]
    fn compose_semantics_by_evaluation() {
        let mut m = BddManager::new(3);
        let x0 = m.var(Var::new(0));
        let x1 = m.var(Var::new(1));
        let x2 = m.var(Var::new(2));
        let f0 = m.xor(x0, x1);
        let f = m.and(f0, x2);
        let g = m.or(x1, x2);
        let h = m.compose(f, Var::new(0), g);
        for bits in 0..8u64 {
            let a = Assignment::from_bits(bits, 3);
            let x1v = bits >> 1 & 1 == 1;
            let x2v = bits >> 2 & 1 == 1;
            let gv = x1v || x2v;
            let expect = (gv ^ x1v) && x2v;
            assert_eq!(m.eval(h, &a), expect, "bits={bits:03b}");
        }
    }
}
