//! A from-scratch CDCL SAT solver.
//!
//! `presat-sat` implements the full conflict-driven clause-learning pipeline
//! that a 2004-era competitive solver (GRASP / zChaff class) would provide —
//! two-watched-literal unit propagation, first-UIP conflict analysis with
//! clause minimization, VSIDS decision ordering with phase saving, Luby
//! restarts, and LBD-guided learnt-clause database reduction — plus the
//! modern *incremental* interface (solving under assumptions with UNSAT-core
//! extraction over the assumptions) that the all-solutions engines in
//! `presat-allsat` are built on.
//!
//! No external solver is linked; this crate is self-contained on purpose so
//! that every engine in the workspace shares one well-tested substrate.
//!
//! # Examples
//!
//! ```
//! use presat_logic::{Cnf, Lit, Var};
//! use presat_sat::{SolveResult, Solver};
//!
//! let a = Var::new(0);
//! let b = Var::new(1);
//! let mut cnf = Cnf::new(2);
//! cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
//! cnf.add_clause([Lit::neg(a), Lit::pos(b)]);
//!
//! let mut solver = Solver::from_cnf(&cnf);
//! match solver.solve() {
//!     SolveResult::Sat(model) => assert_eq!(model.value(b), Some(true)),
//!     SolveResult::Unsat => unreachable!("formula is satisfiable"),
//!     SolveResult::Unknown(reason) => unreachable!("no budget installed: {reason}"),
//! }
//!
//! // Incremental: the same solver, now under an assumption.
//! let under = solver.solve_with_assumptions(&[Lit::neg(b)]);
//! assert!(matches!(under, SolveResult::Unsat));
//! assert_eq!(solver.unsat_core(), &[Lit::neg(b)]);
//! ```
//!
//! # Anytime solving
//!
//! Solves are *three-valued*: under a [`Budget`] (conflicts, propagations,
//! wall-clock deadline) or a shared [`CancelToken`], a search that stops
//! early answers [`SolveResult::Unknown`] with a [`StopReason`] — never a
//! spurious `Unsat`.
//!
//! ```
//! use presat_logic::{Lit, Var};
//! use presat_sat::{Budget, SolveResult, Solver};
//!
//! let mut s = Solver::new(1);
//! s.add_clause([Lit::pos(Var::new(0))]);
//! s.set_budget(Budget::unlimited().with_conflicts(0));
//! assert!(matches!(s.solve(), SolveResult::Sat(_) | SolveResult::Unknown(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod clause;
mod heap;
pub mod simplify;
mod solver;
mod subsume;
mod types;

pub use budget::{Budget, BudgetPool, CancelToken};
pub use solver::{Solver, SolverConfig};
pub use types::{Lbool, SolveResult, SolverStats, StopReason};
