//! Occurrence-list subsumption core shared by the preprocessor
//! ([`crate::simplify`]) and the root-level inprocessor
//! (`Solver::inprocess`).
//!
//! Both clients feed clauses in as plain literal slices and get back the
//! same two equivalence-preserving rules:
//!
//! * **subsumption** — `C ⊆ D` lets `D` be deleted;
//! * **self-subsuming resolution** — `C \ {l} ⊆ D` with `¬l ∈ D` lets
//!   `¬l` be erased from `D` (the resolvent of `C` and `D` on `l`
//!   subsumes `D`).
//!
//! The core owns copies of the literals, an occurrence index keyed by
//! variable (both phases share one list, so a candidate clause is found no
//! matter which side of the pivot it holds), and a worklist that re-queues
//! strengthened clauses as subsumers until a fixed point — all in
//! deterministic clause-id order. *Policy* (which hits are allowed to
//! delete or strengthen; e.g. the inprocessor never deletes a problem
//! clause on the strength of a learnt subsumer) stays with the caller via
//! a callback.

use std::collections::VecDeque;

use presat_logic::Lit;

/// 64-bit variable-set abstraction of a clause: bit `v % 64` is set for
/// every variable `v` occurring in the clause (either phase, so the
/// abstraction is stable under pivot flips). `sig(C) & !sig(D) != 0`
/// refutes `C ⊆ D` (modulo one pivot) without touching the literals.
pub(crate) fn signature(lits: &[Lit]) -> u64 {
    lits.iter()
        .fold(0u64, |s, l| s | 1u64 << (l.var().index() & 63))
}

/// Does `c` subsume `d`?
///
/// * `Some(None)` — outright: every literal of `c` occurs in `d`.
/// * `Some(Some(p))` — after one resolution: all of `c` occurs in `d`
///   except the single pivot `p ∈ c`, which occurs negated; erasing `¬p`
///   from `d` is self-subsuming resolution.
/// * `None` — neither.
///
/// Signatures are passed in so callers can cache them across checks.
pub(crate) fn subsumes(c: &[Lit], c_sig: u64, d: &[Lit], d_sig: u64) -> Option<Option<Lit>> {
    if c.len() > d.len() || c_sig & !d_sig != 0 {
        return None;
    }
    let mut pivot: Option<Lit> = None;
    'outer: for &lc in c {
        let mut negated = false;
        for &ld in d {
            if lc == ld {
                continue 'outer;
            }
            if lc == !ld {
                negated = true;
            }
        }
        if negated && pivot.is_none() {
            pivot = Some(lc);
            continue 'outer;
        }
        return None;
    }
    Some(pivot)
}

/// What the policy callback tells the driver to do with one hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Action {
    /// Leave the target untouched (the hit is recorded nowhere).
    Skip,
    /// Delete the target clause (only offered on outright subsumption).
    DeleteTarget,
    /// Erase the negated pivot from the target (only offered on
    /// self-subsumption).
    StrengthenTarget,
}

/// Tallies of one [`Subsumer::run`] pass.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct RunOutcome {
    /// Clauses deleted on an outright subsumption hit.
    pub(crate) deleted: u64,
    /// Literals erased by self-subsuming resolution.
    pub(crate) strengthened_lits: u64,
    /// A clause was strengthened to empty: the formula is unsatisfiable.
    pub(crate) unsat: bool,
    /// The subsumption-check budget ran out before the fixed point.
    pub(crate) budget_exhausted: bool,
}

/// The shared occurrence-list subsumption driver (see the module docs).
pub(crate) struct Subsumer {
    /// Clause literal vectors, indexed by the id `push` handed out.
    /// Deleted clauses are emptied in place.
    clauses: Vec<Vec<Lit>>,
    sigs: Vec<u64>,
    /// `var index → ids of clauses containing the variable` (either
    /// phase). Entries go stale when a clause dies or shrinks; scans
    /// re-validate against `clauses`.
    occ: Vec<Vec<u32>>,
    /// Ids whose literals changed and that are still alive.
    changed: Vec<bool>,
}

impl Subsumer {
    pub(crate) fn new(num_vars: usize) -> Self {
        Subsumer {
            clauses: Vec::new(),
            sigs: Vec::new(),
            occ: vec![Vec::new(); num_vars],
            changed: Vec::new(),
        }
    }

    /// Registers a clause; returns its id (sequential from 0). The caller
    /// keeps the id → handle mapping for its own storage.
    pub(crate) fn push(&mut self, lits: &[Lit]) -> u32 {
        let id = self.clauses.len() as u32;
        for &l in lits {
            self.occ[l.var().index()].push(id);
        }
        self.sigs.push(signature(lits));
        self.clauses.push(lits.to_vec());
        self.changed.push(false);
        id
    }

    /// Current literals of a clause (empty once deleted).
    pub(crate) fn lits(&self, id: u32) -> &[Lit] {
        &self.clauses[id as usize]
    }

    /// `true` if the clause was deleted by a subsumption hit.
    pub(crate) fn is_dead(&self, id: u32) -> bool {
        self.clauses[id as usize].is_empty()
    }

    /// `true` if the clause is alive but its literal set shrank.
    pub(crate) fn is_changed(&self, id: u32) -> bool {
        self.changed[id as usize] && !self.is_dead(id)
    }

    /// Runs subsumption + self-subsuming resolution to a fixed point (or
    /// until `max_checks` literal-level subsumption tests have been
    /// spent), consulting `policy(subsumer, target, pivot)` on every hit.
    ///
    /// Deterministic: clauses are tried as subsumers in id order, then
    /// strengthened clauses re-queue FIFO; candidates are scanned in
    /// occurrence order.
    pub(crate) fn run<F>(&mut self, max_checks: u64, mut policy: F) -> RunOutcome
    where
        F: FnMut(u32, u32, Option<Lit>) -> Action,
    {
        let mut out = RunOutcome::default();
        let mut checks = 0u64;
        let mut queue: VecDeque<u32> = (0..self.clauses.len() as u32).collect();
        while let Some(c_id) = queue.pop_front() {
            let c_idx = c_id as usize;
            if self.clauses[c_idx].is_empty() {
                continue;
            }
            // Candidate targets must contain every variable of the
            // subsumer, so any of its variables' occurrence lists covers
            // them all; scan the shortest.
            let best_var = match self.clauses[c_idx]
                .iter()
                .map(|l| l.var().index())
                .min_by_key(|&v| self.occ[v].len())
            {
                Some(v) => v,
                None => continue,
            };
            for oi in 0..self.occ[best_var].len() {
                let d_id = self.occ[best_var][oi];
                let d_idx = d_id as usize;
                if d_id == c_id || self.clauses[c_idx].is_empty() || self.clauses[d_idx].is_empty()
                {
                    continue;
                }
                if checks >= max_checks {
                    out.budget_exhausted = true;
                    return out;
                }
                checks += 1;
                let hit = subsumes(
                    &self.clauses[c_idx],
                    self.sigs[c_idx],
                    &self.clauses[d_idx],
                    self.sigs[d_idx],
                );
                match hit {
                    Some(None) if policy(c_id, d_id, None) == Action::DeleteTarget => {
                        self.clauses[d_idx].clear();
                        out.deleted += 1;
                    }
                    Some(Some(pivot))
                        if policy(c_id, d_id, Some(pivot)) == Action::StrengthenTarget =>
                    {
                        let neg = !pivot;
                        self.clauses[d_idx].retain(|&l| l != neg);
                        self.sigs[d_idx] = signature(&self.clauses[d_idx]);
                        self.changed[d_idx] = true;
                        out.strengthened_lits += 1;
                        if self.clauses[d_idx].is_empty() {
                            out.unsat = true;
                            return out;
                        }
                        // The strengthened clause is a stronger
                        // subsumer now: re-queue it.
                        queue.push_back(d_id);
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// Consumes the driver, returning the surviving clauses in id order.
    pub(crate) fn into_live_clauses(self) -> Vec<Vec<Lit>> {
        self.clauses.into_iter().filter(|c| !c.is_empty()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::Var;

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    #[test]
    fn signature_is_phase_stable() {
        let a = signature(&[lit(3, true), lit(7, false)]);
        let b = signature(&[lit(3, false), lit(7, true)]);
        assert_eq!(a, b);
    }

    #[test]
    fn subsumes_detects_subset_and_pivot() {
        let c = [lit(0, true), lit(1, true)];
        let d = [lit(0, true), lit(1, true), lit(2, false)];
        assert_eq!(
            subsumes(&c, signature(&c), &d, signature(&d)),
            Some(None),
            "strict subset"
        );
        let e = [lit(0, true), lit(1, false), lit(2, false)];
        assert_eq!(
            subsumes(&c, signature(&c), &e, signature(&e)),
            Some(Some(lit(1, true))),
            "one flipped literal is a self-subsumption pivot"
        );
        let f = [lit(0, false), lit(1, false), lit(2, false)];
        assert_eq!(
            subsumes(&c, signature(&c), &f, signature(&f)),
            None,
            "two flipped literals is not a resolution step"
        );
        assert_eq!(
            subsumes(&d, signature(&d), &c, signature(&c)),
            None,
            "longer clauses never subsume shorter ones"
        );
    }

    #[test]
    fn run_reaches_fixed_point_with_requeue() {
        // (a ∨ b), (a ∨ ¬b ∨ c), (a ∨ c ∨ d):
        // self-subsumption strengthens the second to (a ∨ c), which then
        // subsumes the third — found only because strengthened clauses
        // re-enter the queue.
        let mut s = Subsumer::new(4);
        s.push(&[lit(0, true), lit(1, true)]);
        let mid = s.push(&[lit(0, true), lit(1, false), lit(2, true)]);
        let wide = s.push(&[lit(0, true), lit(2, true), lit(3, true)]);
        let out = s.run(u64::MAX, |_, _, pivot| match pivot {
            None => Action::DeleteTarget,
            Some(_) => Action::StrengthenTarget,
        });
        assert_eq!(out.deleted, 1);
        assert_eq!(out.strengthened_lits, 1);
        assert!(!out.unsat && !out.budget_exhausted);
        assert!(s.is_changed(mid));
        assert_eq!(s.lits(mid), &[lit(0, true), lit(2, true)]);
        assert!(s.is_dead(wide));
    }

    #[test]
    fn policy_skip_preserves_targets() {
        let mut s = Subsumer::new(3);
        s.push(&[lit(0, true)]);
        let d = s.push(&[lit(0, true), lit(1, true)]);
        let out = s.run(u64::MAX, |_, _, _| Action::Skip);
        assert_eq!(out.deleted, 0);
        assert!(!s.is_dead(d));
    }

    #[test]
    fn budget_stops_early_and_reports_it() {
        let mut s = Subsumer::new(3);
        s.push(&[lit(0, true)]);
        s.push(&[lit(0, true), lit(1, true)]);
        s.push(&[lit(0, true), lit(2, true)]);
        let out = s.run(1, |_, _, pivot| match pivot {
            None => Action::DeleteTarget,
            Some(_) => Action::StrengthenTarget,
        });
        assert!(out.budget_exhausted);
        assert!(out.deleted <= 1);
    }

    #[test]
    fn strengthening_to_empty_reports_unsat() {
        // (a) strengthens (¬a) by erasing its only literal.
        let mut s = Subsumer::new(1);
        s.push(&[lit(0, true)]);
        s.push(&[lit(0, false)]);
        let out = s.run(u64::MAX, |_, _, pivot| match pivot {
            None => Action::DeleteTarget,
            Some(_) => Action::StrengthenTarget,
        });
        assert!(out.unsat);
    }
}
