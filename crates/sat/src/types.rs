use std::fmt;
use std::ops::Not;

use presat_logic::Assignment;

/// Three-valued truth assignment used inside the solver.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Lbool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not yet assigned.
    #[default]
    Undef,
}

impl Lbool {
    /// Lifts a `bool` into the lattice.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Lbool::True
        } else {
            Lbool::False
        }
    }

    /// `Some(value)` if assigned, `None` otherwise.
    #[inline]
    pub fn to_option(self) -> Option<bool> {
        match self {
            Lbool::True => Some(true),
            Lbool::False => Some(false),
            Lbool::Undef => None,
        }
    }

    /// `true` if unassigned.
    #[inline]
    pub fn is_undef(self) -> bool {
        self == Lbool::Undef
    }
}

impl Not for Lbool {
    type Output = Lbool;

    #[inline]
    fn not(self) -> Lbool {
        match self {
            Lbool::True => Lbool::False,
            Lbool::False => Lbool::True,
            Lbool::Undef => Lbool::Undef,
        }
    }
}

impl fmt::Display for Lbool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lbool::True => write!(f, "1"),
            Lbool::False => write!(f, "0"),
            Lbool::Undef => write!(f, "?"),
        }
    }
}

/// Why a solve stopped early; re-exported from `presat-obs` so partial
/// results carry the same reason type at every layer.
pub use presat_obs::StopReason;

/// Outcome of a [`crate::Solver`] query.
///
/// Three-valued: a solver running under a [`crate::Budget`] or a
/// [`crate::CancelToken`] that stops early answers
/// [`Unknown`](SolveResult::Unknown) — *never* a spurious
/// [`Unsat`](SolveResult::Unsat). `Unsat` is a proof; `Unknown` is an
/// honest "ran out of resources".
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// Satisfiable, with a total model over the solver's variable space.
    Sat(Assignment),
    /// Unsatisfiable (under the given assumptions, if any were passed).
    Unsat,
    /// Inconclusive: the search stopped for the given reason before
    /// reaching an answer. The solver remains usable.
    Unknown(StopReason),
}

impl SolveResult {
    /// `true` for the [`SolveResult::Sat`] variant.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// `true` for the [`SolveResult::Unknown`] variant.
    pub fn is_unknown(&self) -> bool {
        matches!(self, SolveResult::Unknown(_))
    }

    /// The stop reason, if the search was inconclusive.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self {
            SolveResult::Unknown(r) => Some(*r),
            _ => None,
        }
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Assignment> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat | SolveResult::Unknown(_) => None,
        }
    }

    /// Consumes the result, returning the model if satisfiable.
    pub fn into_model(self) -> Option<Assignment> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat | SolveResult::Unknown(_) => None,
        }
    }
}

/// Running counters describing the work a solver has done; useful for the
/// benchmark tables and for regression tests on search behaviour.
///
/// The canonical definition lives in `presat-obs` (as
/// [`presat_obs::SatCounters`]) so the observability layer can snapshot it
/// without depending on the solver; this alias keeps the historical name.
pub use presat_obs::SatCounters as SolverStats;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lbool_negation() {
        assert_eq!(!Lbool::True, Lbool::False);
        assert_eq!(!Lbool::False, Lbool::True);
        assert_eq!(!Lbool::Undef, Lbool::Undef);
    }

    #[test]
    fn lbool_round_trip() {
        assert_eq!(Lbool::from_bool(true).to_option(), Some(true));
        assert_eq!(Lbool::from_bool(false).to_option(), Some(false));
        assert_eq!(Lbool::Undef.to_option(), None);
        assert!(Lbool::Undef.is_undef());
    }

    #[test]
    fn solve_result_accessors() {
        let m = Assignment::from_bits(0b1, 1);
        let sat = SolveResult::Sat(m.clone());
        assert!(sat.is_sat());
        assert_eq!(sat.model(), Some(&m));
        assert_eq!(sat.into_model(), Some(m));
        assert!(!SolveResult::Unsat.is_sat());
        assert_eq!(SolveResult::Unsat.model(), None);
        assert!(!SolveResult::Unsat.is_unknown());
        assert_eq!(SolveResult::Unsat.stop_reason(), None);

        let unknown = SolveResult::Unknown(StopReason::Conflicts);
        assert!(!unknown.is_sat());
        assert!(unknown.is_unknown());
        assert_eq!(unknown.stop_reason(), Some(StopReason::Conflicts));
        assert_eq!(unknown.model(), None);
        assert_eq!(unknown.into_model(), None);
    }
}
