//! The CDCL search engine.

use std::time::Instant;

use presat_logic::{Assignment, Cnf, Lit, Var};

use crate::budget::{Budget, BudgetPool, CancelToken};
use crate::clause::{ClauseDb, ClauseRef};
use crate::heap::VarHeap;
use crate::types::{Lbool, SolveResult, SolverStats, StopReason};

// Root-level inprocessing lives in a sibling file but is a *child* module
// of `solver`, so it can reach the solver's private fields without
// widening their visibility.
#[path = "inprocess.rs"]
mod inprocess;
pub use inprocess::SolverConfig;

/// A watch-list entry for a clause of length ≥ 3: the clause plus a
/// *blocker* literal whose satisfaction lets propagation skip the clause
/// without touching its literal array.
///
/// Binary clauses do not live here at all — they get dedicated watch lists
/// (`Solver::bin_watches`) holding just the implied literal, so long-clause
/// visits never pay a `binary` branch and binary visits never carry a
/// `ClauseRef` (their reasons are encoded as [`Reason::Binary`]).
#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Value of `lit` under a raw assignment slice. Free function so hot
/// loops can evaluate literals while other solver fields are mutably
/// borrowed (see `Solver::propagate`).
#[inline]
fn lit_val(assigns: &[Lbool], lit: Lit) -> Lbool {
    let v = assigns[lit.var().index()];
    if lit.is_pos() {
        v
    } else {
        !v
    }
}

/// Why a literal is on the trail.
///
/// Binary implications carry the clause's *other* literal instead of an
/// arena reference: conflict analysis only ever needs the antecedent
/// literals, and encoding them inline keeps binary propagation entirely out
/// of the clause arena (and frees garbage collection from remapping binary
/// reason slots — there is nothing to remap).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
enum Reason {
    /// A decision, an assumption, or a level-0 unit.
    #[default]
    None,
    /// Implied by a clause of length ≥ 3 in the arena.
    Long(ClauseRef),
    /// Implied by a binary clause; the payload is the clause's other (now
    /// falsified) literal.
    Binary(Lit),
}

/// A conflicting antecedent: either an arena clause or an inline binary
/// clause whose two literals are both falsified.
#[derive(Clone, Copy, Debug)]
enum Conflict {
    Long(ClauseRef),
    Binary(Lit, Lit),
}

const VAR_DECAY: f64 = 0.95;
const CLAUSE_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
const RESTART_BASE: u64 = 100;
/// Compaction trigger: collect once at least this many arena words exist
/// *and* the tombstoned share reaches [`GC_WASTE_DENOM`]⁻¹ of the arena.
/// Small enough that the embedded test circuits actually exercise GC.
const GC_MIN_WORDS: usize = 256;
/// Wasted-words ratio denominator: collect when `wasted * 4 >= arena`,
/// i.e. at 25% tombstoned storage.
const GC_WASTE_DENOM: usize = 4;
/// Wall-clock deadline polling stride: `Instant::now()` is checked once per
/// this many conflicts (and once per this many decisions on the decision
/// path) so unbudgeted and budgeted-but-not-expired runs never pay a
/// syscall per conflict. Counter and cancel-token checks are loads and run
/// at every poll point.
const TIME_POLL_STRIDE: u64 = 64;

/// An incremental CDCL SAT solver.
///
/// Construct with [`Solver::new`] or [`Solver::from_cnf`], add clauses with
/// [`Solver::add_clause`], and query with [`Solver::solve`] or
/// [`Solver::solve_with_assumptions`]. Clauses may be added between queries;
/// learnt clauses are retained across queries, which is what makes the
/// all-solutions engines built on top of this solver efficient.
///
/// # Examples
///
/// ```
/// use presat_logic::{Lit, Var};
/// use presat_sat::Solver;
///
/// let mut s = Solver::new(2);
/// let a = Lit::pos(Var::new(0));
/// let b = Lit::pos(Var::new(1));
/// s.add_clause([a, b]);
/// s.add_clause([!a, b]);
/// let result = s.solve();
/// assert!(result.is_sat());
/// ```
#[derive(Clone, Debug)]
pub struct Solver {
    db: ClauseDb,
    /// Indexed by `lit.code()`: watchers of clauses (length ≥ 3) that must
    /// be inspected when `lit` becomes **true** (they watch `!lit`).
    watches: Vec<Vec<Watcher>>,
    /// Indexed by `lit.code()`: for every binary clause `{!lit, other}`,
    /// the literal `other` implied when `lit` becomes true. Resolving a
    /// binary clause never touches the arena; entries are permanent
    /// (binary clauses are never deleted).
    bin_watches: Vec<Vec<Lit>>,
    assigns: Vec<Lbool>,
    levels: Vec<u32>,
    reasons: Vec<Reason>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// Scratch for `propagate`: watchers migrating to another literal's
    /// list are buffered here during a scan and appended afterwards, so
    /// the scanned list can stay under one split borrow. Always empty
    /// outside `propagate`.
    watch_moves: Vec<(Lit, Watcher)>,
    order: VarHeap,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    phase: Vec<bool>,
    /// `false` once the clause set is contradictory at level 0.
    ok: bool,
    seen: Vec<bool>,
    core: Vec<Lit>,
    stats: SolverStats,
    max_learnts: usize,
    /// Absolute conflict-count threshold (cumulative over the solver's
    /// lifetime) installed by [`Solver::set_budget`].
    limit_conflicts: Option<u64>,
    /// Absolute propagation-count threshold installed by
    /// [`Solver::set_budget`].
    limit_propagations: Option<u64>,
    /// Wall-clock deadline installed by [`Solver::set_budget`].
    deadline: Option<Instant>,
    /// Cooperative cancellation flag shared with other threads.
    cancel: Option<CancelToken>,
    /// Shared counter-budget pool installed by [`Solver::set_pool`]:
    /// partitioned-search workers all draw conflicts/propagations from
    /// this one pot instead of each spending a full private budget.
    pool: Option<BudgetPool>,
    /// Cumulative `stats.conflicts` already charged to `pool` — the
    /// baseline that [`Solver::charge_pool`] computes its delta against.
    pool_charged_conflicts: u64,
    /// Cumulative `stats.propagations` already charged to `pool`.
    pool_charged_propagations: u64,
    /// Cached `limit_* / deadline / cancel is set` so the search hot loop
    /// pays one predicted branch when no budget is installed.
    has_limits: bool,
    /// Sticky flag: a *problem* clause was dropped because the clause arena
    /// is full. The clause set no longer faithfully represents the input,
    /// so every later solve answers `Unknown(ResourceExhausted)`.
    resource_exhausted: bool,
    /// Root-level inprocessing knobs (see [`SolverConfig`]).
    config: SolverConfig,
}

impl Solver {
    /// Creates a solver over `num_vars` variables and no clauses.
    pub fn new(num_vars: usize) -> Self {
        let mut s = Solver {
            db: ClauseDb::new(),
            watches: Vec::new(),
            bin_watches: Vec::new(),
            assigns: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            watch_moves: Vec::new(),
            order: VarHeap::new(0),
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            phase: Vec::new(),
            ok: true,
            seen: Vec::new(),
            core: Vec::new(),
            stats: SolverStats::default(),
            max_learnts: 4000,
            limit_conflicts: None,
            limit_propagations: None,
            deadline: None,
            cancel: None,
            pool: None,
            pool_charged_conflicts: 0,
            pool_charged_propagations: 0,
            has_limits: false,
            resource_exhausted: false,
            config: SolverConfig::default(),
        };
        s.grow_to(num_vars);
        s
    }

    /// Creates a solver preloaded with all clauses of `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut s = Solver::new(cnf.num_vars());
        for clause in cnf.clauses() {
            s.add_clause(clause.iter().copied());
        }
        s
    }

    /// Number of variables in the solver's variable space.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Allocates a fresh variable.
    pub fn add_var(&mut self) -> Var {
        let v = Var::new(self.num_vars());
        self.grow_to(v.index() + 1);
        v
    }

    /// Accumulated search statistics.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// The subset of the most recent call's assumptions proven jointly
    /// inconsistent with the formula (empty if the formula itself is
    /// unsatisfiable, or if the last call was satisfiable).
    pub fn unsat_core(&self) -> &[Lit] {
        &self.core
    }

    /// Installs a [`Budget`] for the upcoming solve calls. Counter limits
    /// are converted to absolute thresholds against the solver's cumulative
    /// statistics, so one installed budget is shared across *all* following
    /// calls until replaced — exactly what a multi-call enumeration wants.
    /// A search that trips a limit returns
    /// [`SolveResult::Unknown`](crate::SolveResult::Unknown) with the
    /// matching [`StopReason`] — never a spurious `Unsat`. Install
    /// [`Budget::unlimited`] to remove all limits.
    pub fn set_budget(&mut self, budget: Budget) {
        self.limit_conflicts = budget
            .conflicts
            .map(|c| self.stats.conflicts.saturating_add(c));
        self.limit_propagations = budget
            .propagations
            .map(|p| self.stats.propagations.saturating_add(p));
        self.deadline = budget.deadline;
        self.update_has_limits();
    }

    /// Attaches (or with `None` detaches) a shared [`CancelToken`]; once
    /// cancelled, running and future solves return
    /// `Unknown(`[`StopReason::Cancelled`]`)` at their next poll point.
    pub fn set_cancel(&mut self, cancel: Option<CancelToken>) {
        self.cancel = cancel;
        self.update_has_limits();
    }

    /// Attaches (or with `None` detaches) a shared [`BudgetPool`]. While
    /// attached, every poll point additionally charges this solver's
    /// conflict/propagation deltas against the pool; a pool limit tripping
    /// surfaces as `Unknown` with the matching [`StopReason`], exactly like
    /// a private budget. The charge baseline starts at the solver's
    /// *current* counters, so only work done after attachment is charged.
    pub fn set_pool(&mut self, pool: Option<BudgetPool>) {
        self.pool = pool;
        self.pool_charged_conflicts = self.stats.conflicts;
        self.pool_charged_propagations = self.stats.propagations;
        self.update_has_limits();
    }

    /// Charges work done since the last charge to the shared pool and
    /// reports the first pool limit now crossed, if any. No-op without a
    /// pool. Also a pure exhaustion check when nothing new happened (a
    /// sibling worker may have drained the pot).
    fn charge_pool(&mut self) -> Option<StopReason> {
        let pool = self.pool.as_ref()?;
        let dc = self.stats.conflicts - self.pool_charged_conflicts;
        let dp = self.stats.propagations - self.pool_charged_propagations;
        self.pool_charged_conflicts = self.stats.conflicts;
        self.pool_charged_propagations = self.stats.propagations;
        pool.charge(dc, dp)
    }

    fn update_has_limits(&mut self) {
        self.has_limits = self.limit_conflicts.is_some()
            || self.limit_propagations.is_some()
            || self.deadline.is_some()
            || self.cancel.is_some()
            || self.pool.is_some();
    }

    /// First tripped limit, if any. `check_time` gates the `Instant::now()`
    /// call so hot-loop callers only pay it every [`TIME_POLL_STRIDE`]
    /// steps.
    #[inline]
    fn check_stop(&self, check_time: bool) -> Option<StopReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(limit) = self.limit_conflicts {
            if self.stats.conflicts >= limit {
                return Some(StopReason::Conflicts);
            }
        }
        if let Some(limit) = self.limit_propagations {
            if self.stats.propagations >= limit {
                return Some(StopReason::Propagations);
            }
        }
        if check_time {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Some(StopReason::Deadline);
                }
            }
        }
        None
    }

    fn grow_to(&mut self, num_vars: usize) {
        while self.assigns.len() < num_vars {
            self.assigns.push(Lbool::Undef);
            self.levels.push(0);
            self.reasons.push(Reason::None);
            self.activity.push(0.0);
            self.phase.push(false);
            self.seen.push(false);
            self.watches.push(Vec::new());
            self.watches.push(Vec::new());
            self.bin_watches.push(Vec::new());
            self.bin_watches.push(Vec::new());
            self.order.grow(self.assigns.len());
            self.order
                .insert(Var::new(self.assigns.len() - 1), &self.activity);
        }
    }

    /// Current value of a literal.
    #[inline]
    fn lit_value(&self, lit: Lit) -> Lbool {
        lit_val(&self.assigns, lit)
    }

    /// Current value of a variable (exposed for diagnostics and tests).
    pub fn value(&self, var: Var) -> Option<bool> {
        self.assigns[var.index()].to_option()
    }

    #[inline]
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Adds a clause; returns `false` if the clause set is now known
    /// unsatisfiable at level 0.
    ///
    /// # Panics
    ///
    /// Panics if called while the solver is mid-search (it never is through
    /// the public API) or if a literal references an unknown variable —
    /// grow the space with [`Solver::add_var`] first.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for &l in &lits {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} outside solver variable space"
            );
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautology / level-0 simplification.
        let mut simplified = Vec::with_capacity(lits.len());
        for (i, &l) in lits.iter().enumerate() {
            if i + 1 < lits.len() && lits[i + 1] == !l {
                return true; // tautological clause: x ∨ ¬x
            }
            match self.lit_value(l) {
                Lbool::True => return true, // already satisfied at level 0
                Lbool::False => {}          // drop falsified literal
                Lbool::Undef => simplified.push(l),
            }
        }
        self.stats.problem_clauses += 1;
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], Reason::None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => match self.db.alloc(&simplified, false, 0) {
                Ok(cref) => {
                    self.attach(cref);
                    self.note_arena_size();
                    true
                }
                Err(_) => {
                    // A dropped problem clause means the stored formula is
                    // weaker than the input: no later answer can be trusted
                    // as complete, so poison the solver into `Unknown`
                    // (never abort, never silently mis-answer).
                    self.resource_exhausted = true;
                    true
                }
            },
        }
    }

    /// Records the current arena size into the `arena_bytes` high-water
    /// gauge. Called after allocations *and* at solve entry: enumeration
    /// drivers reset stats per call, and a solve must still report the
    /// resident arena it inherited.
    #[inline]
    fn note_arena_size(&mut self) {
        let bytes = self.db.arena_bytes() as u64;
        if bytes > self.stats.arena_bytes {
            self.stats.arena_bytes = bytes;
        }
    }

    fn attach(&mut self, cref: ClauseRef) {
        let m = self.db.meta(cref);
        debug_assert!(m.len >= 2);
        let (l0, l1) = (self.db.lit_at(m.start), self.db.lit_at(m.start + 1));
        if m.len == 2 {
            // Binary clauses get literal-only watch entries; the arena copy
            // exists for cloning, statistics, and the inprocessor's
            // occurrence scans, but propagation never reads it.
            self.bin_watches[(!l0).code()].push(l1);
            self.bin_watches[(!l1).code()].push(l0);
        } else {
            self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
            self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
        }
    }

    #[inline]
    fn enqueue(&mut self, lit: Lit, reason: Reason) {
        debug_assert!(self.lit_value(lit).is_undef());
        let v = lit.var().index();
        self.assigns[v] = Lbool::from_bool(lit.is_pos());
        self.levels[v] = self.decision_level() as u32;
        self.reasons[v] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation; returns the conflicting antecedent if one arises.
    ///
    /// Traversal is index-based throughout — no watch list is ever moved
    /// out of its slot, so every outstanding `ClauseRef` stays reachable
    /// from `self.watches` at all times (the garbage collector relies on
    /// this) and conflict exits pay no restore step.
    fn propagate(&mut self) -> Option<Conflict> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let pc = p.code();

            // Binary watch pass: each entry is the clause's other literal,
            // so the clause is decided right here without ever fetching the
            // arena. The list never changes during the scan (binary clauses
            // are never deleted and enqueues touch only the trail).
            for bi in 0..self.bin_watches[pc].len() {
                let other = self.bin_watches[pc][bi];
                match self.lit_value(other) {
                    Lbool::True => {}
                    Lbool::False => {
                        self.stats.binary_skips += 1;
                        self.qhead = self.trail.len();
                        return Some(Conflict::Binary(!p, other));
                    }
                    Lbool::Undef => {
                        self.stats.binary_skips += 1;
                        self.enqueue(other, Reason::Binary(!p));
                    }
                }
            }

            // Long-clause watch pass: every entry is length ≥ 3, so there
            // is no per-visit binary branch left on this path. Split
            // borrows keep the scanned list's pointer/length in registers
            // for the whole scan (`ws`) while the arena, assignment, and
            // trail are reached through disjoint fields. Watchers that
            // migrate to another literal's list are buffered in
            // `watch_moves` — the target is never `pc`'s own list (the new
            // watch is non-false while `p`'s is false) — and appended
            // after the scan, including on the conflict exit, so every
            // live clause stays reachable from `self.watches` at all
            // times (the garbage collector relies on this).
            let s = &mut *self;
            let false_lit = !p;
            let dl = s.trail_lim.len() as u32;
            let db = &mut s.db;
            let assigns = &mut s.assigns;
            let ws = &mut s.watches[pc];
            let mut conflict = None;
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                // Fast path: blocker already satisfied.
                if lit_val(assigns, w.blocker) == Lbool::True {
                    i += 1;
                    continue;
                }
                // One header read serves the whole visit; literal words are
                // addressed absolutely from `m.start` with no indirection.
                let m = db.meta(w.cref);
                if m.deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Normalize: watched false literal at position 1.
                if db.lit_at(m.start) == false_lit {
                    db.swap_words(m.start, m.start + 1);
                }
                debug_assert_eq!(db.lit_at(m.start + 1), false_lit);
                let first = db.lit_at(m.start);
                if first != w.blocker && lit_val(assigns, first) == Lbool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replaced = false;
                for k in 2..m.len {
                    let lk = db.lit_at(m.start + k);
                    if lit_val(assigns, lk) != Lbool::False {
                        db.swap_words(m.start + 1, m.start + k);
                        s.watch_moves.push((
                            !lk,
                            Watcher {
                                cref: w.cref,
                                blocker: first,
                            },
                        ));
                        ws.swap_remove(i);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                // Clause is unit or conflicting under the current trail.
                if lit_val(assigns, first) == Lbool::False {
                    conflict = Some(Conflict::Long(w.cref));
                    break;
                }
                // Inline enqueue (self is partially borrowed here).
                debug_assert!(lit_val(assigns, first).is_undef());
                let v = first.var().index();
                assigns[v] = Lbool::from_bool(first.is_pos());
                s.levels[v] = dl;
                s.reasons[v] = Reason::Long(w.cref);
                s.trail.push(first);
                i += 1;
            }
            // Apply deferred migrations in scan order before any exit.
            for (lit, mw) in s.watch_moves.drain(..) {
                s.watches[lit.code()].push(mw);
            }
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        for idx in (bound..self.trail.len()).rev() {
            let lit = self.trail[idx];
            let v = lit.var();
            self.phase[v.index()] = lit.is_pos();
            self.assigns[v.index()] = Lbool::Undef;
            self.reasons[v.index()] = Reason::None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, var: Var) {
        let a = &mut self.activity[var.index()];
        *a += self.var_inc;
        if *a > RESCALE_LIMIT {
            for act in &mut self.activity {
                *act *= 1.0 / RESCALE_LIMIT;
            }
            self.var_inc *= 1.0 / RESCALE_LIMIT;
        }
        self.order.update(var, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= VAR_DECAY;
        self.cla_inc /= CLAUSE_DECAY;
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let bumped = self.db.activity(cref) + self.cla_inc;
        self.db.set_activity(cref, bumped);
        if bumped > RESCALE_LIMIT {
            self.db.rescale_learnt_activity(1.0 / RESCALE_LIMIT);
            self.cla_inc *= 1.0 / RESCALE_LIMIT;
        }
    }

    /// Marks one antecedent literal during conflict analysis: bumps its
    /// variable and either extends the conflict path or the learnt clause.
    #[inline]
    fn analyze_mark(&mut self, q: Lit, learnt: &mut Vec<Lit>, path_count: &mut u32) {
        let v = q.var();
        if !self.seen[v.index()] && self.levels[v.index()] > 0 {
            self.bump_var(v);
            self.seen[v.index()] = true;
            if self.levels[v.index()] as usize >= self.decision_level() {
                *path_count += 1;
            } else {
                learnt.push(q);
            }
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first), the backtrack level, and the clause's LBD.
    fn analyze(&mut self, conflict: Conflict) -> (Vec<Lit>, usize, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot for UIP
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = conflict;

        loop {
            // Skip the implied literal of a reason clause by value, not by
            // position: propagation never normalizes the implied literal's
            // position, so it may sit at either index. Reading by index (no
            // clause copy) is safe: `bump_var` never touches the arena.
            match confl {
                Conflict::Long(cref) => {
                    let m = self.db.meta(cref);
                    if m.learnt {
                        self.bump_clause(cref);
                    }
                    for k in 0..m.len {
                        let q = self.db.lit_at(m.start + k);
                        if Some(q) == p {
                            continue;
                        }
                        self.analyze_mark(q, &mut learnt, &mut path_count);
                    }
                }
                Conflict::Binary(a, b) => {
                    // Inline binary antecedent: no arena access, no clause
                    // bump (binary clauses are never reduction candidates,
                    // so their activity is never consulted).
                    for q in [a, b] {
                        if Some(q) == p {
                            continue;
                        }
                        self.analyze_mark(q, &mut learnt, &mut path_count);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            p = Some(pl);
            if path_count == 0 {
                break;
            }
            confl = match self.reasons[pl.var().index()] {
                Reason::Long(cref) => Conflict::Long(cref),
                // The implied literal `pl` is skipped above via `p`.
                Reason::Binary(other) => Conflict::Binary(pl, other),
                Reason::None => {
                    unreachable!("non-decision literal on conflict path must have a reason")
                }
            };
        }
        learnt[0] = !p.expect("analysis visits at least one literal");

        // Conflict-clause minimization (local): drop literals implied by the
        // rest of the clause through their reasons.
        let keep: Vec<bool> = learnt
            .iter()
            .enumerate()
            .map(|(i, &l)| i == 0 || !self.literal_redundant(l))
            .collect();
        let mut minimized: Vec<Lit> = learnt
            .iter()
            .zip(&keep)
            .filter_map(|(&l, &k)| k.then_some(l))
            .collect();

        // Clear seen flags for everything we marked.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }

        // Position the literal with the highest level (after the UIP) second
        // and derive the backtrack level.
        let bt_level = if minimized.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..minimized.len() {
                if self.levels[minimized[i].var().index()]
                    > self.levels[minimized[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            minimized.swap(1, max_i);
            self.levels[minimized[1].var().index()] as usize
        };

        // LBD = number of distinct decision levels in the clause.
        let mut lvls: Vec<u32> = minimized
            .iter()
            .map(|l| self.levels[l.var().index()])
            .collect();
        lvls.sort_unstable();
        lvls.dedup();
        let lbd = lvls.len() as u32;

        (minimized, bt_level, lbd)
    }

    /// `true` if `lit` in a learnt clause is implied by the other marked
    /// literals (all antecedents of its reason are already seen or level 0).
    fn literal_redundant(&self, lit: Lit) -> bool {
        let v = lit.var().index();
        // The reason's implied literal (same variable as `lit`) is skipped
        // by variable, not by position — see the note in `analyze`.
        match self.reasons[v] {
            Reason::None => false,
            Reason::Binary(other) => {
                let qv = other.var().index();
                self.seen[qv] || self.levels[qv] == 0
            }
            Reason::Long(reason) => {
                let m = self.db.meta(reason);
                (0..m.len).all(|k| {
                    let qv = self.db.lit_at(m.start + k).var().index();
                    qv == v || self.seen[qv] || self.levels[qv] == 0
                })
            }
        }
    }

    /// Computes the failed-assumption core after assumption `p` was found
    /// falsified.
    fn analyze_final(&mut self, p: Lit) {
        self.core.clear();
        self.core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for idx in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[idx];
            let xv = x.var().index();
            if !self.seen[xv] {
                continue;
            }
            match self.reasons[xv] {
                Reason::None => {
                    // A decision in the assumption prefix is an assumption.
                    self.core.push(x);
                }
                Reason::Binary(other) => {
                    if self.levels[other.var().index()] > 0 {
                        self.seen[other.var().index()] = true;
                    }
                }
                Reason::Long(r) => {
                    let m = self.db.meta(r);
                    for k in 0..m.len {
                        let q = self.db.lit_at(m.start + k);
                        if q.var().index() != xv && self.levels[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[xv] = false;
        }
        self.seen[p.var().index()] = false;
    }

    fn reduce_db(&mut self) {
        self.db.sweep_learnt_index();
        // Sort the learnt index in place (taken out of the db so the sort
        // comparator can read clause metadata) — no per-call allocation.
        let mut order: Vec<ClauseRef> = std::mem::take(&mut self.db.learnts);
        // Worst first: high LBD, then low activity. `total_cmp` keeps the
        // sort total even if an activity overflowed to infinity or became
        // NaN before the rescale check could catch it. Activities round-trip
        // through the arena as full `f64` bit patterns, so this order is
        // identical to the boxed-clause representation's.
        order.sort_by(|&a, &b| {
            self.db
                .lbd(b)
                .cmp(&self.db.lbd(a))
                .then(self.db.activity(a).total_cmp(&self.db.activity(b)))
        });
        let target = order.len() / 2;
        let mut removed = 0;
        for &cref in &order {
            if removed >= target {
                break;
            }
            if self.db.is_deleted(cref)
                || self.db.lbd(cref) <= 2
                || self.db.len_of(cref) <= 2
                || self.is_locked(cref)
            {
                continue;
            }
            self.db.delete(cref);
            removed += 1;
            self.stats.deleted_clauses += 1;
        }
        self.db.learnts = order;
        self.db.sweep_learnt_index();
        self.stats.learnt_clauses = self.db.live_learnts() as u64;
        self.maybe_collect_garbage();
    }

    fn is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.db.lit(cref, 0);
        self.lit_value(first) == Lbool::True
            && self.reasons[first.var().index()] == Reason::Long(cref)
    }

    /// Compacts the clause arena if tombstones hold a quarter or more of
    /// it (and it is big enough to bother). Safe at any decision level:
    /// watch lists are never moved out of their slots (propagation
    /// traverses them in place), so every outstanding `ClauseRef` lives in
    /// `watches`, `reasons`, or `db.learnts` — all rewired here. Binary
    /// watch entries and binary reasons carry literals, not refs, so they
    /// need no rewiring at all.
    fn maybe_collect_garbage(&mut self) {
        let words = self.db.arena_words();
        if words >= GC_MIN_WORDS && self.db.wasted_words() * GC_WASTE_DENOM >= words {
            self.collect_garbage();
        }
    }

    /// Copies live clauses into a fresh arena and rewires every stored
    /// `ClauseRef` (watch lists, reason slots, learnt index).
    fn collect_garbage(&mut self) {
        self.db.sweep_learnt_index();
        let map = self.db.compact();
        for ws in &mut self.watches {
            // `retain_mut` keeps watcher order, so propagation visits
            // clauses in exactly the pre-collection order — GC stays
            // behaviourally invisible to the search.
            ws.retain_mut(|w| match map.remap(w.cref) {
                Some(new) => {
                    w.cref = new;
                    true
                }
                None => false,
            });
        }
        for (v, slot) in self.reasons.iter_mut().enumerate() {
            let Reason::Long(cref) = *slot else {
                // Decisions and binary reasons hold no arena ref.
                continue;
            };
            if self.assigns[v].is_undef() || self.levels[v] == 0 {
                // Level-0 / retracted reason slots are never consulted
                // (analysis only follows literals above level 0), so drop
                // them rather than keep a ref to a possibly-dead clause.
                *slot = Reason::None;
            } else {
                // An assigned variable above level 0 has a *locked* reason
                // clause; locked clauses are never deleted, so remap always
                // succeeds.
                *slot = Reason::Long(
                    map.remap(cref)
                        .expect("reason of an assigned variable must be live"),
                );
            }
        }
        self.stats.db_compactions += 1;
        self.stats.clauses_reclaimed += map.reclaimed;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v.index()].is_undef() {
                return Some(v);
            }
        }
        None
    }

    /// Decides whether the formula is satisfiable.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Decides satisfiability under the given assumption literals.
    ///
    /// On `Unsat`, [`Solver::unsat_core`] holds the subset of `assumptions`
    /// that participated in the refutation. The solver remains usable — the
    /// assumptions are retracted, not asserted.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.solves += 1;
        // Stamp the arena gauge even if stats were just reset: per-call
        // snapshots must report the resident arena the call inherited.
        self.note_arena_size();
        self.core.clear();
        if !self.ok {
            // Refutation at level 0 is a proof over the clauses actually
            // stored — sound even if later clauses were dropped.
            return SolveResult::Unsat;
        }
        if self.resource_exhausted {
            return SolveResult::Unknown(StopReason::ResourceExhausted);
        }
        if self.has_limits {
            // An already-expired budget (shared across an enumeration's
            // many calls) must stop *before* any work, even on instances
            // the search would decide without a single conflict.
            if let Some(reason) = self.check_stop(true).or_else(|| self.charge_pool()) {
                return SolveResult::Unknown(reason);
            }
        }
        debug_assert_eq!(self.decision_level(), 0);
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }

        let mut restarts_this_call = 0u64;
        let result = loop {
            let conflict_limit = RESTART_BASE * luby(2, restarts_this_call);
            match self.search(conflict_limit, assumptions) {
                SearchOutcome::Sat => {
                    let model = self.extract_model();
                    break SolveResult::Sat(model);
                }
                SearchOutcome::Unsat => break SolveResult::Unsat,
                SearchOutcome::Restart => {
                    restarts_this_call += 1;
                    self.stats.restarts += 1;
                }
                SearchOutcome::Stopped(reason) => break SolveResult::Unknown(reason),
            }
        };
        self.cancel_until(0);
        result
    }

    fn extract_model(&self) -> Assignment {
        let mut m = Assignment::new(self.num_vars());
        for (i, &v) in self.assigns.iter().enumerate() {
            match v {
                Lbool::True => m.assign(Var::new(i), true),
                Lbool::False => m.assign(Var::new(i), false),
                // Variables untouched by any clause or decision default to
                // false so that models are always total.
                Lbool::Undef => m.assign(Var::new(i), false),
            }
        }
        m
    }

    fn search(&mut self, conflict_limit: u64, assumptions: &[Lit]) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                let (learnt, bt_level, lbd) = self.analyze(confl);
                // Never backtrack above level 0; assumption levels get
                // re-established by the decision loop below.
                self.cancel_until(bt_level);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], Reason::None);
                } else {
                    match self.db.alloc(&learnt, true, lbd) {
                        Ok(cref) => {
                            self.attach(cref);
                            self.note_arena_size();
                            self.stats.learnt_clauses += 1;
                            self.bump_clause(cref);
                            let reason = if learnt.len() == 2 {
                                Reason::Binary(learnt[1])
                            } else {
                                Reason::Long(cref)
                            };
                            self.enqueue(learnt[0], reason);
                        }
                        Err(_) => {
                            // Dropping a learnt clause is sound (it is
                            // implied), but without room to learn, progress
                            // guarantees are gone — stop honestly. Not
                            // sticky: a later `retire_group`/`reduce_db`
                            // cannot shrink the arena, but the caller may
                            // still accept per-call `Unknown`s.
                            self.cancel_until(0);
                            return SearchOutcome::Stopped(StopReason::ResourceExhausted);
                        }
                    }
                }
                self.decay_activities();
                if self.has_limits {
                    // Charging the pool per conflict bounds a shared
                    // pot's overshoot at one conflict per worker.
                    let reason = self
                        .check_stop(self.stats.conflicts.is_multiple_of(TIME_POLL_STRIDE))
                        .or_else(|| self.charge_pool());
                    if let Some(reason) = reason {
                        self.cancel_until(0);
                        return SearchOutcome::Stopped(reason);
                    }
                }
                if self.db.live_learnts() > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts += self.max_learnts / 10;
                }
            } else {
                // No conflict.
                if self.has_limits && self.stats.decisions.is_multiple_of(TIME_POLL_STRIDE) {
                    // Poll on the decision path too: instances that search
                    // with few conflicts must still honor deadlines and
                    // cancellation.
                    if let Some(reason) = self.check_stop(true).or_else(|| self.charge_pool()) {
                        self.cancel_until(0);
                        return SearchOutcome::Stopped(reason);
                    }
                }
                if conflicts_here >= conflict_limit && self.decision_level() > assumptions.len() {
                    self.cancel_until(assumptions.len().min(self.decision_level()));
                    return SearchOutcome::Restart;
                }
                // Establish assumptions one level at a time.
                if self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    assert!(
                        p.var().index() < self.num_vars(),
                        "assumption {p} outside solver variable space"
                    );
                    match self.lit_value(p) {
                        Lbool::True => {
                            // Already implied: dummy level keeps alignment.
                            self.new_decision_level();
                        }
                        Lbool::False => {
                            self.analyze_final(p);
                            return SearchOutcome::Unsat;
                        }
                        Lbool::Undef => {
                            self.new_decision_level();
                            self.enqueue(p, Reason::None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => return SearchOutcome::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.new_decision_level();
                        let lit = Lit::with_phase(v, self.phase[v.index()]);
                        self.enqueue(lit, Reason::None);
                    }
                }
            }
        }
    }

    /// Runs unit propagation under `assumptions` without search and
    /// returns the implied partial assignment (including the assumptions
    /// and all level-0 facts), or `None` if propagation alone derives a
    /// conflict. The solver state is fully restored afterwards.
    ///
    /// This is the cheap consequence oracle used by the success-driven
    /// all-SAT engine to compute subspace signatures.
    pub fn propagate_under(&mut self, assumptions: &[Lit]) -> Option<Assignment> {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok || self.propagate().is_some() {
            self.ok = false;
            return None;
        }
        let mut failed = false;
        for &p in assumptions {
            assert!(
                p.var().index() < self.num_vars(),
                "assumption {p} outside solver variable space"
            );
            match self.lit_value(p) {
                Lbool::True => continue,
                Lbool::False => {
                    failed = true;
                    break;
                }
                Lbool::Undef => {
                    self.new_decision_level();
                    self.enqueue(p, Reason::None);
                    if self.propagate().is_some() {
                        failed = true;
                        break;
                    }
                }
            }
        }
        let result = if failed {
            None
        } else {
            let mut a = Assignment::new(self.num_vars());
            for (i, &v) in self.assigns.iter().enumerate() {
                if let Some(b) = v.to_option() {
                    a.assign(Var::new(i), b);
                }
            }
            Some(a)
        };
        self.cancel_until(0);
        result
    }

    /// Lookahead probe: establishes `assumptions`, then assumes `lit` and
    /// runs unit propagation only — no conflict analysis, no learning —
    /// and returns how many *additional* literals (including `lit`) the
    /// assumption implied. The solver state is fully restored afterwards.
    ///
    /// Returns `None` if the assumptions or the probe literal fail by
    /// propagation alone (a failed literal — maximally attractive to a
    /// caller looking for refutations, useless as a branching point), and
    /// `Some(0)` if `lit` was already implied by the assumptions (equally
    /// useless as a branching point: one child subspace would be empty).
    ///
    /// This is the scoring oracle behind adaptive cube-and-conquer
    /// partitioning: the product of the two phases' reduction counts ranks
    /// candidate splitting variables (Kondratiev et al. style lookahead).
    pub fn probe_lit(&mut self, assumptions: &[Lit], lit: Lit) -> Option<u32> {
        debug_assert_eq!(self.decision_level(), 0);
        self.stats.lookahead_probes += 1;
        if !self.ok || self.propagate().is_some() {
            self.ok = false;
            return None;
        }
        let mut failed = false;
        for &p in assumptions {
            assert!(
                p.var().index() < self.num_vars(),
                "assumption {p} outside solver variable space"
            );
            match self.lit_value(p) {
                Lbool::True => continue,
                Lbool::False => {
                    failed = true;
                    break;
                }
                Lbool::Undef => {
                    self.new_decision_level();
                    self.enqueue(p, Reason::None);
                    if self.propagate().is_some() {
                        failed = true;
                        break;
                    }
                }
            }
        }
        let result = if failed {
            None
        } else {
            assert!(
                lit.var().index() < self.num_vars(),
                "probe literal {lit} outside solver variable space"
            );
            match self.lit_value(lit) {
                Lbool::True => Some(0),
                Lbool::False => None,
                Lbool::Undef => {
                    let before = self.trail.len();
                    self.new_decision_level();
                    self.enqueue(lit, Reason::None);
                    if self.propagate().is_some() {
                        None
                    } else {
                        Some((self.trail.len() - before) as u32)
                    }
                }
            }
        };
        self.cancel_until(0);
        result
    }

    /// Zeroes the accumulated statistics. Parallel enumeration workers
    /// call this on their cloned solvers so each clone reports only the
    /// work it did itself and per-worker snapshots sum cleanly.
    pub fn reset_stats(&mut self) {
        // Flush work not yet charged to a shared pool before the counters
        // it is measured against are zeroed, then re-zero the baselines.
        let _ = self.charge_pool();
        self.stats = SolverStats::default();
        self.pool_charged_conflicts = 0;
        self.pool_charged_propagations = 0;
    }


    /// Clones the solver for use as an independent enumeration worker.
    ///
    /// With the flat clause arena this is cheap: the whole clause database
    /// copies as one contiguous `u32` buffer (plus the watch lists), not as
    /// one heap allocation per clause.
    ///
    /// Hardening for partitioned (multi-threaded) search: a clone must not
    /// inherit transient per-call state, so this asserts the solver sits at
    /// decision level 0 (no assumption level lingers from an interrupted
    /// call — `solve_with_assumptions` always retracts its assumptions)
    /// and hands back a clone with a cleared failed-assumption core, no
    /// budget, deadline, or cancel token, and zeroed statistics. Everything
    /// that makes an incremental solver warm — level-0 facts, problem and
    /// learnt clauses, saved phases, activities — is retained.
    ///
    /// # Panics
    ///
    /// Panics if the solver is mid-search (decision level above 0).
    pub fn clone_at_root(&self) -> Solver {
        assert_eq!(
            self.decision_level(),
            0,
            "clone_at_root requires the solver to be at decision level 0"
        );
        debug_assert_eq!(self.qhead, self.trail.len(), "propagation queue drained");
        let mut clone = self.clone();
        clone.core.clear();
        clone.limit_conflicts = None;
        clone.limit_propagations = None;
        clone.deadline = None;
        clone.cancel = None;
        clone.pool = None;
        clone.has_limits = false;
        clone.reset_stats();
        clone
    }

    /// Asserts `lit` permanently (a unit clause).
    pub fn assume_permanently(&mut self, lit: Lit) -> bool {
        self.add_clause([lit])
    }

    /// Number of live learnt clauses currently in the database — what a
    /// persistent session carries from one enumeration into the next.
    pub fn live_learnt_count(&self) -> usize {
        self.db.live_learnts()
    }

    /// Resident clause-arena size in bytes, right now. Unlike the
    /// `arena_bytes` statistics field (a high-water gauge over a stats
    /// window), this reads the current buffer length directly — it shrinks
    /// after a garbage collection, which is what memory-bound callers and
    /// the throughput benchmark want to observe.
    pub fn arena_bytes(&self) -> usize {
        self.db.arena_bytes()
    }

    /// Retires an activation-literal clause group: permanently asserts
    /// `¬act` and garbage-collects every clause the assertion satisfies
    /// forever.
    ///
    /// Protocol: an *activation literal* `act` appears only **negatively**
    /// inside clauses (`¬act ∨ …`) and only **positively** as an
    /// assumption. While `act` is assumed true its group clauses are
    /// active; after retirement they are satisfied at level 0 and can never
    /// participate in propagation or conflict analysis again. This also
    /// covers every learnt clause derived from the group: conflict analysis
    /// pushes the negation of any lower-level assumption into its learnt
    /// clauses (an assumption is a decision, so minimization cannot drop
    /// it — `literal_redundant` bails on reason-less literals), hence each
    /// dependent learnt clause contains `¬act` and is swept here too.
    ///
    /// Clauses of length ≤ 2 are deliberately left alive: the binary
    /// watcher fast path never consults the tombstone flag (binary clauses
    /// are never deleted — see `reduce_db`). A retired binary clause is
    /// inert anyway: the watcher on `act` becoming true never fires again,
    /// and the opposite watcher is skipped by its now-true `¬act` blocker.
    ///
    /// Returns the number of clauses tombstoned. Must be called at decision
    /// level 0 (every public entry point restores level 0).
    pub fn retire_group(&mut self, act: Lit) -> u64 {
        assert_eq!(self.decision_level(), 0, "retire_group requires level 0");
        let dead = !act;
        if !self.assume_permanently(dead) {
            // The formula was (or became) contradictory at level 0; the
            // arena no longer matters.
            return 0;
        }
        let removed = self.db.delete_containing_long(dead);
        self.stats.deleted_clauses += removed;
        self.db.sweep_learnt_index();
        self.stats.learnt_clauses = self.db.live_learnts() as u64;
        // Retirement is where incremental sessions shed whole clause
        // groups; compacting here is what keeps a deep backward fixed
        // point's memory bounded.
        self.maybe_collect_garbage();
        removed
    }

    /// `true` while the clause set has not been refuted at level 0.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    // --- Chronological-enumeration support ------------------------------
    //
    // Blocking-clause-free enumeration (Spallitta–Sebastiani–Biere) drives
    // the decision stack from *outside* the solver: the driver decides
    // literals one level at a time, and on each model backtracks exactly
    // one level and flips the deepest open decision instead of asserting a
    // blocking clause. These entry points expose precisely that much of
    // the CDCL internals — open a level, undo to a level, read the trail —
    // without ever allocating a clause. None of them touches the clause
    // database, which is what keeps the DB flat in the solution count.

    /// Current decision level (`0` = root, no open decisions).
    pub fn level(&self) -> usize {
        self.decision_level()
    }

    /// Runs unit propagation at the root level. Returns `false` if the
    /// formula is refuted outright (the solver is then poisoned like any
    /// level-0 conflict). Chronological drivers call this once before
    /// their first decision so root implications are on the trail.
    pub fn propagate_root(&mut self) -> bool {
        assert_eq!(self.decision_level(), 0, "propagate_root requires level 0");
        if !self.ok {
            return false;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return false;
        }
        true
    }

    /// Opens a fresh decision level, decides `lit`, and propagates to a
    /// fixed point. Returns `true` if no conflict arose; on `false` the
    /// trail still holds the conflicting prefix and the caller must
    /// [`Solver::backtrack`] before deciding again. Counts as one decision
    /// (and, on conflict, one conflict) in the statistics. Never adds a
    /// clause.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `lit`'s variable is already assigned.
    pub fn decide(&mut self, lit: Lit) -> bool {
        debug_assert!(self.lit_value(lit).is_undef(), "decide on assigned {lit}");
        self.stats.decisions += 1;
        self.new_decision_level();
        self.enqueue(lit, Reason::None);
        if self.propagate().is_some() {
            self.stats.conflicts += 1;
            return false;
        }
        true
    }

    /// Undoes every assignment above decision level `level`, restoring
    /// saved phases and the branching heap, without touching the trail
    /// prefix at or below `level`. A no-op when already at or below
    /// `level`.
    pub fn backtrack(&mut self, level: usize) {
        self.cancel_until(level);
    }

    /// The trail prefix covering decision levels `0..=level`: every
    /// literal (decisions and implications) assigned at those levels, in
    /// assignment order. Passing the current level (or anything larger)
    /// returns the whole trail.
    pub fn trail_prefix(&self, level: usize) -> &[Lit] {
        let bound = if level >= self.decision_level() {
            self.trail.len()
        } else {
            self.trail_lim[level]
        };
        &self.trail[..bound]
    }

    /// Decision level at which `var` was assigned; `None` if unassigned.
    pub fn level_of(&self, var: Var) -> Option<usize> {
        if self.assigns[var.index()].is_undef() {
            None
        } else {
            Some(self.levels[var.index()] as usize)
        }
    }

    /// First unassigned variable at or after `from` in index order, if
    /// any. Chronological enumeration branches in plain variable order
    /// (important variables first by construction of the problem), so it
    /// scans indices rather than popping the activity heap — the heap
    /// order would make the decision tree depend on conflict history.
    pub fn next_unassigned(&self, from: Var) -> Option<Var> {
        (from.index()..self.num_vars())
            .map(Var::new)
            .find(|v| self.assigns[v.index()].is_undef())
    }

    /// Snapshot of the current assignment as a total model (unassigned
    /// variables default to `false`, as in [`Solver::solve`] models).
    pub fn model_snapshot(&self) -> Assignment {
        self.extract_model()
    }

    /// Polls the installed [`Budget`] / [`CancelToken`] exactly like the
    /// internal search loop does; `None` when nothing has tripped (always,
    /// if no limits are installed). `check_time` gates the `Instant::now()`
    /// call so hot loops can pay it only every few polls.
    pub fn poll_budget(&self, check_time: bool) -> Option<StopReason> {
        if !self.has_limits {
            return None;
        }
        self.check_stop(check_time)
    }

    /// `true` once an arena-full allocation failure has poisoned
    /// completeness claims: enumeration must report `Unknown`, never
    /// "complete".
    pub fn resource_exhausted(&self) -> bool {
        self.resource_exhausted
    }

    /// Test-only structural audit of the watch lists and reason slots
    /// against the clause arena; the GC invariant suite runs it after
    /// every forced collection.
    #[cfg(test)]
    fn check_integrity(&self) {
        for (code, ws) in self.watches.iter().enumerate() {
            let watch_lit = !Lit::from_code(code as u32);
            for w in ws {
                let m = self.db.meta(w.cref);
                if m.deleted {
                    // Lazy pruning tolerates tombstoned watchers — but a
                    // collection must have dropped all of them.
                    continue;
                }
                assert!(m.len >= 3, "binary clause in the long watch lists");
                let l0 = self.db.lit_at(m.start);
                let l1 = self.db.lit_at(m.start + 1);
                assert!(
                    l0 == watch_lit || l1 == watch_lit,
                    "watcher for {watch_lit} not among the first two literals"
                );
            }
        }
        // Binary watch entries carry no refs; audit them against an arena
        // scan instead: every live binary clause must contribute exactly
        // its two entries, and nothing else may be present (multiset
        // equality — duplicate clauses are legal).
        let mut expect: std::collections::HashMap<(u32, u32), i64> = std::collections::HashMap::new();
        for cref in self.db.live_refs() {
            let m = self.db.meta(cref);
            if m.len != 2 {
                continue;
            }
            let (l0, l1) = (self.db.lit_at(m.start), self.db.lit_at(m.start + 1));
            *expect.entry(((!l0).code() as u32, l1.code() as u32)).or_default() += 1;
            *expect.entry(((!l1).code() as u32, l0.code() as u32)).or_default() += 1;
        }
        for (code, bs) in self.bin_watches.iter().enumerate() {
            for &other in bs {
                let e = expect.entry((code as u32, other.code() as u32)).or_default();
                *e -= 1;
                assert!(*e >= 0, "binary watcher without a live arena clause");
            }
        }
        assert!(
            expect.values().all(|&c| c == 0),
            "live binary clause missing a watch entry"
        );
        for (v, slot) in self.reasons.iter().enumerate() {
            match slot {
                Reason::None => {}
                Reason::Binary(_) | Reason::Long(_) => {
                    assert!(
                        !self.assigns[v].is_undef(),
                        "reason slot on an unassigned variable"
                    );
                    if let Reason::Long(r) = slot {
                        assert!(!self.db.is_deleted(*r), "reason clause tombstoned");
                    }
                }
            }
        }
        for &c in &self.db.learnts {
            assert!(self.db.is_learnt(c), "non-learnt clause in learnt index");
        }
    }

    /// Test-only: all watcher refs point at live clauses (true right after
    /// a collection, before any new deletions).
    #[cfg(test)]
    fn no_tombstoned_watchers(&self) -> bool {
        self.watches
            .iter()
            .flatten()
            .all(|w| !self.db.is_deleted(w.cref))
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    /// A budget limit, deadline, cancellation, or internal resource limit
    /// stopped the search before it reached an answer.
    Stopped(StopReason),
}

/// The Luby sequence scaled by `y`: 1,1,2,1,1,2,4,… (reluctant doubling).
fn luby(y: u64, mut x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    y.pow(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::truth_table;

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (0..15).map(|i| luby(2, i)).collect();
        assert_eq!(prefix, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new(1);
        s.add_clause([lit(0, true)]);
        let m = s.solve().into_model().expect("sat");
        assert_eq!(m.value(Var::new(0)), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new(1);
        s.add_clause([lit(0, true)]);
        assert!(!s.add_clause([lit(0, false)]));
        assert!(matches!(s.solve(), SolveResult::Unsat));
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new(1);
        assert!(!s.add_clause([]));
        assert!(matches!(s.solve(), SolveResult::Unsat));
    }

    #[test]
    fn no_clauses_sat() {
        let mut s = Solver::new(3);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn tautological_clause_ignored() {
        let mut s = Solver::new(1);
        assert!(s.add_clause([lit(0, true), lit(0, false)]));
        assert!(s.solve().is_sat());
    }

    #[test]
    fn model_satisfies_formula() {
        // Pigeonhole-ish small instance: 3 vars, random-ish clauses.
        let mut cnf = presat_logic::Cnf::new(3);
        cnf.add_clause([lit(0, true), lit(1, true), lit(2, true)]);
        cnf.add_clause([lit(0, false), lit(1, false)]);
        cnf.add_clause([lit(1, false), lit(2, false)]);
        cnf.add_clause([lit(0, false), lit(2, false)]);
        let mut s = Solver::from_cnf(&cnf);
        let m = s.solve().into_model().expect("sat");
        assert!(cnf.is_satisfied_by(&m));
    }

    #[test]
    fn php_3_into_2_is_unsat() {
        // Pigeonhole principle PHP(3,2): vars p_{i,j} i∈0..3 pigeons, j∈0..2.
        let var = |i: usize, j: usize| Var::new(i * 2 + j);
        let mut s = Solver::new(6);
        for i in 0..3 {
            s.add_clause([Lit::pos(var(i, 0)), Lit::pos(var(i, 1))]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([Lit::neg(var(i1, j)), Lit::neg(var(i2, j))]);
                }
            }
        }
        assert!(matches!(s.solve(), SolveResult::Unsat));
    }

    #[test]
    fn assumptions_are_retracted() {
        let mut s = Solver::new(2);
        s.add_clause([lit(0, true), lit(1, true)]);
        assert!(matches!(
            s.solve_with_assumptions(&[lit(0, false), lit(1, false)]),
            SolveResult::Unsat
        ));
        // Solver still usable and satisfiable without the assumptions.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn unsat_core_is_subset_of_assumptions() {
        let mut s = Solver::new(3);
        s.add_clause([lit(0, false), lit(1, false)]); // ¬a ∨ ¬b
        let r = s.solve_with_assumptions(&[lit(2, true), lit(0, true), lit(1, true)]);
        assert!(matches!(r, SolveResult::Unsat));
        let core = s.unsat_core().to_vec();
        assert!(!core.is_empty());
        for l in &core {
            assert!([lit(2, true), lit(0, true), lit(1, true)].contains(l));
        }
        // x2 is irrelevant to the conflict.
        assert!(!core.contains(&lit(2, true)));
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new(2);
        s.add_clause([lit(0, true), lit(1, true)]);
        assert!(s.solve().is_sat());
        s.add_clause([lit(0, false)]);
        s.add_clause([lit(1, false)]);
        assert!(matches!(s.solve(), SolveResult::Unsat));
    }

    #[test]
    fn agrees_with_truth_table_on_random_3sat() {
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(42);
        for round in 0..60 {
            let n = 6 + round % 4; // 6..9 vars
            let m = (n as f64 * (2.0 + (round % 5) as f64 * 0.7)) as usize;
            let mut cnf = presat_logic::Cnf::new(n);
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = rng.gen_range(0..n);
                    c.push(lit(v, rng.gen_bool(0.5)));
                }
                cnf.add_clause(c);
            }
            let expected = truth_table::is_satisfiable(&cnf);
            let mut s = Solver::from_cnf(&cnf);
            let got = s.solve();
            assert_eq!(got.is_sat(), expected, "divergence on round {round}");
            if let SolveResult::Sat(m) = got {
                assert!(cnf.is_satisfied_by(&m), "bogus model on round {round}");
            }
        }
    }

    #[test]
    fn repeated_assumption_solves_agree_with_oracle() {
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(7);
        let n = 8;
        let mut cnf = presat_logic::Cnf::new(n);
        for _ in 0..20 {
            let mut c = Vec::new();
            for _ in 0..3 {
                c.push(lit(rng.gen_range(0..n), rng.gen_bool(0.5)));
            }
            cnf.add_clause(c);
        }
        let mut s = Solver::from_cnf(&cnf);
        for _ in 0..30 {
            let k = rng.gen_range(0..4);
            let mut assumptions = Vec::new();
            let mut used = std::collections::HashSet::new();
            for _ in 0..k {
                let v = rng.gen_range(0..n);
                if used.insert(v) {
                    assumptions.push(lit(v, rng.gen_bool(0.5)));
                }
            }
            // Oracle: conjoin unit clauses.
            let mut augmented = cnf.clone();
            for &a in &assumptions {
                augmented.add_unit(a);
            }
            let expected = truth_table::is_satisfiable(&augmented);
            let got = s.solve_with_assumptions(&assumptions);
            assert_eq!(got.is_sat(), expected);
            if let SolveResult::Sat(m) = got {
                assert!(augmented.is_satisfied_by(&m));
            }
        }
    }

    #[test]
    fn duplicate_assumptions_ok() {
        let mut s = Solver::new(2);
        s.add_clause([lit(0, true), lit(1, true)]);
        let r = s.solve_with_assumptions(&[lit(0, true), lit(0, true)]);
        assert!(r.is_sat());
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new(2);
        s.add_clause([lit(0, true), lit(1, true)]);
        let _ = s.solve();
        let _ = s.solve();
        assert_eq!(s.stats().solves, 2);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut s = Solver::new(2);
        s.add_clause([lit(0, true), lit(1, true)]);
        let _ = s.solve();
        assert!(s.stats().solves > 0);
        s.reset_stats();
        assert_eq!(*s.stats(), SolverStats::default());
        // Still usable afterwards.
        assert!(s.solve().is_sat());
        assert_eq!(s.stats().solves, 1);
    }

    #[test]
    fn binary_propagations_skip_the_arena() {
        // A pure implication chain: every propagation crosses a binary
        // clause, so the binary fast path must account for all of them.
        let n = 64;
        let mut s = Solver::new(n);
        for i in 0..n - 1 {
            s.add_clause([lit(i, false), lit(i + 1, true)]);
        }
        let r = s.solve_with_assumptions(&[lit(0, true)]);
        assert!(r.is_sat());
        assert!(
            s.stats().binary_skips >= (n as u64) - 1,
            "binary fast path never fired: {:?}",
            s.stats()
        );
    }

    #[test]
    fn binary_conflicts_analyzed_correctly() {
        // Force conflicts whose reason clauses come from the binary fast
        // path (the implied literal is NOT normalised to position 0 there),
        // and cross-check against the truth-table oracle.
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(1234);
        for round in 0..40 {
            let n = 6 + round % 3;
            let m = 3 * n;
            let mut cnf = presat_logic::Cnf::new(n);
            for _ in 0..m {
                // Mostly binary clauses, some ternary.
                let width = if rng.gen_bool(0.7) { 2 } else { 3 };
                let mut c = Vec::new();
                for _ in 0..width {
                    c.push(lit(rng.gen_range(0..n), rng.gen_bool(0.5)));
                }
                cnf.add_clause(c);
            }
            let expected = truth_table::is_satisfiable(&cnf);
            let mut s = Solver::from_cnf(&cnf);
            let got = s.solve();
            assert_eq!(got.is_sat(), expected, "divergence on round {round}");
            if let SolveResult::Sat(model) = got {
                assert!(cnf.is_satisfied_by(&model), "bogus model on round {round}");
            }
        }
    }

    #[test]
    fn clone_at_root_is_independent_and_clean() {
        let mut s = Solver::new(3);
        s.add_clause([lit(0, true), lit(1, true), lit(2, true)]);
        s.add_clause([lit(0, false), lit(1, true)]);
        let _ = s.solve();
        let before = *s.stats();

        let mut c = s.clone_at_root();
        // Clone starts with fresh stats and no inherited unsat core.
        assert_eq!(*c.stats(), SolverStats::default());
        assert!(c.unsat_core().is_empty());

        // Diverge the clone; the original must be unaffected.
        c.add_clause([lit(2, false)]);
        c.add_clause([lit(0, true)]);
        assert!(c.solve().is_sat());
        assert_eq!(*s.stats(), before);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn clone_at_root_agrees_with_original_under_assumptions() {
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(99);
        let n = 7;
        let mut cnf = presat_logic::Cnf::new(n);
        for _ in 0..18 {
            let mut c = Vec::new();
            for _ in 0..3 {
                c.push(lit(rng.gen_range(0..n), rng.gen_bool(0.5)));
            }
            cnf.add_clause(c);
        }
        let mut s = Solver::from_cnf(&cnf);
        let _ = s.solve(); // warm the solver (learnt clauses, phases)
        let mut c = s.clone_at_root();
        for _ in 0..20 {
            let a = [lit(rng.gen_range(0..n), rng.gen_bool(0.5))];
            assert_eq!(
                s.solve_with_assumptions(&a).is_sat(),
                c.solve_with_assumptions(&a).is_sat()
            );
        }
    }

    #[test]
    fn large_chain_propagates() {
        // x0 and a chain of implications x_i → x_{i+1}: forces all true.
        let n = 2000;
        let mut s = Solver::new(n);
        s.add_clause([lit(0, true)]);
        for i in 0..n - 1 {
            s.add_clause([lit(i, false), lit(i + 1, true)]);
        }
        let m = s.solve().into_model().expect("sat");
        for i in 0..n {
            assert_eq!(m.value(Var::new(i)), Some(true));
        }
    }

    #[test]
    fn propagate_under_derives_implications() {
        let mut s = Solver::new(3);
        s.add_clause([lit(0, false), lit(1, true)]); // x0 → x1
        s.add_clause([lit(1, false), lit(2, true)]); // x1 → x2
        let a = s.propagate_under(&[lit(0, true)]).expect("no conflict");
        assert_eq!(a.value(Var::new(0)), Some(true));
        assert_eq!(a.value(Var::new(1)), Some(true));
        assert_eq!(a.value(Var::new(2)), Some(true));
        // State restored: nothing is assigned at level 0.
        assert_eq!(s.value(Var::new(1)), None);
        // And the solver still solves normally.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn propagate_under_reports_conflict() {
        let mut s = Solver::new(2);
        s.add_clause([lit(0, false), lit(1, true)]);
        s.add_clause([lit(0, false), lit(1, false)]);
        assert!(s.propagate_under(&[lit(0, true)]).is_none());
        // Non-conflicting assumptions still work afterwards.
        assert!(s.propagate_under(&[lit(0, false)]).is_some());
    }

    #[test]
    fn propagate_under_includes_level0_facts() {
        let mut s = Solver::new(2);
        s.add_clause([lit(1, true)]);
        let a = s.propagate_under(&[]).expect("no conflict");
        assert_eq!(a.value(Var::new(1)), Some(true));
        assert_eq!(a.value(Var::new(0)), None);
    }

    #[test]
    fn unsat_core_of_plain_unsat_formula_is_empty() {
        let mut s = Solver::new(1);
        s.add_clause([lit(0, true)]);
        s.add_clause([lit(0, false)]);
        let _ = s.solve_with_assumptions(&[]);
        assert!(s.unsat_core().is_empty());
    }

    #[test]
    fn retired_group_clauses_stop_constraining() {
        // Group under act = x3: (¬act ∨ x0) ∧ (¬act ∨ ¬x0 ∨ x1 ∨ x2).
        let mut s = Solver::new(4);
        let act = lit(3, true);
        s.add_clause([!act, lit(0, true)]);
        s.add_clause([!act, lit(0, false), lit(1, true), lit(2, true)]);
        s.add_clause([lit(1, false)]);
        s.add_clause([lit(2, false)]);
        // Active: x0 forced true, then the ternary clause is falsified.
        assert!(matches!(
            s.solve_with_assumptions(&[act]),
            SolveResult::Unsat
        ));
        let removed = s.retire_group(act);
        assert_eq!(removed, 1, "only the non-binary group clause is swept");
        // Retired: the formula is satisfiable again and x0 is free.
        assert!(s.solve().is_sat());
        assert!(s.solve_with_assumptions(&[lit(0, false)]).is_sat());
        assert!(s.is_ok());
    }

    #[test]
    fn retirement_cycles_agree_with_fresh_solvers() {
        // Alternate targets through activation groups on one persistent
        // solver; every query must agree with a cold solver on the active
        // clauses only.
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(31);
        let n = 6;
        let mut base = presat_logic::Cnf::new(n);
        for _ in 0..10 {
            let c: Vec<Lit> = (0..3)
                .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                .collect();
            base.add_clause(c);
        }
        let mut s = Solver::from_cnf(&base);
        for round in 0..12 {
            let act = Lit::pos(s.add_var());
            let group: Vec<Vec<Lit>> = (0..3)
                .map(|_| {
                    let mut c = vec![!act];
                    for _ in 0..2 {
                        c.push(lit(rng.gen_range(0..n), rng.gen_bool(0.5)));
                    }
                    c
                })
                .collect();
            for c in &group {
                s.add_clause(c.iter().copied());
            }
            // Cold oracle: base + this round's group asserted outright.
            let mut cold = Solver::from_cnf(&base);
            for c in &group {
                let stripped: Vec<Lit> = c[1..].to_vec();
                cold.add_clause(stripped);
            }
            assert_eq!(
                s.solve_with_assumptions(&[act]).is_sat(),
                cold.solve().is_sat(),
                "round {round}"
            );
            s.retire_group(act);
            // The persistent solver must still agree with the plain base.
            let mut plain = Solver::from_cnf(&base);
            assert_eq!(s.solve().is_sat(), plain.solve().is_sat(), "round {round}");
        }
    }

    #[test]
    fn retire_group_counts_learnts_correctly() {
        let mut s = Solver::new(3);
        s.add_clause([lit(0, true), lit(1, true), lit(2, true)]);
        let _ = s.solve();
        let act = Lit::pos(s.add_var());
        s.add_clause([!act, lit(0, false), lit(1, false), lit(2, false)]);
        let _ = s.solve_with_assumptions(&[act]);
        s.retire_group(act);
        assert_eq!(
            s.stats().learnt_clauses,
            s.live_learnt_count() as u64,
            "learnt counter resynced after the sweep"
        );
        assert!(s.solve().is_sat());
    }

    /// A hard-ish pigeonhole-style instance: `holes + 1` pigeons into
    /// `holes` holes, guaranteed to generate conflicts.
    fn pigeonhole(holes: usize) -> Solver {
        let pigeons = holes + 1;
        let mut s = Solver::new(pigeons * holes);
        let var = |p: usize, h: usize| Var::new(p * holes + h);
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| Lit::pos(var(p, h))));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause([Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        s
    }

    /// Regression for the original budget bug: a budgeted solve on a
    /// *satisfiable* instance must never report `Unsat` — exhaustion is
    /// `Unknown`, with the matching reason.
    #[test]
    fn budgeted_solve_on_satisfiable_instance_never_reports_unsat() {
        for budget in [0u64, 1, 2, 5, 20] {
            // Satisfiable: pigeonhole with a pigeon removed (n into n).
            let holes = 6;
            let mut s = Solver::new(holes * holes);
            let var = |p: usize, h: usize| Var::new(p * holes + h);
            for p in 0..holes {
                s.add_clause((0..holes).map(|h| Lit::pos(var(p, h))));
            }
            for h in 0..holes {
                for p1 in 0..holes {
                    for p2 in (p1 + 1)..holes {
                        s.add_clause([Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                    }
                }
            }
            s.set_budget(Budget::unlimited().with_conflicts(budget));
            match s.solve() {
                SolveResult::Unsat => panic!("budget={budget}: lied about UNSAT"),
                SolveResult::Sat(_) | SolveResult::Unknown(_) => {}
            }
        }
    }

    #[test]
    fn conflict_budget_stops_with_reason_and_solver_stays_usable() {
        let mut s = pigeonhole(7);
        s.set_budget(Budget::unlimited().with_conflicts(3));
        let r = s.solve();
        assert_eq!(r.stop_reason(), Some(StopReason::Conflicts));
        // Removing the budget lets the same solver finish the proof.
        s.set_budget(Budget::unlimited());
        assert!(matches!(s.solve(), SolveResult::Unsat));
    }

    #[test]
    fn budget_is_cumulative_across_calls() {
        let mut s = pigeonhole(7);
        s.set_budget(Budget::unlimited().with_conflicts(5));
        assert!(s.solve().is_unknown());
        // The threshold was absolute: a second call is already exhausted
        // and must stop before doing any work.
        let conflicts_before = s.stats().conflicts;
        assert_eq!(s.solve().stop_reason(), Some(StopReason::Conflicts));
        assert_eq!(s.stats().conflicts, conflicts_before);
    }

    #[test]
    fn propagation_budget_stops_with_reason() {
        let mut s = pigeonhole(6);
        s.set_budget(Budget::unlimited().with_propagations(10));
        assert_eq!(s.solve().stop_reason(), Some(StopReason::Propagations));
    }

    #[test]
    fn expired_deadline_stops_before_any_work() {
        let mut s = pigeonhole(6);
        s.set_budget(Budget::unlimited().with_deadline(std::time::Instant::now()));
        assert_eq!(s.solve().stop_reason(), Some(StopReason::Deadline));
        assert_eq!(s.stats().conflicts, 0);
    }

    #[test]
    fn cancelled_token_stops_solve() {
        let mut s = pigeonhole(7);
        let token = CancelToken::new();
        s.set_cancel(Some(token.clone()));
        token.cancel();
        assert_eq!(s.solve().stop_reason(), Some(StopReason::Cancelled));
        s.set_cancel(None);
        assert!(matches!(s.solve(), SolveResult::Unsat), "token detached");
        // A finished refutation is a proof: once Unsat is established,
        // even a cancelled token cannot retract it.
        s.set_cancel(Some(token));
        assert!(matches!(s.solve(), SolveResult::Unsat));
    }

    #[test]
    fn clone_at_root_sheds_budget_and_cancel() {
        let mut s = pigeonhole(6);
        let token = CancelToken::new();
        token.cancel();
        s.set_budget(Budget::unlimited().with_conflicts(1));
        s.set_cancel(Some(token));
        let mut fresh = s.clone_at_root();
        assert!(matches!(fresh.solve(), SolveResult::Unsat));
        assert!(s.solve().is_unknown());
    }

    /// Satellite regression: drive clause activities through the rescale
    /// path with an extreme increment. Before the `total_cmp` fix,
    /// `reduce_db`'s comparator panicked once an activity reached
    /// inf/NaN; `total_cmp` keeps the sort total for any bit pattern.
    #[test]
    fn reduce_db_survives_extreme_activity_increments() {
        let mut s = pigeonhole(7);
        // One bump of `cla_inc` overshoots RESCALE_LIMIT to infinity, and
        // `inf * (1/RESCALE_LIMIT)` stays infinite, so activities can hold
        // non-finite values when reduce_db sorts them.
        s.cla_inc = f64::MAX;
        s.var_inc = f64::MAX;
        s.max_learnts = 4;
        assert!(matches!(s.solve(), SolveResult::Unsat));
        assert!(s.stats().deleted_clauses > 0, "reduce_db must have run");
    }

    /// Satellite regression: clause-arena exhaustion surfaces as a typed
    /// `Unknown(ResourceExhausted)`, not a process abort.
    #[test]
    fn arena_exhaustion_surfaces_as_unknown() {
        // Mid-search exhaustion: room for the problem clauses but not for
        // learnt clauses.
        let mut s = pigeonhole(7);
        s.db.capacity = s.db.arena_words() as u32;
        assert_eq!(
            s.solve().stop_reason(),
            Some(StopReason::ResourceExhausted)
        );

        // Exhaustion while adding problem clauses poisons the solver: the
        // stored formula is incomplete, so answers become Unknown. Four
        // words hold the first binary clause (header + 2 lits) but not a
        // second one.
        let mut s = Solver::new(4);
        s.db.capacity = 4;
        assert!(s.add_clause([lit(0, true), lit(1, true)]));
        assert!(s.add_clause([lit(2, true), lit(3, true)])); // dropped
        assert_eq!(
            s.solve().stop_reason(),
            Some(StopReason::ResourceExhausted)
        );
    }

    /// Tentpole invariant: a forced collection at level 0 leaves the
    /// solver semantically identical — every model query agrees with an
    /// untouched clone — and structurally sound (watchers rewired, no
    /// tombstoned refs anywhere).
    #[test]
    fn collect_garbage_preserves_models_and_rewires_refs() {
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(77);
        let n = 8;
        let mut cnf = presat_logic::Cnf::new(n);
        for _ in 0..24 {
            let c: Vec<Lit> = (0..3)
                .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                .collect();
            cnf.add_clause(c);
        }
        let mut s = Solver::from_cnf(&cnf);
        let _ = s.solve(); // warm: learnt clauses, phases
        // Tombstone a few clause groups through retirement.
        for _ in 0..3 {
            let act = Lit::pos(s.add_var());
            for _ in 0..4 {
                let mut c = vec![!act];
                for _ in 0..2 {
                    c.push(lit(rng.gen_range(0..n), rng.gen_bool(0.5)));
                }
                s.add_clause(c);
            }
            let _ = s.solve_with_assumptions(&[act]);
            s.retire_group(act);
        }
        let twin = s.clone_at_root();
        s.collect_garbage();
        s.check_integrity();
        assert!(s.no_tombstoned_watchers(), "collection left dead watchers");
        assert!(s.stats().db_compactions >= 1);
        // Semantic equivalence under a sweep of assumption probes.
        let mut twin = twin;
        for _ in 0..24 {
            let a: Vec<Lit> = (0..2)
                .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                .collect();
            assert_eq!(
                s.solve_with_assumptions(&a).is_sat(),
                twin.solve_with_assumptions(&a).is_sat()
            );
        }
    }

    /// Mid-search collections (triggered from `reduce_db`) must keep
    /// locked reason clauses live and the proof intact.
    #[test]
    fn gc_mid_search_keeps_reasons_valid_and_proof_intact() {
        let mut s = pigeonhole(7);
        s.max_learnts = 4; // reduce constantly → tombstones → collections
        assert!(matches!(s.solve(), SolveResult::Unsat));
        assert!(
            s.stats().db_compactions > 0,
            "expected GC to trigger under heavy reduction: {:?}",
            s.stats()
        );
        assert!(s.stats().clauses_reclaimed > 0);
        s.check_integrity();
    }

    /// Deep retirement churn: arena stays bounded instead of growing
    /// monotonically with every retired group.
    #[test]
    fn retirement_churn_keeps_arena_bounded() {
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(5);
        let n = 6;
        let mut s = Solver::new(n);
        let mut peak_after_gc = 0usize;
        let mut total_allocated_words = 0usize;
        for _ in 0..40 {
            let act = Lit::pos(s.add_var());
            for _ in 0..6 {
                let mut c = vec![!act];
                for _ in 0..3 {
                    c.push(lit(rng.gen_range(0..n), rng.gen_bool(0.5)));
                }
                total_allocated_words += 1 + 4; // header + ¬act + 3 lits
                s.add_clause(c);
            }
            let _ = s.solve_with_assumptions(&[act]);
            s.retire_group(act);
            peak_after_gc = peak_after_gc.max(s.db.arena_words());
        }
        assert!(s.stats().db_compactions > 0, "GC never triggered");
        assert!(s.stats().clauses_reclaimed > 0);
        assert!(
            peak_after_gc < total_allocated_words,
            "arena never shrank: peak {peak_after_gc} vs allocated {total_allocated_words}"
        );
        s.check_integrity();
        assert!(s.solve().is_sat());
    }

    /// The arena gauge survives a stats reset: per-call snapshots report
    /// the resident arena inherited from earlier calls.
    #[test]
    fn arena_gauge_restamped_after_reset_stats() {
        let mut s = pigeonhole(5);
        let _ = s.solve();
        let resident = s.db.arena_bytes() as u64;
        assert!(s.stats().arena_bytes >= resident);
        s.reset_stats();
        assert_eq!(s.stats().arena_bytes, 0);
        let _ = s.solve();
        assert!(
            s.stats().arena_bytes >= resident,
            "solve entry must restamp the gauge"
        );
    }
}
