//! Activity-ordered indexed binary max-heap over variables (the VSIDS
//! decision order).

use presat_logic::Var;

/// A binary max-heap of variables keyed by an external activity array, with
/// an index map for `decrease`/`increase`-key and membership tests in O(1).
#[derive(Clone, Debug, Default)]
pub struct VarHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// `positions[v]` = index of `v` in `heap`, or `NOT_IN` if absent.
    positions: Vec<u32>,
}

const NOT_IN: u32 = u32::MAX;

impl VarHeap {
    /// Creates an empty heap able to hold variables `0..num_vars`.
    pub fn new(num_vars: usize) -> Self {
        VarHeap {
            heap: Vec::with_capacity(num_vars),
            positions: vec![NOT_IN; num_vars],
        }
    }

    /// Grows the variable space to `num_vars`.
    pub fn grow(&mut self, num_vars: usize) {
        if num_vars > self.positions.len() {
            self.positions.resize(num_vars, NOT_IN);
        }
    }

    /// `true` if no variables are queued.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of queued variables.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if `var` is currently in the heap.
    pub fn contains(&self, var: Var) -> bool {
        self.positions[var.index()] != NOT_IN
    }

    /// Inserts `var` (no-op if already present).
    pub fn insert(&mut self, var: Var, activity: &[f64]) {
        if self.contains(var) {
            return;
        }
        let i = self.heap.len();
        self.heap.push(var.index() as u32);
        self.positions[var.index()] = i as u32;
        self.sift_up(i, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0] as usize;
        let last = self.heap.pop().expect("non-empty");
        self.positions[top] = NOT_IN;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var::new(top))
    }

    /// Restores the heap property around `var` after its activity increased.
    pub fn update(&mut self, var: Var, activity: &[f64]) {
        let pos = self.positions[var.index()];
        if pos != NOT_IN {
            self.sift_up(pos as usize, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] > activity[self.heap[parent] as usize] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l] as usize] > activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.positions[self.heap[i] as usize] = i as u32;
        self.positions[self.heap[j] as usize] = j as u32;
    }

    #[cfg(test)]
    fn check_invariants(&self, activity: &[f64]) {
        for i in 1..self.heap.len() {
            let parent = (i - 1) / 2;
            assert!(
                activity[self.heap[parent] as usize] >= activity[self.heap[i] as usize],
                "heap property violated at {i}"
            );
        }
        for (i, &v) in self.heap.iter().enumerate() {
            assert_eq!(self.positions[v as usize], i as u32, "position map stale");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_order_follows_activity() {
        let activity = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut h = VarHeap::new(5);
        for i in 0..5 {
            h.insert(Var::new(i), &activity);
            h.check_invariants(&activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop(&activity).map(Var::index)).collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut h = VarHeap::new(2);
        h.insert(Var::new(0), &activity);
        h.insert(Var::new(0), &activity);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn update_after_bump_moves_var_up() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new(3);
        for i in 0..3 {
            h.insert(Var::new(i), &activity);
        }
        activity[0] = 10.0;
        h.update(Var::new(0), &activity);
        h.check_invariants(&activity);
        assert_eq!(h.pop(&activity), Some(Var::new(0)));
    }

    #[test]
    fn contains_and_membership_tracking() {
        let activity = vec![1.0; 3];
        let mut h = VarHeap::new(3);
        h.insert(Var::new(1), &activity);
        assert!(h.contains(Var::new(1)));
        assert!(!h.contains(Var::new(0)));
        let popped = h.pop(&activity).unwrap();
        assert!(!h.contains(popped));
        assert!(h.is_empty());
    }

    #[test]
    fn grow_extends_capacity() {
        let activity = vec![1.0; 10];
        let mut h = VarHeap::new(2);
        h.grow(10);
        h.insert(Var::new(9), &activity);
        assert!(h.contains(Var::new(9)));
    }

    #[test]
    fn randomized_against_sort() {
        // deterministic LCG to avoid a rand dev-dependency in this module
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..20 {
            let n = 64;
            let activity: Vec<f64> = (0..n).map(|_| next()).collect();
            let mut h = VarHeap::new(n);
            for i in 0..n {
                h.insert(Var::new(i), &activity);
            }
            h.check_invariants(&activity);
            let mut popped: Vec<f64> =
                std::iter::from_fn(|| h.pop(&activity).map(|v| activity[v.index()])).collect();
            let mut sorted = popped.clone();
            sorted.sort_by(|a, b| b.total_cmp(a));
            popped.truncate(sorted.len());
            assert_eq!(popped, sorted);
        }
    }
}
