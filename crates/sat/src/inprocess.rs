//! Root-level inprocessing over the flat clause arena.
//!
//! [`Solver::inprocess`] runs at session boundaries (after an activation
//! group retires) and strengthens the clause database in place with three
//! equivalence-preserving rewrites:
//!
//! * **root reduction** — clauses satisfied by a level-0 literal are
//!   tombstoned; level-0-falsified literals are erased;
//! * **subsumption / self-subsuming resolution** — over occurrence lists
//!   shared with the [`crate::simplify`] preprocessor (see
//!   [`crate::subsume`]);
//! * **vivification** — assume the negation of a clause literal-by-literal
//!   under unit propagation and shrink the clause to the prefix that
//!   already yields a conflict or an implied literal.
//!
//! # Admissibility
//!
//! Every rewrite replaces a clause `C` by a clause `C' ⊆ C` with `F ⊨ C'`
//! (or deletes `C` when `F ⊨ C` already) — the clause set before and after
//! has exactly the same models, so the all-solutions engines above produce
//! identical cube sets with inprocessing on or off. Three sharp edges are
//! handled explicitly:
//!
//! * **learnt vs problem clauses** — a learnt clause is itself only a
//!   consequence of the problem clauses, so it may *strengthen* a problem
//!   clause (the resolvent joins the formula as a consequence) but must
//!   never *delete* one: the surviving learnt can be dropped later by
//!   `reduce_db`, which would silently weaken the formula.
//! * **activation literals** — a group literal `act` occurs only
//!   negatively in clauses, so no resolution can eliminate `¬act` from a
//!   group clause; consequences derived from still-active groups remain
//!   valid after retirement because retiring only *adds* the unit `¬act`.
//! * **binary clauses** — their watch entries are literal-only and
//!   permanent (see `Solver::attach`), so binary arena clauses are never
//!   deleted or rewritten; they still serve as subsumers.
//!
//! All passes run at decision level 0 where every assigned variable's
//! reason slot is dead weight (conflict analysis never follows level-0
//! literals and garbage collection clears those slots), so no lock checks
//! are needed before tombstoning.

use presat_logic::Lit;

use crate::clause::ClauseRef;
use crate::subsume::{Action, Subsumer};
use crate::types::Lbool;

use super::{Reason, Solver};

/// Behaviour knobs for [`Solver::inprocess`]. Budgets are per *round*;
/// a default-constructed config enables inprocessing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverConfig {
    /// Master switch; with `false`, [`Solver::inprocess`] is a no-op and
    /// the solver behaves bit-identically to one that never calls it.
    pub inprocess: bool,
    /// Subsumption budget: literal-level subset checks per round.
    pub inprocess_subsumption_checks: u64,
    /// Vivification budget: unit propagations per round.
    pub inprocess_vivify_props: u64,
    /// Maximum subsume→vivify rounds per [`Solver::inprocess`] call
    /// (stops early once a round changes nothing).
    pub inprocess_rounds: u32,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            inprocess: true,
            inprocess_subsumption_checks: 200_000,
            inprocess_vivify_props: 50_000,
            inprocess_rounds: 2,
        }
    }
}

impl Solver {
    /// Current inprocessing configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Replaces the inprocessing configuration.
    pub fn set_config(&mut self, config: SolverConfig) {
        self.config = config;
    }

    /// Enables or disables root-level inprocessing (shorthand for editing
    /// [`SolverConfig::inprocess`]).
    pub fn set_inprocess(&mut self, on: bool) {
        self.config.inprocess = on;
    }

    /// Runs root-level inprocessing (see the module docs): root reduction,
    /// subsumption, self-subsuming resolution, and vivification, for up to
    /// [`SolverConfig::inprocess_rounds`] rounds or until a round changes
    /// nothing. Equivalence-preserving: the model set of the clause
    /// database is untouched. Returns [`Solver::is_ok`] — strengthening
    /// can refute the formula outright.
    ///
    /// # Panics
    ///
    /// Panics if called above decision level 0.
    pub fn inprocess(&mut self) -> bool {
        assert_eq!(self.decision_level(), 0, "inprocess requires level 0");
        if !self.ok || !self.config.inprocess {
            return self.ok;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return false;
        }
        for _ in 0..self.config.inprocess_rounds {
            self.stats.inprocess_rounds += 1;
            let subsumed = self.inprocess_subsume();
            if !self.ok {
                return false;
            }
            let vivified = self.inprocess_vivify();
            if !self.ok {
                return false;
            }
            if !subsumed && !vivified {
                break;
            }
        }
        self.db.sweep_learnt_index();
        self.stats.learnt_clauses = self.db.live_learnts() as u64;
        self.maybe_collect_garbage();
        self.ok
    }

    /// One subsumption round: loads every live clause (root-reduced) into
    /// the shared [`Subsumer`], runs it to a fixed point or budget, and
    /// writes deletions/strengthenings back to the arena. Returns whether
    /// anything changed.
    fn inprocess_subsume(&mut self) -> bool {
        let refs: Vec<ClauseRef> = self.db.live_refs().collect();
        let mut sub = Subsumer::new(self.num_vars());
        // Parallel to subsumer ids:
        let mut ids: Vec<ClauseRef> = Vec::new();
        let mut learnt_of: Vec<bool> = Vec::new();
        // Target-eligible = long arena clause (binaries are permanent).
        let mut eligible: Vec<bool> = Vec::new();
        // Clauses that already shrank during root reduction.
        let mut root_changed: Vec<bool> = Vec::new();
        let mut changed_any = false;
        let mut scratch: Vec<Lit> = Vec::new();
        for cref in refs {
            let m = self.db.meta(cref);
            scratch.clear();
            let mut satisfied = false;
            for i in 0..m.len {
                let l = self.db.lit_at(m.start + i);
                match self.lit_value(l) {
                    Lbool::True => {
                        satisfied = true;
                        break;
                    }
                    Lbool::False => {}
                    Lbool::Undef => scratch.push(l),
                }
            }
            if satisfied {
                if m.len >= 3 {
                    self.db.delete(cref);
                    self.stats.subsumed_clauses += 1;
                    changed_any = true;
                }
                continue;
            }
            // At a root propagation fixpoint a non-satisfied clause keeps
            // two non-false watches, so the reduced form is never unit.
            debug_assert!(scratch.len() >= 2);
            let dropped = m.len - scratch.len();
            let id = sub.push(&scratch);
            debug_assert_eq!(id as usize, ids.len());
            ids.push(cref);
            learnt_of.push(m.learnt);
            eligible.push(m.len >= 3);
            root_changed.push(dropped > 0);
        }

        let out = sub.run(
            self.config.inprocess_subsumption_checks,
            |c_id, d_id, pivot| {
                if !eligible[d_id as usize] {
                    return Action::Skip;
                }
                match pivot {
                    // Deleting a problem clause on the strength of a learnt
                    // subsumer would let a later `reduce_db` weaken the
                    // formula; strengthening is always sound (the resolvent
                    // joins the formula as a consequence).
                    None if learnt_of[d_id as usize] || !learnt_of[c_id as usize] => {
                        Action::DeleteTarget
                    }
                    None => Action::Skip,
                    Some(_) => Action::StrengthenTarget,
                }
            },
        );
        self.stats.subsumed_clauses += out.deleted;
        self.stats.strengthened_lits += out.strengthened_lits;
        if out.unsat {
            self.ok = false;
            return true;
        }
        for (idx, &cref) in ids.iter().enumerate() {
            let id = idx as u32;
            if sub.is_dead(id) {
                self.db.delete(cref);
                changed_any = true;
            } else if sub.is_changed(id) || root_changed[idx] {
                if root_changed[idx] {
                    self.stats.strengthened_lits +=
                        (self.db.len_of(cref) - sub.lits(id).len()) as u64;
                }
                self.replace_clause(cref, sub.lits(id));
                changed_any = true;
                if !self.ok {
                    return true;
                }
            }
        }
        changed_any
    }

    /// One vivification round: for each long clause `C`, assume `¬l` for
    /// its literals in order under unit propagation; a conflict or an
    /// implied literal proves the prefix processed so far is already a
    /// consequence of the formula, so `C` shrinks to it. `C` stays
    /// attached throughout — a self-derivation only costs shrink quality,
    /// never soundness (`C' ⊆ C` and `F ⊨ C'` hold regardless). Returns
    /// whether anything changed.
    fn inprocess_vivify(&mut self) -> bool {
        let start = self.stats.propagations;
        let budget = self.config.inprocess_vivify_props;
        let targets: Vec<ClauseRef> = {
            let db = &self.db;
            db.live_refs().filter(|&c| db.len_of(c) >= 3).collect()
        };
        let mut changed_any = false;
        let mut lits: Vec<Lit> = Vec::new();
        let mut kept: Vec<Lit> = Vec::new();
        for cref in targets {
            if self.stats.propagations - start >= budget {
                break;
            }
            if self.db.is_deleted(cref) {
                continue;
            }
            let m = self.db.meta(cref);
            lits.clear();
            lits.extend((0..m.len).map(|i| self.db.lit_at(m.start + i)));
            kept.clear();
            debug_assert_eq!(self.decision_level(), 0);
            let mut shrunk = false;
            for (i, &li) in lits.iter().enumerate() {
                match self.lit_value(li) {
                    // `F ∧ ¬kept ⊨ li`: the clause `kept ∨ li` is implied,
                    // and it subsumes `C`.
                    Lbool::True => {
                        kept.push(li);
                        shrunk = i + 1 < lits.len();
                        break;
                    }
                    // `F ∧ ¬kept ⊨ ¬li`: any model escaping `kept` also
                    // falsifies `li`, so `li` is dead weight in `C`.
                    Lbool::False => {
                        shrunk = true;
                    }
                    Lbool::Undef => {
                        self.new_decision_level();
                        self.enqueue(!li, Reason::None);
                        if self.propagate().is_some() {
                            // `F ∧ ¬kept ∧ ¬li ⊢ ⊥`, i.e. `F ⊨ kept ∨ li`.
                            kept.push(li);
                            shrunk = i + 1 < lits.len();
                            break;
                        }
                        kept.push(li);
                    }
                }
            }
            self.cancel_until(0);
            if shrunk {
                self.stats.vivified_clauses += 1;
                self.stats.strengthened_lits += (lits.len() - kept.len()) as u64;
                let shrunk_to = kept.clone();
                self.replace_clause(cref, &shrunk_to);
                changed_any = true;
                if !self.ok {
                    break;
                }
            }
        }
        changed_any
    }

    /// Swaps a long clause for a strictly stronger one: the replacement is
    /// allocated and attached *before* the original is tombstoned, so an
    /// arena-full failure keeps the original and never weakens the
    /// formula. Shrinking to a unit asserts it at the root (with
    /// propagation); shrinking to nothing refutes the formula. The literal
    /// list is re-filtered against the current root assignment first —
    /// unit cascades from earlier replacements may have decided literals
    /// since the caller computed it.
    fn replace_clause(&mut self, old: ClauseRef, lits: &[Lit]) {
        debug_assert_eq!(self.decision_level(), 0);
        debug_assert!(self.db.len_of(old) >= 3, "binary clauses are permanent");
        let mut reduced: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.lit_value(l) {
                Lbool::True => {
                    self.db.delete(old);
                    self.stats.subsumed_clauses += 1;
                    return;
                }
                Lbool::False => {}
                Lbool::Undef => reduced.push(l),
            }
        }
        match reduced.len() {
            0 => {
                self.db.delete(old);
                self.ok = false;
            }
            1 => {
                self.db.delete(old);
                self.enqueue(reduced[0], Reason::None);
                self.ok = self.propagate().is_none();
            }
            _ => {
                let learnt = self.db.is_learnt(old);
                let lbd = if learnt {
                    self.db.lbd(old).min(reduced.len() as u32)
                } else {
                    0
                };
                if let Ok(new) = self.db.alloc(&reduced, learnt, lbd) {
                    if learnt {
                        let act = self.db.activity(old);
                        self.db.set_activity(new, act);
                    }
                    self.attach(new);
                    self.note_arena_size();
                    self.db.delete(old);
                }
                // On ArenaFull the original (weaker but sound) clause
                // simply stays.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use presat_logic::{Cnf, Lit, Var};

    use crate::types::SolveResult;
    use crate::Solver;

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    /// Enumerate all models of the solver's formula over `n` vars by
    /// truth-table restriction of the given CNF (the oracle), and by
    /// solve-and-block on the solver under test.
    fn models(cnf: &Cnf, n: usize) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        for bits in 0..(1u32 << n) {
            let assign: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let sat = cnf.clauses().iter().all(|c| {
                c.iter()
                    .any(|l| assign[l.var().index()] == l.is_pos())
            });
            if sat {
                out.push(assign);
            }
        }
        out
    }

    fn solver_models(s: &mut Solver, n: usize) -> Vec<Vec<bool>> {
        let mut out = Vec::new();
        loop {
            match s.solve() {
                SolveResult::Sat(m) => {
                    let assign: Vec<bool> =
                        (0..n).map(|i| m.value(Var::new(i)) == Some(true)).collect();
                    let block: Vec<Lit> = (0..n)
                        .map(|i| Lit::with_phase(Var::new(i), !assign[i]))
                        .collect();
                    out.push(assign);
                    if !s.add_clause(block) {
                        break;
                    }
                }
                SolveResult::Unsat => break,
                SolveResult::Unknown(r) => panic!("unbudgeted solve stopped: {r}"),
            }
        }
        out.sort();
        out
    }

    #[test]
    fn subsumed_duplicates_are_deleted() {
        let mut s = Solver::new(4);
        s.add_clause([lit(0, true), lit(1, true)]);
        s.add_clause([lit(0, true), lit(1, true), lit(2, true)]);
        s.add_clause([lit(0, true), lit(1, true), lit(3, false)]);
        assert!(s.inprocess());
        assert_eq!(s.stats().subsumed_clauses, 2);
        assert!(s.stats().inprocess_rounds >= 1);
    }

    #[test]
    fn self_subsumption_strengthens_long_clauses() {
        // (a ∨ b) strengthens (a ∨ ¬b ∨ c) to (a ∨ c).
        let mut s = Solver::new(3);
        s.add_clause([lit(0, true), lit(1, true)]);
        s.add_clause([lit(0, true), lit(1, false), lit(2, true)]);
        assert!(s.inprocess());
        assert!(s.stats().strengthened_lits >= 1);
    }

    #[test]
    fn vivification_shrinks_an_entailed_superset() {
        // Binary chains make the negation of any one literal of
        // (x ∨ y ∨ z) propagate another one to true, so vivification
        // shrinks the clause no matter what order watch swaps have left
        // its literal array in: ¬x → u → y and ¬x → w → z, symmetrically
        // for ¬y and ¬z. None of the binaries subsumes or strengthens the
        // wide clause, so only vivification can touch it.
        let (x, y, z) = (lit(0, true), lit(1, true), lit(2, true));
        let (u, v, w) = (lit(3, true), lit(4, true), lit(5, true));
        let mut s = Solver::new(6);
        s.add_clause([x, u]);
        s.add_clause([y, !u]);
        s.add_clause([y, v]);
        s.add_clause([z, !v]);
        s.add_clause([x, w]);
        s.add_clause([z, !w]);
        s.add_clause([x, y, z]);
        assert!(s.inprocess());
        assert!(
            s.stats().vivified_clauses >= 1,
            "wide clause should shrink: {:?}",
            s.stats()
        );
    }

    #[test]
    fn inprocess_off_is_a_no_op() {
        let mut s = Solver::new(3);
        s.set_inprocess(false);
        s.add_clause([lit(0, true), lit(1, true)]);
        s.add_clause([lit(0, true), lit(1, true), lit(2, true)]);
        let before = *s.stats();
        assert!(s.inprocess());
        assert_eq!(*s.stats(), before);
    }

    #[test]
    fn strengthening_can_refute_the_formula() {
        let mut s = Solver::new(2);
        s.add_clause([lit(0, true), lit(1, true)]);
        s.add_clause([lit(0, true), lit(1, false)]);
        s.add_clause([lit(0, false), lit(1, true)]);
        s.add_clause([lit(0, false), lit(1, false)]);
        // Binary clauses are permanent, so this needs the solver, not the
        // inprocessor, to notice; inprocess must at least stay sound.
        assert!(s.inprocess() || !s.is_ok());
        assert!(matches!(s.solve(), SolveResult::Unsat));
    }

    #[test]
    fn model_set_is_preserved_on_random_formulas() {
        let mut seed = 0x1234_5678_u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..60 {
            let n = 4 + (rng() % 4) as usize; // 4..=7 vars
            let m = 3 + (rng() % 12) as usize;
            let mut cnf = Cnf::new(n);
            for _ in 0..m {
                let len = 1 + (rng() % 3) as usize + (rng() % 2) as usize;
                let c: Vec<Lit> = (0..len)
                    .map(|_| lit((rng() % n as u64) as usize, rng() % 2 == 0))
                    .collect();
                cnf.add_clause(c);
            }
            let expect = {
                let mut v = models(&cnf, n);
                v.sort();
                v
            };
            let mut s = Solver::from_cnf(&cnf);
            s.inprocess();
            // Interleave search (grows learnts) with a second round, then
            // enumerate the remainder — the combined model list must match
            // the truth table exactly.
            s.inprocess();
            let got = solver_models(&mut s, n);
            assert_eq!(got, expect, "model set changed by inprocessing");
        }
    }

    #[test]
    fn inprocess_interleaves_with_retirement() {
        // Activation-group protocol: group clauses (¬act ∨ …) stay intact
        // while active, inprocess after retirement must not disturb later
        // queries.
        let n = 4;
        let mut s = Solver::new(n + 1);
        let act = lit(n, true);
        s.add_clause([lit(0, true), lit(1, true), lit(2, true)]);
        s.add_clause([!act, lit(0, false), lit(3, true)]);
        s.add_clause([!act, lit(1, true), lit(3, false), lit(2, true)]);
        assert!(s.solve_with_assumptions(&[act]).is_sat());
        s.retire_group(act);
        assert!(s.inprocess());
        // The base formula is untouched by group retirement + inprocess.
        let mut base = Solver::new(n);
        base.add_clause([lit(0, true), lit(1, true), lit(2, true)]);
        let got: Vec<Vec<bool>> = solver_models(&mut s, n);
        let expect = solver_models(&mut base, n);
        assert_eq!(got, expect);
    }
}
