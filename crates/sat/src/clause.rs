//! Clause storage: one flat `u32` arena addressed by word-offset
//! [`ClauseRef`]s.
//!
//! Every clause lives *inline* in a single contiguous `Vec<u32>` — no
//! per-clause heap allocation, no pointer chase on the propagation hot
//! loop, and cloning the whole database for a parallel enumeration worker
//! is one `memcpy`-shaped buffer copy. The layout per clause is:
//!
//! ```text
//! problem clause:  [header][lit0][lit1]…[litk]
//! learnt clause:   [header][lbd][act_lo][act_hi][lit0][lit1]…[litk]
//! ```
//!
//! * `header` packs the literal count (low 28 bits) with the `learnt`
//!   (bit 30) and `deleted` (bit 31) flags;
//! * learnt clauses carry their LBD and a bump-decay activity stored as the
//!   `f64` bit pattern split across two words (keeping full `f64`
//!   precision so the `reduce_db` sort order is bit-identical to the old
//!   boxed representation);
//! * literals are stored as [`Lit::code`] words.
//!
//! Deletion tombstones a clause in place (watchers prune lazily, exactly as
//! before); the bytes are reclaimed by [`ClauseDb::compact`], which copies
//! the live clauses into a fresh buffer in allocation order and hands back
//! a [`Compaction`] for the solver to rewire every outstanding
//! `ClauseRef` (watch lists, reason slots, learnt index). Between
//! compactions every `ClauseRef` stays stable — the arena only ever grows
//! at the tail — so the solver needs no read barriers.

use presat_logic::Lit;

/// Word offset of a clause's header in the solver's flat clause arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct ClauseRef(pub(crate) u32);

const LEN_MASK: u32 = (1 << 28) - 1;
const LEARNT_BIT: u32 = 1 << 30;
const DELETED_BIT: u32 = 1 << 31;

/// Header words beyond the header itself: learnt clauses store
/// `[lbd][act_lo][act_hi]` before their literals.
const LEARNT_EXTRA: usize = 3;

/// Decoded clause header plus the word offset of its first literal — one
/// header read serves the whole propagation visit.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ClauseMeta {
    /// Word offset of `lit0`.
    pub(crate) start: usize,
    /// Number of literals.
    pub(crate) len: usize,
    pub(crate) learnt: bool,
    pub(crate) deleted: bool,
}

/// Typed error: the clause arena has no room for another clause. Callers
/// must not abort on it — the solver surfaces it as
/// [`SolveResult::Unknown`](crate::SolveResult::Unknown) with
/// [`StopReason::ResourceExhausted`](crate::StopReason::ResourceExhausted).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct ArenaFull;

/// The flat clause arena (see the module docs for the layout).
#[derive(Clone, Debug)]
pub(crate) struct ClauseDb {
    arena: Vec<u32>,
    /// Refs of learnt clauses still alive, for reduction sweeps.
    pub(crate) learnts: Vec<ClauseRef>,
    /// Maximum arena size in **words** before [`ClauseDb::alloc`] reports
    /// [`ArenaFull`]. Defaults to the `u32` offset space of [`ClauseRef`];
    /// tests shrink it to exercise the exhaustion path without allocating
    /// gigabytes.
    pub(crate) capacity: u32,
    /// Words held by tombstoned clauses (the compaction trigger input).
    wasted: usize,
    /// Live learnt clauses, maintained incrementally so the hot-loop
    /// `live_learnts` check is O(1) instead of a filter over the index.
    live_learnt: usize,
}

impl Default for ClauseDb {
    fn default() -> Self {
        ClauseDb {
            arena: Vec::new(),
            learnts: Vec::new(),
            capacity: u32::MAX,
            wasted: 0,
            live_learnt: 0,
        }
    }
}

/// The old→new offset map of one [`ClauseDb::compact`] pass: the retired
/// buffer with each live clause's new offset written over its first
/// metadata word. Deleted clauses map to `None`.
pub(crate) struct Compaction {
    old: Vec<u32>,
    /// Tombstoned clauses whose storage was reclaimed.
    pub(crate) reclaimed: u64,
}

impl Compaction {
    /// New home of `cref`, or `None` if the clause was tombstoned.
    pub(crate) fn remap(&self, cref: ClauseRef) -> Option<ClauseRef> {
        let off = cref.0 as usize;
        if self.old[off] & DELETED_BIT != 0 {
            None
        } else {
            Some(ClauseRef(self.old[off + 1]))
        }
    }
}

impl ClauseDb {
    pub(crate) fn new() -> Self {
        ClauseDb::default()
    }

    /// Words a clause of `len` literals occupies, header included.
    #[inline]
    fn words(len: usize, learnt: bool) -> usize {
        1 + if learnt { LEARNT_EXTRA } else { 0 } + len
    }

    #[inline]
    fn header(&self, cref: ClauseRef) -> u32 {
        self.arena[cref.0 as usize]
    }

    /// Decodes a clause header; one bounds-checked read.
    #[inline]
    pub(crate) fn meta(&self, cref: ClauseRef) -> ClauseMeta {
        let h = self.header(cref);
        let learnt = h & LEARNT_BIT != 0;
        ClauseMeta {
            start: cref.0 as usize + 1 + if learnt { LEARNT_EXTRA } else { 0 },
            len: (h & LEN_MASK) as usize,
            learnt,
            deleted: h & DELETED_BIT != 0,
        }
    }

    #[inline]
    pub(crate) fn len_of(&self, cref: ClauseRef) -> usize {
        (self.header(cref) & LEN_MASK) as usize
    }

    #[inline]
    pub(crate) fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.header(cref) & LEARNT_BIT != 0
    }

    #[inline]
    pub(crate) fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.header(cref) & DELETED_BIT != 0
    }

    /// The clause's `i`-th literal.
    #[inline]
    pub(crate) fn lit(&self, cref: ClauseRef, i: usize) -> Lit {
        let m = self.meta(cref);
        debug_assert!(i < m.len);
        Lit::from_code(self.arena[m.start + i])
    }

    /// The literal at absolute arena word `w` (callers derive `w` from
    /// [`ClauseDb::meta`]; this skips re-decoding the header per literal on
    /// the propagation hot loop).
    #[inline]
    pub(crate) fn lit_at(&self, w: usize) -> Lit {
        Lit::from_code(self.arena[w])
    }

    /// Swaps two literal words (watch normalization / replacement).
    #[inline]
    pub(crate) fn swap_words(&mut self, a: usize, b: usize) {
        self.arena.swap(a, b);
    }

    /// Literal-block distance of a learnt clause.
    #[inline]
    pub(crate) fn lbd(&self, cref: ClauseRef) -> u32 {
        debug_assert!(self.is_learnt(cref));
        self.arena[cref.0 as usize + 1]
    }

    /// Reduction-heuristic activity of a learnt clause (full `f64`,
    /// bit-split across two arena words).
    #[inline]
    pub(crate) fn activity(&self, cref: ClauseRef) -> f64 {
        debug_assert!(self.is_learnt(cref));
        let off = cref.0 as usize;
        let lo = self.arena[off + 2] as u64;
        let hi = self.arena[off + 3] as u64;
        f64::from_bits(hi << 32 | lo)
    }

    #[inline]
    pub(crate) fn set_activity(&mut self, cref: ClauseRef, activity: f64) {
        debug_assert!(self.is_learnt(cref));
        let off = cref.0 as usize;
        let bits = activity.to_bits();
        self.arena[off + 2] = bits as u32;
        self.arena[off + 3] = (bits >> 32) as u32;
    }

    /// Appends a clause to the arena tail. Existing refs are untouched.
    pub(crate) fn alloc(
        &mut self,
        lits: &[Lit],
        learnt: bool,
        lbd: u32,
    ) -> Result<ClauseRef, ArenaFull> {
        debug_assert!(lits.len() >= 2, "unit clauses live on the trail");
        assert!(lits.len() <= LEN_MASK as usize, "clause exceeds header len");
        let words = Self::words(lits.len(), learnt);
        let off = self.arena.len();
        if off + words > self.capacity as usize || off + words > u32::MAX as usize {
            return Err(ArenaFull);
        }
        let cref = ClauseRef(off as u32);
        let header = lits.len() as u32 | if learnt { LEARNT_BIT } else { 0 };
        self.arena.push(header);
        if learnt {
            self.arena.push(lbd);
            self.arena.push(0); // activity = 0.0
            self.arena.push(0);
        }
        for &l in lits {
            self.arena.push(l.code() as u32);
        }
        if learnt {
            self.learnts.push(cref);
            self.live_learnt += 1;
        }
        Ok(cref)
    }

    /// Tombstones a clause (idempotent); bytes are reclaimed by
    /// [`ClauseDb::compact`].
    pub(crate) fn delete(&mut self, cref: ClauseRef) {
        let h = self.header(cref);
        if h & DELETED_BIT != 0 {
            return;
        }
        self.arena[cref.0 as usize] = h | DELETED_BIT;
        self.wasted += Self::words((h & LEN_MASK) as usize, h & LEARNT_BIT != 0);
        if h & LEARNT_BIT != 0 {
            self.live_learnt -= 1;
        }
    }

    /// Tombstones every live clause of length ≥ 3 containing `dead`
    /// (activation-group retirement); returns how many were swept.
    pub(crate) fn delete_containing_long(&mut self, dead: Lit) -> u64 {
        let code = dead.code() as u32;
        let mut removed = 0u64;
        let mut off = 0usize;
        while off < self.arena.len() {
            let h = self.arena[off];
            let len = (h & LEN_MASK) as usize;
            let learnt = h & LEARNT_BIT != 0;
            let words = Self::words(len, learnt);
            let start = off + words - len;
            if h & DELETED_BIT == 0
                && len >= 3
                && self.arena[start..off + words].contains(&code)
            {
                self.arena[off] = h | DELETED_BIT;
                self.wasted += words;
                if learnt {
                    self.live_learnt -= 1;
                }
                removed += 1;
            }
            off += words;
        }
        removed
    }

    /// Iterates the refs of every live (non-tombstoned) clause in
    /// allocation order — the scan surface for the inprocessor's
    /// occurrence lists and the integrity audits.
    pub(crate) fn live_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        let mut off = 0usize;
        std::iter::from_fn(move || {
            while off < self.arena.len() {
                let h = self.arena[off];
                let len = (h & LEN_MASK) as usize;
                let learnt = h & LEARNT_BIT != 0;
                let cref = ClauseRef(off as u32);
                off += Self::words(len, learnt);
                if h & DELETED_BIT == 0 {
                    return Some(cref);
                }
            }
            None
        })
    }

    /// Arena size in words (live clauses plus tombstones).
    pub(crate) fn arena_words(&self) -> usize {
        self.arena.len()
    }

    /// Arena size in bytes.
    pub(crate) fn arena_bytes(&self) -> usize {
        self.arena.len() * std::mem::size_of::<u32>()
    }

    /// Words currently held by tombstoned clauses.
    pub(crate) fn wasted_words(&self) -> usize {
        self.wasted
    }

    /// Number of live learnt clauses (O(1): maintained incrementally).
    pub(crate) fn live_learnts(&self) -> usize {
        self.live_learnt
    }

    /// Drops tombstoned refs from the learnt index (not from the arena).
    pub(crate) fn sweep_learnt_index(&mut self) {
        let arena = &self.arena;
        self.learnts
            .retain(|&c| arena[c.0 as usize] & DELETED_BIT == 0);
    }

    /// Multiplies every learnt clause's activity by `factor` in place —
    /// the rescale step of activity decay.
    pub(crate) fn rescale_learnt_activity(&mut self, factor: f64) {
        for i in 0..self.learnts.len() {
            let cref = self.learnts[i];
            let a = self.activity(cref);
            self.set_activity(cref, a * factor);
        }
    }

    /// Copies every live clause into a fresh buffer (allocation order
    /// preserved, so relative `ClauseRef` order is stable), rewrites the
    /// learnt index, and returns the [`Compaction`] map the solver uses to
    /// rewire watch lists and reason slots. The caller must have swept the
    /// learnt index first.
    pub(crate) fn compact(&mut self) -> Compaction {
        let mut old = std::mem::take(&mut self.arena);
        let mut fresh = Vec::with_capacity(old.len().saturating_sub(self.wasted));
        let mut reclaimed = 0u64;
        let mut off = 0usize;
        while off < old.len() {
            let h = old[off];
            let words = Self::words((h & LEN_MASK) as usize, h & LEARNT_BIT != 0);
            if h & DELETED_BIT == 0 {
                let new_off = fresh.len() as u32;
                fresh.extend_from_slice(&old[off..off + words]);
                // The old storage is dead now; its first metadata word
                // becomes the forwarding pointer `remap` reads.
                old[off + 1] = new_off;
            } else {
                reclaimed += 1;
            }
            off += words;
        }
        self.arena = fresh;
        self.wasted = 0;
        let compaction = Compaction { old, reclaimed };
        for cref in &mut self.learnts {
            *cref = compaction
                .remap(*cref)
                .expect("learnt index swept before compaction");
        }
        compaction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::Var;

    fn lit(v: usize) -> Lit {
        Lit::pos(Var::new(v))
    }

    #[test]
    fn alloc_and_read_back() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&[lit(0), lit(1)], false, 0).unwrap();
        let m = db.meta(c);
        assert_eq!(m.len, 2);
        assert!(!m.learnt && !m.deleted);
        assert_eq!(db.lit(c, 0), lit(0));
        assert_eq!(db.lit(c, 1), lit(1));
        assert_eq!(db.arena_words(), 3); // header + 2 lits
    }

    #[test]
    fn learnt_layout_carries_lbd_and_f64_activity() {
        let mut db = ClauseDb::new();
        let c = db.alloc(&[lit(0), lit(1), lit(2)], true, 7).unwrap();
        assert_eq!(db.lbd(c), 7);
        assert_eq!(db.activity(c), 0.0);
        db.set_activity(c, 1.0 + f64::EPSILON);
        assert_eq!(db.activity(c), 1.0 + f64::EPSILON, "full f64 round-trip");
        assert_eq!(db.learnts, vec![c]);
        assert_eq!(db.live_learnts(), 1);
        assert_eq!(db.arena_words(), 1 + 3 + 3);
    }

    #[test]
    fn alloc_past_capacity_is_a_typed_error_not_a_panic() {
        let mut db = ClauseDb::new();
        db.capacity = 6; // room for one 3-word binary clause, not two clauses
        db.alloc(&[lit(0), lit(1)], false, 0).unwrap();
        assert_eq!(db.alloc(&[lit(2), lit(3), lit(4)], false, 0), Err(ArenaFull));
        // The arena itself is untouched by the failed allocation.
        assert_eq!(db.arena_words(), 3);
    }

    #[test]
    fn delete_tombstones_tracks_waste_and_sweep() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&[lit(0), lit(1)], true, 1).unwrap();
        let b = db.alloc(&[lit(1), lit(2)], true, 1).unwrap();
        db.delete(a);
        db.delete(a); // idempotent
        assert!(db.is_deleted(a));
        assert_eq!(db.wasted_words(), 6); // one learnt binary clause
        assert_eq!(db.live_learnts(), 1);
        db.sweep_learnt_index();
        assert_eq!(db.learnts, vec![b]);
    }

    #[test]
    fn delete_containing_long_skips_short_and_dead_clauses() {
        let mut db = ClauseDb::new();
        let dead = lit(9);
        let bin = db.alloc(&[dead, lit(0)], false, 0).unwrap();
        let long = db.alloc(&[dead, lit(0), lit(1)], false, 0).unwrap();
        let other = db.alloc(&[lit(2), lit(3), lit(4)], false, 0).unwrap();
        assert_eq!(db.delete_containing_long(dead), 1);
        assert!(!db.is_deleted(bin), "binary clauses stay for the fast path");
        assert!(db.is_deleted(long));
        assert!(!db.is_deleted(other));
        assert_eq!(db.delete_containing_long(dead), 0, "already tombstoned");
    }

    #[test]
    fn compaction_moves_live_clauses_and_maps_refs() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&[lit(0), lit(1), lit(2)], false, 0).unwrap();
        let b = db.alloc(&[lit(3), lit(4)], true, 2).unwrap();
        let c = db.alloc(&[lit(5), lit(6), lit(7)], false, 0).unwrap();
        db.set_activity(b, 42.5);
        db.delete(a);
        db.sweep_learnt_index();
        let before = db.arena_words();
        let map = db.compact();
        assert_eq!(map.reclaimed, 1);
        assert_eq!(db.arena_words(), before - 4); // a: header + 3 lits
        assert_eq!(db.wasted_words(), 0);
        assert_eq!(map.remap(a), None);
        let b2 = map.remap(b).unwrap();
        let c2 = map.remap(c).unwrap();
        assert_eq!(b2, ClauseRef(0), "live clauses slide to the front");
        assert_eq!(db.lit(b2, 0), lit(3));
        assert_eq!(db.lit(b2, 1), lit(4));
        assert_eq!(db.activity(b2), 42.5, "metadata survives the move");
        assert_eq!(db.lbd(b2), 2);
        assert_eq!(db.lit(c2, 2), lit(7));
        assert_eq!(db.learnts, vec![b2], "learnt index rewired");
    }

    #[test]
    fn compaction_of_all_live_arena_is_identity() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&[lit(0), lit(1)], false, 0).unwrap();
        let b = db.alloc(&[lit(2), lit(3)], true, 1).unwrap();
        let map = db.compact();
        assert_eq!(map.reclaimed, 0);
        assert_eq!(map.remap(a), Some(a));
        assert_eq!(map.remap(b), Some(b));
    }
}
