//! Clause storage: a slab arena of clauses addressed by [`ClauseRef`].

use presat_logic::Lit;

/// Index of a clause in the solver's clause arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct ClauseRef(pub(crate) u32);

/// A stored clause with learning metadata.
#[derive(Clone, Debug)]
pub(crate) struct Clause {
    pub(crate) lits: Vec<Lit>,
    /// `true` for conflict-learnt clauses (candidates for deletion).
    pub(crate) learnt: bool,
    /// Literal-block distance at learning time (glue); lower = keep longer.
    pub(crate) lbd: u32,
    /// Bump-decay activity for the reduction heuristic.
    pub(crate) activity: f64,
    /// Tombstone flag set by database reduction; watchers are pruned lazily.
    pub(crate) deleted: bool,
}

/// Typed error: the clause arena has no room for another clause. Callers
/// must not abort on it — the solver surfaces it as
/// [`SolveResult::Unknown`](crate::SolveResult::Unknown) with
/// [`StopReason::ResourceExhausted`](crate::StopReason::ResourceExhausted).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct ArenaFull;

/// The clause arena. Deleted clauses leave tombstones which are reused only
/// when the arena is compacted between solves (compaction is unnecessary for
/// the workloads in this workspace; tombstones keep `ClauseRef`s stable).
#[derive(Clone, Debug)]
pub(crate) struct ClauseDb {
    arena: Vec<Clause>,
    /// Refs of learnt clauses still alive, for reduction sweeps.
    pub(crate) learnts: Vec<ClauseRef>,
    /// Maximum arena slots before [`ClauseDb::alloc`] reports [`ArenaFull`].
    /// Defaults to the `u32` index space of [`ClauseRef`]; tests shrink it
    /// to exercise the exhaustion path without allocating gigabytes.
    pub(crate) capacity: u32,
}

impl Default for ClauseDb {
    fn default() -> Self {
        ClauseDb {
            arena: Vec::new(),
            learnts: Vec::new(),
            capacity: u32::MAX,
        }
    }
}

impl ClauseDb {
    pub(crate) fn new() -> Self {
        ClauseDb::default()
    }

    pub(crate) fn alloc(
        &mut self,
        lits: Vec<Lit>,
        learnt: bool,
        lbd: u32,
    ) -> Result<ClauseRef, ArenaFull> {
        if self.arena.len() >= self.capacity as usize {
            return Err(ArenaFull);
        }
        let Ok(index) = u32::try_from(self.arena.len()) else {
            return Err(ArenaFull);
        };
        let cref = ClauseRef(index);
        self.arena.push(Clause {
            lits,
            learnt,
            lbd,
            activity: 0.0,
            deleted: false,
        });
        if learnt {
            self.learnts.push(cref);
        }
        Ok(cref)
    }

    #[inline]
    pub(crate) fn get(&self, cref: ClauseRef) -> &Clause {
        &self.arena[cref.0 as usize]
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.arena[cref.0 as usize]
    }

    pub(crate) fn delete(&mut self, cref: ClauseRef) {
        self.arena[cref.0 as usize].deleted = true;
    }

    /// Number of arena slots (live clauses plus tombstones); `ClauseRef`s
    /// are exactly `0..len`.
    pub(crate) fn len(&self) -> usize {
        self.arena.len()
    }

    /// Number of live learnt clauses.
    pub(crate) fn live_learnts(&self) -> usize {
        self.learnts
            .iter()
            .filter(|&&c| !self.get(c).deleted)
            .count()
    }

    /// Drops tombstoned refs from the learnt index (not from the arena).
    pub(crate) fn sweep_learnt_index(&mut self) {
        let arena = &self.arena;
        self.learnts.retain(|&c| !arena[c.0 as usize].deleted);
    }

    /// Multiplies every learnt clause's activity by `factor` in place —
    /// the rescale step of activity decay, kept allocation-free (the old
    /// call site cloned the whole learnt index per rescale).
    pub(crate) fn rescale_learnt_activity(&mut self, factor: f64) {
        for i in 0..self.learnts.len() {
            let cref = self.learnts[i];
            self.arena[cref.0 as usize].activity *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::Var;

    fn lit(v: usize) -> Lit {
        Lit::pos(Var::new(v))
    }

    #[test]
    fn alloc_and_get() {
        let mut db = ClauseDb::new();
        let c = db.alloc(vec![lit(0), lit(1)], false, 0).unwrap();
        assert_eq!(db.get(c).lits.len(), 2);
        assert!(!db.get(c).learnt);
    }

    #[test]
    fn learnt_index_tracks_learnts_only() {
        let mut db = ClauseDb::new();
        db.alloc(vec![lit(0)], false, 0).unwrap();
        let l = db.alloc(vec![lit(1)], true, 2).unwrap();
        assert_eq!(db.learnts, vec![l]);
        assert_eq!(db.live_learnts(), 1);
    }

    #[test]
    fn alloc_past_capacity_is_a_typed_error_not_a_panic() {
        let mut db = ClauseDb::new();
        db.capacity = 2;
        db.alloc(vec![lit(0)], false, 0).unwrap();
        db.alloc(vec![lit(1)], false, 0).unwrap();
        assert_eq!(db.alloc(vec![lit(2)], false, 0), Err(ArenaFull));
        // The arena itself is untouched by the failed allocation.
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn delete_tombstones_and_sweep() {
        let mut db = ClauseDb::new();
        let a = db.alloc(vec![lit(0)], true, 1).unwrap();
        let b = db.alloc(vec![lit(1)], true, 1).unwrap();
        db.delete(a);
        assert!(db.get(a).deleted);
        assert_eq!(db.live_learnts(), 1);
        db.sweep_learnt_index();
        assert_eq!(db.learnts, vec![b]);
    }
}
