//! Equivalence-preserving CNF preprocessing.
//!
//! Three classical rules, applied to a fixed point:
//!
//! * **unit propagation** — a unit clause `l` deletes every clause
//!   containing `l` (replacing it with the unit itself) and erases `¬l`
//!   from the rest;
//! * **subsumption** — a clause `C ⊆ D` deletes `D`;
//! * **self-subsuming resolution** — if `C \ {l} ⊆ D` and `¬l ∈ D`, the
//!   literal `¬l` is erased from `D` (strengthening).
//!
//! All three preserve *logical equivalence*, not merely satisfiability, so
//! the simplified formula has exactly the same model set — which is what
//! the all-solutions engines require of any preprocessing.
//!
//! Subsumption and self-subsumption run on the occurrence-list core in
//! [`crate::subsume`], shared with the solver's root-level inprocessor
//! (`Solver::inprocess`) — one well-tested engine for both the offline
//! preprocessor and the in-arena passes.
//!
//! # Examples
//!
//! ```
//! use presat_logic::{Cnf, Lit, Var};
//! use presat_sat::simplify;
//!
//! let mut cnf = Cnf::new(3);
//! cnf.add_clause([Lit::pos(Var::new(0))]);                         // x0
//! cnf.add_clause([Lit::neg(Var::new(0)), Lit::pos(Var::new(1))]);  // ¬x0 ∨ x1 → x1
//! cnf.add_clause([Lit::pos(Var::new(1)), Lit::pos(Var::new(2))]);  // subsumed by x1
//! let (simplified, stats) = simplify::simplify_cnf(&cnf);
//! assert_eq!(simplified.num_clauses(), 2); // x0, x1
//! assert!(stats.units >= 1);
//! ```

use std::collections::BTreeSet;

use presat_logic::{Cnf, Lit};

use crate::subsume::{Action, Subsumer};

/// Counters describing what the simplifier did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Unit clauses discovered (including derived ones).
    pub units: u64,
    /// Clauses removed by subsumption or unit satisfaction.
    pub subsumed: u64,
    /// Literals erased by self-subsuming resolution or unit falsification.
    pub strengthened: u64,
    /// `true` if the formula was proven unsatisfiable outright.
    pub proven_unsat: bool,
}

/// Canonical clause form used internally: sorted, deduplicated literals.
type VecClause = Vec<Lit>;

fn unsat_result(num_vars: usize, mut stats: SimplifyStats) -> (Cnf, SimplifyStats) {
    stats.proven_unsat = true;
    let mut result = Cnf::new(num_vars);
    result.add_clause([]);
    (result, stats)
}

/// Simplifies `cnf` to a fixed point of the three rules. Returns the
/// simplified formula (same variable space) and statistics.
///
/// The result is logically equivalent to the input: every total assignment
/// satisfies the output iff it satisfies the input. If the formula is
/// proven unsatisfiable the output contains just the empty clause.
pub fn simplify_cnf(cnf: &Cnf) -> (Cnf, SimplifyStats) {
    let mut stats = SimplifyStats::default();

    // Canonicalize: drop tautologies, dedupe literals and clauses.
    let mut clauses: Vec<VecClause> = Vec::with_capacity(cnf.num_clauses());
    'clauses: for clause in cnf.clauses() {
        let mut c: VecClause = clause.to_vec();
        c.sort_unstable();
        c.dedup();
        for i in 0..c.len().saturating_sub(1) {
            if c[i + 1] == !c[i] {
                continue 'clauses; // tautology
            }
        }
        clauses.push(c);
    }
    clauses.sort();
    clauses.dedup();

    loop {
        let mut changed = false;

        // Unit propagation to closure: each pass applies *every* current
        // unit to every other clause, then re-collects (strengthening may
        // create new units).
        let mut seen_units: BTreeSet<Lit> = BTreeSet::new();
        loop {
            let units: BTreeSet<Lit> = clauses
                .iter()
                .filter(|c| c.len() == 1)
                .map(|c| c[0])
                .collect();
            if units.iter().any(|&l| units.contains(&!l)) {
                return unsat_result(cnf.num_vars(), stats);
            }
            for &u in &units {
                if seen_units.insert(u) {
                    stats.units += 1;
                }
            }
            let mut progressed = false;
            let mut out: Vec<VecClause> = Vec::with_capacity(clauses.len());
            for c in clauses.drain(..) {
                if c.len() == 1 {
                    out.push(c); // keep units themselves
                    continue;
                }
                if c.iter().any(|l| units.contains(l)) {
                    stats.subsumed += 1;
                    progressed = true; // satisfied: drop
                    continue;
                }
                let mut d = c;
                let before = d.len();
                d.retain(|l| !units.contains(&!*l));
                if d.len() != before {
                    stats.strengthened += (before - d.len()) as u64;
                    progressed = true;
                }
                if d.is_empty() {
                    return unsat_result(cnf.num_vars(), stats);
                }
                out.push(d);
            }
            clauses = out;
            if !progressed {
                break;
            }
            changed = true;
            clauses.sort();
            clauses.dedup();
        }

        // Subsumption and self-subsuming resolution on the shared
        // occurrence-list core (policy: everything is fair game — the
        // preprocessor has no learnt/problem or binary-watcher
        // distinctions to respect).
        let mut sub = Subsumer::new(cnf.num_vars());
        for c in &clauses {
            sub.push(c);
        }
        let out = sub.run(u64::MAX, |_, _, pivot| match pivot {
            None => Action::DeleteTarget,
            Some(_) => Action::StrengthenTarget,
        });
        stats.subsumed += out.deleted;
        stats.strengthened += out.strengthened_lits;
        if out.unsat {
            return unsat_result(cnf.num_vars(), stats);
        }
        clauses = sub.into_live_clauses();
        clauses.sort();
        clauses.dedup();

        if !changed && out.deleted == 0 && out.strengthened_lits == 0 {
            break;
        }
    }

    let mut result = Cnf::new(cnf.num_vars());
    for c in &clauses {
        result.add_clause(c.iter().copied());
    }
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::{truth_table, Var};

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(0, false)]);
        cnf.add_clause([lit(1, true)]);
        let (s, _) = simplify_cnf(&cnf);
        assert_eq!(s.num_clauses(), 1);
    }

    #[test]
    fn unit_propagation_chains() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(0, true)]);
        cnf.add_clause([lit(0, false), lit(1, true)]);
        cnf.add_clause([lit(1, false), lit(2, true)]);
        let (s, stats) = simplify_cnf(&cnf);
        // Everything collapses to three unit clauses.
        assert_eq!(s.num_clauses(), 3);
        assert!(s.clauses().iter().all(|c| c.len() == 1));
        assert!(stats.units >= 2);
    }

    #[test]
    fn subsumption_removes_supersets() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        cnf.add_clause([lit(0, true), lit(1, true), lit(2, false)]);
        let (s, stats) = simplify_cnf(&cnf);
        assert_eq!(s.num_clauses(), 1);
        assert_eq!(stats.subsumed, 1);
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (a ∨ b) and (a ∨ ¬b ∨ c): resolving on b strengthens the second
        // to (a ∨ c).
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        cnf.add_clause([lit(0, true), lit(1, false), lit(2, true)]);
        let (s, stats) = simplify_cnf(&cnf);
        assert!(stats.strengthened >= 1);
        assert!(s
            .clauses()
            .iter()
            .any(|c| c.len() == 2 && c.contains(&lit(2, true))));
    }

    #[test]
    fn unsat_detected() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([lit(0, true)]);
        cnf.add_clause([lit(0, false)]);
        let (s, stats) = simplify_cnf(&cnf);
        assert!(stats.proven_unsat);
        assert!(!truth_table::is_satisfiable(&s));
    }

    #[test]
    fn equivalence_preserved_on_random_formulas() {
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(17);
        for round in 0..80 {
            let n = 7;
            let mut cnf = Cnf::new(n);
            let m = rng.gen_range(3..22);
            for _ in 0..m {
                let w = rng.gen_range(1..4);
                let c: Vec<Lit> = (0..w)
                    .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                    .collect();
                cnf.add_clause(c);
            }
            let (s, _) = simplify_cnf(&cnf);
            // Exact model-set equality over the full space.
            for bits in 0..(1u64 << n) {
                let a = presat_logic::Assignment::from_bits(bits, n);
                assert_eq!(
                    cnf.eval(&a) == Some(true),
                    s.eval(&a) == Some(true),
                    "round {round}, bits {bits:b}"
                );
            }
        }
    }

    #[test]
    fn idempotent() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause([lit(0, true)]);
        cnf.add_clause([lit(0, false), lit(1, true)]);
        cnf.add_clause([lit(1, true), lit(2, true), lit(3, false)]);
        let (once, _) = simplify_cnf(&cnf);
        let (twice, stats) = simplify_cnf(&once);
        assert_eq!(once, twice);
        // Already-present unit clauses are re-*seen* (counted) but nothing
        // is removed or strengthened on a second run.
        assert_eq!(stats.subsumed, 0);
        assert_eq!(stats.strengthened, 0);
    }

    #[test]
    fn empty_formula_untouched() {
        let cnf = Cnf::new(3);
        let (s, stats) = simplify_cnf(&cnf);
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(stats, SimplifyStats::default());
    }
}
