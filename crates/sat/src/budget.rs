//! Resource budgets and cooperative cancellation for anytime solving.
//!
//! A [`Budget`] bounds how much work the *next* solve calls may do
//! (conflicts, propagations, a wall-clock deadline); a [`CancelToken`] lets
//! another thread ask a running search to stop. Both are polled
//! cooperatively in the CDCL search loop — cheaply enough that an
//! unbudgeted solver pays a single predicted branch per conflict and per
//! decision — and both surface as
//! [`SolveResult::Unknown`](crate::SolveResult::Unknown) with a
//! [`StopReason`], **never** as a spurious `Unsat`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::types::StopReason;

/// Resource limits for a solver's upcoming work.
///
/// The default budget is unlimited. Each limit is independent; the first
/// one to trip stops the search with the matching [`StopReason`]. Budgets
/// are *cumulative across calls* once installed with
/// [`Solver::set_budget`](crate::Solver::set_budget): an enumeration engine
/// installs one budget and the whole multi-call enumeration shares it.
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    /// Maximum additional conflicts before stopping.
    pub conflicts: Option<u64>,
    /// Maximum additional propagations before stopping.
    pub propagations: Option<u64>,
    /// Absolute wall-clock instant after which the search stops.
    pub deadline: Option<Instant>,
}

impl Budget {
    /// The unlimited budget (same as `Budget::default()`).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps additional conflicts.
    pub fn with_conflicts(mut self, conflicts: u64) -> Self {
        self.conflicts = Some(conflicts);
        self
    }

    /// Caps additional propagations.
    pub fn with_propagations(mut self, propagations: u64) -> Self {
        self.propagations = Some(propagations);
        self
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `timeout` from now.
    ///
    /// A `timeout` too large to be meaningful (for example
    /// `Duration::from_millis(u64::MAX)` from an untrusted `--timeout-ms`)
    /// means "effectively no deadline" and leaves the budget's deadline
    /// unset. The explicit cutoff keeps the behaviour identical across
    /// platforms — how much headroom `Instant` itself has before
    /// overflowing varies by target — and `checked_add` still backstops
    /// the representational limit below it.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        // ~35,000 years.
        const FOREVER: Duration = Duration::from_secs(1 << 40);
        self.deadline = if timeout >= FOREVER {
            None
        } else {
            Instant::now().checked_add(timeout)
        };
        self
    }

    /// `true` if no limit is set (the default).
    pub fn is_unlimited(&self) -> bool {
        self.conflicts.is_none() && self.propagations.is_none() && self.deadline.is_none()
    }

    /// Clips this budget to another: counter limits take the minimum,
    /// deadlines the earliest, and a limit absent on one side is inherited
    /// from the other. This is the slice-scheduling primitive — "one
    /// quantum, but never more than the request has left" — also used by
    /// the reachability loop to clip a per-step allowance to the remaining
    /// total.
    pub fn clipped_to(&self, other: &Budget) -> Budget {
        let min_opt = |a: Option<u64>, b: Option<u64>| match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, None) => x,
            (None, y) => y,
        };
        Budget {
            conflicts: min_opt(self.conflicts, other.conflicts),
            propagations: min_opt(self.propagations, other.propagations),
            deadline: match (self.deadline, other.deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            },
        }
    }
}

/// A shared cooperative-cancellation flag.
///
/// Clones share one underlying flag (`Arc<AtomicBool>`): hand clones to any
/// number of running engines or worker threads, then [`cancel`] from
/// anywhere. A cancelled search stops at its next poll point and returns
/// [`SolveResult::Unknown`](crate::SolveResult::Unknown) with
/// [`StopReason::Cancelled`]; enumeration engines flag their partial result
/// `complete = false`. Cancellation is sticky — there is deliberately no
/// reset, so a token cannot be un-cancelled under a running worker's feet.
///
/// [`cancel`]: CancelToken::cancel
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared counter-budget pool for partitioned (multi-worker) search.
///
/// A [`Budget`]'s counter limits installed per worker multiply: N workers
/// each given "1000 conflicts" may jointly spend 1000·N. A `BudgetPool`
/// instead holds *one* pot of conflicts/propagations that every clone
/// draws from: workers periodically [`charge`](BudgetPool::charge) the
/// work they did since their last charge, and the first charge that
/// crosses a limit — on whichever worker — trips the matching
/// [`StopReason`] for the whole fleet. Charging is a single
/// `fetch_add` per counter, so the pot may overshoot by at most one
/// batch (one conflict, when charged per conflict) per worker.
///
/// Wall-clock deadlines need no pool — an absolute [`Budget::deadline`]
/// is already shared by construction.
#[derive(Clone, Debug)]
pub struct BudgetPool {
    inner: Arc<PoolInner>,
}

#[derive(Debug)]
struct PoolInner {
    /// `u64::MAX` means unlimited.
    conflict_limit: u64,
    /// `u64::MAX` means unlimited.
    propagation_limit: u64,
    conflicts_spent: AtomicU64,
    propagations_spent: AtomicU64,
}

impl BudgetPool {
    /// Builds a pool holding `budget`'s counter limits, or `None` if the
    /// budget has no counter limits (a deadline alone needs no pool).
    pub fn from_budget(budget: &Budget) -> Option<BudgetPool> {
        if budget.conflicts.is_none() && budget.propagations.is_none() {
            return None;
        }
        Some(BudgetPool {
            inner: Arc::new(PoolInner {
                conflict_limit: budget.conflicts.unwrap_or(u64::MAX),
                propagation_limit: budget.propagations.unwrap_or(u64::MAX),
                conflicts_spent: AtomicU64::new(0),
                propagations_spent: AtomicU64::new(0),
            }),
        })
    }

    /// Draws `conflicts`/`propagations` units from the pot and reports the
    /// first limit now crossed, if any. Charging zero units is a pure
    /// exhaustion check.
    pub fn charge(&self, conflicts: u64, propagations: u64) -> Option<StopReason> {
        let inner = &*self.inner;
        let spent_c = inner
            .conflicts_spent
            .fetch_add(conflicts, Ordering::Relaxed)
            .saturating_add(conflicts);
        if spent_c >= inner.conflict_limit {
            return Some(StopReason::Conflicts);
        }
        let spent_p = inner
            .propagations_spent
            .fetch_add(propagations, Ordering::Relaxed)
            .saturating_add(propagations);
        if spent_p >= inner.propagation_limit {
            return Some(StopReason::Propagations);
        }
        None
    }

    /// `Some(reason)` once the pot has been drawn past a limit.
    pub fn exhausted(&self) -> Option<StopReason> {
        self.charge(0, 0)
    }

    /// Total conflicts charged so far (for accounting and tests).
    pub fn conflicts_spent(&self) -> u64 {
        self.inner.conflicts_spent.load(Ordering::Relaxed)
    }

    /// Total propagations charged so far (for accounting and tests).
    pub fn propagations_spent(&self) -> u64 {
        self.inner.propagations_spent.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        assert!(Budget::default().is_unlimited());
        assert!(Budget::unlimited().is_unlimited());
        assert!(!Budget::default().with_conflicts(5).is_unlimited());
        assert!(!Budget::default().with_propagations(5).is_unlimited());
        assert!(!Budget::default()
            .with_timeout(Duration::from_millis(1))
            .is_unlimited());
    }

    #[test]
    fn huge_timeout_means_no_deadline_not_a_panic() {
        // Regression: `Instant::now() + Duration::from_millis(u64::MAX)`
        // overflows `Instant` and panicked; an untrusted `--timeout-ms`
        // must instead mean "effectively unlimited".
        let b = Budget::unlimited().with_timeout(Duration::from_millis(u64::MAX));
        assert!(b.deadline.is_none());
        assert!(b.is_unlimited());
        let b = Budget::unlimited().with_timeout(Duration::MAX);
        assert!(b.deadline.is_none());
        // Sane timeouts still install a real deadline.
        let b = Budget::unlimited().with_timeout(Duration::from_millis(10));
        assert!(b.deadline.is_some());
    }

    #[test]
    fn clipped_to_takes_minima_and_inherits_missing_limits() {
        let quantum = Budget::unlimited().with_conflicts(100);
        let remaining = Budget::unlimited()
            .with_conflicts(40)
            .with_propagations(7);
        let slice = quantum.clipped_to(&remaining);
        assert_eq!(slice.conflicts, Some(40));
        assert_eq!(slice.propagations, Some(7));
        assert!(slice.deadline.is_none());

        let early = Instant::now();
        let late = early + Duration::from_secs(60);
        let a = Budget::unlimited().with_deadline(late);
        let b = Budget::unlimited().with_deadline(early);
        assert_eq!(a.clipped_to(&b).deadline, Some(early));
        assert_eq!(a.clipped_to(&Budget::unlimited()).deadline, Some(late));

        // Clipping to the unlimited budget is the identity.
        let c = Budget::unlimited().with_conflicts(3);
        let clipped = c.clipped_to(&Budget::unlimited());
        assert_eq!(clipped.conflicts, Some(3));
        assert!(clipped.propagations.is_none());
    }

    #[test]
    fn pool_clones_share_one_pot() {
        let pool = BudgetPool::from_budget(&Budget::unlimited().with_conflicts(3)).unwrap();
        let clone = pool.clone();
        assert!(pool.exhausted().is_none());
        assert_eq!(clone.charge(2, 0), None);
        assert_eq!(pool.charge(1, 0), Some(StopReason::Conflicts));
        assert_eq!(clone.exhausted(), Some(StopReason::Conflicts));
        assert_eq!(pool.conflicts_spent(), 3);
    }

    #[test]
    fn pool_needs_a_counter_limit() {
        assert!(BudgetPool::from_budget(&Budget::unlimited()).is_none());
        assert!(BudgetPool::from_budget(
            &Budget::unlimited().with_timeout(Duration::from_millis(1))
        )
        .is_none());
        assert!(BudgetPool::from_budget(&Budget::unlimited().with_propagations(7)).is_some());
    }

    #[test]
    fn zero_budget_pool_is_born_exhausted() {
        let pool = BudgetPool::from_budget(&Budget::unlimited().with_conflicts(0)).unwrap();
        assert_eq!(pool.exhausted(), Some(StopReason::Conflicts));
    }

    #[test]
    fn cancel_token_clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        assert!(!u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        assert!(u.is_cancelled());
    }
}
