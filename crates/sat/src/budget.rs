//! Resource budgets and cooperative cancellation for anytime solving.
//!
//! A [`Budget`] bounds how much work the *next* solve calls may do
//! (conflicts, propagations, a wall-clock deadline); a [`CancelToken`] lets
//! another thread ask a running search to stop. Both are polled
//! cooperatively in the CDCL search loop — cheaply enough that an
//! unbudgeted solver pays a single predicted branch per conflict and per
//! decision — and both surface as
//! [`SolveResult::Unknown`](crate::SolveResult::Unknown) with a
//! [`StopReason`], **never** as a spurious `Unsat`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[allow(unused_imports)] // referenced by doc links
use crate::types::StopReason;

/// Resource limits for a solver's upcoming work.
///
/// The default budget is unlimited. Each limit is independent; the first
/// one to trip stops the search with the matching [`StopReason`]. Budgets
/// are *cumulative across calls* once installed with
/// [`Solver::set_budget`](crate::Solver::set_budget): an enumeration engine
/// installs one budget and the whole multi-call enumeration shares it.
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    /// Maximum additional conflicts before stopping.
    pub conflicts: Option<u64>,
    /// Maximum additional propagations before stopping.
    pub propagations: Option<u64>,
    /// Absolute wall-clock instant after which the search stops.
    pub deadline: Option<Instant>,
}

impl Budget {
    /// The unlimited budget (same as `Budget::default()`).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps additional conflicts.
    pub fn with_conflicts(mut self, conflicts: u64) -> Self {
        self.conflicts = Some(conflicts);
        self
    }

    /// Caps additional propagations.
    pub fn with_propagations(mut self, propagations: u64) -> Self {
        self.propagations = Some(propagations);
        self
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// `true` if no limit is set (the default).
    pub fn is_unlimited(&self) -> bool {
        self.conflicts.is_none() && self.propagations.is_none() && self.deadline.is_none()
    }
}

/// A shared cooperative-cancellation flag.
///
/// Clones share one underlying flag (`Arc<AtomicBool>`): hand clones to any
/// number of running engines or worker threads, then [`cancel`] from
/// anywhere. A cancelled search stops at its next poll point and returns
/// [`SolveResult::Unknown`](crate::SolveResult::Unknown) with
/// [`StopReason::Cancelled`]; enumeration engines flag their partial result
/// `complete = false`. Cancellation is sticky — there is deliberately no
/// reset, so a token cannot be un-cancelled under a running worker's feet.
///
/// [`cancel`]: CancelToken::cancel
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        assert!(Budget::default().is_unlimited());
        assert!(Budget::unlimited().is_unlimited());
        assert!(!Budget::default().with_conflicts(5).is_unlimited());
        assert!(!Budget::default().with_propagations(5).is_unlimited());
        assert!(!Budget::default()
            .with_timeout(Duration::from_millis(1))
            .is_unlimited());
    }

    #[test]
    fn cancel_token_clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        assert!(!u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        assert!(u.is_cancelled());
    }
}
