//! CNF encoding of one symbolic step under a target constraint.

use presat_circuit::{cone, Circuit, Tseitin};
use presat_logic::{Cnf, Lit, Var};

use crate::state_set::StateSet;

/// The CNF instance for one preimage step, with its variable layout.
///
/// Layout (fixed across the workspace):
///
/// * CNF variables `0..n` — present-state variables `X` (position `j` =
///   latch `j`); these are the important variables for all-SAT;
/// * CNF variables `n..n+m` — primary inputs `W`;
/// * everything above — Tseitin auxiliaries for the next-state cones and
///   the target-selector variables.
///
/// The target `T(Y)` is imposed directly on the next-state function
/// literals (no explicit `Y` variables are needed): a single-cube target
/// becomes unit clauses, a multi-cube target gets one selector variable per
/// cube plus an at-least-one clause.
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::{StateSet, StepEncoding};
///
/// let c = generators::counter(3, false);
/// let enc = StepEncoding::build(&c, &StateSet::from_state_bits(0, 3));
/// assert_eq!(enc.state_vars().len(), 3);
/// // present-state variables come first in the layout
/// assert_eq!(enc.state_vars()[0].index(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct StepEncoding {
    cnf: Cnf,
    num_latches: usize,
    num_inputs: usize,
    /// Next-state cones left unencoded because no target cube constrains
    /// their latch (cone-of-influence reduction).
    cones_skipped: u64,
    /// Present-state latch positions in the structural support of the
    /// *encoded* cones: the only latches whose CNF variables any clause can
    /// mention, hence the only positions a preimage cube can constrain.
    support_latches: Vec<usize>,
}

impl StepEncoding {
    /// Encodes one step of `circuit` constrained to land in `target`,
    /// additionally restricting the primary inputs to the environment
    /// `env` — a union of cubes over *input positions* (`Var::new(i)` =
    /// input `i`). Pass `None` for a free environment.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is incomplete, a target cube mentions a latch
    /// position out of range, or an environment cube mentions an input
    /// position out of range.
    pub fn build_with_env(
        circuit: &Circuit,
        target: &StateSet,
        env: Option<&presat_logic::CubeSet>,
    ) -> Self {
        let mut enc = Self::build(circuit, target);
        if let Some(env) = env {
            append_env(
                &mut enc.cnf,
                env,
                circuit.num_latches(),
                circuit.num_inputs(),
            );
        }
        enc
    }

    /// Encodes one step of `circuit` constrained to land in `target`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is structurally incomplete
    /// ([`Circuit::validate`]) or a target cube mentions a latch position
    /// `≥ num_latches`.
    pub fn build(circuit: &Circuit, target: &StateSet) -> Self {
        circuit.validate().expect("circuit must be complete");
        let n = circuit.num_latches();
        let m = circuit.num_inputs();

        // Leaf variable layout: inputs are leaves 0..m but get CNF vars
        // n..n+m; states are leaves m..m+n and get CNF vars 0..n.
        let mut leaf_vars = Vec::with_capacity(m + n);
        for i in 0..m {
            leaf_vars.push(Var::new(n + i));
        }
        for j in 0..n {
            leaf_vars.push(Var::new(j));
        }
        let base = Cnf::new(n + m);
        let mut enc = Tseitin::with_base_cnf(circuit.aig(), leaf_vars, base);

        // Cone-of-influence reduction: only latches some target cube
        // actually constrains need their next-state cone Tseitin-encoded.
        // An unconstrained cone's clauses would never imply anything about
        // the important (state) variables — its Tseitin auxiliaries hang
        // free — so skipping it leaves the projection onto state variables,
        // and therefore the preimage, unchanged.
        let cubes = target.cubes();
        let mut needed = vec![false; n];
        for cube in cubes {
            for &l in cube.lits() {
                let j = l.var().index();
                assert!(j < n, "target cube mentions latch position {j} ≥ {n}");
                needed[j] = true;
            }
        }
        // Encoded in latch order, exactly as the encode-everything path
        // did, so full-support targets produce an identical CNF.
        let next_lits: Vec<Option<Lit>> = (0..n)
            .map(|j| needed[j].then(|| enc.lit_of(circuit.latch_next(j))))
            .collect();
        let cones_skipped = next_lits.iter().filter(|l| l.is_none()).count() as u64;
        let roots: Vec<_> = (0..n)
            .filter(|&j| needed[j])
            .map(|j| circuit.latch_next(j))
            .collect();
        // Leaf ordinals m..m+n are the latches (0..m are the inputs).
        let support_latches: Vec<usize> = cone::support_many(circuit.aig(), &roots)
            .into_iter()
            .filter_map(|leaf| leaf.checked_sub(m))
            .collect();
        let mut cnf = enc.into_cnf();

        // Impose T over the next-state literals.
        let lit_of = |j: usize| {
            next_lits[j].expect("cone of a target-constrained latch is encoded")
        };
        if cubes.is_empty() {
            cnf.add_clause([]); // empty target: no predecessor exists
        } else if cubes.len() == 1 {
            for &l in cubes.cubes()[0].lits() {
                let j = l.var().index();
                cnf.add_unit(if l.is_pos() { lit_of(j) } else { !lit_of(j) });
            }
        } else {
            // One selector per cube: sel_c → cube_c; ∨ sel_c.
            let mut selectors = Vec::with_capacity(cubes.len());
            for cube in cubes {
                let sel = Lit::pos(cnf.fresh_var());
                for &l in cube.lits() {
                    let j = l.var().index();
                    let yl = if l.is_pos() { lit_of(j) } else { !lit_of(j) };
                    cnf.add_clause([!sel, yl]);
                }
                selectors.push(sel);
            }
            cnf.add_clause(selectors);
        }

        StepEncoding {
            cnf,
            num_latches: n,
            num_inputs: m,
            cones_skipped,
            support_latches,
        }
    }

    /// The encoded CNF.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Consumes the encoding, handing the CNF to the caller (the all-SAT
    /// problem takes ownership; no clone on the hot path).
    pub fn into_cnf(self) -> Cnf {
        self.cnf
    }

    /// The present-state CNF variables in latch order (the important set).
    pub fn state_vars(&self) -> Vec<Var> {
        Var::range(self.num_latches).collect()
    }

    /// The primary-input CNF variables in input order.
    pub fn input_vars(&self) -> Vec<Var> {
        (0..self.num_inputs)
            .map(|i| Var::new(self.num_latches + i))
            .collect()
    }

    /// Number of latches of the encoded circuit.
    pub fn num_latches(&self) -> usize {
        self.num_latches
    }

    /// Number of primary inputs of the encoded circuit.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Next-state cones skipped by the cone-of-influence reduction.
    pub fn cones_skipped(&self) -> u64 {
        self.cones_skipped
    }

    /// Latch positions in the structural support of the encoded cones —
    /// the only positions any preimage cube can constrain.
    pub fn support_latches(&self) -> &[usize] {
        &self.support_latches
    }
}

/// Appends environment constraints over the input block (`Var::new(n + i)`
/// = input `i`) to `cnf`: unit clauses for a single permitted cube, one
/// selector per cube plus an at-least-one clause otherwise.
fn append_env(cnf: &mut Cnf, env: &presat_logic::CubeSet, n: usize, m: usize) {
    let input_lit = |l: Lit| {
        let i = l.var().index();
        assert!(i < m, "environment cube mentions input position {i} ≥ {m}");
        Lit::with_phase(Var::new(n + i), l.phase())
    };
    if env.is_empty() {
        cnf.add_clause([]); // no permitted input: empty preimage
    } else if env.len() == 1 {
        for &l in env.cubes()[0].lits() {
            cnf.add_unit(input_lit(l));
        }
    } else {
        let mut selectors = Vec::with_capacity(env.len());
        for cube in env {
            let sel = Lit::pos(cnf.fresh_var());
            for &l in cube.lits() {
                cnf.add_clause([!sel, input_lit(l)]);
            }
            selectors.push(sel);
        }
        cnf.add_clause(selectors);
    }
}

/// The *target-free* CNF base for an incremental preimage session: the
/// Tseitin encoding of every next-state cone (plus the optional input
/// environment), built **once** per circuit. Layout is identical to
/// [`StepEncoding`]; what `StepEncoding` imposes as permanent target
/// clauses, the session adds per iteration under a fresh activation
/// literal (see `PreimageSession`).
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::StepBase;
///
/// let c = generators::counter(3, false);
/// let base = StepBase::build(&c, None);
/// assert_eq!(base.next_lits().len(), 3);
/// assert_eq!(base.state_vars()[0].index(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct StepBase {
    cnf: Cnf,
    next_lits: Vec<Lit>,
    num_latches: usize,
    num_inputs: usize,
}

impl StepBase {
    /// Encodes the step relation of `circuit` (all next-state cones, no
    /// target), restricting inputs to `env` when given.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is incomplete or an environment cube mentions
    /// an input position out of range.
    pub fn build(circuit: &Circuit, env: Option<&presat_logic::CubeSet>) -> Self {
        circuit.validate().expect("circuit must be complete");
        let n = circuit.num_latches();
        let m = circuit.num_inputs();
        let mut leaf_vars = Vec::with_capacity(m + n);
        for i in 0..m {
            leaf_vars.push(Var::new(n + i));
        }
        for j in 0..n {
            leaf_vars.push(Var::new(j));
        }
        let base = Cnf::new(n + m);
        let mut enc = Tseitin::with_base_cnf(circuit.aig(), leaf_vars, base);
        let next_lits: Vec<Lit> = (0..n).map(|j| enc.lit_of(circuit.latch_next(j))).collect();
        let mut cnf = enc.into_cnf();
        if let Some(env) = env {
            append_env(&mut cnf, env, n, m);
        }
        StepBase {
            cnf,
            next_lits,
            num_latches: n,
            num_inputs: m,
        }
    }

    /// The target-free CNF.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Consumes the base, handing over the CNF and the next-state function
    /// literals (in latch order).
    pub fn into_parts(self) -> (Cnf, Vec<Lit>) {
        (self.cnf, self.next_lits)
    }

    /// The next-state function literals, position `j` = latch `j`.
    pub fn next_lits(&self) -> &[Lit] {
        &self.next_lits
    }

    /// The present-state CNF variables in latch order (the important set).
    pub fn state_vars(&self) -> Vec<Var> {
        Var::range(self.num_latches).collect()
    }

    /// Number of latches of the encoded circuit.
    pub fn num_latches(&self) -> usize {
        self.num_latches
    }

    /// Number of primary inputs of the encoded circuit.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }
}

/// The CNF instance for one *forward image* step, with explicit next-state
/// variables.
///
/// Layout: next-state `Y` at CNF variables `0..n` (the important set for
/// image enumeration), present-state `X` at `n..2n`, inputs `W` at
/// `2n..2n+m`, Tseitin auxiliaries above. The source set `S(X)` is imposed
/// on the `X` block, and each `yj` is tied to its next-state cone with
/// equivalence clauses.
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::{ImageEncoding, StateSet};
///
/// let c = generators::counter(3, false);
/// let enc = ImageEncoding::build(&c, &StateSet::from_state_bits(5, 3));
/// assert_eq!(enc.next_state_vars().len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct ImageEncoding {
    cnf: Cnf,
    num_latches: usize,
    num_inputs: usize,
}

impl ImageEncoding {
    /// Encodes one forward step of `circuit` starting from `source`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is incomplete or a source cube mentions a
    /// latch position `≥ num_latches`.
    pub fn build(circuit: &Circuit, source: &StateSet) -> Self {
        circuit.validate().expect("circuit must be complete");
        let n = circuit.num_latches();
        let m = circuit.num_inputs();

        // Leaves: inputs → 2n.., states → n.. ; Y block occupies 0..n.
        let mut leaf_vars = Vec::with_capacity(m + n);
        for i in 0..m {
            leaf_vars.push(Var::new(2 * n + i));
        }
        for j in 0..n {
            leaf_vars.push(Var::new(n + j));
        }
        let base = Cnf::new(2 * n + m);
        let mut enc = Tseitin::with_base_cnf(circuit.aig(), leaf_vars, base);
        let next_lits: Vec<Lit> = (0..n).map(|j| enc.lit_of(circuit.latch_next(j))).collect();
        let mut cnf = enc.into_cnf();

        // yj ↔ fj.
        for (j, &fl) in next_lits.iter().enumerate() {
            let yj = Lit::pos(Var::new(j));
            cnf.add_clause([!yj, fl]);
            cnf.add_clause([yj, !fl]);
        }

        // Impose S over the X block.
        let cubes = source.cubes();
        if cubes.is_empty() {
            cnf.add_clause([]);
        } else if cubes.len() == 1 {
            for &l in cubes.cubes()[0].lits() {
                let j = l.var().index();
                assert!(j < n, "source cube mentions latch position {j} ≥ {n}");
                cnf.add_unit(Lit::with_phase(Var::new(n + j), l.phase()));
            }
        } else {
            let mut selectors = Vec::with_capacity(cubes.len());
            for cube in cubes {
                let sel = Lit::pos(cnf.fresh_var());
                for &l in cube.lits() {
                    let j = l.var().index();
                    assert!(j < n, "source cube mentions latch position {j} ≥ {n}");
                    cnf.add_clause([!sel, Lit::with_phase(Var::new(n + j), l.phase())]);
                }
                selectors.push(sel);
            }
            cnf.add_clause(selectors);
        }

        ImageEncoding {
            cnf,
            num_latches: n,
            num_inputs: m,
        }
    }

    /// The encoded CNF.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// The next-state CNF variables in latch order (the important set).
    pub fn next_state_vars(&self) -> Vec<Var> {
        Var::range(self.num_latches).collect()
    }

    /// The present-state CNF variables in latch order.
    pub fn state_vars(&self) -> Vec<Var> {
        (0..self.num_latches)
            .map(|j| Var::new(self.num_latches + j))
            .collect()
    }

    /// The primary-input CNF variables in input order.
    pub fn input_vars(&self) -> Vec<Var> {
        (0..self.num_inputs)
            .map(|i| Var::new(2 * self.num_latches + i))
            .collect()
    }

    /// Number of latches of the encoded circuit.
    pub fn num_latches(&self) -> usize {
        self.num_latches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_circuit::generators;
    use presat_logic::truth_table;

    /// The encoding's projection onto state vars must equal the simulated
    /// preimage.
    fn check_against_simulation(circuit: &Circuit, target: &StateSet) {
        let enc = StepEncoding::build(circuit, target);
        let projected = truth_table::project_models_set(enc.cnf(), &enc.state_vars());
        let n = circuit.num_latches();
        let expect = crate::oracle::preimage_bits(circuit, target);
        for bits in 0..(1u64 << n) {
            let a = presat_logic::Assignment::from_bits(bits, n);
            assert_eq!(
                projected.contains_minterm(&a),
                expect.contains(&bits),
                "state {bits:b} of {}",
                circuit.name()
            );
        }
    }

    #[test]
    fn counter_single_state_target() {
        let c = generators::counter(4, false);
        check_against_simulation(&c, &StateSet::from_state_bits(7, 4));
    }

    #[test]
    fn counter_cube_target() {
        let c = generators::counter(4, true);
        check_against_simulation(&c, &StateSet::from_partial(&[(3, true)]));
    }

    #[test]
    fn multi_cube_target_uses_selectors() {
        let c = generators::shift_register(4);
        let t = StateSet::from_state_bits(3, 4).union(&StateSet::from_state_bits(12, 4));
        let enc = StepEncoding::build(&c, &t);
        // Two selector variables beyond states+inputs+aux: just verify
        // semantics.
        check_against_simulation(&c, &t);
        assert!(enc.cnf().num_vars() > enc.num_latches() + enc.num_inputs());
    }

    #[test]
    fn empty_target_is_unsat() {
        let c = generators::counter(3, false);
        let enc = StepEncoding::build(&c, &StateSet::empty());
        assert!(!truth_table::is_satisfiable(enc.cnf()));
    }

    #[test]
    fn full_target_gives_all_states() {
        let c = generators::lfsr(4);
        check_against_simulation(&c, &StateSet::all());
    }

    #[test]
    fn parity_circuit_target() {
        let c = generators::parity(3);
        // target: parity latch (position 3) = 1
        check_against_simulation(&c, &StateSet::from_partial(&[(3, true)]));
    }

    #[test]
    fn s27_targets() {
        let c = presat_circuit::embedded::s27().unwrap();
        for bits in [0u64, 3, 5] {
            check_against_simulation(&c, &StateSet::from_state_bits(bits, 3));
        }
    }

    #[test]
    fn coi_skips_unconstrained_cones_and_preserves_preimage() {
        // A partial target over one latch of a 6-bit shift register leaves
        // five cones out of the encoding.
        let c = generators::shift_register(6);
        let t = StateSet::from_partial(&[(2, true)]);
        let enc = StepEncoding::build(&c, &t);
        assert_eq!(enc.cones_skipped(), 5);
        check_against_simulation(&c, &t);

        // A full-state target skips nothing.
        let full = StepEncoding::build(&c, &StateSet::from_state_bits(9, 6));
        assert_eq!(full.cones_skipped(), 0);
    }

    #[test]
    fn coi_support_latches_bound_what_clauses_can_mention() {
        // shift register: next(j) = latch j-1 for j>0, next(0) = input —
        // so targeting latch 2 supports exactly latch 1.
        let c = generators::shift_register(6);
        let enc = StepEncoding::build(&c, &StateSet::from_partial(&[(2, true)]));
        assert_eq!(enc.support_latches(), &[1]);
        // No clause mentions a state variable outside the support.
        let n = enc.num_latches();
        for clause in enc.cnf().clauses() {
            for l in clause {
                let v = l.var().index();
                if v < n {
                    assert!(
                        enc.support_latches().contains(&v),
                        "clause mentions unsupported latch {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn coi_preimages_unchanged_on_every_embedded_family() {
        // Partial targets exercise the skip path on both embedded
        // netlists; the simulation check proves the preimage is intact.
        let s27 = presat_circuit::embedded::s27().unwrap();
        for j in 0..3 {
            let t = StateSet::from_partial(&[(j, true)]);
            let enc = StepEncoding::build(&s27, &t);
            assert_eq!(enc.cones_skipped(), 2);
            check_against_simulation(&s27, &t);
        }
        let ctl2 = presat_circuit::embedded::ctl2().unwrap();
        for j in 0..2 {
            let t = StateSet::from_partial(&[(j, false)]);
            let enc = StepEncoding::build(&ctl2, &t);
            assert_eq!(enc.cones_skipped(), 1);
            check_against_simulation(&ctl2, &t);
        }
    }

    #[test]
    fn coi_multi_cube_targets_union_their_supports() {
        let c = generators::shift_register(5);
        let t = StateSet::from_partial(&[(1, true)]).union(&StateSet::from_partial(&[(3, false)]));
        let enc = StepEncoding::build(&c, &t);
        assert_eq!(enc.cones_skipped(), 3);
        assert_eq!(enc.support_latches(), &[0, 2]);
        check_against_simulation(&c, &t);
    }
}
