//! Backward reachability: iterate preimages to a fixed point.

use std::time::{Duration, Instant};

use presat_allsat::{Budget, CancelToken, EnumLimits, SolutionGraph, SolutionNodeId};
use presat_circuit::Circuit;
use presat_logic::Var;
use presat_obs::{Event, NullSink, ObsSink, StopReason, Timer};

use crate::engine::{PreimageEngine, PreimageStats};
use crate::state_set::StateSet;

/// Options for the reachability loop.
#[derive(Clone, Debug)]
pub struct ReachOptions {
    /// Stop after this many iterations even if not converged
    /// (`None` = run to the fixed point).
    pub max_iterations: Option<usize>,
    /// Enlarge each frontier within the already-reached don't-care space
    /// ([`SolutionGraph::simplify`]) before handing it to the engine.
    /// Sound (extra states are all backward-reachable) and often shrinks
    /// the frontier's cube representation; the reached set stays exact.
    pub simplify_frontier: bool,
    /// Drive the fixed point through one persistent
    /// [`crate::PreimageSession`] when the engine offers one (the
    /// default): the transition relation is encoded once, the solver stays
    /// warm across iterations, and reached states are blocked inside the
    /// solver so they are never re-derived. Bit-identical results either
    /// way; engines without sessions silently use the per-call path.
    pub incremental: bool,
    /// Run root-level solver inprocessing at the session's retirement
    /// boundaries (the default). Equivalence-preserving — the report is
    /// identical either way — but keeps the persistent solver's live
    /// clause volume down over deep fixed points. Ignored on the per-call
    /// path (`incremental == false`), which rebuilds the solver anyway.
    pub inprocess: bool,
    /// Resource budget for each individual preimage call (counter limits
    /// reset every iteration; a deadline here is absolute and so in
    /// practice belongs in `total_budget`).
    pub step_budget: Budget,
    /// Resource budget for the whole fixed point: counter limits are spent
    /// down across iterations, the deadline bounds the loop's wall clock.
    pub total_budget: Budget,
    /// Cooperative cancellation: polled by the running engine (SAT kinds)
    /// and between iterations (every engine).
    pub cancel: Option<CancelToken>,
    /// Override for the session's parallel spawn gate (see
    /// [`crate::PreimageSession::set_parallel_threshold`]): iterations
    /// whose encoding falls below the threshold run sequentially even with
    /// `jobs > 1`, `Some(0)` forces every iteration parallel, and `None`
    /// (the default) inherits the engine's own setting. Results are
    /// bit-identical either way. Like `inprocess`, this is a session knob:
    /// the per-call path (`incremental == false`) takes the threshold from
    /// the engine itself.
    pub parallel_threshold: Option<u64>,
}

impl Default for ReachOptions {
    fn default() -> Self {
        ReachOptions {
            max_iterations: None,
            simplify_frontier: false,
            incremental: true,
            inprocess: true,
            step_budget: Budget::unlimited(),
            total_budget: Budget::unlimited(),
            cancel: None,
            parallel_threshold: None,
        }
    }
}

impl ReachOptions {
    /// Sets the whole-loop budget.
    pub fn with_total_budget(mut self, budget: Budget) -> Self {
        self.total_budget = budget;
        self
    }

    /// Sets the per-preimage-call budget.
    pub fn with_step_budget(mut self, budget: Budget) -> Self {
        self.step_budget = budget;
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Enables or disables session inprocessing (see
    /// [`ReachOptions::inprocess`]).
    pub fn with_inprocess(mut self, on: bool) -> Self {
        self.inprocess = on;
        self
    }

    /// Overrides the session's parallel spawn gate (see
    /// [`ReachOptions::parallel_threshold`]).
    pub fn with_parallel_threshold(mut self, threshold: u64) -> Self {
        self.parallel_threshold = Some(threshold);
        self
    }
}

/// One row of the per-iteration report (the series plotted in figure F3).
#[derive(Clone, Debug)]
pub struct ReachIteration {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Cubes in the frontier fed to the engine this iteration.
    pub frontier_cubes: usize,
    /// States newly discovered this iteration.
    pub new_states: u128,
    /// Cumulative backward-reachable states after this iteration.
    pub reached_states: u128,
    /// Wall-clock time of this iteration's preimage call.
    pub elapsed: Duration,
}

/// The result of a backward-reachability run.
///
/// # Anytime semantics
///
/// When a budget, deadline, or cancellation interrupts the loop,
/// `complete` is `false`, `stop_reason` says why, and `reached` is the
/// deepest **verified** frontier closure computed so far: every state in it
/// provably reaches the target, including any partial preimage states the
/// interrupted iteration had already verified. It is an
/// under-approximation — never a fabricated fixed point (`converged` stays
/// `false`). Hitting `max_iterations` is a *requested* cap, not a resource
/// stop: `converged == false` but `complete` stays `true`.
#[derive(Clone, Debug)]
pub struct ReachReport {
    /// All states that can reach the target (including the target itself).
    pub reached: StateSet,
    /// Exact cardinality of `reached`.
    pub reached_states: u128,
    /// Per-iteration rows.
    pub iterations: Vec<ReachIteration>,
    /// `true` if a fixed point was reached (no iteration cap hit).
    pub converged: bool,
    /// `false` if a resource budget, deadline, or cancellation stopped the
    /// loop before the fixed point (or iteration cap) was reached.
    pub complete: bool,
    /// Why the loop stopped early; `None` unless `complete == false`.
    pub stop_reason: Option<StopReason>,
    /// Aggregated engine counters over every iteration: work counters are
    /// summed, peak sizes take the maximum, `iterations` is the
    /// fixed-point depth (number of preimage calls), and `wall_time_ns`
    /// covers the whole loop.
    pub stats: PreimageStats,
}

/// Computes the set of states from which `target` is reachable, by
/// iterating `R ← R ∪ Pre(frontier)` until the frontier is empty.
///
/// The reached set and frontiers are maintained in a [`SolutionGraph`]
/// (shared decision DAG), so set difference and union stay cheap even when
/// the frontier has exponentially many minterms.
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::{backward_reach, ReachOptions, SatPreimage, StateSet};
///
/// let c = generators::counter(3, false);
/// let report = backward_reach(
///     &SatPreimage::success_driven(),
///     &c,
///     &StateSet::from_state_bits(0, 3),
///     ReachOptions::default(),
/// );
/// // a free-running counter reaches 0 from every state
/// assert!(report.converged);
/// assert_eq!(report.reached_states, 8);
/// ```
pub fn backward_reach(
    engine: &dyn PreimageEngine,
    circuit: &Circuit,
    target: &StateSet,
    options: ReachOptions,
) -> ReachReport {
    backward_reach_with_sink(engine, circuit, target, options, &mut NullSink)
}

/// [`backward_reach`] with an event trace: forwards each inner preimage
/// call's events to `sink` and additionally records one
/// [`Event::ReachIteration`] per fixed-point iteration.
pub fn backward_reach_with_sink(
    engine: &dyn PreimageEngine,
    circuit: &Circuit,
    target: &StateSet,
    options: ReachOptions,
    sink: &mut dyn ObsSink,
) -> ReachReport {
    let timer = Timer::start();
    let n = circuit.num_latches();
    let position_vars: Vec<Var> = Var::range(n).collect();
    let mut graph = SolutionGraph::new(n);

    // Incremental mode: one persistent session answers every iteration.
    // Blocking the target up front keeps the invariant «blocked set ==
    // reached set», so each session preimage already returns
    // Pre(frontier) ∖ reached and iteration k's states are never
    // re-derived in iteration k+1. The set subtraction below is still
    // performed on the canonical graph — `diff` of an already-disjoint set
    // is the identity — which keeps the two paths bit-identical.
    let mut session = if options.incremental {
        engine.open_session(circuit)
    } else {
        None
    };
    if let Some(s) = session.as_deref_mut() {
        s.set_inprocess(options.inprocess);
        if let Some(threshold) = options.parallel_threshold {
            s.set_parallel_threshold(threshold);
        }
        s.block_states(target);
    }

    let mut reached = graph.add_cube_set(target.cubes(), &position_vars);
    let mut frontier_node = reached;
    let mut iterations = Vec::new();
    let mut converged = false;
    let mut stop: Option<StopReason> = None;
    let mut stats = PreimageStats::default();
    // Counter residue of the total budget, spent down by each iteration's
    // sub-solver work (the deadline is absolute — no bookkeeping needed).
    let mut total_remaining = options.total_budget;

    for iteration in 1.. {
        if frontier_node == SolutionNodeId::BOTTOM {
            converged = true;
            break;
        }
        if options.max_iterations.is_some_and(|cap| iteration > cap) {
            break;
        }
        // Between-iteration stop checks cover every engine, including
        // those that ignore limits inside a call (the BDD engine).
        if options.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            stop = Some(StopReason::Cancelled);
            break;
        }
        if let Some(deadline) = options.total_budget.deadline {
            if Instant::now() >= deadline {
                stop = Some(StopReason::Deadline);
                break;
            }
        }
        if total_remaining.conflicts == Some(0) {
            stop = Some(StopReason::Conflicts);
            break;
        }
        if total_remaining.propagations == Some(0) {
            stop = Some(StopReason::Propagations);
            break;
        }
        let limits = EnumLimits {
            budget: effective_budget(&options.step_budget, &total_remaining),
            cancel: options.cancel.clone(),
            max_solutions: None,
        };
        let frontier = StateSet::from_cubes(graph.to_cube_set(frontier_node, &position_vars));
        let start = Instant::now();
        let pre = match session.as_deref_mut() {
            Some(s) => s.preimage_limited(&frontier, &limits, sink),
            None => engine.preimage_limited(circuit, &frontier, &limits, sink),
        };
        let elapsed = start.elapsed();
        stats.absorb(&pre.stats);
        if let Some(c) = total_remaining.conflicts.as_mut() {
            *c = c.saturating_sub(pre.stats.allsat.sat.conflicts);
        }
        if let Some(p) = total_remaining.propagations.as_mut() {
            *p = p.saturating_sub(pre.stats.allsat.sat.propagations);
        }
        if let Some(s) = session.as_deref_mut() {
            s.block_states(&pre.states);
        }

        // Partial preimage states are still verified predecessors of the
        // frontier: absorbing them keeps the report a sound
        // under-approximation even when this iteration was cut short.
        let pre_node = graph.add_cube_set(pre.states.cubes(), &position_vars);
        let new_node = graph.diff(pre_node, reached);
        let next_frontier = if options.simplify_frontier && new_node != SolutionNodeId::BOTTOM {
            // Care set = everything not yet reached; inside the reached
            // region the frontier may grow arbitrarily (those states are
            // already known backward-reachable), which lets sibling
            // substitution shrink the representation.
            let care = graph.diff(SolutionNodeId::TOP, reached);
            graph.simplify(new_node, care)
        } else {
            new_node
        };
        reached = graph.union(reached, new_node);
        let new_states = graph.minterm_count(new_node);
        sink.record(&Event::ReachIteration {
            iteration: iteration as u32,
            frontier_cubes: frontier.num_cubes() as u64,
            new_states: u64::try_from(new_states).unwrap_or(u64::MAX),
        });
        iterations.push(ReachIteration {
            iteration,
            frontier_cubes: frontier.num_cubes(),
            new_states,
            reached_states: graph.minterm_count(reached),
            elapsed,
        });
        if !pre.complete {
            // An interrupted preimage: an empty new_node here means "ran
            // out of budget", NOT "fixed point" — stop without converging.
            stop = pre.stop_reason;
            break;
        }
        frontier_node = if graph.minterm_count(new_node) == 0 {
            SolutionNodeId::BOTTOM
        } else {
            next_frontier
        };
    }

    if let Some(reason) = stop {
        sink.record(&Event::BudgetStop { reason });
    }
    let reached_states = graph.minterm_count(reached);
    let reached_set = StateSet::from_cubes(graph.to_cube_set(reached, &position_vars));
    stats.iterations = iterations.len() as u64;
    stats.result_cubes = reached_set.num_cubes() as u64;
    stats.wall_time_ns = timer.elapsed_ns();
    sink.record(&Event::EngineDone {
        wall_time_ns: stats.wall_time_ns,
    });
    ReachReport {
        reached: reached_set,
        reached_states,
        iterations,
        converged,
        complete: stop.is_none(),
        stop_reason: stop,
        stats,
    }
}

/// The budget for one iteration's preimage call: the per-step allowance
/// clipped to what remains of the total (counters take the minimum,
/// deadlines the earliest).
fn effective_budget(step: &Budget, total_remaining: &Budget) -> Budget {
    let min_opt = |a: Option<u64>, b: Option<u64>| match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    };
    Budget {
        conflicts: min_opt(step.conflicts, total_remaining.conflicts),
        propagations: min_opt(step.propagations, total_remaining.propagations),
        deadline: match (step.deadline, total_remaining.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdd_engine::BddPreimage;
    use crate::oracle;
    use crate::sat_engine::SatPreimage;
    use presat_circuit::generators;

    fn check_reach(circuit: &Circuit, target: &StateSet) {
        let n = circuit.num_latches();
        let expect = oracle::backward_reachable_bits(circuit, target);
        for engine in [
            Box::new(SatPreimage::success_driven()) as Box<dyn PreimageEngine>,
            Box::new(SatPreimage::blocking()),
            Box::new(BddPreimage::substitution()),
        ] {
            let report = backward_reach(engine.as_ref(), circuit, target, ReachOptions::default());
            assert!(report.converged);
            assert_eq!(
                report.reached_states,
                expect.len() as u128,
                "{} on {}",
                engine.name(),
                circuit.name()
            );
            for &b in &expect {
                assert!(report.reached.contains_bits(b, n));
            }
        }
    }

    #[test]
    fn counter_reaches_everything() {
        let c = generators::counter(3, false);
        check_reach(&c, &StateSet::from_state_bits(5, 3));
    }

    #[test]
    fn counter_iteration_chain_length() {
        // Reaching state 0 of an n-bit counter takes 2^n - 1 preimage
        // steps (one new state per iteration) plus the empty-frontier step.
        let c = generators::counter(3, false);
        let report = backward_reach(
            &SatPreimage::success_driven(),
            &c,
            &StateSet::from_state_bits(0, 3),
            ReachOptions::default(),
        );
        assert_eq!(report.iterations.len(), 8);
        assert!(report
            .iterations
            .iter()
            .take(7)
            .all(|row| row.new_states == 1));
        assert_eq!(report.iterations.last().unwrap().new_states, 0);
    }

    #[test]
    fn shift_register_converges_quickly() {
        let c = generators::shift_register(4);
        check_reach(&c, &StateSet::from_partial(&[(3, true)]));
    }

    #[test]
    fn lfsr_cycle_reaches_cycle_members() {
        let c = generators::lfsr(4);
        check_reach(&c, &StateSet::from_state_bits(1, 4));
    }

    #[test]
    fn arbiter_reachability() {
        let c = generators::round_robin_arbiter(2);
        check_reach(&c, &StateSet::from_partial(&[(2, true)]));
    }

    #[test]
    fn frontier_simplification_preserves_the_fixed_point() {
        for (circuit, target) in [
            (
                generators::counter(4, true),
                StateSet::from_state_bits(9, 4),
            ),
            (
                generators::round_robin_arbiter(2),
                StateSet::from_partial(&[(2, true)]),
            ),
            (generators::parity(3), StateSet::from_partial(&[(3, true)])),
            (generators::lfsr(5), StateSet::from_state_bits(7, 5)),
        ] {
            let n = circuit.num_latches();
            let plain = backward_reach(
                &SatPreimage::success_driven(),
                &circuit,
                &target,
                ReachOptions::default(),
            );
            let simplified = backward_reach(
                &SatPreimage::success_driven(),
                &circuit,
                &target,
                ReachOptions {
                    simplify_frontier: true,
                    ..ReachOptions::default()
                },
            );
            assert!(simplified.converged);
            assert_eq!(
                plain.reached_states,
                simplified.reached_states,
                "{}",
                circuit.name()
            );
            assert!(plain.reached.semantically_eq(&simplified.reached, n));
        }
    }

    #[test]
    fn s27_reachability() {
        let c = presat_circuit::embedded::s27().unwrap();
        check_reach(&c, &StateSet::from_state_bits(2, 3));
    }

    #[test]
    fn iteration_cap_is_respected() {
        let c = generators::counter(4, false);
        let report = backward_reach(
            &SatPreimage::success_driven(),
            &c,
            &StateSet::from_state_bits(0, 4),
            ReachOptions {
                max_iterations: Some(3),
                ..ReachOptions::default()
            },
        );
        assert!(!report.converged);
        assert_eq!(report.iterations.len(), 3);
        assert_eq!(report.reached_states, 4); // target + 3 predecessors
    }

    #[test]
    fn empty_target_converges_immediately() {
        let c = generators::counter(3, false);
        let report = backward_reach(
            &SatPreimage::success_driven(),
            &c,
            &StateSet::empty(),
            ReachOptions::default(),
        );
        assert!(report.converged);
        assert_eq!(report.reached_states, 0);
        assert!(report.iterations.is_empty());
    }
}
