//! Backward reachability: iterate preimages to a fixed point.

use std::time::{Duration, Instant};

use presat_allsat::{Budget, CancelToken, EnumLimits, SolutionGraph, SolutionNodeId};
use presat_circuit::Circuit;
use presat_logic::Var;
use presat_obs::{Event, NullSink, ObsSink, StopReason, Timer};

use crate::engine::{PreimageEngine, PreimageSession, PreimageStats};
use crate::state_set::StateSet;

/// Options for the reachability loop.
#[derive(Clone, Debug)]
pub struct ReachOptions {
    /// Stop after this many iterations even if not converged
    /// (`None` = run to the fixed point).
    pub max_iterations: Option<usize>,
    /// Enlarge each frontier within the already-reached don't-care space
    /// ([`SolutionGraph::simplify`]) before handing it to the engine.
    /// Sound (extra states are all backward-reachable) and often shrinks
    /// the frontier's cube representation; the reached set stays exact.
    pub simplify_frontier: bool,
    /// Drive the fixed point through one persistent
    /// [`crate::PreimageSession`] when the engine offers one (the
    /// default): the transition relation is encoded once, the solver stays
    /// warm across iterations, and reached states are blocked inside the
    /// solver so they are never re-derived. Bit-identical results either
    /// way; engines without sessions silently use the per-call path.
    pub incremental: bool,
    /// Run root-level solver inprocessing at the session's retirement
    /// boundaries (the default). Equivalence-preserving — the report is
    /// identical either way — but keeps the persistent solver's live
    /// clause volume down over deep fixed points. Ignored on the per-call
    /// path (`incremental == false`), which rebuilds the solver anyway.
    pub inprocess: bool,
    /// Resource budget for each individual preimage call (counter limits
    /// reset every iteration; a deadline here is absolute and so in
    /// practice belongs in `total_budget`).
    pub step_budget: Budget,
    /// Resource budget for the whole fixed point: counter limits are spent
    /// down across iterations, the deadline bounds the loop's wall clock.
    pub total_budget: Budget,
    /// Cooperative cancellation: polled by the running engine (SAT kinds)
    /// and between iterations (every engine).
    pub cancel: Option<CancelToken>,
    /// Override for the session's parallel spawn gate (see
    /// [`crate::PreimageSession::set_parallel_threshold`]): iterations
    /// whose encoding falls below the threshold run sequentially even with
    /// `jobs > 1`, `Some(0)` forces every iteration parallel, and `None`
    /// (the default) inherits the engine's own setting. Results are
    /// bit-identical either way. Like `inprocess`, this is a session knob:
    /// the per-call path (`incremental == false`) takes the threshold from
    /// the engine itself.
    pub parallel_threshold: Option<u64>,
}

impl Default for ReachOptions {
    fn default() -> Self {
        ReachOptions {
            max_iterations: None,
            simplify_frontier: false,
            incremental: true,
            inprocess: true,
            step_budget: Budget::unlimited(),
            total_budget: Budget::unlimited(),
            cancel: None,
            parallel_threshold: None,
        }
    }
}

impl ReachOptions {
    /// Sets the whole-loop budget.
    pub fn with_total_budget(mut self, budget: Budget) -> Self {
        self.total_budget = budget;
        self
    }

    /// Sets the per-preimage-call budget.
    pub fn with_step_budget(mut self, budget: Budget) -> Self {
        self.step_budget = budget;
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Enables or disables session inprocessing (see
    /// [`ReachOptions::inprocess`]).
    pub fn with_inprocess(mut self, on: bool) -> Self {
        self.inprocess = on;
        self
    }

    /// Overrides the session's parallel spawn gate (see
    /// [`ReachOptions::parallel_threshold`]).
    pub fn with_parallel_threshold(mut self, threshold: u64) -> Self {
        self.parallel_threshold = Some(threshold);
        self
    }
}

/// One row of the per-iteration report (the series plotted in figure F3).
#[derive(Clone, Debug)]
pub struct ReachIteration {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Cubes in the frontier fed to the engine this iteration.
    pub frontier_cubes: usize,
    /// States newly discovered this iteration.
    pub new_states: u128,
    /// Cumulative backward-reachable states after this iteration.
    pub reached_states: u128,
    /// Wall-clock time of this iteration's preimage call.
    pub elapsed: Duration,
}

/// The result of a backward-reachability run.
///
/// # Anytime semantics
///
/// When a budget, deadline, or cancellation interrupts the loop,
/// `complete` is `false`, `stop_reason` says why, and `reached` is the
/// deepest **verified** frontier closure computed so far: every state in it
/// provably reaches the target, including any partial preimage states the
/// interrupted iteration had already verified. It is an
/// under-approximation — never a fabricated fixed point (`converged` stays
/// `false`). Hitting `max_iterations` is a *requested* cap, not a resource
/// stop: `converged == false` but `complete` stays `true`.
#[derive(Clone, Debug)]
pub struct ReachReport {
    /// All states that can reach the target (including the target itself).
    pub reached: StateSet,
    /// Exact cardinality of `reached`.
    pub reached_states: u128,
    /// Per-iteration rows.
    pub iterations: Vec<ReachIteration>,
    /// `true` if a fixed point was reached (no iteration cap hit).
    pub converged: bool,
    /// `false` if a resource budget, deadline, or cancellation stopped the
    /// loop before the fixed point (or iteration cap) was reached.
    pub complete: bool,
    /// Why the loop stopped early; `None` unless `complete == false`.
    pub stop_reason: Option<StopReason>,
    /// Aggregated engine counters over every iteration: work counters are
    /// summed, peak sizes take the maximum, `iterations` is the
    /// fixed-point depth (number of preimage calls), and `wall_time_ns`
    /// covers the whole loop.
    pub stats: PreimageStats,
}

/// Computes the set of states from which `target` is reachable, by
/// iterating `R ← R ∪ Pre(frontier)` until the frontier is empty.
///
/// The reached set and frontiers are maintained in a [`SolutionGraph`]
/// (shared decision DAG), so set difference and union stay cheap even when
/// the frontier has exponentially many minterms.
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::{backward_reach, ReachOptions, SatPreimage, StateSet};
///
/// let c = generators::counter(3, false);
/// let report = backward_reach(
///     &SatPreimage::success_driven(),
///     &c,
///     &StateSet::from_state_bits(0, 3),
///     ReachOptions::default(),
/// );
/// // a free-running counter reaches 0 from every state
/// assert!(report.converged);
/// assert_eq!(report.reached_states, 8);
/// ```
pub fn backward_reach(
    engine: &dyn PreimageEngine,
    circuit: &Circuit,
    target: &StateSet,
    options: ReachOptions,
) -> ReachReport {
    backward_reach_with_sink(engine, circuit, target, options, &mut NullSink)
}

/// [`backward_reach`] with an event trace: forwards each inner preimage
/// call's events to `sink` and additionally records one
/// [`Event::ReachIteration`] per fixed-point iteration.
pub fn backward_reach_with_sink(
    engine: &dyn PreimageEngine,
    circuit: &Circuit,
    target: &StateSet,
    options: ReachOptions,
    sink: &mut dyn ObsSink,
) -> ReachReport {
    let mut driver = ReachDriver::new(engine, circuit, target, options);
    // The one-shot loop treats an interrupted preimage call as a terminal
    // anytime stop; the driver itself stays resumable (the daemon keeps
    // stepping the same frontier instead).
    while let ReachStep::Advanced = driver.step(engine, circuit, &Budget::unlimited(), sink) {}
    let report = driver.report();
    if let Some(reason) = report.stop_reason {
        sink.record(&Event::BudgetStop { reason });
    }
    sink.record(&Event::EngineDone {
        wall_time_ns: report.stats.wall_time_ns,
    });
    report
}

/// The outcome of one [`ReachDriver::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReachStep {
    /// One frontier's preimage was fully enumerated and the fixed point is
    /// not yet reached — step again to continue.
    Advanced,
    /// The current frontier's preimage call was cut short (slice budget,
    /// step budget, deadline, or cancellation inside the call). The
    /// partial states found are already absorbed into the reached set;
    /// stepping again *resumes the same frontier* where it left off (on
    /// the incremental session path the absorbed states are blocked in the
    /// solver, so no work repeats).
    Interrupted(StopReason),
    /// Nothing more to do: converged, iteration cap reached, total budget
    /// exhausted, or cancelled between iterations. Take the
    /// [`ReachDriver::report`].
    Done,
}

/// A backward-reachability fixed point broken into explicit, resumable
/// steps: the slice primitive the `presatd` scheduler interleaves across
/// tenants. [`backward_reach`] is exactly a loop over [`ReachDriver::step`]
/// with an unlimited slice budget, so the sliced and one-shot paths share
/// every line of fixed-point logic and the final reached set is
/// bit-identical however the work was sliced (the reached set lives in a
/// canonical [`SolutionGraph`], so its cube representation depends only on
/// the *set*, never on the slicing).
pub struct ReachDriver {
    options: ReachOptions,
    position_vars: Vec<Var>,
    graph: SolutionGraph,
    session: Option<Box<dyn PreimageSession>>,
    reached: SolutionNodeId,
    frontier_node: SolutionNodeId,
    /// New states discovered for the *current* frontier across its slices;
    /// becomes the next frontier once the current one completes. (With an
    /// unlimited slice budget a frontier always completes in one step and
    /// this is just that step's `new_node`.)
    pending: SolutionNodeId,
    /// Snapshot of `reached` at the moment the current frontier was
    /// installed: the care set for frontier simplification, so sliced and
    /// one-shot runs simplify against the same region.
    frontier_base_reached: SolutionNodeId,
    iterations: Vec<ReachIteration>,
    converged: bool,
    /// `true` once `max_iterations` preimage calls have completed.
    capped: bool,
    stop: Option<StopReason>,
    stats: PreimageStats,
    /// Counter residue of the total budget, spent down by each step's
    /// sub-solver work (the deadline is absolute — no bookkeeping needed).
    total_remaining: Budget,
    /// Consecutive interrupted steps that contributed zero new states.
    /// Sessions retire their activation group after every preimage call,
    /// so a frontier's closing UNSAT proof restarts from scratch each
    /// slice; a fixed slice quantum smaller than that proof would
    /// re-interrupt forever. Each stall doubles the effective quantum
    /// (reset on any progress), bounding wasted slices logarithmically.
    stalls: u32,
    timer: Timer,
}

impl ReachDriver {
    /// Prepares a fixed point for `target` on `circuit`. The same `engine`
    /// and `circuit` must be passed to every subsequent
    /// [`step`](ReachDriver::step) call.
    pub fn new(
        engine: &dyn PreimageEngine,
        circuit: &Circuit,
        target: &StateSet,
        options: ReachOptions,
    ) -> Self {
        let timer = Timer::start();
        let n = circuit.num_latches();
        let position_vars: Vec<Var> = Var::range(n).collect();
        let mut graph = SolutionGraph::new(n);

        // Incremental mode: one persistent session answers every step.
        // Blocking the target up front keeps the invariant «blocked set ==
        // reached set», so each session preimage already returns
        // Pre(frontier) ∖ reached and states are never re-derived — across
        // iterations *or* across budgeted slices of one frontier. The set
        // subtraction in `step` is still performed on the canonical graph
        // — `diff` of an already-disjoint set is the identity — which
        // keeps the paths bit-identical.
        let mut session = if options.incremental {
            engine.open_session(circuit)
        } else {
            None
        };
        if let Some(s) = session.as_deref_mut() {
            s.set_inprocess(options.inprocess);
            if let Some(threshold) = options.parallel_threshold {
                s.set_parallel_threshold(threshold);
            }
            s.block_states(target);
        }

        let reached = graph.add_cube_set(target.cubes(), &position_vars);
        let total_remaining = options.total_budget;
        ReachDriver {
            options,
            position_vars,
            graph,
            session,
            reached,
            frontier_node: reached,
            pending: SolutionNodeId::BOTTOM,
            frontier_base_reached: reached,
            iterations: Vec::new(),
            converged: false,
            capped: false,
            stop: None,
            stats: PreimageStats::default(),
            total_remaining,
            stalls: 0,
            timer,
        }
    }

    /// Runs one preimage call on the current frontier, bounded by the
    /// step budget, the remaining total budget, **and** `slice_budget`
    /// (all clipped together; pass [`Budget::unlimited`] for no extra
    /// slice bound). Absorbs whatever the call verified into the reached
    /// set and reports whether the fixed point advanced, was interrupted
    /// mid-frontier (step again to resume), or is done.
    pub fn step(
        &mut self,
        engine: &dyn PreimageEngine,
        circuit: &Circuit,
        slice_budget: &Budget,
        sink: &mut dyn ObsSink,
    ) -> ReachStep {
        // A previous slice's mid-frontier interruption is not sticky; the
        // terminal conditions below re-derive themselves every step.
        self.stop = None;
        if self.frontier_node == SolutionNodeId::BOTTOM {
            self.converged = true;
            return ReachStep::Done;
        }
        if self
            .options
            .max_iterations
            .is_some_and(|cap| self.iterations.len() >= cap)
        {
            self.capped = true;
            return ReachStep::Done;
        }
        // Between-step stop checks cover every engine, including those
        // that ignore limits inside a call (the BDD engine).
        if self
            .options
            .cancel
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
        {
            self.stop = Some(StopReason::Cancelled);
            return ReachStep::Done;
        }
        if let Some(deadline) = self.options.total_budget.deadline {
            if Instant::now() >= deadline {
                self.stop = Some(StopReason::Deadline);
                return ReachStep::Done;
            }
        }
        if self.total_remaining.conflicts == Some(0) {
            self.stop = Some(StopReason::Conflicts);
            return ReachStep::Done;
        }
        if self.total_remaining.propagations == Some(0) {
            self.stop = Some(StopReason::Propagations);
            return ReachStep::Done;
        }
        // Stall escalation: grow the caller's slice quantum exponentially
        // while consecutive slices end interrupted with nothing to show,
        // so the frontier's closing UNSAT proof eventually fits in one
        // slice (see the `stalls` field). Total-budget clipping below
        // still bounds the boosted slice.
        let boost = 1u64.checked_shl(self.stalls.min(32)).unwrap_or(u64::MAX);
        let boosted_slice = Budget {
            conflicts: slice_budget
                .conflicts
                .map(|c| c.max(1).saturating_mul(boost)),
            propagations: slice_budget
                .propagations
                .map(|p| p.max(1).saturating_mul(boost)),
            deadline: slice_budget.deadline,
        };
        let limits = EnumLimits {
            // The per-step allowance clipped to what remains of the total
            // (counters take the minimum, deadlines the earliest), then to
            // the caller's (possibly boosted) slice quantum.
            budget: self
                .options
                .step_budget
                .clipped_to(&self.total_remaining)
                .clipped_to(&boosted_slice),
            cancel: self.options.cancel.clone(),
            max_solutions: None,
        };
        let frontier = StateSet::from_cubes(
            self.graph
                .to_cube_set(self.frontier_node, &self.position_vars),
        );
        let start = Instant::now();
        let pre = match self.session.as_deref_mut() {
            Some(s) => s.preimage_limited(&frontier, &limits, sink),
            None => engine.preimage_limited(circuit, &frontier, &limits, sink),
        };
        let elapsed = start.elapsed();
        self.stats.absorb(&pre.stats);
        if let Some(c) = self.total_remaining.conflicts.as_mut() {
            *c = c.saturating_sub(pre.stats.allsat.sat.conflicts);
        }
        if let Some(p) = self.total_remaining.propagations.as_mut() {
            *p = p.saturating_sub(pre.stats.allsat.sat.propagations);
        }
        if let Some(s) = self.session.as_deref_mut() {
            s.block_states(&pre.states);
        }

        // Partial preimage states are still verified predecessors of the
        // frontier: absorbing them keeps the report a sound
        // under-approximation even when this step was cut short, and the
        // `pending` accumulator carries them into the next frontier so a
        // resumed run explores their predecessors too.
        let pre_node = self
            .graph
            .add_cube_set(pre.states.cubes(), &self.position_vars);
        let new_node = self.graph.diff(pre_node, self.reached);
        self.reached = self.graph.union(self.reached, new_node);
        self.pending = self.graph.union(self.pending, new_node);
        let new_states = self.graph.minterm_count(new_node);
        let iteration = self.iterations.len() + 1;
        sink.record(&Event::ReachIteration {
            iteration: iteration as u32,
            frontier_cubes: frontier.num_cubes() as u64,
            new_states: u64::try_from(new_states).unwrap_or(u64::MAX),
        });
        self.iterations.push(ReachIteration {
            iteration,
            frontier_cubes: frontier.num_cubes(),
            new_states,
            reached_states: self.graph.minterm_count(self.reached),
            elapsed,
        });
        if !pre.complete {
            // An interrupted preimage: an empty new_node here means "ran
            // out of budget", NOT "fixed point" — the frontier stays
            // installed and a later step resumes it.
            self.stalls = if new_states == 0 {
                self.stalls.saturating_add(1)
            } else {
                0
            };
            let reason = pre.stop_reason.unwrap_or(StopReason::Cancelled);
            self.stop = Some(reason);
            return ReachStep::Interrupted(reason);
        }
        self.stalls = 0;
        // The frontier is fully enumerated: advance to the accumulated new
        // states (from this step and any interrupted slices before it).
        let next_frontier = if self.options.simplify_frontier && self.pending != SolutionNodeId::BOTTOM
        {
            // Care set = everything not reached when this frontier was
            // installed; inside the already-reached region the frontier
            // may grow arbitrarily (those states are known
            // backward-reachable), which lets sibling substitution shrink
            // the representation.
            let care = self
                .graph
                .diff(SolutionNodeId::TOP, self.frontier_base_reached);
            self.graph.simplify(self.pending, care)
        } else {
            self.pending
        };
        self.frontier_node = if self.graph.minterm_count(self.pending) == 0 {
            SolutionNodeId::BOTTOM
        } else {
            next_frontier
        };
        self.pending = SolutionNodeId::BOTTOM;
        self.frontier_base_reached = self.reached;
        ReachStep::Advanced
    }

    /// `true` once the fixed point converged (empty frontier).
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Why the last step stopped early, if it did.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stop
    }

    /// Preimage calls completed so far (iteration rows).
    pub fn iterations(&self) -> usize {
        self.iterations.len()
    }

    /// The per-iteration rows so far, growing as steps complete — cheaper
    /// than [`report`](ReachDriver::report) (no reached-set extraction)
    /// for streaming progress after each slice.
    pub fn iteration_rows(&self) -> &[ReachIteration] {
        &self.iterations
    }

    /// Exact cardinality of the current reached set.
    pub fn reached_states(&self) -> u128 {
        self.graph.minterm_count(self.reached)
    }

    /// Number of cubes the current reached set extracts to, without
    /// materialising them (one per ⊤-path of the decision DAG) — the
    /// daemon's live result-set gauge, cheap enough to read every slice.
    pub fn reached_cubes(&self) -> u64 {
        self.graph.cube_count(self.reached)
    }

    /// Aggregated engine counters over every step so far.
    pub fn stats(&self) -> &PreimageStats {
        &self.stats
    }

    /// Live clause-arena bytes of the driver's persistent session (`0` on
    /// the per-call path) — the admission-control gauge.
    pub fn arena_bytes(&self) -> u64 {
        self.session.as_deref().map_or(0, PreimageSession::arena_bytes)
    }

    /// Snapshot of the run so far as a [`ReachReport`] — callable at any
    /// point (the daemon streams progress from it) and final once
    /// [`step`](ReachDriver::step) returned [`ReachStep::Done`].
    pub fn report(&self) -> ReachReport {
        let reached_states = self.graph.minterm_count(self.reached);
        let reached_set =
            StateSet::from_cubes(self.graph.to_cube_set(self.reached, &self.position_vars));
        let mut stats = self.stats;
        stats.iterations = self.iterations.len() as u64;
        stats.result_cubes = reached_set.num_cubes() as u64;
        stats.wall_time_ns = self.timer.elapsed_ns();
        ReachReport {
            reached: reached_set,
            reached_states,
            iterations: self.iterations.clone(),
            converged: self.converged,
            complete: self.stop.is_none(),
            stop_reason: self.stop,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdd_engine::BddPreimage;
    use crate::oracle;
    use crate::sat_engine::SatPreimage;
    use presat_circuit::generators;

    fn check_reach(circuit: &Circuit, target: &StateSet) {
        let n = circuit.num_latches();
        let expect = oracle::backward_reachable_bits(circuit, target);
        for engine in [
            Box::new(SatPreimage::success_driven()) as Box<dyn PreimageEngine>,
            Box::new(SatPreimage::blocking()),
            Box::new(BddPreimage::substitution()),
        ] {
            let report = backward_reach(engine.as_ref(), circuit, target, ReachOptions::default());
            assert!(report.converged);
            assert_eq!(
                report.reached_states,
                expect.len() as u128,
                "{} on {}",
                engine.name(),
                circuit.name()
            );
            for &b in &expect {
                assert!(report.reached.contains_bits(b, n));
            }
        }
    }

    #[test]
    fn counter_reaches_everything() {
        let c = generators::counter(3, false);
        check_reach(&c, &StateSet::from_state_bits(5, 3));
    }

    #[test]
    fn counter_iteration_chain_length() {
        // Reaching state 0 of an n-bit counter takes 2^n - 1 preimage
        // steps (one new state per iteration) plus the empty-frontier step.
        let c = generators::counter(3, false);
        let report = backward_reach(
            &SatPreimage::success_driven(),
            &c,
            &StateSet::from_state_bits(0, 3),
            ReachOptions::default(),
        );
        assert_eq!(report.iterations.len(), 8);
        assert!(report
            .iterations
            .iter()
            .take(7)
            .all(|row| row.new_states == 1));
        assert_eq!(report.iterations.last().unwrap().new_states, 0);
    }

    #[test]
    fn shift_register_converges_quickly() {
        let c = generators::shift_register(4);
        check_reach(&c, &StateSet::from_partial(&[(3, true)]));
    }

    #[test]
    fn lfsr_cycle_reaches_cycle_members() {
        let c = generators::lfsr(4);
        check_reach(&c, &StateSet::from_state_bits(1, 4));
    }

    #[test]
    fn arbiter_reachability() {
        let c = generators::round_robin_arbiter(2);
        check_reach(&c, &StateSet::from_partial(&[(2, true)]));
    }

    #[test]
    fn frontier_simplification_preserves_the_fixed_point() {
        for (circuit, target) in [
            (
                generators::counter(4, true),
                StateSet::from_state_bits(9, 4),
            ),
            (
                generators::round_robin_arbiter(2),
                StateSet::from_partial(&[(2, true)]),
            ),
            (generators::parity(3), StateSet::from_partial(&[(3, true)])),
            (generators::lfsr(5), StateSet::from_state_bits(7, 5)),
        ] {
            let n = circuit.num_latches();
            let plain = backward_reach(
                &SatPreimage::success_driven(),
                &circuit,
                &target,
                ReachOptions::default(),
            );
            let simplified = backward_reach(
                &SatPreimage::success_driven(),
                &circuit,
                &target,
                ReachOptions {
                    simplify_frontier: true,
                    ..ReachOptions::default()
                },
            );
            assert!(simplified.converged);
            assert_eq!(
                plain.reached_states,
                simplified.reached_states,
                "{}",
                circuit.name()
            );
            assert!(plain.reached.semantically_eq(&simplified.reached, n));
        }
    }

    #[test]
    fn s27_reachability() {
        let c = presat_circuit::embedded::s27().unwrap();
        check_reach(&c, &StateSet::from_state_bits(2, 3));
    }

    #[test]
    fn iteration_cap_is_respected() {
        let c = generators::counter(4, false);
        let report = backward_reach(
            &SatPreimage::success_driven(),
            &c,
            &StateSet::from_state_bits(0, 4),
            ReachOptions {
                max_iterations: Some(3),
                ..ReachOptions::default()
            },
        );
        assert!(!report.converged);
        assert_eq!(report.iterations.len(), 3);
        assert_eq!(report.reached_states, 4); // target + 3 predecessors
    }

    #[test]
    fn sliced_driver_matches_one_shot_reach_bit_for_bit() {
        // Drive the same fixed points through ReachDriver with a tiny
        // conflict quantum per slice: many Interrupted steps, resumed
        // round-robin style. The final reached set must be the *identical*
        // cube list (canonical graph), the same count, and converged.
        for (circuit, target) in [
            (generators::lfsr(5), StateSet::from_state_bits(7, 5)),
            (
                generators::counter(4, true),
                StateSet::from_state_bits(9, 4),
            ),
            (
                generators::round_robin_arbiter(2),
                StateSet::from_partial(&[(2, true)]),
            ),
        ] {
            let engine = SatPreimage::success_driven();
            let one_shot =
                backward_reach(&engine, &circuit, &target, ReachOptions::default());
            assert!(one_shot.converged);

            let mut driver =
                ReachDriver::new(&engine, &circuit, &target, ReachOptions::default());
            let quantum = Budget::unlimited().with_conflicts(1);
            let mut slices = 0u32;
            let mut interrupted = 0u32;
            loop {
                slices += 1;
                assert!(slices < 100_000, "sliced reach did not terminate");
                match driver.step(&engine, &circuit, &quantum, &mut NullSink) {
                    ReachStep::Advanced => {}
                    ReachStep::Interrupted(_) => interrupted += 1,
                    ReachStep::Done => break,
                }
            }
            let sliced = driver.report();
            assert!(sliced.converged, "{}", circuit.name());
            assert!(sliced.complete);
            assert_eq!(sliced.reached_states, one_shot.reached_states);
            assert_eq!(
                sliced.reached.cubes(),
                one_shot.reached.cubes(),
                "{}: sliced reached set must be bit-identical",
                circuit.name()
            );
            let _ = interrupted; // may be 0 on trivially easy circuits
        }
    }

    #[test]
    fn driver_report_is_a_live_snapshot() {
        let c = generators::counter(3, false);
        let engine = SatPreimage::success_driven();
        let target = StateSet::from_state_bits(0, 3);
        let mut driver = ReachDriver::new(&engine, &c, &target, ReachOptions::default());
        assert_eq!(driver.report().reached_states, 1); // just the target
        assert_eq!(
            driver.step(&engine, &c, &Budget::unlimited(), &mut NullSink),
            ReachStep::Advanced
        );
        let mid = driver.report();
        assert_eq!(mid.reached_states, 2);
        assert!(!mid.converged);
        assert!(mid.complete); // not stopped, merely unfinished
        while driver.step(&engine, &c, &Budget::unlimited(), &mut NullSink)
            == ReachStep::Advanced
        {}
        assert!(driver.converged());
        assert_eq!(driver.report().reached_states, 8);
    }

    #[test]
    fn empty_target_converges_immediately() {
        let c = generators::counter(3, false);
        let report = backward_reach(
            &SatPreimage::success_driven(),
            &c,
            &StateSet::empty(),
            ReachOptions::default(),
        );
        assert!(report.converged);
        assert_eq!(report.reached_states, 0);
        assert!(report.iterations.is_empty());
    }
}
