//! BDD-based symbolic preimage computation (the classical baseline).

use presat_bdd::{BddId, BddManager};
use presat_circuit::{AigRef, Circuit};
use presat_logic::{Cube, CubeSet, Lit, Var};
use presat_obs::{Event, ObsSink, Timer};

use crate::engine::{PreimageEngine, PreimageResult, PreimageStats};
use crate::state_set::StateSet;

/// How the BDD engine computes the preimage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BddStrategy {
    /// Substitute the next-state function BDDs into the target
    /// (`T[yj := fj]`) and existentially quantify the inputs. Usually the
    /// stronger variant.
    #[default]
    Substitution,
    /// Build the monolithic transition relation `∏j (yj ↔ fj)` and compute
    /// `∃Y ∃W (TR ∧ T)` with one relational product. The variant whose
    /// intermediate BDDs blow up on comparator-like logic — the classic
    /// weakness the SAT engines exploit.
    Monolithic,
}

/// Symbolic preimage computation with ROBDDs.
///
/// Variable order (block layout, fixed): present-state `X` at levels
/// `0..n`, inputs `W` at `n..n+m`, next-state `Y` at `n+m..n+m+n`. The
/// result is produced over the `X` block, whose level `j` *is* latch
/// position `j`, so conversion to [`StateSet`] is direct.
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::{BddPreimage, PreimageEngine, StateSet};
///
/// let c = generators::counter(4, false);
/// let pre = BddPreimage::substitution().preimage(&c, &StateSet::from_state_bits(9, 4));
/// assert!(pre.states.contains_bits(8, 4));
/// assert_eq!(pre.states.minterm_count(4), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BddPreimage {
    strategy: BddStrategy,
    env: Option<CubeSet>,
}

impl BddPreimage {
    /// The substitution-based engine.
    pub fn substitution() -> Self {
        BddPreimage {
            strategy: BddStrategy::Substitution,
            env: None,
        }
    }

    /// The monolithic-transition-relation engine.
    pub fn monolithic() -> Self {
        BddPreimage {
            strategy: BddStrategy::Monolithic,
            env: None,
        }
    }

    /// Restricts the primary inputs to the environment `env` — a union of
    /// cubes over input positions (`Var::new(i)` = input `i`), mirroring
    /// [`crate::SatPreimage::with_env`].
    pub fn with_env(mut self, env: CubeSet) -> Self {
        self.env = Some(env);
        self
    }

    /// The configured strategy.
    pub fn strategy(&self) -> BddStrategy {
        self.strategy
    }

    /// Builds the BDDs of all next-state functions over the `X`/`W`
    /// blocks, exploiting the topological order of the AIG arena.
    fn next_state_bdds(circuit: &Circuit, m: &mut BddManager) -> Vec<BddId> {
        next_state_bdds_for(circuit, m)
    }
}

/// Shared with the forward-image engine: next-state function BDDs over the
/// workspace's block order (`X` at `0..n`, `W` at `n..n+m`).
pub(crate) fn next_state_bdds_for(circuit: &Circuit, m: &mut BddManager) -> Vec<BddId> {
    let n = circuit.num_latches();
    let num_in = circuit.num_inputs();
    let aig = circuit.aig();

    // Evaluate every arena node once (arena order is topological).
    let mut values: Vec<BddId> = Vec::with_capacity(aig.node_count());
    for idx in 0..aig.node_count() {
        let node = presat_circuit::AigNodeId::from_raw_index(idx);
        let v = if aig.is_const_node(node) {
            BddId::FALSE
        } else if let Some(leaf) = aig.leaf_index(node) {
            if leaf < num_in {
                m.var(Var::new(n + leaf)) // input leaf → W block
            } else {
                m.var(Var::new(leaf - num_in)) // state leaf → X block
            }
        } else {
            let (a, b) = aig.and_fanins(node).expect("non-leaf is AND");
            let av = edge_value(m, &values, a);
            let bv = edge_value(m, &values, b);
            m.and(av, bv)
        };
        values.push(v);
    }
    (0..n)
        .map(|j| edge_value(m, &values, circuit.latch_next(j)))
        .collect()
}

fn edge_value(m: &mut BddManager, values: &[BddId], r: AigRef) -> BddId {
    let v = values[r.node().index()];
    if r.is_complemented() {
        m.not(v)
    } else {
        v
    }
}

impl PreimageEngine for BddPreimage {
    fn name(&self) -> String {
        match self.strategy {
            BddStrategy::Substitution => "bdd-sub".into(),
            BddStrategy::Monolithic => "bdd-mono".into(),
        }
    }

    fn preimage_with_sink(
        &self,
        circuit: &Circuit,
        target: &StateSet,
        sink: &mut dyn ObsSink,
    ) -> PreimageResult {
        let timer = Timer::start();
        circuit.validate().expect("circuit must be complete");
        let n = circuit.num_latches();
        let num_in = circuit.num_inputs();
        let mut m = BddManager::new(2 * n + num_in);

        let next = BddPreimage::next_state_bdds(circuit, &mut m);
        let input_vars: Vec<Var> = (0..num_in).map(|i| Var::new(n + i)).collect();
        let y_var = |j: usize| Var::new(n + num_in + j);

        // Target over the Y block.
        let target_y: CubeSet = target
            .cubes()
            .iter()
            .map(|c| {
                Cube::from_lits(
                    c.lits()
                        .iter()
                        .map(|l| Lit::with_phase(y_var(l.var().index()), l.phase())),
                )
                .expect("distinct positions stay distinct")
            })
            .collect();
        let t_bdd = m.from_cube_set(&target_y);

        // Environment constraint over the W block, if any.
        let env_bdd = self.env.as_ref().map(|env| {
            let shifted: CubeSet = env
                .iter()
                .map(|c| {
                    Cube::from_lits(c.lits().iter().map(|l| {
                        let i = l.var().index();
                        assert!(
                            i < num_in,
                            "environment cube mentions input position {i} ≥ {num_in}"
                        );
                        Lit::with_phase(Var::new(n + i), l.phase())
                    }))
                    .expect("distinct positions stay distinct")
                })
                .collect();
            m.from_cube_set(&shifted)
        });

        let result = match self.strategy {
            BddStrategy::Substitution => {
                // T[yj := fj] then ∃W.
                let mut acc = t_bdd;
                for (j, &f) in next.iter().enumerate() {
                    acc = m.compose(acc, y_var(j), f);
                }
                if let Some(env) = env_bdd {
                    acc = m.and(acc, env);
                }
                m.exists(acc, &input_vars)
            }
            BddStrategy::Monolithic => {
                let mut tr = BddId::TRUE;
                for (j, &f) in next.iter().enumerate() {
                    let yj = m.var(y_var(j));
                    let eq = m.iff(yj, f);
                    tr = m.and(tr, eq);
                }
                if let Some(env) = env_bdd {
                    tr = m.and(tr, env);
                }
                let mut quant: Vec<Var> = (0..n).map(y_var).collect();
                quant.extend(input_vars.iter().copied());
                m.and_exists(tr, t_bdd, &quant)
            }
        };

        // Result is over the X block: level j = latch position j.
        let states = StateSet::from_cubes(m.to_cube_set(result));
        let wall_time_ns = timer.elapsed_ns();
        sink.record(&Event::EngineDone { wall_time_ns });
        PreimageResult {
            stats: PreimageStats {
                result_cubes: states.num_cubes() as u64,
                bdd_nodes: m.node_count() as u64,
                iterations: 1,
                wall_time_ns,
                ..PreimageStats::default()
            },
            states,
            elapsed: timer.elapsed(),
            complete: true,
            stop_reason: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use presat_circuit::generators;

    fn check_both(circuit: &Circuit, target: &StateSet) {
        let n = circuit.num_latches();
        let expect = oracle::preimage(circuit, target);
        for e in [BddPreimage::substitution(), BddPreimage::monolithic()] {
            let got = e.preimage(circuit, target);
            assert!(
                got.states.semantically_eq(&expect, n),
                "{} diverges on {}",
                e.name(),
                circuit.name()
            );
        }
    }

    #[test]
    fn counter_preimage() {
        let c = generators::counter(4, false);
        check_both(&c, &StateSet::from_state_bits(9, 4));
    }

    #[test]
    fn counter_with_enable_cube_target() {
        let c = generators::counter(3, true);
        check_both(&c, &StateSet::from_partial(&[(2, true)]));
    }

    #[test]
    fn shift_and_lfsr() {
        check_both(
            &generators::shift_register(5),
            &StateSet::from_partial(&[(4, true)]),
        );
        check_both(&generators::lfsr(5), &StateSet::from_state_bits(19, 5));
    }

    #[test]
    fn parity_circuit() {
        let c = generators::parity(4);
        check_both(&c, &StateSet::from_partial(&[(4, true)]));
    }

    #[test]
    fn multi_cube_target() {
        let c = generators::shift_register(4);
        let t = StateSet::from_state_bits(3, 4).union(&StateSet::from_state_bits(12, 4));
        check_both(&c, &t);
    }

    #[test]
    fn comparator_strategies_agree() {
        let c = generators::comparator(3);
        check_both(&c, &StateSet::from_partial(&[(3, true)]));
    }

    #[test]
    fn s27_all_singleton_targets() {
        let c = presat_circuit::embedded::s27().unwrap();
        for bits in 0..8u64 {
            check_both(&c, &StateSet::from_state_bits(bits, 3));
        }
    }

    #[test]
    fn random_circuits_fuzz() {
        for seed in 0..5 {
            let c = generators::random_dag(3, 4, 20, seed);
            check_both(&c, &StateSet::from_state_bits((seed * 3) % 16, 4));
        }
    }

    #[test]
    fn empty_target() {
        let c = generators::counter(3, false);
        let pre = BddPreimage::substitution().preimage(&c, &StateSet::empty());
        assert!(pre.states.is_empty());
    }

    #[test]
    fn agrees_with_sat_engines() {
        use crate::sat_engine::SatPreimage;
        let c = generators::round_robin_arbiter(2);
        let t = StateSet::from_partial(&[(2, true), (3, false)]);
        let bdd = BddPreimage::substitution().preimage(&c, &t);
        let sat = SatPreimage::success_driven().preimage(&c, &t);
        assert!(bdd.states.semantically_eq(&sat.states, c.num_latches()));
    }
}
