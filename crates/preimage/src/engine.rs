//! The common interface of preimage engines.

use std::fmt;
use std::time::Duration;

use presat_circuit::Circuit;

use crate::state_set::StateSet;

/// Work and memory counters for one preimage computation, merging the
/// SAT-side and BDD-side metrics into the columns the evaluation tables
/// report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreimageStats {
    /// Cubes in the returned state set.
    pub result_cubes: u64,
    /// Calls into the CDCL solver (SAT engines).
    pub solver_calls: u64,
    /// Blocking clauses added (blocking-style SAT engines).
    pub blocking_clauses: u64,
    /// Solution-graph nodes (success-driven engine).
    pub graph_nodes: u64,
    /// Success-cache hits (success-driven engine).
    pub cache_hits: u64,
    /// Peak BDD manager node count (BDD engine).
    pub bdd_nodes: u64,
    /// CDCL conflicts (SAT engines).
    pub sat_conflicts: u64,
}

impl fmt::Display for PreimageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cubes={} calls={} blocks={} graph={} hits={} bdd={}",
            self.result_cubes,
            self.solver_calls,
            self.blocking_clauses,
            self.graph_nodes,
            self.cache_hits,
            self.bdd_nodes
        )
    }
}

/// The outcome of one preimage computation.
#[derive(Clone, Debug)]
pub struct PreimageResult {
    /// The preimage as cubes over latch positions.
    pub states: StateSet,
    /// Work counters.
    pub stats: PreimageStats,
    /// Wall-clock time of the computation.
    pub elapsed: Duration,
}

/// A one-step preimage engine.
pub trait PreimageEngine {
    /// A short name for tables (`"sat-blocking"`, `"bdd-sub"`, …).
    fn name(&self) -> String;

    /// Computes `Pre(target)` for `circuit`.
    fn preimage(&self, circuit: &Circuit, target: &StateSet) -> PreimageResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_display_is_compact() {
        let s = PreimageStats::default();
        assert!(s.to_string().contains("cubes=0"));
    }
}
