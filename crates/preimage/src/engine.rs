//! The common interface of preimage engines.

use std::time::Duration;

use presat_allsat::EnumLimits;
use presat_circuit::Circuit;
use presat_obs::{NullSink, ObsSink, StopReason};

use crate::state_set::StateSet;

/// Work and memory counters for one preimage computation, merging the
/// SAT-side and BDD-side metrics into the columns the evaluation tables
/// report.
///
/// The canonical definition lives in `presat-obs` (as
/// [`presat_obs::PreimageCounters`], which also nests the full all-SAT and
/// sub-solver counter snapshots plus iteration/wall-time fields); this
/// alias keeps the historical name.
pub use presat_obs::PreimageCounters as PreimageStats;

/// The outcome of one preimage computation.
///
/// When the computation ran under [`EnumLimits`] and stopped early,
/// `complete` is `false` and `states` is a *partial but sound* result:
/// every state in it is a verified preimage member, but more may exist.
#[derive(Clone, Debug)]
pub struct PreimageResult {
    /// The preimage as cubes over latch positions.
    pub states: StateSet,
    /// Work counters.
    pub stats: PreimageStats,
    /// Wall-clock time of the computation.
    pub elapsed: Duration,
    /// `false` if a budget, deadline, or cancellation cut the enumeration
    /// short; `states` is then an under-approximation of the preimage.
    pub complete: bool,
    /// Why the computation stopped early; `None` on a complete run.
    pub stop_reason: Option<StopReason>,
}

/// A one-step preimage engine.
pub trait PreimageEngine {
    /// A short name for tables (`"sat-blocking"`, `"bdd-sub"`, …).
    fn name(&self) -> String;

    /// Computes `Pre(target)` for `circuit`, forwarding enumeration-level
    /// events (solutions, blocking clauses, cache hits, completion) to
    /// `sink` as they happen.
    fn preimage_with_sink(
        &self,
        circuit: &Circuit,
        target: &StateSet,
        sink: &mut dyn ObsSink,
    ) -> PreimageResult;

    /// [`PreimageEngine::preimage_with_sink`] without an event trace.
    fn preimage(&self, circuit: &Circuit, target: &StateSet) -> PreimageResult {
        self.preimage_with_sink(circuit, target, &mut NullSink)
    }

    /// Computes `Pre(target)` under resource `limits`; a stopped run
    /// returns the verified partial preimage flagged `complete = false`.
    ///
    /// The default ignores the limits and runs to completion — correct for
    /// engines with no anytime mode (the BDD engine): a complete answer
    /// satisfies every limit's contract except promptness, and the
    /// reachability loop enforces deadlines/cancellation between its
    /// iterations regardless of engine.
    fn preimage_limited(
        &self,
        circuit: &Circuit,
        target: &StateSet,
        limits: &EnumLimits,
        sink: &mut dyn ObsSink,
    ) -> PreimageResult {
        let _ = limits;
        self.preimage_with_sink(circuit, target, sink)
    }

    /// Opens a persistent *session* over `circuit` for iterated preimage
    /// queries (the backward-reachability fixed point), or `None` when the
    /// engine has no incremental mode — callers fall back to per-call
    /// [`preimage_with_sink`](PreimageEngine::preimage_with_sink). A
    /// session encodes the transition relation once and answers every
    /// query through one warm solver; results are bit-identical to the
    /// per-call path.
    fn open_session(&self, circuit: &Circuit) -> Option<Box<dyn PreimageSession>> {
        let _ = circuit;
        None
    }
}

/// A persistent preimage session: one transition-relation encoding, one
/// incremental solver, many queries. Obtained from
/// [`PreimageEngine::open_session`].
///
/// Between queries the caller may [`block_states`](PreimageSession::block_states)
/// — subsequent preimages then exclude those states, which the
/// reachability loop uses to keep already-reached states out of every
/// later enumeration.
///
/// Sessions are `Send` so a service can park one mid-enumeration and
/// resume it from another worker thread.
pub trait PreimageSession: Send {
    /// A short name for tables (mirrors the owning engine's name, plus an
    /// `+incremental` marker).
    fn name(&self) -> String;

    /// Computes `Pre(target)` minus every state blocked so far, reporting
    /// enumeration-level events to `sink`.
    fn preimage_with_sink(&mut self, target: &StateSet, sink: &mut dyn ObsSink) -> PreimageResult;

    /// [`preimage_with_sink`](PreimageSession::preimage_with_sink) under
    /// resource `limits`; the default ignores them (see
    /// [`PreimageEngine::preimage_limited`]). The session must stay usable
    /// after a stopped call.
    fn preimage_limited(
        &mut self,
        target: &StateSet,
        limits: &EnumLimits,
        sink: &mut dyn ObsSink,
    ) -> PreimageResult {
        let _ = limits;
        self.preimage_with_sink(target, sink)
    }

    /// Permanently excludes `states` from all future results (adds one
    /// blocking clause per cube to the persistent solver).
    fn block_states(&mut self, states: &StateSet);

    /// Enables or disables root-level solver inprocessing at the
    /// session's retirement boundaries. Inprocessing is
    /// equivalence-preserving, so results never change — only work
    /// counters and the live clause volume. The default is a no-op for
    /// sessions with no inprocessing machinery.
    fn set_inprocess(&mut self, on: bool) {
        let _ = on;
    }

    /// Sets the parallel spawn gate (see
    /// [`presat_allsat::ParTuning::par_threshold`]): enumerations whose
    /// `important × clauses` product falls below `threshold` run
    /// sequentially even when the session was opened with `jobs > 1`
    /// (`0` = always parallel). Results never change — the parallel and
    /// sequential paths are bit-identical — only scheduling does. The
    /// default is a no-op for sessions with no parallel mode.
    fn set_parallel_threshold(&mut self, threshold: u64) {
        let _ = threshold;
    }

    /// Bytes currently resident in the session's solver arena — the live
    /// memory footprint a multi-tenant scheduler sums for admission
    /// control. Sessions without a resident solver report `0`.
    fn arena_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_display_is_compact() {
        let s = PreimageStats::default();
        assert!(s.to_string().contains("cubes=0"));
    }
}
