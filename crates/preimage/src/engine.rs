//! The common interface of preimage engines.

use std::time::Duration;

use presat_circuit::Circuit;
use presat_obs::{NullSink, ObsSink};

use crate::state_set::StateSet;

/// Work and memory counters for one preimage computation, merging the
/// SAT-side and BDD-side metrics into the columns the evaluation tables
/// report.
///
/// The canonical definition lives in `presat-obs` (as
/// [`presat_obs::PreimageCounters`], which also nests the full all-SAT and
/// sub-solver counter snapshots plus iteration/wall-time fields); this
/// alias keeps the historical name.
pub use presat_obs::PreimageCounters as PreimageStats;

/// The outcome of one preimage computation.
#[derive(Clone, Debug)]
pub struct PreimageResult {
    /// The preimage as cubes over latch positions.
    pub states: StateSet,
    /// Work counters.
    pub stats: PreimageStats,
    /// Wall-clock time of the computation.
    pub elapsed: Duration,
}

/// A one-step preimage engine.
pub trait PreimageEngine {
    /// A short name for tables (`"sat-blocking"`, `"bdd-sub"`, …).
    fn name(&self) -> String;

    /// Computes `Pre(target)` for `circuit`, forwarding enumeration-level
    /// events (solutions, blocking clauses, cache hits, completion) to
    /// `sink` as they happen.
    fn preimage_with_sink(
        &self,
        circuit: &Circuit,
        target: &StateSet,
        sink: &mut dyn ObsSink,
    ) -> PreimageResult;

    /// [`PreimageEngine::preimage_with_sink`] without an event trace.
    fn preimage(&self, circuit: &Circuit, target: &StateSet) -> PreimageResult {
        self.preimage_with_sink(circuit, target, &mut NullSink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_display_is_compact() {
        let s = PreimageStats::default();
        assert!(s.to_string().contains("cubes=0"));
    }
}
