//! Preimage computation and backward reachability for sequential circuits.
//!
//! Given a [`presat_circuit::Circuit`] and a target set of states
//! ([`StateSet`]), the preimage is the set of present states from which
//! *some* primary-input assignment drives the circuit into the target in
//! one clock cycle:
//!
//! ```text
//! Pre(T)(X) = ∃W ∃Y . T(Y) ∧ ∏j (yj ↔ fj(X, W))
//! ```
//!
//! Engines:
//!
//! * [`SatPreimage`] — encodes the step relation to CNF ([`StepEncoding`])
//!   and runs one of the all-solutions engines from `presat-allsat` with
//!   the present-state variables as the important set;
//! * [`BddPreimage`] — the classical symbolic baseline: build the
//!   next-state functions as BDDs and either substitute them into the
//!   target or conjoin a monolithic transition relation and quantify;
//! * [`oracle`] — exhaustive simulation for small circuits, the ground
//!   truth for every test.
//!
//! [`backward_reach`] iterates any engine to a fixed point, the standard
//! backward-reachability loop of unbounded model checking.
//!
//! # Examples
//!
//! ```
//! use presat_circuit::generators;
//! use presat_preimage::{PreimageEngine, SatPreimage, StateSet};
//!
//! let c = generators::counter(4, false);          // 4-bit counter
//! let target = StateSet::from_state_bits(9, 4);   // the state «9»
//! let result = SatPreimage::success_driven().preimage(&c, &target);
//! // the only predecessor of 9 is 8
//! assert_eq!(result.states.minterm_count(4), 1);
//! assert!(result.states.contains_bits(8, 4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bdd_engine;
mod encoding;
mod engine;
mod image;
mod justify;
pub mod oracle;
mod output;
mod reach;
mod sat_engine;
mod session;
pub mod spec;
mod state_set;
mod unrolled;

pub use bdd_engine::{BddPreimage, BddStrategy};
pub use encoding::{ImageEncoding, StepBase, StepEncoding};
pub use engine::{PreimageEngine, PreimageResult, PreimageSession, PreimageStats};
pub use image::{bdd_image, forward_reach, sat_image, sequential_depth};
pub use justify::{justify, Trace, TraceStep};
pub use output::excitation_set;
pub use reach::{
    backward_reach, backward_reach_with_sink, ReachDriver, ReachIteration, ReachOptions,
    ReachReport, ReachStep,
};
pub use sat_engine::SatPreimage;
pub use session::SatPreimageSession;
pub use spec::{parse_bits64, parse_state_bits, parse_state_spec};
pub use state_set::StateSet;
pub use unrolled::{k_step_preimage, UnrolledEncoding};
