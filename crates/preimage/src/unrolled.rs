//! Time-frame unrolling: the k-step preimage in a single SAT instance.
//!
//! Iterating one-step preimages gives the states at distance ≤ k, but each
//! iteration pays the cost of re-encoding its frontier as a target. The
//! bounded-model-checking alternative unrolls the transition relation `k`
//! times and asks for all solutions projected onto the *first* frame's
//! state variables in one all-SAT run:
//!
//! ```text
//! Pre^k(T)(X0) = ∃W0..W(k-1) ∃X1..Xk . T(Xk) ∧ ∏t (X(t+1) = δ(Xt, Wt))
//! ```
//!
//! This enumerates states with a path of length *exactly* `k` into the
//! target, which is also the natural query of sequential ATPG ("justify in
//! exactly k cycles").

use std::time::Instant;

use presat_allsat::{AllSatEngine, AllSatProblem, SuccessDrivenAllSat};
use presat_circuit::{Circuit, Tseitin};
use presat_logic::{Cnf, Lit, Var};

use crate::engine::{PreimageResult, PreimageStats};
use crate::state_set::StateSet;

/// The CNF of `k` chained time frames with the target imposed on the last
/// frame's state variables.
///
/// Layout: frame-0 state `X0` at CNF variables `0..n` (the important set),
/// then per frame `t = 0..k`: inputs `Wt` (`m` variables) followed by the
/// *next* frame's state block `X(t+1)` (`n` variables); Tseitin
/// auxiliaries live above all blocks.
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::{StateSet, UnrolledEncoding};
///
/// let c = generators::counter(3, false);
/// let enc = UnrolledEncoding::build(&c, &StateSet::from_state_bits(5, 3), 2);
/// assert_eq!(enc.frame0_vars().len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct UnrolledEncoding {
    cnf: Cnf,
    num_latches: usize,
    depth: usize,
}

impl UnrolledEncoding {
    /// Unrolls `circuit` for `depth` frames with `target` on the last.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`, the circuit is incomplete, or a target cube
    /// mentions a latch position out of range.
    pub fn build(circuit: &Circuit, target: &StateSet, depth: usize) -> Self {
        assert!(depth > 0, "unrolling depth must be positive");
        circuit.validate().expect("circuit must be complete");
        let n = circuit.num_latches();
        let m = circuit.num_inputs();

        // Fixed blocks: X0 at 0..n, then per frame (Wt, X(t+1)).
        let frame_state_base = |t: usize| -> usize {
            if t == 0 {
                0
            } else {
                n + (t - 1) * (m + n) + m
            }
        };
        let frame_input_base = |t: usize| n + t * (m + n);
        let fixed_vars = n + depth * (m + n);
        let mut cnf = Cnf::new(fixed_vars);

        for t in 0..depth {
            // Leaves for frame t: inputs → Wt block, states → Xt block.
            let mut leaf_vars = Vec::with_capacity(m + n);
            for i in 0..m {
                leaf_vars.push(Var::new(frame_input_base(t) + i));
            }
            for j in 0..n {
                leaf_vars.push(Var::new(frame_state_base(t) + j));
            }
            let mut enc = Tseitin::with_base_cnf(circuit.aig(), leaf_vars, cnf);
            let next_lits: Vec<Lit> = (0..n).map(|j| enc.lit_of(circuit.latch_next(j))).collect();
            cnf = enc.into_cnf();
            // X(t+1) ↔ δ(Xt, Wt).
            for (j, &fl) in next_lits.iter().enumerate() {
                let xj = Lit::pos(Var::new(frame_state_base(t + 1) + j));
                cnf.add_clause([!xj, fl]);
                cnf.add_clause([xj, !fl]);
            }
        }

        // Target on the final frame.
        let last = frame_state_base(depth);
        let cubes = target.cubes();
        if cubes.is_empty() {
            cnf.add_clause([]);
        } else if cubes.len() == 1 {
            for &l in cubes.cubes()[0].lits() {
                let j = l.var().index();
                assert!(j < n, "target cube mentions latch position {j} ≥ {n}");
                cnf.add_unit(Lit::with_phase(Var::new(last + j), l.phase()));
            }
        } else {
            let mut selectors = Vec::with_capacity(cubes.len());
            for cube in cubes {
                let sel = Lit::pos(cnf.fresh_var());
                for &l in cube.lits() {
                    let j = l.var().index();
                    assert!(j < n, "target cube mentions latch position {j} ≥ {n}");
                    cnf.add_clause([!sel, Lit::with_phase(Var::new(last + j), l.phase())]);
                }
                selectors.push(sel);
            }
            cnf.add_clause(selectors);
        }

        UnrolledEncoding {
            cnf,
            num_latches: n,
            depth,
        }
    }

    /// The unrolled CNF.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// The frame-0 state variables (the important set).
    pub fn frame0_vars(&self) -> Vec<Var> {
        Var::range(self.num_latches).collect()
    }

    /// The unrolling depth.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

/// Computes the exact-`k`-step preimage: the set of states with some input
/// sequence of length `k` ending in `target`, using the success-driven
/// all-solutions engine on the unrolled instance.
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::{k_step_preimage, StateSet};
///
/// let c = generators::counter(3, false);
/// let pre2 = k_step_preimage(&c, &StateSet::from_state_bits(5, 3), 2);
/// // exactly two steps before 5 is 3
/// assert!(pre2.states.contains_bits(3, 3));
/// assert_eq!(pre2.states.minterm_count(3), 1);
/// ```
pub fn k_step_preimage(circuit: &Circuit, target: &StateSet, k: usize) -> PreimageResult {
    let start = Instant::now();
    let enc = UnrolledEncoding::build(circuit, target, k);
    let problem = AllSatProblem::new(enc.cnf().clone(), enc.frame0_vars());
    let result = SuccessDrivenAllSat::new().enumerate(&problem);
    let states = StateSet::from_cubes(result.cubes.clone());
    let elapsed = start.elapsed();
    PreimageResult {
        stats: PreimageStats {
            result_cubes: result.cubes.len() as u64,
            solver_calls: result.stats.solver_calls,
            blocking_clauses: result.stats.blocking_clauses,
            graph_nodes: result.stats.graph_nodes,
            cache_hits: result.stats.cache_hits,
            bdd_nodes: 0,
            sat_conflicts: result.stats.sat_conflicts,
            iterations: k as u64,
            wall_time_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            allsat: result.stats,
            ..PreimageStats::default()
        },
        states,
        elapsed,
        complete: true,
        stop_reason: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PreimageEngine;
    use crate::sat_engine::SatPreimage;
    use presat_circuit::{generators, sim};
    use std::collections::BTreeSet;

    /// States with a path of length exactly `k` into the target.
    fn oracle_k_step(circuit: &Circuit, target: &StateSet, k: usize) -> BTreeSet<u64> {
        let n = circuit.num_latches();
        let transitions = sim::enumerate_transitions(circuit);
        let mut layer: BTreeSet<u64> = (0..(1u64 << n))
            .filter(|&b| target.contains_bits(b, n))
            .collect();
        for _ in 0..k {
            layer = transitions
                .iter()
                .filter(|(_, _, next)| layer.contains(next))
                .map(|&(s, _, _)| s)
                .collect();
        }
        layer
    }

    fn check(circuit: &Circuit, target: &StateSet, k: usize) {
        let n = circuit.num_latches();
        let expect = oracle_k_step(circuit, target, k);
        let got = k_step_preimage(circuit, target, k);
        for bits in 0..(1u64 << n) {
            assert_eq!(
                got.states.contains_bits(bits, n),
                expect.contains(&bits),
                "{}: k={k} state {bits:b}",
                circuit.name()
            );
        }
    }

    #[test]
    fn depth_one_equals_single_step() {
        let c = generators::parity(3);
        let t = StateSet::from_partial(&[(3, true)]);
        let one = k_step_preimage(&c, &t, 1);
        let single = SatPreimage::success_driven().preimage(&c, &t);
        assert!(one.states.semantically_eq(&single.states, 4));
    }

    #[test]
    fn counter_k_step_walks_back() {
        let c = generators::counter(4, false);
        for k in 1..=5 {
            check(&c, &StateSet::from_state_bits(9, 4), k);
        }
    }

    #[test]
    fn shift_register_k_step() {
        let c = generators::shift_register(4);
        for k in [1, 2, 4] {
            check(&c, &StateSet::from_state_bits(0b1111, 4), k);
        }
    }

    #[test]
    fn arbiter_k_step() {
        let c = generators::round_robin_arbiter(2);
        for k in [1, 2, 3] {
            check(&c, &StateSet::from_partial(&[(2, true)]), k);
        }
    }

    #[test]
    fn s27_k_step() {
        let c = presat_circuit::embedded::s27().unwrap();
        for k in [1, 2, 3] {
            check(&c, &StateSet::from_state_bits(0b110, 3), k);
        }
    }

    #[test]
    fn empty_target_stays_empty() {
        let c = generators::counter(3, false);
        let pre = k_step_preimage(&c, &StateSet::empty(), 3);
        assert!(pre.states.is_empty());
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        let c = generators::counter(2, false);
        let _ = UnrolledEncoding::build(&c, &StateSet::from_state_bits(0, 2), 0);
    }
}
