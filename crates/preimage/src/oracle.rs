//! Exhaustive-simulation ground truth for small circuits.

use std::collections::BTreeSet;

use presat_circuit::{sim, Circuit};

use crate::state_set::StateSet;

/// The exact preimage of `target` as a set of state bit patterns, computed
/// by enumerating every `(state, input)` pair and simulating one step.
///
/// # Panics
///
/// Panics if `num_inputs + num_latches > 24` (oracle-scale guard inherited
/// from [`sim::enumerate_transitions`]).
pub fn preimage_bits(circuit: &Circuit, target: &StateSet) -> BTreeSet<u64> {
    let n = circuit.num_latches();
    sim::enumerate_transitions(circuit)
        .into_iter()
        .filter(|&(_, _, next)| target.contains_bits(next, n))
        .map(|(state, _, _)| state)
        .collect()
}

/// The exact preimage as a [`StateSet`] of minterm cubes.
///
/// # Panics
///
/// See [`preimage_bits`].
pub fn preimage(circuit: &Circuit, target: &StateSet) -> StateSet {
    let n = circuit.num_latches();
    preimage_bits(circuit, target)
        .into_iter()
        .fold(StateSet::empty(), |acc, bits| {
            acc.union(&StateSet::from_state_bits(bits, n))
        })
}

/// The exact backward-reachable set (states from which `target` is
/// reachable in any number of steps, including zero).
///
/// # Panics
///
/// See [`preimage_bits`].
pub fn backward_reachable_bits(circuit: &Circuit, target: &StateSet) -> BTreeSet<u64> {
    let n = circuit.num_latches();
    let transitions = sim::enumerate_transitions(circuit);
    let mut reached: BTreeSet<u64> = (0..(1u64 << n))
        .filter(|&b| target.contains_bits(b, n))
        .collect();
    loop {
        let mut grew = false;
        for &(state, _, next) in &transitions {
            if reached.contains(&next) && reached.insert(state) {
                grew = true;
            }
        }
        if !grew {
            return reached;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_circuit::generators;

    #[test]
    fn counter_preimage_is_predecessor() {
        let c = generators::counter(4, false);
        let pre = preimage_bits(&c, &StateSet::from_state_bits(9, 4));
        assert_eq!(pre.into_iter().collect::<Vec<_>>(), vec![8]);
    }

    #[test]
    fn counter_with_enable_has_two_predecessors() {
        let c = generators::counter(4, true);
        let pre = preimage_bits(&c, &StateSet::from_state_bits(9, 4));
        // enable=1 from 8, enable=0 from 9 itself.
        assert_eq!(pre.into_iter().collect::<Vec<_>>(), vec![8, 9]);
    }

    #[test]
    fn preimage_state_set_matches_bits() {
        let c = generators::shift_register(4);
        let t = StateSet::from_partial(&[(3, true)]);
        let set = preimage(&c, &t);
        let bits = preimage_bits(&c, &t);
        for b in 0..16u64 {
            assert_eq!(set.contains_bits(b, 4), bits.contains(&b));
        }
    }

    #[test]
    fn backward_reachability_of_counter_target_is_everything() {
        // A free-running counter visits every state, so everything reaches
        // any target.
        let c = generators::counter(3, false);
        let r = backward_reachable_bits(&c, &StateSet::from_state_bits(0, 3));
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn backward_reachability_includes_target_itself() {
        let c = generators::lfsr(4);
        let t = StateSet::from_state_bits(1, 4);
        let r = backward_reachable_bits(&c, &t);
        assert!(r.contains(&1));
    }
}
