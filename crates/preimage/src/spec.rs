//! Parsing textual state-set specs — shared by the `presat` CLI and the
//! `presatd` daemon protocol, so both reject and accept exactly the same
//! inputs.
//!
//! A spec is either a *bit pattern* naming one state (`42`, `0b1010`,
//! `0x2a`) or a *cube* `latch=value,...` (`3=1,0=0`; unlisted latches
//! free). Bit patterns in binary (`0b`) or hexadecimal (`0x`) notation
//! support circuits of **any** width — a 200-latch state is a 200-char
//! binary literal. Decimal patterns are limited to what fits in 64 bits
//! (the value still targets arbitrarily wide circuits: latches ≥ 64 are
//! simply zero); a wider decimal is an explicit error steering the caller
//! to `0b`/`0x`, never a silent mis-parse.

use crate::state_set::StateSet;

/// Parses a state bit pattern into per-latch values: `bits[j]` is latch
/// `j` (so the *last* character of a binary literal is latch 0, matching
/// the numeric reading). Accepts decimal, `0b` binary, and `0x` hex;
/// binary and hex literals may be as wide as the circuit.
///
/// Errors (all strings, CLI/protocol-ready):
/// * malformed digits — `invalid state bits ...`
/// * more significant bits than the circuit has latches —
///   `state ... out of range for N latches`
/// * a decimal literal beyond 64 bits —
///   `decimal state ... exceeds 64 bits (use 0b/0x for circuits with more
///   than 64 latches)`
pub fn parse_state_bits(text: &str, num_latches: usize) -> Result<Vec<bool>, String> {
    let mut bits = vec![false; num_latches];
    let set_from_digits = |bits: &mut [bool], digits: &[bool]| -> Result<(), String> {
        // `digits` is msb-first; significant width must fit the circuit.
        let significant = digits
            .iter()
            .position(|&b| b)
            .map_or(0, |lead| digits.len() - lead);
        if significant > num_latches {
            return Err(format!(
                "state {text} out of range for {num_latches} latches"
            ));
        }
        for (i, &d) in digits.iter().rev().enumerate() {
            if d {
                bits[i] = true;
            }
        }
        Ok(())
    };
    if let Some(bin) = text.strip_prefix("0b") {
        if bin.is_empty() {
            return Err(format!("invalid state bits {text:?}"));
        }
        let mut digits = Vec::with_capacity(bin.len());
        for c in bin.chars() {
            match c {
                '0' => digits.push(false),
                '1' => digits.push(true),
                _ => return Err(format!("invalid state bits {text:?}")),
            }
        }
        set_from_digits(&mut bits, &digits)?;
    } else if let Some(hex) = text.strip_prefix("0x") {
        if hex.is_empty() {
            return Err(format!("invalid state bits {text:?}"));
        }
        let mut digits = Vec::with_capacity(hex.len() * 4);
        for c in hex.chars() {
            let nibble = c
                .to_digit(16)
                .ok_or_else(|| format!("invalid state bits {text:?}"))?;
            for shift in (0..4).rev() {
                digits.push(nibble >> shift & 1 == 1);
            }
        }
        set_from_digits(&mut bits, &digits)?;
    } else {
        let value = parse_decimal_u64(text)?;
        let significant = 64 - value.leading_zeros() as usize;
        if significant > num_latches {
            return Err(format!(
                "state {text} out of range for {num_latches} latches"
            ));
        }
        for (i, bit) in bits.iter_mut().enumerate().take(64) {
            if value >> i & 1 == 1 {
                *bit = true;
            }
        }
    }
    Ok(bits)
}

/// Parses a decimal state literal as `u64`, distinguishing "not a number"
/// from "a number too wide for 64 bits" (the latter names the `0b`/`0x`
/// escape hatch for wide circuits).
fn parse_decimal_u64(text: &str) -> Result<u64, String> {
    match text.parse::<u64>() {
        Ok(v) => Ok(v),
        Err(e) if *e.kind() == std::num::IntErrorKind::PosOverflow => Err(format!(
            "decimal state {text} exceeds 64 bits (use 0b/0x for circuits \
             with more than 64 latches)"
        )),
        Err(_) => Err(format!("invalid state bits {text:?}")),
    }
}

/// Parses a state bit pattern as a plain `u64`, for callers whose state
/// representation is genuinely 64-bit (the `justify` trace extractor).
/// `num_latches` guards the caller's width assumption: a circuit with more
/// than 64 latches is an explicit error here, never a truncated state.
pub fn parse_bits64(text: &str, num_latches: usize) -> Result<u64, String> {
    if num_latches > 64 {
        return Err(format!(
            "circuit has {num_latches} latches; 64-bit state patterns cannot \
             address it (this command supports at most 64 latches)"
        ));
    }
    let bits = parse_state_bits(text, num_latches.max(1))?;
    Ok(bits
        .iter()
        .enumerate()
        .fold(0u64, |acc, (j, &b)| acc | (u64::from(b)) << j))
}

/// Parses a state-set spec: a bit pattern (one state) or a cube
/// `latch=value,...` (unlisted latches free). Works for circuits of any
/// width; see the module docs for the bit-pattern width rules.
pub fn parse_state_spec(text: &str, num_latches: usize) -> Result<StateSet, String> {
    if text.contains('=') {
        let mut fixed = Vec::new();
        for part in text.split(',') {
            let (j, v) = part
                .split_once('=')
                .ok_or_else(|| format!("bad cube component {part:?}"))?;
            let j: usize = j
                .trim()
                .parse()
                .map_err(|_| format!("bad latch index {j:?}"))?;
            if j >= num_latches {
                return Err(format!(
                    "latch {j} out of range (circuit has {num_latches})"
                ));
            }
            let v = match v.trim() {
                "0" => false,
                "1" => true,
                other => return Err(format!("bad latch value {other:?} (want 0/1)")),
            };
            if fixed.iter().any(|&(seen, _)| seen == j) {
                return Err(format!("latch {j} listed twice in cube spec"));
            }
            fixed.push((j, v));
        }
        Ok(StateSet::from_partial(&fixed))
    } else {
        let bits = parse_state_bits(text, num_latches)?;
        Ok(StateSet::from_bit_slice(&bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_binary_hex_agree() {
        for (text, n) in [("42", 8), ("0b101010", 8), ("0x2a", 8)] {
            let s = parse_state_spec(text, n).unwrap();
            assert!(s.contains_bits(42, n), "{text}");
            assert_eq!(s.minterm_count(n), 1, "{text}");
        }
    }

    #[test]
    fn wide_binary_targets_latch_beyond_64() {
        // 100 latches: a binary literal setting latch 64 and latch 0.
        let n = 100;
        let mut text = String::from("0b1");
        text.push_str(&"0".repeat(63));
        text.push('1'); // bit 64 and bit 0
        let bits = parse_state_bits(&text, n).unwrap();
        assert!(bits[0] && bits[64]);
        assert_eq!(bits.iter().filter(|&&b| b).count(), 2);
        let s = parse_state_spec(&text, n).unwrap();
        assert_eq!(s.minterm_count(n), 1);
        assert_eq!(s.num_cubes(), 1);
    }

    #[test]
    fn wide_hex_sets_high_latches() {
        // 0x1_0000_0000_0000_0000 = bit 64 alone, on a 68-latch circuit.
        let bits = parse_state_bits("0x10000000000000000", 68).unwrap();
        assert!(bits[64]);
        assert_eq!(bits.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn overwide_patterns_are_range_errors() {
        let err = parse_state_bits("0b100", 2).unwrap_err();
        assert!(err.contains("out of range for 2 latches"), "{err}");
        let err = parse_state_bits("4", 2).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        // Leading zeros do not count against the width.
        assert!(parse_state_bits("0b011", 2).is_ok());
        assert!(parse_state_bits("0x0003", 2).is_ok());
    }

    #[test]
    fn overwide_decimal_names_the_escape_hatch() {
        let err = parse_state_bits("18446744073709551616", 100).unwrap_err();
        assert!(err.contains("exceeds 64 bits"), "{err}");
        assert!(err.contains("0b/0x"), "{err}");
        // The same digits in hex parse fine.
        assert!(parse_state_bits("0x10000000000000000", 100).is_ok());
    }

    #[test]
    fn malformed_patterns_are_invalid_not_panics() {
        for text in ["", "0b", "0x", "0b102", "0xfg", "12a", "-3"] {
            let err = parse_state_bits(text, 8).unwrap_err();
            assert!(err.contains("invalid state bits"), "{text} -> {err}");
        }
    }

    #[test]
    fn cube_specs_work_at_any_width() {
        let s = parse_state_spec("99=1,0=0", 100).unwrap();
        assert_eq!(s.num_cubes(), 1);
        assert_eq!(s.minterm_count(100), 1u128 << 98);
        assert!(parse_state_spec("100=1", 100).is_err());
        assert!(parse_state_spec("3=1,3=0", 8).unwrap_err().contains("twice"));
    }

    #[test]
    fn parse_bits64_guards_wide_circuits() {
        assert_eq!(parse_bits64("42", 8).unwrap(), 42);
        assert_eq!(parse_bits64("0b1010", 8).unwrap(), 10);
        let err = parse_bits64("42", 65).unwrap_err();
        assert!(err.contains("65 latches"), "{err}");
        assert!(err.contains("at most 64"), "{err}");
    }
}
