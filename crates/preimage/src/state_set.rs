//! Sets of circuit states.

use std::fmt;

use presat_logic::{Assignment, Cube, CubeSet, Lit, Var};

/// A set of states of a sequential circuit, represented as a union of cubes
/// over *latch positions*: variable `Var::new(j)` stands for latch `j`,
/// regardless of how any particular engine numbers its CNF or BDD
/// variables. This position-space convention is the common currency between
/// the SAT engines, the BDD engine, the oracle, and the reachability loop.
///
/// # Examples
///
/// ```
/// use presat_preimage::StateSet;
///
/// let s = StateSet::from_state_bits(0b101, 3);
/// assert!(s.contains_bits(0b101, 3));
/// assert!(!s.contains_bits(0b001, 3));
/// assert_eq!(s.minterm_count(3), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct StateSet {
    cubes: CubeSet,
}

impl StateSet {
    /// The empty set of states.
    pub fn empty() -> Self {
        StateSet::default()
    }

    /// The set of all states.
    pub fn all() -> Self {
        StateSet {
            cubes: CubeSet::universe(),
        }
    }

    /// A singleton set holding the state whose latch `j` has bit `j` of
    /// `bits`. On circuits wider than 64 latches the remaining latches are
    /// zero (a `u64` cannot address them; see
    /// [`StateSet::from_bit_slice`] for full-width states).
    pub fn from_state_bits(bits: u64, num_latches: usize) -> Self {
        let cube = Cube::from_lits(
            (0..num_latches).map(|j| Lit::with_phase(Var::new(j), j < 64 && bits >> j & 1 == 1)),
        )
        .expect("distinct latch positions");
        StateSet {
            cubes: CubeSet::from_iter([cube]),
        }
    }

    /// A singleton set holding the state whose latch `j` has value
    /// `bits[j]` — the arbitrary-width sibling of
    /// [`StateSet::from_state_bits`].
    pub fn from_bit_slice(bits: &[bool]) -> Self {
        let cube = Cube::from_lits(
            bits.iter()
                .enumerate()
                .map(|(j, &b)| Lit::with_phase(Var::new(j), b)),
        )
        .expect("distinct latch positions");
        StateSet {
            cubes: CubeSet::from_iter([cube]),
        }
    }

    /// A set described by cubes over latch positions.
    pub fn from_cubes(cubes: CubeSet) -> Self {
        StateSet { cubes }
    }

    /// A set holding one cube: latch `j` fixed to `phase` for each pair,
    /// other latches free.
    ///
    /// # Panics
    ///
    /// Panics if a latch position repeats.
    pub fn from_partial(fixed: &[(usize, bool)]) -> Self {
        let cube = Cube::from_lits(
            fixed
                .iter()
                .map(|&(j, phase)| Lit::with_phase(Var::new(j), phase)),
        )
        .expect("conflicting latch constraints");
        StateSet {
            cubes: CubeSet::from_iter([cube]),
        }
    }

    /// The cubes (over latch positions).
    pub fn cubes(&self) -> &CubeSet {
        &self.cubes
    }

    /// `true` if the set contains no states.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Number of cubes (not states).
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Exact number of states over `num_latches` latches.
    pub fn minterm_count(&self, num_latches: usize) -> u128 {
        self.cubes.minterm_count(num_latches)
    }

    /// `true` if the state `bits` is in the set.
    pub fn contains_bits(&self, bits: u64, num_latches: usize) -> bool {
        let a = Assignment::from_bits(bits, num_latches);
        self.cubes.contains_minterm(&a)
    }

    /// Set union.
    pub fn union(&self, other: &StateSet) -> StateSet {
        StateSet {
            cubes: self.cubes.union(&other.cubes),
        }
    }

    /// `true` if the two sets contain the same states (exact semantic
    /// check, oracle-scale only).
    ///
    /// # Panics
    ///
    /// Panics if `num_latches > 24`.
    pub fn semantically_eq(&self, other: &StateSet, num_latches: usize) -> bool {
        let vars: Vec<Var> = Var::range(num_latches).collect();
        self.cubes.semantically_eq(&other.cubes, &vars)
    }

    /// All member states as bit patterns (oracle-scale only).
    ///
    /// # Panics
    ///
    /// Panics if `num_latches > 24`.
    pub fn enumerate_bits(&self, num_latches: usize) -> Vec<u64> {
        (0..(1u64 << num_latches))
            .filter(|&b| self.contains_bits(b, num_latches))
            .collect()
    }
}

impl fmt::Debug for StateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StateSet({})", self.cubes)
    }
}

impl fmt::Display for StateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.cubes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_contains_only_itself() {
        let s = StateSet::from_state_bits(5, 4);
        for bits in 0..16 {
            assert_eq!(s.contains_bits(bits, 4), bits == 5);
        }
    }

    #[test]
    fn partial_fixes_only_listed_latches() {
        let s = StateSet::from_partial(&[(1, true)]);
        assert_eq!(s.minterm_count(3), 4);
        assert!(s.contains_bits(0b010, 3));
        assert!(s.contains_bits(0b111, 3));
        assert!(!s.contains_bits(0b101, 3));
    }

    #[test]
    fn union_and_equality() {
        let a = StateSet::from_state_bits(1, 2);
        let b = StateSet::from_state_bits(2, 2);
        let u = a.union(&b);
        assert_eq!(u.minterm_count(2), 2);
        assert!(u.semantically_eq(&b.union(&a), 2));
        assert!(!u.semantically_eq(&a, 2));
    }

    #[test]
    fn all_and_empty() {
        assert_eq!(StateSet::all().minterm_count(3), 8);
        assert!(StateSet::empty().is_empty());
        assert_eq!(StateSet::empty().minterm_count(3), 0);
    }

    #[test]
    fn enumerate_bits_lists_members() {
        let s = StateSet::from_partial(&[(0, false)]);
        assert_eq!(s.enumerate_bits(2), vec![0, 2]);
    }
}
