//! Output excitation sets: which states can make a primary output assert?
//!
//! Sequential ATPG phrases fault excitation as "find a state (and input)
//! under which the faulty gate's effect reaches an observable point"; the
//! state-side of that question is the *excitation set* of an output —
//! exactly the all-SAT projection machinery again, with the combinational
//! output cone in place of the next-state cones.

use std::time::Instant;

use presat_allsat::{AllSatEngine, AllSatProblem, SuccessDrivenAllSat};
use presat_circuit::{Circuit, Tseitin};
use presat_logic::{Cnf, Var};

use crate::engine::{PreimageResult, PreimageStats};
use crate::state_set::StateSet;

/// Computes the set of present states from which **some** primary-input
/// assignment makes output `output_index` evaluate to `value`:
///
/// ```text
/// Exc(o = v)(X) = ∃W . (o(X, W) = v)
/// ```
///
/// # Panics
///
/// Panics if `output_index` is out of range or the circuit is incomplete.
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::excitation_set;
///
/// // The arbiter's "any_grant" output needs a granted latch set.
/// let c = generators::round_robin_arbiter(2);
/// let exc = excitation_set(&c, 0, true);
/// // any state with at least one grant latch high: 12 of 16
/// assert_eq!(exc.states.minterm_count(4), 12);
/// ```
pub fn excitation_set(circuit: &Circuit, output_index: usize, value: bool) -> PreimageResult {
    let start = Instant::now();
    circuit.validate().expect("circuit must be complete");
    assert!(
        output_index < circuit.num_outputs(),
        "output {output_index} out of range ({} outputs)",
        circuit.num_outputs()
    );
    let n = circuit.num_latches();
    let m = circuit.num_inputs();

    // Same layout as StepEncoding: X at 0..n, W at n..n+m.
    let mut leaf_vars = Vec::with_capacity(m + n);
    for i in 0..m {
        leaf_vars.push(Var::new(n + i));
    }
    for j in 0..n {
        leaf_vars.push(Var::new(j));
    }
    let base = Cnf::new(n + m);
    let mut enc = Tseitin::with_base_cnf(circuit.aig(), leaf_vars, base);
    let (_, out_fn) = &circuit.outputs()[output_index];
    let out_lit = enc.lit_of(*out_fn);
    let mut cnf = enc.into_cnf();
    cnf.add_unit(if value { out_lit } else { !out_lit });

    let problem = AllSatProblem::new(cnf, Var::range(n).collect());
    let result = SuccessDrivenAllSat::new().enumerate(&problem);
    let states = StateSet::from_cubes(result.cubes.clone());
    let elapsed = start.elapsed();
    PreimageResult {
        stats: PreimageStats {
            result_cubes: result.cubes.len() as u64,
            solver_calls: result.stats.solver_calls,
            blocking_clauses: result.stats.blocking_clauses,
            graph_nodes: result.stats.graph_nodes,
            cache_hits: result.stats.cache_hits,
            bdd_nodes: 0,
            sat_conflicts: result.stats.sat_conflicts,
            iterations: 1,
            wall_time_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            allsat: result.stats,
            ..PreimageStats::default()
        },
        states,
        elapsed,
        complete: true,
        stop_reason: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_circuit::{generators, sim};

    fn oracle_excitation(circuit: &Circuit, k: usize, value: bool) -> Vec<u64> {
        let n = circuit.num_latches();
        let m = circuit.num_inputs();
        let mut out = Vec::new();
        for state in 0..(1u64 << n) {
            let mut hit = false;
            for w in 0..(1u64 << m) {
                let inputs: Vec<u64> = (0..m).map(|i| w >> i & 1).collect();
                let states: Vec<u64> = (0..n).map(|j| state >> j & 1).collect();
                let (outs, _) = sim::step(circuit, &inputs, &states);
                if (outs[k] & 1 == 1) == value {
                    hit = true;
                    break;
                }
            }
            if hit {
                out.push(state);
            }
        }
        out
    }

    fn check(circuit: &Circuit, k: usize, value: bool) {
        let n = circuit.num_latches();
        let expect = oracle_excitation(circuit, k, value);
        let got = excitation_set(circuit, k, value);
        for bits in 0..(1u64 << n) {
            assert_eq!(
                got.states.contains_bits(bits, n),
                expect.binary_search(&bits).is_ok(),
                "{} output {k}={value} state {bits:b}",
                circuit.name()
            );
        }
    }

    #[test]
    fn counter_carry_out() {
        // carry_out = all bits set (free-running) — a single state.
        let c = generators::counter(4, false);
        check(&c, 0, true);
        let exc = excitation_set(&c, 0, true);
        assert_eq!(exc.states.minterm_count(4), 1);
        assert!(exc.states.contains_bits(0xF, 4));
    }

    #[test]
    fn arbiter_any_grant_both_phases() {
        let c = generators::round_robin_arbiter(2);
        check(&c, 0, true);
        check(&c, 0, false);
    }

    #[test]
    fn traffic_conflict_output() {
        let c = generators::traffic_controller();
        check(&c, 0, true);
    }

    #[test]
    fn s27_output() {
        let c = presat_circuit::embedded::s27().unwrap();
        check(&c, 0, true);
        check(&c, 0, false);
    }

    #[test]
    fn input_dependent_output_is_excitable_everywhere() {
        // shift register's serial_out = s3 — no input involvement; but the
        // fifo's "full" output is a pure latch too. Use a circuit whose
        // output genuinely mixes inputs: parity's output is the parity
        // latch (state-only), so build a quick inline check with ctl2.
        let c = presat_circuit::embedded::ctl2().unwrap();
        check(&c, 0, true);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_output_index_panics() {
        let c = generators::counter(2, false);
        let _ = excitation_set(&c, 5, true);
    }
}
