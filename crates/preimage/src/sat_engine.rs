//! SAT-enumerative preimage engines.

use presat_allsat::{
    AllSatEngine, AllSatProblem, AllSatResult, BlockingAllSat, ChronoAllSat, EnumLimits,
    MinimizedBlockingAllSat, ParTuning, ParallelAllSat, SignatureMode, SuccessDrivenAllSat,
    DEFAULT_PAR_THRESHOLD,
};
use presat_circuit::Circuit;
use presat_logic::CubeSet;
use presat_obs::{Event, ObsSink, Timer};

use crate::encoding::StepEncoding;
use crate::engine::{PreimageEngine, PreimageResult, PreimageSession, PreimageStats};
use crate::session::SatPreimageSession;
use crate::state_set::StateSet;

/// Which all-solutions engine a [`SatPreimage`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatEngineKind {
    /// Naive blocking clauses ([`BlockingAllSat`]).
    Blocking,
    /// Lifted blocking clauses ([`MinimizedBlockingAllSat`]).
    MinBlocking,
    /// Blocking-clause-free chronological backtracking ([`ChronoAllSat`]):
    /// the clause database stays flat per fixed-point iteration.
    Chrono,
    /// The paper's solver ([`SuccessDrivenAllSat`]) with the given
    /// signature mode and model guidance.
    SuccessDriven {
        /// Subspace-reuse signature mode.
        signature: SignatureMode,
        /// Model guidance on/off.
        model_guidance: bool,
    },
}

/// SAT-based preimage computation: encode the constrained step relation
/// ([`StepEncoding`]) and enumerate all solutions projected onto the
/// present-state variables.
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::{PreimageEngine, SatPreimage, StateSet};
///
/// let c = generators::shift_register(4);
/// // target: serial output latch = 1
/// let t = StateSet::from_partial(&[(3, true)]);
/// let pre = SatPreimage::success_driven().preimage(&c, &t);
/// // preimage: latch 2 = 1 (it shifts into latch 3), 8 states
/// assert_eq!(pre.states.minterm_count(4), 8);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SatPreimage {
    kind: SatEngineKind,
    env: Option<CubeSet>,
    jobs: usize,
    inprocess: bool,
    tuning: ParTuning,
}

impl SatPreimage {
    fn with_kind(kind: SatEngineKind) -> Self {
        SatPreimage {
            kind,
            env: None,
            jobs: 1,
            inprocess: true,
            tuning: ParTuning {
                // Unlike the bare engine (which always spawns), preimage
                // steps gate on encoding size: small reachability frontiers
                // lose more to fleet spawn than the fleet wins back.
                par_threshold: DEFAULT_PAR_THRESHOLD,
                ..ParTuning::default()
            },
        }
    }

    /// Preimage via naive blocking clauses.
    pub fn blocking() -> Self {
        Self::with_kind(SatEngineKind::Blocking)
    }

    /// Preimage via lifted blocking clauses.
    pub fn min_blocking() -> Self {
        Self::with_kind(SatEngineKind::MinBlocking)
    }

    /// Preimage via blocking-clause-free chronological backtracking.
    pub fn chrono() -> Self {
        Self::with_kind(SatEngineKind::Chrono)
    }

    /// Preimage via the success-driven solver (full configuration).
    pub fn success_driven() -> Self {
        Self::with_kind(SatEngineKind::SuccessDriven {
            signature: SignatureMode::Dynamic,
            model_guidance: true,
        })
    }

    /// Preimage via an explicitly configured success-driven solver
    /// (ablation studies).
    pub fn success_driven_with(signature: SignatureMode, model_guidance: bool) -> Self {
        Self::with_kind(SatEngineKind::SuccessDriven {
            signature,
            model_guidance,
        })
    }

    /// Restricts the primary inputs to the environment `env` — a union of
    /// cubes over input positions (`Var::new(i)` = input `i`). The
    /// preimage then only counts transitions the environment permits.
    pub fn with_env(mut self, env: CubeSet) -> Self {
        self.env = Some(env);
        self
    }

    /// Sets the worker-thread count for the enumeration (`0` = auto-detect,
    /// `1` = sequential). Only the success-driven kind parallelises; the
    /// blocking baselines are inherently sequential (each blocking clause
    /// depends on the previous model) and ignore the setting. The result is
    /// bit-identical at every thread count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// The configured worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Enables or disables root-level inprocessing in incremental sessions
    /// (on by default). Only sessions inprocess — retirement boundaries
    /// are where stale groups make subsumption and vivification pay — so
    /// this has no effect on the per-call (rebuild) path or on the
    /// blocking baselines. Results are identical either way; only work
    /// counters and memory move.
    pub fn with_inprocess(mut self, on: bool) -> Self {
        self.inprocess = on;
        self
    }

    /// Enables or disables adaptive cube-and-conquer in parallel
    /// enumerations (lookahead-scored partitioning plus dynamic work
    /// splitting; on by default). Results are bit-identical either way.
    pub fn with_adaptive(mut self, on: bool) -> Self {
        self.tuning.adaptive = on;
        self
    }

    /// Sets the conflict threshold at which a parallel worker splits its
    /// running cube into two (`0` = never split).
    pub fn with_split_threshold(mut self, threshold: u64) -> Self {
        self.tuning.split_threshold = threshold;
        self
    }

    /// Sets the spawn gate: preimage steps whose `state-vars × clauses`
    /// product falls below `threshold` skip the worker fleet and run
    /// sequentially even when `jobs > 1` (`0` = always parallel). Defaults
    /// to [`presat_allsat::DEFAULT_PAR_THRESHOLD`].
    pub fn with_par_threshold(mut self, threshold: u64) -> Self {
        self.tuning.par_threshold = threshold;
        self
    }

    /// The configured engine kind.
    pub fn kind(&self) -> SatEngineKind {
        self.kind
    }
}

impl PreimageEngine for SatPreimage {
    fn name(&self) -> String {
        match self.kind {
            SatEngineKind::Blocking => "sat-blocking".into(),
            SatEngineKind::MinBlocking => "sat-min-blocking".into(),
            SatEngineKind::Chrono => "sat-chrono".into(),
            SatEngineKind::SuccessDriven {
                signature,
                model_guidance,
            } => format!(
                "sat-success-driven[{signature:?}{}{}]",
                if model_guidance { "" } else { ",no-guidance" },
                if self.jobs == 1 {
                    String::new()
                } else {
                    format!(",jobs={}", self.jobs)
                }
            ),
        }
    }

    fn preimage_with_sink(
        &self,
        circuit: &Circuit,
        target: &StateSet,
        sink: &mut dyn ObsSink,
    ) -> PreimageResult {
        self.preimage_limited(circuit, target, &EnumLimits::none(), sink)
    }

    fn preimage_limited(
        &self,
        circuit: &Circuit,
        target: &StateSet,
        limits: &EnumLimits,
        sink: &mut dyn ObsSink,
    ) -> PreimageResult {
        let timer = Timer::start();
        let enc = StepEncoding::build_with_env(circuit, target, self.env.as_ref());
        let state_vars = enc.state_vars();
        let cones_skipped = enc.cones_skipped();
        let problem = AllSatProblem::new(enc.into_cnf(), state_vars);
        let result = match self.kind {
            SatEngineKind::Blocking => {
                BlockingAllSat::new().enumerate_limited(&problem, limits, sink)
            }
            SatEngineKind::MinBlocking => {
                MinimizedBlockingAllSat::new().enumerate_limited(&problem, limits, sink)
            }
            SatEngineKind::Chrono => ChronoAllSat::new().enumerate_limited(&problem, limits, sink),
            SatEngineKind::SuccessDriven {
                signature,
                model_guidance,
            } => {
                if self.jobs == 1 {
                    SuccessDrivenAllSat::new()
                        .with_signature(signature)
                        .with_model_guidance(model_guidance)
                        .enumerate_limited(&problem, limits, sink)
                } else {
                    ParallelAllSat::new(self.jobs)
                        .with_signature(signature)
                        .with_model_guidance(model_guidance)
                        .with_tuning(self.tuning)
                        .enumerate_limited(&problem, limits, sink)
                }
            }
        };
        let astats = result.stats_with_store();
        let AllSatResult {
            cubes,
            complete,
            stop_reason,
            ..
        } = result;
        let result_cubes = cubes.len() as u64;
        let states = StateSet::from_cubes(cubes);
        let wall_time_ns = timer.elapsed_ns();
        sink.record(&Event::EngineDone { wall_time_ns });
        PreimageResult {
            stats: PreimageStats {
                result_cubes,
                solver_calls: astats.solver_calls,
                blocking_clauses: astats.blocking_clauses,
                graph_nodes: astats.graph_nodes,
                cache_hits: astats.cache_hits,
                bdd_nodes: 0,
                sat_conflicts: astats.sat_conflicts,
                iterations: 1,
                wall_time_ns,
                cones_skipped,
                allsat: astats,
                ..PreimageStats::default()
            },
            states,
            elapsed: timer.elapsed(),
            complete,
            stop_reason,
        }
    }

    fn open_session(&self, circuit: &Circuit) -> Option<Box<dyn PreimageSession>> {
        // Only the success-driven kind has an incremental mode; the
        // blocking baselines mutate their formula per model and gain
        // nothing from a persistent encoding.
        let SatEngineKind::SuccessDriven {
            signature,
            model_guidance,
        } = self.kind
        else {
            return None;
        };
        let config = SuccessDrivenAllSat::new()
            .with_signature(signature)
            .with_model_guidance(model_guidance);
        let mut session = SatPreimageSession::open(
            circuit,
            config,
            self.jobs,
            self.tuning,
            self.env.as_ref(),
            format!("{}+incremental", PreimageEngine::name(self)),
        );
        PreimageSession::set_inprocess(&mut session, self.inprocess);
        Some(Box::new(session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use presat_circuit::generators;

    fn engines() -> Vec<SatPreimage> {
        vec![
            SatPreimage::blocking(),
            SatPreimage::min_blocking(),
            SatPreimage::chrono(),
            SatPreimage::success_driven(),
            SatPreimage::success_driven_with(SignatureMode::Static, true),
            SatPreimage::success_driven_with(SignatureMode::None, false),
        ]
    }

    fn check_all_engines(circuit: &Circuit, target: &StateSet) {
        let n = circuit.num_latches();
        let expect = oracle::preimage(circuit, target);
        for e in engines() {
            let got = e.preimage(circuit, target);
            assert!(
                got.states.semantically_eq(&expect, n),
                "{} diverges on {} (target {target})",
                e.name(),
                circuit.name()
            );
        }
    }

    #[test]
    fn counter_preimages() {
        let c = generators::counter(4, false);
        check_all_engines(&c, &StateSet::from_state_bits(9, 4));
        check_all_engines(&c, &StateSet::from_partial(&[(0, true)]));
    }

    #[test]
    fn lfsr_preimages_are_singletons() {
        let c = generators::lfsr(5);
        let t = StateSet::from_state_bits(13, 5);
        check_all_engines(&c, &t);
        let pre = SatPreimage::success_driven().preimage(&c, &t);
        assert_eq!(pre.states.minterm_count(5), 1, "LFSR step is a bijection");
    }

    #[test]
    fn parity_preimage_counts() {
        let c = generators::parity(4); // 5 latches
        let t = StateSet::from_partial(&[(4, true)]);
        check_all_engines(&c, &t);
        let pre = SatPreimage::success_driven().preimage(&c, &t);
        // odd-parity data states, parity latch free: 8 * 2 = 16
        assert_eq!(pre.states.minterm_count(5), 16);
    }

    #[test]
    fn arbiter_preimages() {
        let c = generators::round_robin_arbiter(2); // 4 latches, 2 inputs
        check_all_engines(&c, &StateSet::from_partial(&[(2, true)]));
        check_all_engines(&c, &StateSet::from_state_bits(0b0101, 4));
    }

    #[test]
    fn comparator_preimages() {
        let c = generators::comparator(3); // 4 latches, 6 inputs
        check_all_engines(&c, &StateSet::from_partial(&[(3, true)]));
    }

    #[test]
    fn s27_preimages() {
        let c = presat_circuit::embedded::s27().unwrap();
        for bits in 0..8u64 {
            check_all_engines(&c, &StateSet::from_state_bits(bits, 3));
        }
    }

    #[test]
    fn coi_reduction_preserves_preimages_and_reports_skips() {
        // Partial targets on both embedded netlists activate the
        // cone-of-influence skip path in every engine; results must still
        // match the oracle, and the skip count must surface in stats.
        let s27 = presat_circuit::embedded::s27().unwrap();
        for j in 0..3 {
            check_all_engines(&s27, &StateSet::from_partial(&[(j, true)]));
            check_all_engines(&s27, &StateSet::from_partial(&[(j, false)]));
        }
        let ctl2 = presat_circuit::embedded::ctl2().unwrap();
        for j in 0..2 {
            check_all_engines(&ctl2, &StateSet::from_partial(&[(j, true)]));
        }
        let pre = SatPreimage::success_driven()
            .preimage(&s27, &StateSet::from_partial(&[(0, true)]));
        assert_eq!(pre.stats.cones_skipped, 2, "two of three cones skipped");
    }

    #[test]
    fn random_circuits_fuzz() {
        for seed in 0..6 {
            let c = generators::random_dag(3, 4, 25, seed);
            check_all_engines(&c, &StateSet::from_state_bits(seed % 16, 4));
            check_all_engines(&c, &StateSet::from_partial(&[(1, false)]));
        }
    }

    #[test]
    fn success_driven_beats_blocking_on_parity_memory() {
        let c = generators::parity(8); // many-cube preimage
        let t = StateSet::from_partial(&[(8, true)]);
        let bl = SatPreimage::blocking().preimage(&c, &t);
        let sd = SatPreimage::success_driven().preimage(&c, &t);
        assert!(sd.stats.graph_nodes > 0);
        assert!(
            sd.stats.graph_nodes < bl.stats.blocking_clauses,
            "graph {} !< blocking clauses {}",
            sd.stats.graph_nodes,
            bl.stats.blocking_clauses
        );
    }

    #[test]
    fn empty_target_yields_empty_preimage() {
        let c = generators::counter(3, false);
        let pre = SatPreimage::success_driven().preimage(&c, &StateSet::empty());
        assert!(pre.states.is_empty());
    }

    #[test]
    fn parallel_jobs_match_sequential_preimage_exactly() {
        let circuits = [
            generators::counter(4, false),
            generators::parity(4),
            generators::round_robin_arbiter(2),
        ];
        for c in &circuits {
            let t = StateSet::from_partial(&[(0, true)]);
            let seq = SatPreimage::success_driven().preimage(c, &t);
            for jobs in [2, 4, 7] {
                let par = SatPreimage::success_driven()
                    .with_jobs(jobs)
                    .preimage(c, &t);
                // Same cube list, not just the same state set.
                assert_eq!(
                    par.states.cubes(),
                    seq.states.cubes(),
                    "{} at jobs={jobs}",
                    c.name()
                );
                assert_eq!(par.stats.result_cubes, seq.stats.result_cubes);
                assert_eq!(par.stats.graph_nodes, seq.stats.graph_nodes);
            }
        }
    }

    #[test]
    fn jobs_appear_in_engine_name() {
        assert!(!SatPreimage::success_driven().name().contains("jobs"));
        assert!(SatPreimage::success_driven()
            .with_jobs(4)
            .name()
            .contains("jobs=4"));
    }
}
