//! The incremental preimage session: one encoding, one solver, many
//! frontiers.
//!
//! The backward-reachability fixed point computes `Pre(F_1), Pre(F_2), …`
//! over the *same* transition relation — only the target side changes.
//! [`SatPreimageSession`] therefore Tseitin-encodes the next-state cones
//! **once** ([`StepBase`]) and keeps one
//! [`IncrementalAllSat`] alive for the whole loop:
//!
//! * Each iteration's target clauses are tagged with a fresh *activation
//!   literal* `a` (every clause carries `¬a`) and enabled by assuming `a`
//!   for that enumeration only. Afterwards the group is retired — `¬a`
//!   becomes a permanent unit, and the group's clauses (plus any learnt
//!   clause that depended on them, which necessarily contains `¬a`) go
//!   inert and are garbage-collected.
//! * Learnt clauses about the *transition relation itself* contain no
//!   activation literal and keep pruning search in every later iteration,
//!   along with saved phases, variable activities, and the success-driven
//!   signature cache.
//! * [`block_states`](crate::PreimageSession::block_states) adds permanent
//!   blocking clauses over the state variables, so states already known
//!   backward-reachable are never re-enumerated.

use presat_allsat::{AllSatResult, EnumLimits, IncrementalAllSat, ParTuning, SuccessDrivenAllSat};
use presat_circuit::Circuit;
use presat_logic::{CubeSet, Lit};
use presat_obs::{Event, ObsSink, Timer};

use crate::encoding::StepBase;
use crate::engine::{PreimageResult, PreimageSession, PreimageStats};
use crate::state_set::StateSet;

/// A persistent SAT preimage session (see the module docs). Created via
/// [`crate::PreimageEngine::open_session`] on a success-driven
/// [`crate::SatPreimage`].
pub struct SatPreimageSession {
    inner: IncrementalAllSat,
    /// Next-state function literals, position `j` = latch `j`.
    next_lits: Vec<Lit>,
    num_latches: usize,
    name: String,
    /// Preimage calls served so far (every call after the first reuses the
    /// session encoding).
    iterations: u64,
    /// Mirror of the inner engine's parallel tuning, kept so
    /// [`PreimageSession::set_parallel_threshold`] can update one knob
    /// without clobbering the others.
    tuning: ParTuning,
}

impl SatPreimageSession {
    /// Encodes `circuit` (with optional input environment `env`) and opens
    /// the session.
    pub(crate) fn open(
        circuit: &Circuit,
        config: SuccessDrivenAllSat,
        jobs: usize,
        tuning: ParTuning,
        env: Option<&CubeSet>,
        name: String,
    ) -> Self {
        let base = StepBase::build(circuit, env);
        let num_latches = base.num_latches();
        let state_vars = base.state_vars();
        let (cnf, next_lits) = base.into_parts();
        let mut inner = IncrementalAllSat::new(cnf, state_vars, config, jobs);
        inner.set_tuning(tuning);
        SatPreimageSession {
            inner,
            next_lits,
            num_latches,
            name,
            iterations: 0,
            tuning,
        }
    }

    /// Adds the target constraint `T(Y)` as a clause group under a fresh
    /// activation literal and returns that literal. Mirrors the clause
    /// shapes of [`crate::StepEncoding`] (units / selector-per-cube), each
    /// clause additionally carrying the group tag.
    fn activate_target(&mut self, target: &StateSet) -> Lit {
        let act = Lit::pos(self.inner.add_var());
        let n = self.num_latches;
        let cubes = target.cubes();
        if cubes.is_empty() {
            // No predecessor exists while this group is active. (The unit
            // asserts ¬act outright; the enumeration's `act` assumption
            // then fails immediately, and retirement is a no-op.)
            self.inner.add_clause(vec![!act]);
            return act;
        }
        let next_lit = |lits: &[Lit], l: Lit| {
            let j = l.var().index();
            assert!(j < n, "target cube mentions latch position {j} ≥ {n}");
            if l.is_pos() {
                lits[j]
            } else {
                !lits[j]
            }
        };
        if cubes.len() == 1 {
            for &l in cubes.cubes()[0].lits() {
                let yl = next_lit(&self.next_lits, l);
                self.inner.add_clause(vec![!act, yl]);
            }
        } else {
            let mut selectors = Vec::with_capacity(cubes.len() + 1);
            selectors.push(!act);
            for cube in cubes {
                let sel = Lit::pos(self.inner.add_var());
                for &l in cube.lits() {
                    let yl = next_lit(&self.next_lits, l);
                    self.inner.add_clause(vec![!act, !sel, yl]);
                }
                selectors.push(sel);
            }
            self.inner.add_clause(selectors);
        }
        act
    }
}

impl PreimageSession for SatPreimageSession {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn preimage_with_sink(&mut self, target: &StateSet, sink: &mut dyn ObsSink) -> PreimageResult {
        self.preimage_limited(target, &EnumLimits::none(), sink)
    }

    fn preimage_limited(
        &mut self,
        target: &StateSet,
        limits: &EnumLimits,
        sink: &mut dyn ObsSink,
    ) -> PreimageResult {
        let timer = Timer::start();
        let learnts_carried = self.inner.live_learnts() as u64;
        let encodings_reused = u64::from(self.iterations > 0);
        let act = self.activate_target(target);
        let result = self.inner.enumerate_limited(&[act], limits, sink);
        // Retiring the group is safe even after a stopped enumeration: the
        // session's persistent state never absorbs truncated subgraphs, so
        // the next (possibly unlimited) call starts sound.
        self.inner.retire(act);
        self.iterations += 1;
        let AllSatResult {
            cubes,
            stats: astats,
            complete,
            stop_reason,
            ..
        } = result;
        let result_cubes = cubes.len() as u64;
        let states = StateSet::from_cubes(cubes);
        let wall_time_ns = timer.elapsed_ns();
        sink.record(&Event::EngineDone { wall_time_ns });
        PreimageResult {
            stats: PreimageStats {
                result_cubes,
                solver_calls: astats.solver_calls,
                blocking_clauses: astats.blocking_clauses,
                graph_nodes: astats.graph_nodes,
                cache_hits: astats.cache_hits,
                bdd_nodes: 0,
                sat_conflicts: astats.sat_conflicts,
                iterations: 1,
                wall_time_ns,
                encodings_reused,
                learnts_carried,
                activation_lits: 1,
                // The session path encodes every cone once up front (the
                // shared base must serve any future target), so COI
                // skipping does not apply here.
                cones_skipped: 0,
                allsat: astats,
            },
            states,
            elapsed: timer.elapsed(),
            complete,
            stop_reason,
        }
    }

    fn block_states(&mut self, states: &StateSet) {
        // State cubes are over latch positions, which *are* the CNF state
        // variables — negate each cube into one permanent blocking clause.
        for cube in states.cubes() {
            let clause: Vec<Lit> = cube.lits().iter().map(|&l| !l).collect();
            self.inner.add_clause(clause);
        }
    }

    fn set_inprocess(&mut self, on: bool) {
        self.inner.set_inprocess(on);
    }

    fn set_parallel_threshold(&mut self, threshold: u64) {
        self.tuning.par_threshold = threshold;
        self.inner.set_tuning(self.tuning);
    }

    fn arena_bytes(&self) -> u64 {
        self.inner.arena_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PreimageEngine;
    use crate::sat_engine::SatPreimage;
    use presat_circuit::generators;

    #[test]
    fn session_matches_per_call_engine_on_fresh_targets() {
        let c = generators::counter(4, false);
        let engine = SatPreimage::success_driven();
        let mut session = engine
            .open_session(&c)
            .expect("success-driven has sessions");
        for bits in [9u64, 3, 0, 15] {
            let t = StateSet::from_state_bits(bits, 4);
            let cold = engine.preimage(&c, &t);
            let warm = session.preimage_with_sink(&t, &mut presat_obs::NullSink);
            assert_eq!(
                warm.states.cubes(),
                cold.states.cubes(),
                "target {bits} diverges"
            );
        }
    }

    #[test]
    fn session_counters_report_reuse() {
        let c = generators::lfsr(4);
        let engine = SatPreimage::success_driven();
        let mut session = engine.open_session(&c).unwrap();
        let t = StateSet::from_state_bits(13, 4);
        let first = session.preimage_with_sink(&t, &mut presat_obs::NullSink);
        assert_eq!(first.stats.encodings_reused, 0);
        assert_eq!(first.stats.activation_lits, 1);
        let second = session.preimage_with_sink(&t, &mut presat_obs::NullSink);
        assert_eq!(second.stats.encodings_reused, 1);
    }

    #[test]
    fn blocked_states_disappear_from_results() {
        let c = generators::counter(3, false);
        let engine = SatPreimage::success_driven();
        let mut session = engine.open_session(&c).unwrap();
        let t = StateSet::from_state_bits(5, 3);
        let pre = session.preimage_with_sink(&t, &mut presat_obs::NullSink);
        assert_eq!(pre.states.minterm_count(3), 1); // predecessor: 4
        session.block_states(&pre.states);
        let again = session.preimage_with_sink(&t, &mut presat_obs::NullSink);
        assert!(
            again.states.is_empty(),
            "blocked predecessor must not recur"
        );
    }

    #[test]
    fn empty_target_in_session_yields_empty_preimage() {
        let c = generators::counter(3, false);
        let engine = SatPreimage::success_driven();
        let mut session = engine.open_session(&c).unwrap();
        let pre = session.preimage_with_sink(&StateSet::empty(), &mut presat_obs::NullSink);
        assert!(pre.states.is_empty());
        // The session survives the degenerate group.
        let t = StateSet::from_state_bits(5, 3);
        let pre = session.preimage_with_sink(&t, &mut presat_obs::NullSink);
        assert_eq!(pre.states.minterm_count(3), 1);
    }

    #[test]
    fn blocking_engines_have_no_session() {
        let c = generators::counter(3, false);
        assert!(SatPreimage::blocking().open_session(&c).is_none());
        assert!(SatPreimage::min_blocking().open_session(&c).is_none());
    }

    #[test]
    fn session_name_marks_incremental() {
        let c = generators::counter(3, false);
        let s = SatPreimage::success_driven().open_session(&c).unwrap();
        assert!(s.name().contains("incremental"));
    }
}
