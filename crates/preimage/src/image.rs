//! Forward image computation — the dual of the preimage, provided because
//! forward reachability is the other half of every reachability-based
//! verification flow (and because the paper's all-solutions machinery
//! applies unchanged: only the important-variable set moves from `X` to
//! `Y`).

use std::time::Instant;

use presat_allsat::{AllSatEngine, AllSatProblem, SuccessDrivenAllSat};
use presat_bdd::BddManager;
use presat_circuit::Circuit;
use presat_logic::{CubeSet, Var};
use std::collections::HashMap;

use crate::encoding::ImageEncoding;
use crate::engine::{PreimageResult, PreimageStats};
use crate::state_set::StateSet;

/// Computes the forward image `Img(S) = {s' : ∃s ∈ S, ∃w . s' = δ(s, w)}`
/// with the success-driven all-solutions engine over the next-state
/// variables.
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::{sat_image, StateSet};
///
/// let c = generators::counter(3, false);
/// let img = sat_image(&c, &StateSet::from_state_bits(5, 3));
/// assert!(img.states.contains_bits(6, 3));
/// assert_eq!(img.states.minterm_count(3), 1);
/// ```
pub fn sat_image(circuit: &Circuit, source: &StateSet) -> PreimageResult {
    let start = Instant::now();
    let enc = ImageEncoding::build(circuit, source);
    let problem = AllSatProblem::new(enc.cnf().clone(), enc.next_state_vars());
    let result = SuccessDrivenAllSat::new().enumerate(&problem);
    let states = StateSet::from_cubes(result.cubes.clone());
    let elapsed = start.elapsed();
    PreimageResult {
        stats: PreimageStats {
            result_cubes: result.cubes.len() as u64,
            solver_calls: result.stats.solver_calls,
            blocking_clauses: result.stats.blocking_clauses,
            graph_nodes: result.stats.graph_nodes,
            cache_hits: result.stats.cache_hits,
            bdd_nodes: 0,
            sat_conflicts: result.stats.sat_conflicts,
            iterations: 1,
            wall_time_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            allsat: result.stats,
            ..PreimageStats::default()
        },
        states,
        elapsed,
        complete: true,
        stop_reason: None,
    }
}

/// Computes the forward image symbolically: `∃X ∃W . S(X) ∧ TR(X,W,Y)`,
/// with the result renamed from the `Y` block back to latch positions.
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::{bdd_image, StateSet};
///
/// let c = generators::lfsr(4);
/// let img = bdd_image(&c, &StateSet::all());
/// // an LFSR step is a bijection: the image of everything is everything
/// assert_eq!(img.states.minterm_count(4), 16);
/// ```
pub fn bdd_image(circuit: &Circuit, source: &StateSet) -> PreimageResult {
    let start = Instant::now();
    circuit.validate().expect("circuit must be complete");
    let n = circuit.num_latches();
    let m = circuit.num_inputs();
    let mut mgr = BddManager::new(2 * n + m);

    // Order: X at 0..n, W at n..n+m, Y at n+m..2n+m (same as BddPreimage).
    let next = crate::bdd_engine::next_state_bdds_for(circuit, &mut mgr);
    let y_var = |j: usize| Var::new(n + m + j);

    let mut tr = presat_bdd::BddId::TRUE;
    for (j, &f) in next.iter().enumerate() {
        let yj = mgr.var(y_var(j));
        let eq = mgr.iff(yj, f);
        tr = mgr.and(tr, eq);
    }
    let s_bdd = {
        let set: CubeSet = source.cubes().iter().cloned().collect();
        mgr.from_cube_set(&set) // cubes already over X positions 0..n
    };
    let mut quant: Vec<Var> = Var::range(n).collect();
    quant.extend((0..m).map(|i| Var::new(n + i)));
    let img_y = mgr.and_exists(tr, s_bdd, &quant);

    // Rename the Y block down to latch positions (order-preserving).
    let map: HashMap<Var, Var> = (0..n).map(|j| (y_var(j), Var::new(j))).collect();
    let img = mgr.rename(img_y, &map);

    let states = StateSet::from_cubes(mgr.to_cube_set(img).iter().cloned().collect::<CubeSet>());
    PreimageResult {
        stats: PreimageStats {
            result_cubes: states.num_cubes() as u64,
            bdd_nodes: mgr.node_count() as u64,
            ..PreimageStats::default()
        },
        states,
        elapsed: start.elapsed(),
        complete: true,
        stop_reason: None,
    }
}

/// Forward reachability from `initial` to the fixed point (the dual of
/// [`crate::backward_reach`]); uses the SAT image engine.
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::{forward_reach, StateSet};
///
/// let c = generators::counter(3, false);
/// let reached = forward_reach(&c, &StateSet::from_state_bits(0, 3), None);
/// assert_eq!(reached.minterm_count(3), 8); // the counter visits everything
/// ```
pub fn forward_reach(
    circuit: &Circuit,
    initial: &StateSet,
    max_iterations: Option<usize>,
) -> StateSet {
    let n = circuit.num_latches();
    let position_vars: Vec<Var> = Var::range(n).collect();
    let mut graph = presat_allsat::SolutionGraph::new(n);
    let mut reached = graph.add_cube_set(initial.cubes(), &position_vars);
    let mut frontier = reached;
    let mut iter = 0usize;
    while frontier != presat_allsat::SolutionNodeId::BOTTOM {
        if max_iterations.is_some_and(|cap| iter >= cap) {
            break;
        }
        iter += 1;
        let f_set = StateSet::from_cubes(graph.to_cube_set(frontier, &position_vars));
        let img = sat_image(circuit, &f_set);
        let img_node = graph.add_cube_set(img.states.cubes(), &position_vars);
        frontier = graph.diff(img_node, reached);
        reached = graph.union(reached, frontier);
    }
    StateSet::from_cubes(graph.to_cube_set(reached, &position_vars))
}

/// The sequential depth from `initial`: the number of clock cycles needed
/// before forward reachability stops discovering new states (the longest
/// shortest-path from the initial set — the classic bound for complete
/// bounded model checking).
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::{sequential_depth, StateSet};
///
/// let c = generators::shift_register(4);
/// // every state is reachable within 4 shifts
/// assert_eq!(sequential_depth(&c, &StateSet::from_state_bits(0, 4)), 4);
/// ```
pub fn sequential_depth(circuit: &Circuit, initial: &StateSet) -> usize {
    let n = circuit.num_latches();
    let position_vars: Vec<Var> = Var::range(n).collect();
    let mut graph = presat_allsat::SolutionGraph::new(n);
    let mut reached = graph.add_cube_set(initial.cubes(), &position_vars);
    let mut frontier = reached;
    let mut depth = 0usize;
    loop {
        if frontier == presat_allsat::SolutionNodeId::BOTTOM {
            return depth;
        }
        let f_set = StateSet::from_cubes(graph.to_cube_set(frontier, &position_vars));
        let img = sat_image(circuit, &f_set);
        let img_node = graph.add_cube_set(img.states.cubes(), &position_vars);
        frontier = graph.diff(img_node, reached);
        if frontier == presat_allsat::SolutionNodeId::BOTTOM {
            return depth;
        }
        reached = graph.union(reached, frontier);
        depth += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_circuit::{generators, sim};
    use std::collections::BTreeSet;

    fn oracle_image(circuit: &Circuit, source: &StateSet) -> BTreeSet<u64> {
        let n = circuit.num_latches();
        sim::enumerate_transitions(circuit)
            .into_iter()
            .filter(|&(s, _, _)| source.contains_bits(s, n))
            .map(|(_, _, next)| next)
            .collect()
    }

    fn check_image(circuit: &Circuit, source: &StateSet) {
        let n = circuit.num_latches();
        let expect = oracle_image(circuit, source);
        for (name, got) in [
            ("sat", sat_image(circuit, source)),
            ("bdd", bdd_image(circuit, source)),
        ] {
            assert_eq!(
                got.states.minterm_count(n),
                expect.len() as u128,
                "{name} image cardinality on {}",
                circuit.name()
            );
            for bits in 0..(1u64 << n) {
                assert_eq!(
                    got.states.contains_bits(bits, n),
                    expect.contains(&bits),
                    "{name} membership of {bits:b} on {}",
                    circuit.name()
                );
            }
        }
    }

    #[test]
    fn counter_image() {
        let c = generators::counter(4, false);
        check_image(&c, &StateSet::from_state_bits(5, 4));
        check_image(&c, &StateSet::from_partial(&[(0, true)]));
    }

    #[test]
    fn shift_image_doubles() {
        let c = generators::shift_register(4);
        check_image(&c, &StateSet::from_state_bits(0b0101, 4));
        let img = sat_image(&c, &StateSet::from_state_bits(0b0101, 4));
        // serial input free: two successors
        assert_eq!(img.states.minterm_count(4), 2);
    }

    #[test]
    fn parity_and_arbiter_images() {
        check_image(
            &generators::parity(3),
            &StateSet::from_partial(&[(3, false)]),
        );
        check_image(
            &generators::round_robin_arbiter(2),
            &StateSet::from_partial(&[(0, true), (1, false)]),
        );
    }

    #[test]
    fn s27_image() {
        let c = presat_circuit::embedded::s27().unwrap();
        for bits in 0..8 {
            check_image(&c, &StateSet::from_state_bits(bits, 3));
        }
    }

    #[test]
    fn forward_reach_counter_visits_all() {
        let c = generators::counter(4, false);
        let r = forward_reach(&c, &StateSet::from_state_bits(3, 4), None);
        assert_eq!(r.minterm_count(4), 16);
    }

    #[test]
    fn forward_reach_respects_cap() {
        let c = generators::counter(4, false);
        let r = forward_reach(&c, &StateSet::from_state_bits(0, 4), Some(3));
        assert_eq!(r.minterm_count(4), 4);
    }

    #[test]
    fn forward_and_backward_reach_are_consistent() {
        // s' ∈ FwdReach(s0) ⇔ s0 ∈ BwdReach({s'}).
        let c = generators::lfsr(4);
        let s0 = 0b0011u64;
        let fwd = forward_reach(&c, &StateSet::from_state_bits(s0, 4), None);
        for target_bits in 0..16u64 {
            let bwd = crate::reach::backward_reach(
                &crate::sat_engine::SatPreimage::success_driven(),
                &c,
                &StateSet::from_state_bits(target_bits, 4),
                crate::reach::ReachOptions::default(),
            );
            assert_eq!(
                fwd.contains_bits(target_bits, 4),
                bwd.reached.contains_bits(s0, 4),
                "duality violated at target {target_bits:b}"
            );
        }
    }

    #[test]
    fn sequential_depth_of_counter_is_full_cycle() {
        let c = generators::counter(4, false);
        // From state 0 the counter needs 15 steps to see every state.
        assert_eq!(sequential_depth(&c, &StateSet::from_state_bits(0, 4)), 15);
    }

    #[test]
    fn sequential_depth_of_johnson_ring() {
        let c = generators::johnson_counter(4);
        // The twisted ring visits 2n = 8 states: depth 7 from the origin.
        assert_eq!(sequential_depth(&c, &StateSet::from_state_bits(0, 4)), 7);
    }

    #[test]
    fn sequential_depth_of_full_initial_set_is_zero() {
        let c = generators::lfsr(4);
        assert_eq!(sequential_depth(&c, &StateSet::all()), 0);
    }

    #[test]
    fn empty_source_empty_image() {
        let c = generators::counter(3, false);
        assert!(sat_image(&c, &StateSet::empty()).states.is_empty());
        assert!(bdd_image(&c, &StateSet::empty()).states.is_empty());
    }
}
