//! Witness extraction: turn a backward-reachability answer into a concrete
//! input trace — the "justification sequence" of sequential ATPG and the
//! counterexample of safety model checking.

use presat_circuit::{sim, Circuit};
use presat_logic::Lit;
use presat_sat::{SolveResult, Solver};

use crate::encoding::StepEncoding;
use crate::engine::PreimageEngine;
use crate::state_set::StateSet;

/// One step of a justification trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// The state before the step (latch bit `j` in bit `j`).
    pub state: u64,
    /// The primary-input assignment applied (input `i` in bit `i`).
    pub inputs: u64,
    /// The state after the step.
    pub next_state: u64,
}

/// A concrete trace from an initial state into the target set.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Trace {
    /// The steps, in order; empty if the initial state is already in the
    /// target.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Number of clock cycles in the trace.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` for the zero-cycle trace.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Finds a shortest input trace driving `circuit` from `initial_state`
/// into `target`, or `None` if the target is not reachable from there.
///
/// Strategy: compute the backward onion `R0 = target`,
/// `R(k+1) = Rk ∪ Pre(Rk)` with the supplied engine until the initial
/// state appears (distance = k); then walk forward: at each step, a single
/// incremental SAT query — the step relation with the present state pinned
/// and the next state constrained to the *previous* ring — yields an input
/// vector, which simulation applies to obtain the successor. The forward
/// walk therefore always makes progress toward the target and terminates
/// in exactly `k` steps.
///
/// # Panics
///
/// Panics if `circuit` is structurally incomplete, or (debug builds) if
/// the engine and the simulator disagree — which would indicate a bug in
/// one of them, not bad input.
///
/// # Examples
///
/// ```
/// use presat_circuit::generators;
/// use presat_preimage::{justify, SatPreimage, StateSet};
///
/// let c = generators::counter(3, false);
/// let trace = justify(
///     &SatPreimage::success_driven(),
///     &c,
///     5,
///     &StateSet::from_state_bits(7, 3),
/// ).expect("counter reaches 7 from 5");
/// assert_eq!(trace.len(), 2); // 5 → 6 → 7
/// ```
pub fn justify(
    engine: &dyn PreimageEngine,
    circuit: &Circuit,
    initial_state: u64,
    target: &StateSet,
) -> Option<Trace> {
    let n = circuit.num_latches();
    let m = circuit.num_inputs();
    if target.contains_bits(initial_state, n) {
        return Some(Trace::default());
    }

    // Backward onion rings: rings[k] = states at distance ≤ k.
    let mut rings: Vec<StateSet> = vec![target.clone()];
    loop {
        let last = rings.last().expect("nonempty");
        if last.contains_bits(initial_state, n) {
            break;
        }
        let pre = engine.preimage(circuit, last);
        let grown = last.union(&pre.states);
        // Fixed point without covering the initial state: unreachable.
        let stalled = grown.semantically_eq(last, n.min(24)) && n <= 24;
        if stalled {
            return None;
        }
        // For n > 24 the semantic check is unavailable; detect stall by
        // cube-set equality (sound but may loop on pathological engines
        // that keep reshuffling cubes — ours are deterministic).
        if n > 24 && grown.cubes() == last.cubes() {
            return None;
        }
        rings.push(grown);
        if rings.len() > (1usize << n.min(26)) {
            unreachable!("onion cannot have more rings than states");
        }
    }

    // Forward walk: from ring k, step into ring k-1.
    let mut steps = Vec::new();
    let mut state = initial_state;
    for k in (0..rings.len() - 1).rev() {
        let enc = StepEncoding::build(circuit, &rings[k]);
        let mut solver = Solver::from_cnf(enc.cnf());
        let assumptions: Vec<Lit> = enc
            .state_vars()
            .iter()
            .enumerate()
            .map(|(j, &v)| Lit::with_phase(v, state >> j & 1 == 1))
            .collect();
        let model = match solver.solve_with_assumptions(&assumptions) {
            SolveResult::Sat(model) => model,
            SolveResult::Unsat => {
                // `state` is in ring k+1, so a transition into ring k must
                // exist unless state was already deeper in the onion; fall
                // through to the next (smaller) ring.
                continue;
            }
            SolveResult::Unknown(_) => unreachable!("unbudgeted solver cannot stop early"),
        };
        let inputs: u64 = enc
            .input_vars()
            .iter()
            .enumerate()
            .map(|(i, &v)| u64::from(model.value(v) == Some(true)) << i)
            .sum();
        let input_words: Vec<u64> = (0..m).map(|i| inputs >> i & 1).collect();
        let state_words: Vec<u64> = (0..n).map(|j| state >> j & 1).collect();
        let next = sim::next_state(circuit, &input_words, &state_words);
        let next_state: u64 = next.iter().enumerate().map(|(j, w)| (w & 1) << j).sum();
        debug_assert!(
            rings[k].contains_bits(next_state, n),
            "SAT step must land in the next ring"
        );
        steps.push(TraceStep {
            state,
            inputs,
            next_state,
        });
        state = next_state;
        if target.contains_bits(state, n) {
            break;
        }
    }
    debug_assert!(target.contains_bits(state, n), "walk must end in target");
    Some(Trace { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use crate::sat_engine::SatPreimage;
    use presat_circuit::generators;

    fn verify_trace(circuit: &Circuit, initial: u64, target: &StateSet, trace: &Trace) {
        let n = circuit.num_latches();
        let m = circuit.num_inputs();
        let mut state = initial;
        for step in &trace.steps {
            assert_eq!(step.state, state, "trace must be contiguous");
            let input_words: Vec<u64> = (0..m).map(|i| step.inputs >> i & 1).collect();
            let state_words: Vec<u64> = (0..n).map(|j| state >> j & 1).collect();
            let next = sim::next_state(circuit, &input_words, &state_words);
            let next_state: u64 = next.iter().enumerate().map(|(j, w)| (w & 1) << j).sum();
            assert_eq!(next_state, step.next_state, "recorded step must simulate");
            state = next_state;
        }
        assert!(target.contains_bits(state, n), "trace must end in target");
    }

    #[test]
    fn counter_distance() {
        let c = generators::counter(4, false);
        let target = StateSet::from_state_bits(9, 4);
        let trace = justify(&SatPreimage::success_driven(), &c, 3, &target).expect("reachable");
        assert_eq!(trace.len(), 6); // 3 → … → 9
        verify_trace(&c, 3, &target, &trace);
    }

    #[test]
    fn zero_length_when_already_in_target() {
        let c = generators::counter(3, false);
        let target = StateSet::from_state_bits(5, 3);
        let trace = justify(&SatPreimage::success_driven(), &c, 5, &target).expect("trivial");
        assert!(trace.is_empty());
    }

    #[test]
    fn shift_register_requires_right_inputs() {
        let c = generators::shift_register(4);
        let target = StateSet::from_state_bits(0b1111, 4);
        let trace =
            justify(&SatPreimage::success_driven(), &c, 0, &target).expect("reachable in 4");
        verify_trace(&c, 0, &target, &trace);
        assert_eq!(trace.len(), 4);
        // The serial input must have been 1 on every cycle.
        for step in &trace.steps {
            assert_eq!(step.inputs & 1, 1);
        }
    }

    #[test]
    fn unreachable_returns_none() {
        // An LFSR's zero state is a fixed point disjoint from the nonzero
        // cycle: from 0 only 0 is reachable.
        let c = generators::lfsr(4);
        let target = StateSet::from_state_bits(0b0110, 4);
        assert!(justify(&SatPreimage::success_driven(), &c, 0, &target).is_none());
    }

    #[test]
    fn traces_are_shortest_for_every_reachable_pair() {
        let c = generators::lfsr(4);
        let target_bits = 1u64;
        let target = StateSet::from_state_bits(target_bits, 4);
        let reach = oracle::backward_reachable_bits(&c, &target);
        for s0 in 0..16u64 {
            let got = justify(&SatPreimage::success_driven(), &c, s0, &target);
            if reach.contains(&s0) {
                let trace = got.expect("reachable");
                verify_trace(&c, s0, &target, &trace);
            } else {
                assert!(got.is_none(), "state {s0:b} should be unreachable");
            }
        }
    }

    #[test]
    fn s27_justification() {
        let c = presat_circuit::embedded::s27().unwrap();
        let target = StateSet::from_state_bits(0b110, 3);
        let trace = justify(&SatPreimage::success_driven(), &c, 0, &target)
            .expect("s27 reaches (0,1,1) from reset");
        verify_trace(&c, 0, &target, &trace);
    }
}
