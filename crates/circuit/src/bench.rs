//! ISCAS89-style `.bench` netlist parsing and writing.
//!
//! The `.bench` format is the lingua franca of the ISCAS85/89 benchmark
//! suites: `INPUT(x)` / `OUTPUT(y)` declarations and gate assignments
//! `g = AND(a, b, …)` with gate types AND, OR, NAND, NOR, NOT, BUFF, XOR,
//! XNOR, and DFF for latches.
//!
//! # Examples
//!
//! ```
//! let text = "
//! INPUT(a)
//! OUTPUT(y)
//! s = DFF(n)
//! n = XOR(a, s)
//! y = NOT(s)
//! ";
//! let c = presat_circuit::bench::parse(text)?;
//! assert_eq!(c.num_inputs(), 1);
//! assert_eq!(c.num_latches(), 1);
//! assert_eq!(c.num_outputs(), 1);
//! # Ok::<(), presat_circuit::bench::ParseBenchError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::aig::AigRef;
use crate::Circuit;

/// Error produced while parsing `.bench` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBenchError {
    /// A line was not a declaration, assignment, or comment.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A gate type is not supported.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// The gate keyword found.
        gate: String,
    },
    /// A gate has the wrong number of operands (e.g. binary NOT).
    BadArity {
        /// 1-based line number.
        line: usize,
        /// The gate keyword.
        gate: String,
        /// Operand count found.
        arity: usize,
    },
    /// A signal is referenced but never defined.
    UndefinedSignal {
        /// The signal name.
        name: String,
    },
    /// A signal is defined more than once.
    Redefined {
        /// 1-based line number of the second definition.
        line: usize,
        /// The signal name.
        name: String,
    },
    /// The combinational logic contains a cycle.
    CombinationalLoop {
        /// A signal on the cycle.
        name: String,
    },
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBenchError::BadLine { line } => write!(f, "unparseable line {line}"),
            ParseBenchError::UnknownGate { line, gate } => {
                write!(f, "unknown gate type {gate:?} at line {line}")
            }
            ParseBenchError::BadArity { line, gate, arity } => {
                write!(f, "gate {gate} with {arity} operands at line {line}")
            }
            ParseBenchError::UndefinedSignal { name } => {
                write!(f, "signal {name:?} referenced but never defined")
            }
            ParseBenchError::Redefined { line, name } => {
                write!(f, "signal {name:?} redefined at line {line}")
            }
            ParseBenchError::CombinationalLoop { name } => {
                write!(f, "combinational loop through signal {name:?}")
            }
        }
    }
}

impl std::error::Error for ParseBenchError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateKind {
    And,
    Or,
    Nand,
    Nor,
    Not,
    Buff,
    Xor,
    Xnor,
}

impl GateKind {
    fn from_keyword(kw: &str) -> Option<GateKind> {
        match kw.to_ascii_uppercase().as_str() {
            "AND" => Some(GateKind::And),
            "OR" => Some(GateKind::Or),
            "NAND" => Some(GateKind::Nand),
            "NOR" => Some(GateKind::Nor),
            "NOT" => Some(GateKind::Not),
            "BUF" | "BUFF" => Some(GateKind::Buff),
            "XOR" => Some(GateKind::Xor),
            "XNOR" => Some(GateKind::Xnor),
            _ => None,
        }
    }
}

/// Parses `.bench` text into a [`Circuit`].
///
/// Latch (DFF) initial values default to 0, matching ISCAS89 convention.
///
/// # Errors
///
/// Returns a [`ParseBenchError`] describing the first problem found.
pub fn parse(text: &str) -> Result<Circuit, ParseBenchError> {
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    // name → (gate, operands) for combinational gates.
    let mut gates: HashMap<String, (GateKind, Vec<String>)> = HashMap::new();
    // latch output name → next-state signal name.
    let mut dffs: Vec<(String, String)> = Vec::new();
    let mut defined: HashMap<String, usize> = HashMap::new();

    for (lineno0, raw) in text.lines().enumerate() {
        let line_no = lineno0 + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if let Some(rest) = upper
            .strip_prefix("INPUT")
            .and_then(|r| r.trim().strip_prefix('('))
        {
            let name = rest
                .strip_suffix(')')
                .ok_or(ParseBenchError::BadLine { line: line_no })?
                .trim();
            // Preserve original casing from the raw line.
            let orig = extract_parenthesized(line).unwrap_or(name);
            if defined.insert(orig.to_string(), line_no).is_some() {
                return Err(ParseBenchError::Redefined {
                    line: line_no,
                    name: orig.to_string(),
                });
            }
            inputs.push(orig.to_string());
            continue;
        }
        if upper.starts_with("OUTPUT") {
            let orig =
                extract_parenthesized(line).ok_or(ParseBenchError::BadLine { line: line_no })?;
            outputs.push(orig.to_string());
            continue;
        }
        // Assignment: name = GATE(args)
        let Some((lhs, rhs)) = line.split_once('=') else {
            return Err(ParseBenchError::BadLine { line: line_no });
        };
        let name = lhs.trim().to_string();
        let rhs = rhs.trim();
        let Some(open) = rhs.find('(') else {
            return Err(ParseBenchError::BadLine { line: line_no });
        };
        let keyword = rhs[..open].trim();
        let args_str = rhs[open + 1..]
            .strip_suffix(')')
            .ok_or(ParseBenchError::BadLine { line: line_no })?;
        let args: Vec<String> = args_str
            .split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        if defined.insert(name.clone(), line_no).is_some() {
            return Err(ParseBenchError::Redefined {
                line: line_no,
                name,
            });
        }
        if keyword.eq_ignore_ascii_case("DFF") {
            if args.len() != 1 {
                return Err(ParseBenchError::BadArity {
                    line: line_no,
                    gate: "DFF".into(),
                    arity: args.len(),
                });
            }
            dffs.push((name, args[0].clone()));
            continue;
        }
        let kind = GateKind::from_keyword(keyword).ok_or_else(|| ParseBenchError::UnknownGate {
            line: line_no,
            gate: keyword.to_string(),
        })?;
        let arity_ok = match kind {
            GateKind::Not | GateKind::Buff => args.len() == 1,
            _ => args.len() >= 2,
        };
        if !arity_ok {
            return Err(ParseBenchError::BadArity {
                line: line_no,
                gate: keyword.to_string(),
                arity: args.len(),
            });
        }
        gates.insert(name, (kind, args));
    }

    // Allocate the circuit: leaves are inputs then latch outputs.
    let mut circuit = Circuit::new(inputs.len(), dffs.len());
    let mut sig: HashMap<String, AigRef> = HashMap::new();
    for (i, name) in inputs.iter().enumerate() {
        sig.insert(name.clone(), circuit.input_ref(i));
    }
    for (j, (name, _)) in dffs.iter().enumerate() {
        sig.insert(name.clone(), circuit.state_ref(j));
    }

    // Iterative resolution with cycle detection.
    fn resolve(
        name: &str,
        gates: &HashMap<String, (GateKind, Vec<String>)>,
        sig: &mut HashMap<String, AigRef>,
        circuit: &mut Circuit,
    ) -> Result<AigRef, ParseBenchError> {
        if let Some(&r) = sig.get(name) {
            return Ok(r);
        }
        // Two-phase iterative DFS: an Enter visit marks the signal "on the
        // current path" and schedules its operands; the matching Exit visit
        // builds the gate. Meeting an Enter for a signal already on the
        // path is a combinational cycle.
        let mut on_path: HashMap<String, ()> = HashMap::new();
        let mut stack: Vec<(String, bool)> = vec![(name.to_string(), false)];
        while let Some((top, expanded)) = stack.pop() {
            if sig.contains_key(&top) {
                continue;
            }
            let (kind, args) = gates
                .get(&top)
                .ok_or_else(|| ParseBenchError::UndefinedSignal { name: top.clone() })?
                .clone();
            if !expanded {
                if on_path.contains_key(&top) {
                    return Err(ParseBenchError::CombinationalLoop { name: top });
                }
                on_path.insert(top.clone(), ());
                stack.push((top, true));
                for a in &args {
                    if !sig.contains_key(a) {
                        stack.push((a.clone(), false));
                    }
                }
                continue;
            }
            let operands: Vec<AigRef> = args.iter().map(|a| sig[a]).collect();
            let aig = circuit.aig_mut();
            let value = match kind {
                GateKind::And => aig.and_many(&operands),
                GateKind::Nand => {
                    let v = aig.and_many(&operands);
                    !v
                }
                GateKind::Or => aig.or_many(&operands),
                GateKind::Nor => {
                    let v = aig.or_many(&operands);
                    !v
                }
                GateKind::Xor => aig.xor_many(&operands),
                GateKind::Xnor => {
                    let v = aig.xor_many(&operands);
                    !v
                }
                GateKind::Not => !operands[0],
                GateKind::Buff => operands[0],
            };
            on_path.remove(&top);
            sig.insert(top, value);
        }
        Ok(sig[name])
    }

    let dff_list = dffs.clone();
    for (j, (_, next_name)) in dff_list.iter().enumerate() {
        let f = resolve(next_name, &gates, &mut sig, &mut circuit)?;
        circuit.set_latch_next(j, f);
    }
    for name in &outputs {
        let f = resolve(name, &gates, &mut sig, &mut circuit)?;
        circuit.add_output(name.clone(), f);
    }
    Ok(circuit)
}

fn extract_parenthesized(line: &str) -> Option<&str> {
    let open = line.find('(')?;
    let close = line.rfind(')')?;
    (close > open).then(|| line[open + 1..close].trim())
}

/// Serializes a circuit back to `.bench` text (AND/NOT decomposition of the
/// AIG; complemented edges become NOT gates).
pub fn write(circuit: &Circuit) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "# {} (written by presat)", circuit.name());
    for i in 0..circuit.num_inputs() {
        let _ = writeln!(out, "INPUT(w{i})");
    }
    for (k, _) in circuit.outputs().iter().enumerate() {
        let _ = writeln!(out, "OUTPUT(o{k})");
    }

    let mut names: HashMap<AigRef, String> = HashMap::new();
    names.insert(AigRef::FALSE, "const0".to_string());
    names.insert(AigRef::TRUE, "const1".to_string());
    let mut const_used = false;
    for i in 0..circuit.num_inputs() {
        names.insert(circuit.input_ref(i), format!("w{i}"));
    }
    for j in 0..circuit.num_latches() {
        names.insert(circuit.state_ref(j), format!("s{j}"));
    }

    let mut body = String::new();
    // Name of a (possibly complemented) edge, emitting gates as needed.
    fn name_of(
        circuit: &Circuit,
        r: AigRef,
        names: &mut HashMap<AigRef, String>,
        body: &mut String,
        const_used: &mut bool,
    ) -> String {
        use std::fmt::Write;
        if let Some(n) = names.get(&r) {
            if r.is_const() {
                *const_used = true;
            }
            return n.clone();
        }
        if r.is_complemented() {
            let base = name_of(circuit, !r, names, body, const_used);
            let n = format!("{base}_n");
            let _ = writeln!(body, "{n} = NOT({base})");
            names.insert(r, n.clone());
            return n;
        }
        let (a, b) = circuit
            .aig()
            .and_fanins(r.node())
            .expect("unnamed regular edge must be an AND gate");
        let an = name_of(circuit, a, names, body, const_used);
        let bn = name_of(circuit, b, names, body, const_used);
        let n = format!("g{}", r.node().index());
        let _ = writeln!(body, "{n} = AND({an}, {bn})");
        names.insert(r, n.clone());
        n
    }

    for j in 0..circuit.num_latches() {
        let next = circuit.latch_next(j);
        let nn = name_of(circuit, next, &mut names, &mut body, &mut const_used);
        let _ = writeln!(out, "s{j} = DFF({nn})");
    }
    for (k, (_, f)) in circuit.outputs().iter().enumerate() {
        let fname = name_of(circuit, *f, &mut names, &mut body, &mut const_used);
        let _ = writeln!(body, "o{k} = BUFF({fname})");
    }
    if const_used {
        // const0 = x ∧ ¬x over the first available signal.
        let some = if circuit.num_inputs() > 0 {
            "w0".to_string()
        } else {
            "s0".to_string()
        };
        let _ = writeln!(out, "{some}_inv = NOT({some})");
        let _ = writeln!(out, "const0 = AND({some}, {some}_inv)");
        let _ = writeln!(out, "const1 = NOT(const0)");
    }
    out.push_str(&body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    const TOGGLE: &str = "
# toggle with enable
INPUT(en)
OUTPUT(q)
s = DFF(n)
n = XOR(en, s)
q = BUFF(s)
";

    #[test]
    fn parse_toggle() {
        let c = parse(TOGGLE).unwrap();
        assert_eq!(c.num_inputs(), 1);
        assert_eq!(c.num_latches(), 1);
        assert_eq!(c.num_outputs(), 1);
        // en=1, s=0 → next 1 ; en=0, s=1 → stays 1
        let next = sim::next_state(&c, &[0b01], &[0b10]);
        assert_eq!(next[0] & 0b11, 0b11);
    }

    #[test]
    fn parse_nary_gates() {
        let text = "
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
y = NAND(a, b, c)
";
        let c = parse(text).unwrap();
        let (outs, _) = sim::step(&c, &[0b1111, 0b1101, 0b1011], &[]);
        // NAND of (a,b,c): lanes: 0:(1,1,1)→0, 1:(1,0,1)→1, 2:(1,1,0)→1, 3:(1,1,1)→0
        assert_eq!(outs[0] & 0xF, 0b0110);
    }

    #[test]
    fn out_of_order_definitions_ok() {
        let text = "
OUTPUT(y)
y = NOT(x)
x = AND(a, b)
INPUT(a)
INPUT(b)
";
        let c = parse(text).unwrap();
        assert_eq!(c.num_inputs(), 2);
        let (outs, _) = sim::step(&c, &[0b11, 0b01], &[]);
        assert_eq!(outs[0] & 0b11, 0b10);
    }

    #[test]
    fn error_on_undefined_signal() {
        let r = parse("OUTPUT(y)\ny = NOT(ghost)\n");
        assert!(matches!(r, Err(ParseBenchError::UndefinedSignal { .. })));
    }

    #[test]
    fn error_on_combinational_loop() {
        let r = parse("OUTPUT(a)\na = NOT(b)\nb = NOT(a)\n");
        assert!(matches!(r, Err(ParseBenchError::CombinationalLoop { .. })));
    }

    #[test]
    fn error_on_redefinition() {
        let r = parse("INPUT(a)\na = NOT(a)\n");
        assert!(matches!(r, Err(ParseBenchError::Redefined { .. })));
    }

    #[test]
    fn error_on_unknown_gate() {
        let r = parse("INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n");
        assert!(matches!(r, Err(ParseBenchError::UnknownGate { .. })));
    }

    #[test]
    fn error_on_bad_arity() {
        let r = parse("INPUT(a)\nINPUT(b)\ny = NOT(a, b)\nOUTPUT(y)\n");
        assert!(matches!(r, Err(ParseBenchError::BadArity { .. })));
    }

    #[test]
    fn dff_latches_are_state() {
        let c = parse(TOGGLE).unwrap();
        assert_eq!(c.latch_init(0), Some(false));
    }

    #[test]
    fn write_parse_round_trip_preserves_behaviour() {
        let original = parse(TOGGLE).unwrap();
        let text = write(&original);
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed.num_inputs(), original.num_inputs());
        assert_eq!(reparsed.num_latches(), original.num_latches());
        // Compare transition functions exhaustively.
        let t1 = sim::enumerate_transitions(&original);
        let t2 = sim::enumerate_transitions(&reparsed);
        assert_eq!(t1, t2);
    }

    #[test]
    fn write_handles_constant_next_state() {
        let mut c = Circuit::new(1, 1);
        c.set_latch_next(0, AigRef::TRUE);
        c.add_output("y", c.state_ref(0));
        let text = write(&c);
        let re = parse(&text).unwrap();
        let t1 = sim::enumerate_transitions(&c);
        let t2 = sim::enumerate_transitions(&re);
        assert_eq!(t1, t2);
    }
}
