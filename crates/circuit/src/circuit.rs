//! The sequential circuit model.

use std::fmt;

use crate::aig::{Aig, AigRef};

/// A synchronous sequential circuit: an AIG whose leaves are the primary
/// inputs followed by the latch outputs, plus per-latch next-state functions
/// and named primary outputs.
///
/// Leaf layout convention (relied on throughout the workspace):
/// leaf `0..num_inputs` are the primary inputs `w0..`, and leaf
/// `num_inputs..num_inputs+num_latches` are the present-state variables
/// `s0..`.
///
/// # Examples
///
/// ```
/// use presat_circuit::Circuit;
///
/// // 2-bit counter: s' = s + 1
/// let mut c = Circuit::new(0, 2);
/// let s0 = c.state_ref(0);
/// let s1 = c.state_ref(1);
/// let n0 = c.aig_mut().not(s0);
/// let n1 = c.aig_mut().xor(s1, s0);
/// c.set_latch_next(0, n0);
/// c.set_latch_next(1, n1);
/// assert_eq!(c.num_latches(), 2);
/// c.validate().expect("well-formed");
/// ```
#[derive(Clone, Debug)]
pub struct Circuit {
    aig: Aig,
    num_inputs: usize,
    num_latches: usize,
    latch_next: Vec<Option<AigRef>>,
    latch_init: Vec<Option<bool>>,
    outputs: Vec<(String, AigRef)>,
    name: String,
}

/// Error returned by [`Circuit::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateCircuitError {
    /// A latch has no next-state function.
    MissingNext {
        /// Index of the incomplete latch.
        latch: usize,
    },
}

impl fmt::Display for ValidateCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateCircuitError::MissingNext { latch } => {
                write!(f, "latch {latch} has no next-state function")
            }
        }
    }
}

impl std::error::Error for ValidateCircuitError {}

impl Circuit {
    /// Creates a circuit with `num_inputs` primary inputs and `num_latches`
    /// latches; the AIG leaves for both are pre-allocated in the canonical
    /// order.
    pub fn new(num_inputs: usize, num_latches: usize) -> Self {
        let mut aig = Aig::new();
        for _ in 0..num_inputs + num_latches {
            aig.add_leaf();
        }
        Circuit {
            aig,
            num_inputs,
            num_latches,
            latch_next: vec![None; num_latches],
            latch_init: vec![Some(false); num_latches],
            outputs: Vec::new(),
            name: String::from("unnamed"),
        }
    }

    /// A human-readable circuit name (used in benchmark tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the circuit name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The underlying AIG.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Mutable access to the AIG, for building combinational logic.
    pub fn aig_mut(&mut self) -> &mut Aig {
        &mut self.aig
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of latches (state bits).
    pub fn num_latches(&self) -> usize {
        self.num_latches
    }

    /// Number of named primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The AIG edge of primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ num_inputs`.
    pub fn input_ref(&self, i: usize) -> AigRef {
        assert!(i < self.num_inputs, "input {i} out of range");
        self.aig.leaf(i)
    }

    /// The AIG edge of the present-state output of latch `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j ≥ num_latches`.
    pub fn state_ref(&self, j: usize) -> AigRef {
        assert!(j < self.num_latches, "latch {j} out of range");
        self.aig.leaf(self.num_inputs + j)
    }

    /// Sets the next-state function of latch `j`.
    pub fn set_latch_next(&mut self, j: usize, f: AigRef) {
        self.latch_next[j] = Some(f);
    }

    /// The next-state function of latch `j`.
    ///
    /// # Panics
    ///
    /// Panics if it was never set; call [`Circuit::validate`] first.
    pub fn latch_next(&self, j: usize) -> AigRef {
        self.latch_next[j].expect("latch next-state function not set")
    }

    /// All next-state functions in latch order.
    ///
    /// # Panics
    ///
    /// Panics if some latch is incomplete.
    pub fn next_state_fns(&self) -> Vec<AigRef> {
        (0..self.num_latches).map(|j| self.latch_next(j)).collect()
    }

    /// Sets the reset value of latch `j` (`None` = unconstrained).
    pub fn set_latch_init(&mut self, j: usize, init: Option<bool>) {
        self.latch_init[j] = init;
    }

    /// The reset value of latch `j`.
    pub fn latch_init(&self, j: usize) -> Option<bool> {
        self.latch_init[j]
    }

    /// Adds a named primary output.
    pub fn add_output(&mut self, name: impl Into<String>, f: AigRef) {
        self.outputs.push((name.into(), f));
    }

    /// The named outputs.
    pub fn outputs(&self) -> &[(String, AigRef)] {
        &self.outputs
    }

    /// Checks structural completeness.
    ///
    /// # Errors
    ///
    /// Returns an error if any latch lacks a next-state function.
    pub fn validate(&self) -> Result<(), ValidateCircuitError> {
        for (j, n) in self.latch_next.iter().enumerate() {
            if n.is_none() {
                return Err(ValidateCircuitError::MissingNext { latch: j });
            }
        }
        Ok(())
    }

    /// Summary line for benchmark tables: inputs / latches / AND gates.
    pub fn summary(&self) -> CircuitSummary {
        CircuitSummary {
            name: self.name.clone(),
            inputs: self.num_inputs,
            latches: self.num_latches,
            ands: self.aig.and_count(),
            outputs: self.outputs.len(),
        }
    }
}

/// Static characteristics of a circuit (row of reconstructed Table R1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitSummary {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of latches.
    pub latches: usize,
    /// Number of AND gates in the AIG.
    pub ands: usize,
    /// Number of primary outputs.
    pub outputs: usize,
}

impl fmt::Display for CircuitSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} PI={:<4} L={:<4} AND={:<6} PO={}",
            self.name, self.inputs, self.latches, self.ands, self.outputs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_layout_is_inputs_then_state() {
        let c = Circuit::new(2, 3);
        assert_eq!(c.input_ref(0), c.aig().leaf(0));
        assert_eq!(c.input_ref(1), c.aig().leaf(1));
        assert_eq!(c.state_ref(0), c.aig().leaf(2));
        assert_eq!(c.state_ref(2), c.aig().leaf(4));
    }

    #[test]
    fn validate_catches_missing_next() {
        let mut c = Circuit::new(0, 1);
        assert_eq!(
            c.validate(),
            Err(ValidateCircuitError::MissingNext { latch: 0 })
        );
        let s = c.state_ref(0);
        c.set_latch_next(0, s);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn init_defaults_to_zero() {
        let mut c = Circuit::new(0, 2);
        assert_eq!(c.latch_init(0), Some(false));
        c.set_latch_init(1, None);
        assert_eq!(c.latch_init(1), None);
    }

    #[test]
    fn outputs_are_named() {
        let mut c = Circuit::new(1, 0);
        let w = c.input_ref(0);
        c.add_output("y", w);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.outputs()[0].0, "y");
    }

    #[test]
    fn summary_reports_counts() {
        let mut c = Circuit::new(1, 1);
        c.set_name("demo");
        let w = c.input_ref(0);
        let s = c.state_ref(0);
        let n = c.aig_mut().and(w, s);
        c.set_latch_next(0, n);
        let s = c.summary();
        assert_eq!(s.name, "demo");
        assert_eq!(s.inputs, 1);
        assert_eq!(s.latches, 1);
        assert_eq!(s.ands, 1);
    }
}
