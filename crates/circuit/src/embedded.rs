//! Embedded public-domain benchmark netlists.
//!
//! Shipping a handful of tiny ISCAS89 circuits as source text keeps the
//! test suite and benchmark tables reproducible without external files. The
//! ISCAS89 suite has been distributed freely with CAD tools since 1989.

use crate::bench::{self, ParseBenchError};
use crate::Circuit;

/// The `s27` netlist (ISCAS89): 4 inputs, 3 latches, 1 output — the
/// smallest sequential benchmark in the suite.
pub const S27_BENCH: &str = "\
# s27 (ISCAS89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// A small synthetic traffic-light-style controller in `.bench` format,
/// exercising mixed AND/OR/XOR control logic (3 inputs, 2 latches).
pub const CTL2_BENCH: &str = "\
# ctl2: 2-bit mode controller
INPUT(go)
INPUT(halt)
INPUT(mode)
OUTPUT(active)
s0 = DFF(n0)
s1 = DFF(n1)
nhalt = NOT(halt)
adv = AND(go, nhalt)
n0 = XOR(s0, adv)
t = AND(s0, adv)
flip = XOR(s1, t)
nmode = NOT(mode)
keep = AND(s1, nmode)
sel = AND(flip, mode)
n1 = OR(sel, keep)
active = OR(s0, s1)
";

/// Parses and returns the `ctl2` controller.
///
/// # Errors
///
/// Never fails in practice; see [`s27`].
pub fn ctl2() -> Result<Circuit, ParseBenchError> {
    let mut c = bench::parse(CTL2_BENCH)?;
    c.set_name("ctl2");
    Ok(c)
}

/// Parses and returns `s27`.
///
/// # Errors
///
/// Never fails in practice (the text is embedded and covered by tests);
/// the `Result` is kept so callers treat it like any parsed netlist.
pub fn s27() -> Result<Circuit, ParseBenchError> {
    let mut c = bench::parse(S27_BENCH)?;
    c.set_name("s27");
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    #[test]
    fn s27_parses_with_expected_shape() {
        let c = s27().unwrap();
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_latches(), 3);
        assert_eq!(c.num_outputs(), 1);
        c.validate().unwrap();
    }

    #[test]
    fn s27_simulates_from_reset() {
        let c = s27().unwrap();
        // From the all-zero state with all-zero inputs, one step must be
        // well-defined (smoke test of the gate network).
        let (outs, next) = sim::step(&c, &[0, 0, 0, 0], &[0, 0, 0]);
        assert_eq!(outs.len(), 1);
        assert_eq!(next.len(), 3);
        // G14 = NOT(G0)=1, G11 = NOR(G5,G9); G10 = NOR(G14,G11) = NOR(1,·)=0
        assert_eq!(next[0] & 1, 0, "G5 next (G10) is 0 at reset");
    }

    #[test]
    fn ctl2_counts_modulo_mode() {
        let c = ctl2().unwrap();
        assert_eq!(c.num_inputs(), 3);
        assert_eq!(c.num_latches(), 2);
        for (s, w, n) in sim::enumerate_transitions(&c) {
            let (go, halt, mode) = (w & 1, (w >> 1) & 1, (w >> 2) & 1);
            let adv = go & (1 - halt);
            let s0 = s & 1;
            let s1 = (s >> 1) & 1;
            let n0 = s0 ^ adv;
            let flip = s1 ^ (s0 & adv);
            let n1 = if mode == 1 { flip } else { s1 };
            assert_eq!(n, n0 | (n1 << 1), "s={s} w={w}");
        }
    }

    #[test]
    fn s27_transition_count_is_full_space() {
        let c = s27().unwrap();
        let trans = sim::enumerate_transitions(&c);
        assert_eq!(trans.len(), 1 << (4 + 3));
    }
}
