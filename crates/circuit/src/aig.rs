//! And-Inverter Graphs with structural hashing.

use std::collections::HashMap;
use std::fmt;
use std::ops::Not;

/// Index of a node in an [`Aig`] arena. Node 0 is the constant-false node;
/// leaves and AND gates follow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AigNodeId(u32);

impl AigNodeId {
    /// The constant node (represents FALSE uncomplemented, TRUE
    /// complemented).
    pub const CONST: AigNodeId = AigNodeId(0);

    /// Zero-based arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a node id from an arena index previously obtained via
    /// [`AigNodeId::index`] or implied by [`Aig::node_count`]. Arena order
    /// is topological (fanins precede users), which engines exploit for
    /// single-pass evaluation.
    #[inline]
    pub fn from_raw_index(index: usize) -> AigNodeId {
        AigNodeId(u32::try_from(index).expect("AIG index exceeds u32 range"))
    }
}

/// An edge in the AIG: a node plus an optional complement (inversion) flag,
/// packed as `node << 1 | complemented`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigRef(u32);

impl AigRef {
    /// The constant-false function.
    pub const FALSE: AigRef = AigRef(0);
    /// The constant-true function.
    pub const TRUE: AigRef = AigRef(1);

    /// The non-complemented edge to `node`.
    #[inline]
    pub fn regular(node: AigNodeId) -> AigRef {
        AigRef(node.0 << 1)
    }

    /// The node this edge points to.
    #[inline]
    pub fn node(self) -> AigNodeId {
        AigNodeId(self.0 >> 1)
    }

    /// `true` if the edge is complemented (inverts its node's function).
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// `true` for the constant edges.
    #[inline]
    pub fn is_const(self) -> bool {
        self.node() == AigNodeId::CONST
    }
}

impl Not for AigRef {
    type Output = AigRef;

    #[inline]
    fn not(self) -> AigRef {
        AigRef(self.0 ^ 1)
    }
}

impl fmt::Debug for AigRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AigRef::FALSE => write!(f, "0"),
            AigRef::TRUE => write!(f, "1"),
            r => write!(
                f,
                "{}{}",
                if r.is_complemented() { "!" } else { "" },
                r.node().index()
            ),
        }
    }
}

/// A node in the arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum AigNode {
    /// The constant-false node (always at index 0).
    Const,
    /// The `i`-th leaf (primary input or latch output — the distinction
    /// lives in [`crate::Circuit`]).
    Leaf(u32),
    /// Two-input AND of the edges.
    And(AigRef, AigRef),
}

/// A structurally hashed And-Inverter Graph.
///
/// Construction performs constant folding and trivial simplifications
/// (`a∧a = a`, `a∧¬a = 0`), and identical AND gates are shared. Complemented
/// edges make inversion free.
///
/// # Examples
///
/// ```
/// use presat_circuit::{Aig, AigRef};
/// let mut g = Aig::new();
/// let a = g.add_leaf();
/// let b = g.add_leaf();
/// let ab = g.and(a, b);
/// assert_eq!(g.and(a, b), ab);      // structural hashing
/// assert_eq!(g.and(a, !a), AigRef::FALSE);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<AigNode>,
    strash: HashMap<(AigRef, AigRef), AigNodeId>,
    num_leaves: usize,
}

impl Aig {
    /// Creates an AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![AigNode::Const],
            strash: HashMap::new(),
            num_leaves: 0,
        }
    }

    /// Number of nodes in the arena (constant + leaves + AND gates).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND gates.
    pub fn and_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNode::And(..)))
            .count()
    }

    /// Number of leaves created so far.
    pub fn leaf_count(&self) -> usize {
        self.num_leaves
    }

    /// Creates a fresh leaf and returns its (regular) edge.
    pub fn add_leaf(&mut self) -> AigRef {
        let id = AigNodeId(u32::try_from(self.nodes.len()).expect("AIG arena overflow"));
        self.nodes.push(AigNode::Leaf(self.num_leaves as u32));
        self.num_leaves += 1;
        AigRef::regular(id)
    }

    /// The regular edge of the `i`-th leaf.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `i + 1` leaves exist.
    pub fn leaf(&self, i: usize) -> AigRef {
        assert!(i < self.num_leaves, "leaf {i} not created yet");
        // Leaves are allocated in order but may interleave with ANDs; scan.
        // To keep this O(1) we exploit that leaves are usually created
        // first; fall back to a scan otherwise.
        for (idx, n) in self.nodes.iter().enumerate() {
            if let AigNode::Leaf(k) = n {
                if *k as usize == i {
                    return AigRef::regular(AigNodeId(idx as u32));
                }
            }
        }
        unreachable!("leaf bookkeeping out of sync")
    }

    /// The leaf ordinal of `node`, if it is a leaf.
    pub fn leaf_index(&self, node: AigNodeId) -> Option<usize> {
        match self.nodes[node.index()] {
            AigNode::Leaf(k) => Some(k as usize),
            _ => None,
        }
    }

    /// The AND-gate fanins of `node`, if it is an AND.
    pub fn and_fanins(&self, node: AigNodeId) -> Option<(AigRef, AigRef)> {
        match self.nodes[node.index()] {
            AigNode::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// `true` if `node` is the constant node.
    pub fn is_const_node(&self, node: AigNodeId) -> bool {
        matches!(self.nodes[node.index()], AigNode::Const)
    }

    /// AND of two edges, with folding and structural hashing.
    pub fn and(&mut self, a: AigRef, b: AigRef) -> AigRef {
        // Constant / trivial folding.
        if a == AigRef::FALSE || b == AigRef::FALSE || a == !b {
            return AigRef::FALSE;
        }
        if a == AigRef::TRUE {
            return b;
        }
        if b == AigRef::TRUE || a == b {
            return a;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&key) {
            return AigRef::regular(id);
        }
        let id = AigNodeId(u32::try_from(self.nodes.len()).expect("AIG arena overflow"));
        self.nodes.push(AigNode::And(key.0, key.1));
        self.strash.insert(key, id);
        AigRef::regular(id)
    }

    /// Negation (free: flips the complement bit).
    pub fn not(&mut self, a: AigRef) -> AigRef {
        !a
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: AigRef, b: AigRef) -> AigRef {
        let n = self.and(!a, !b);
        !n
    }

    /// XOR as two ANDs.
    pub fn xor(&mut self, a: AigRef, b: AigRef) -> AigRef {
        let l = self.and(a, !b);
        let r = self.and(!a, b);
        self.or(l, r)
    }

    /// XNOR (equivalence).
    pub fn xnor(&mut self, a: AigRef, b: AigRef) -> AigRef {
        let x = self.xor(a, b);
        !x
    }

    /// Multiplexer: `sel ? t : e`.
    pub fn mux(&mut self, sel: AigRef, t: AigRef, e: AigRef) -> AigRef {
        let a = self.and(sel, t);
        let b = self.and(!sel, e);
        self.or(a, b)
    }

    /// N-ary AND (balanced reduction).
    pub fn and_many(&mut self, refs: &[AigRef]) -> AigRef {
        match refs {
            [] => AigRef::TRUE,
            [r] => *r,
            _ => {
                let (l, r) = refs.split_at(refs.len() / 2);
                let lv = self.and_many(l);
                let rv = self.and_many(r);
                self.and(lv, rv)
            }
        }
    }

    /// N-ary OR (balanced reduction).
    pub fn or_many(&mut self, refs: &[AigRef]) -> AigRef {
        match refs {
            [] => AigRef::FALSE,
            [r] => *r,
            _ => {
                let (l, r) = refs.split_at(refs.len() / 2);
                let lv = self.or_many(l);
                let rv = self.or_many(r);
                self.or(lv, rv)
            }
        }
    }

    /// N-ary XOR (parity, balanced reduction).
    pub fn xor_many(&mut self, refs: &[AigRef]) -> AigRef {
        match refs {
            [] => AigRef::FALSE,
            [r] => *r,
            _ => {
                let (l, r) = refs.split_at(refs.len() / 2);
                let lv = self.xor_many(l);
                let rv = self.xor_many(r);
                self.xor(lv, rv)
            }
        }
    }

    /// Evaluates the function of `root` given one `u64` word per leaf
    /// (64 parallel patterns).
    pub fn eval64(&self, root: AigRef, leaf_words: &[u64]) -> u64 {
        let mut values = vec![0u64; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            values[i] = match *n {
                AigNode::Const => 0,
                AigNode::Leaf(k) => leaf_words[k as usize],
                AigNode::And(a, b) => {
                    let av = values[a.node().index()] ^ if a.is_complemented() { !0 } else { 0 };
                    let bv = values[b.node().index()] ^ if b.is_complemented() { !0 } else { 0 };
                    av & bv
                }
            };
        }
        let v = values[root.node().index()];
        if root.is_complemented() {
            !v
        } else {
            v
        }
    }

    /// Evaluates many roots in one pass over the arena.
    pub fn eval64_many(&self, roots: &[AigRef], leaf_words: &[u64]) -> Vec<u64> {
        let mut values = vec![0u64; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            values[i] = match *n {
                AigNode::Const => 0,
                AigNode::Leaf(k) => leaf_words[k as usize],
                AigNode::And(a, b) => {
                    let av = values[a.node().index()] ^ if a.is_complemented() { !0 } else { 0 };
                    let bv = values[b.node().index()] ^ if b.is_complemented() { !0 } else { 0 };
                    av & bv
                }
            };
        }
        roots
            .iter()
            .map(|r| {
                let v = values[r.node().index()];
                if r.is_complemented() {
                    !v
                } else {
                    v
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_edges() {
        assert_eq!(!AigRef::FALSE, AigRef::TRUE);
        assert!(AigRef::FALSE.is_const());
        assert!(AigRef::TRUE.is_const());
    }

    #[test]
    fn folding_rules() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        assert_eq!(g.and(a, AigRef::FALSE), AigRef::FALSE);
        assert_eq!(g.and(a, AigRef::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), AigRef::FALSE);
    }

    #[test]
    fn structural_hashing_shares() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        let b = g.add_leaf();
        let x = g.and(a, b);
        let y = g.and(b, a); // commuted
        assert_eq!(x, y);
        assert_eq!(g.and_count(), 1);
    }

    #[test]
    fn xor_semantics() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        let b = g.add_leaf();
        let x = g.xor(a, b);
        // leaf words: a = 0b0101..., b = 0b0011 pattern over 4 cases
        let av = 0b0101u64;
        let bv = 0b0011u64;
        assert_eq!(g.eval64(x, &[av, bv]) & 0xF, 0b0110);
    }

    #[test]
    fn mux_semantics() {
        let mut g = Aig::new();
        let s = g.add_leaf();
        let t = g.add_leaf();
        let e = g.add_leaf();
        let m = g.mux(s, t, e);
        // s=0101, t=0011, e=1100 → m = s?t:e = 0b...: for each bit:
        // s=1→t, s=0→e: bits: (s0=1,t0=1→1),(s1=0,e1=0→0),(s2=1,t2=0→0),(s3=0,e3=1→1)
        assert_eq!(g.eval64(m, &[0b0101, 0b0011, 0b1100]) & 0xF, 0b1001);
    }

    #[test]
    fn nary_reductions() {
        let mut g = Aig::new();
        let leaves: Vec<AigRef> = (0..5).map(|_| g.add_leaf()).collect();
        let all = g.and_many(&leaves);
        let any = g.or_many(&leaves);
        let parity = g.xor_many(&leaves);
        let words: Vec<u64> = vec![0b11111, 0b11110, 0b11010, 0b00001, 0b10101];
        // Evaluate on bit 0: leaves = 1,0,0,1,1 → and=0, or=1, parity=1^0^0^1^1=1
        let a = g.eval64(all, &words);
        let o = g.eval64(any, &words);
        let p = g.eval64(parity, &words);
        assert_eq!(a & 1, 0);
        assert_eq!(o & 1, 1);
        assert_eq!(p & 1, 1);
        // Empty reductions.
        assert_eq!(g.and_many(&[]), AigRef::TRUE);
        assert_eq!(g.or_many(&[]), AigRef::FALSE);
        assert_eq!(g.xor_many(&[]), AigRef::FALSE);
    }

    #[test]
    fn eval_complemented_root() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        assert_eq!(g.eval64(!a, &[0b01]) & 0b11, 0b10);
    }

    #[test]
    fn leaf_lookup() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        let b = g.add_leaf();
        let _ = g.and(a, b);
        let c = g.add_leaf(); // leaf created after an AND
        assert_eq!(g.leaf(0), a);
        assert_eq!(g.leaf(2), c);
        assert_eq!(g.leaf_index(c.node()), Some(2));
        assert_eq!(g.leaf_index(AigNodeId::CONST), None);
    }

    #[test]
    fn eval_many_matches_single() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        let b = g.add_leaf();
        let x = g.xor(a, b);
        let y = g.and(a, b);
        let words = [0xDEAD_BEEF_u64, 0x1234_5678];
        let many = g.eval64_many(&[x, y], &words);
        assert_eq!(many[0], g.eval64(x, &words));
        assert_eq!(many[1], g.eval64(y, &words));
    }
}
