//! ASCII AIGER (`.aag`) reading and writing.
//!
//! AIGER is the interchange format of the hardware model-checking
//! community (HWMCC); supporting it makes the preimage engines usable on
//! standard benchmark files. Only the ASCII variant is implemented —
//! binary `.aig` files can be converted with the reference `aigtoaig`
//! tool.
//!
//! # Examples
//!
//! ```
//! // A 1-latch toggle: l' = ¬l, output = l.
//! let text = "aag 1 0 1 1 0\n2 3\n2\n";
//! let c = presat_circuit::aiger::parse(text)?;
//! assert_eq!(c.num_latches(), 1);
//! assert_eq!(c.num_outputs(), 1);
//! # Ok::<(), presat_circuit::aiger::ParseAigerError>(())
//! ```

use std::fmt;

use crate::aig::AigRef;
use crate::Circuit;

/// Error produced while parsing AIGER text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseAigerError {
    /// The `aag M I L O A` header is missing or malformed.
    BadHeader,
    /// A literal token was not a number.
    BadLiteral {
        /// 1-based line number.
        line: usize,
    },
    /// Fewer definition lines than the header declares.
    Truncated,
    /// An input/latch/AND definition uses an unexpected literal.
    BadDefinition {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: &'static str,
    },
    /// A referenced variable has no definition.
    UndefinedVariable {
        /// The AIGER variable index.
        var: usize,
    },
    /// The maximum-variable header field is inconsistent with I+L+A.
    InconsistentCounts,
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAigerError::BadHeader => write!(f, "missing or malformed aag header"),
            ParseAigerError::BadLiteral { line } => write!(f, "invalid literal at line {line}"),
            ParseAigerError::Truncated => write!(f, "unexpected end of file"),
            ParseAigerError::BadDefinition { line, reason } => {
                write!(f, "bad definition at line {line}: {reason}")
            }
            ParseAigerError::UndefinedVariable { var } => {
                write!(f, "variable {var} referenced but never defined")
            }
            ParseAigerError::InconsistentCounts => {
                write!(f, "header max-variable count inconsistent with sections")
            }
        }
    }
}

impl std::error::Error for ParseAigerError {}

/// Parses ASCII AIGER text into a [`Circuit`].
///
/// Latch reset values (optional third field per AIGER 1.9) are honoured:
/// `0`/`1` become concrete resets, the latch's own literal means
/// "uninitialized" and maps to `None`.
///
/// # Errors
///
/// Returns a [`ParseAigerError`] describing the first problem found.
pub fn parse(text: &str) -> Result<Circuit, ParseAigerError> {
    let mut lines = text.lines().enumerate();

    let (_, header) = lines.next().ok_or(ParseAigerError::BadHeader)?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aag" {
        return Err(ParseAigerError::BadHeader);
    }
    let nums: Vec<usize> = fields[1..]
        .iter()
        .map(|t| t.parse().map_err(|_| ParseAigerError::BadHeader))
        .collect::<Result<_, _>>()?;
    let (max_var, num_in, num_latch, num_out, num_and) =
        (nums[0], nums[1], nums[2], nums[3], nums[4]);
    if max_var < num_in + num_latch + num_and {
        return Err(ParseAigerError::InconsistentCounts);
    }

    let mut next_line = |expect: &'static str| -> Result<(usize, Vec<u64>), ParseAigerError> {
        let (idx, line) = lines.next().ok_or(ParseAigerError::Truncated)?;
        let lits: Vec<u64> = line
            .split_whitespace()
            .map(|t| t.parse().map_err(|_| ParseAigerError::BadLiteral { line: idx + 1 }))
            .collect::<Result<_, _>>()?;
        if lits.is_empty() {
            return Err(ParseAigerError::BadDefinition {
                line: idx + 1,
                reason: expect,
            });
        }
        Ok((idx + 1, lits))
    };

    // Collect the raw sections first.
    let mut input_lits = Vec::with_capacity(num_in);
    for _ in 0..num_in {
        let (line, lits) = next_line("input literal expected")?;
        if lits.len() != 1 || lits[0] % 2 != 0 || lits[0] == 0 {
            return Err(ParseAigerError::BadDefinition {
                line,
                reason: "input must be a single positive non-constant literal",
            });
        }
        input_lits.push(lits[0]);
    }
    let mut latch_defs = Vec::with_capacity(num_latch);
    for _ in 0..num_latch {
        let (line, lits) = next_line("latch definition expected")?;
        if lits.len() < 2 || lits.len() > 3 || lits[0] % 2 != 0 || lits[0] == 0 {
            return Err(ParseAigerError::BadDefinition {
                line,
                reason: "latch must be `lit next [init]` with a positive lhs",
            });
        }
        latch_defs.push((lits[0], lits[1], lits.get(2).copied()));
    }
    let mut output_lits = Vec::with_capacity(num_out);
    for _ in 0..num_out {
        let (line, lits) = next_line("output literal expected")?;
        if lits.len() != 1 {
            return Err(ParseAigerError::BadDefinition {
                line,
                reason: "output must be a single literal",
            });
        }
        output_lits.push(lits[0]);
    }
    let mut and_defs = Vec::with_capacity(num_and);
    for _ in 0..num_and {
        let (line, lits) = next_line("and definition expected")?;
        if lits.len() != 3 || lits[0] % 2 != 0 || lits[0] == 0 {
            return Err(ParseAigerError::BadDefinition {
                line,
                reason: "and must be `lhs rhs0 rhs1` with a positive lhs",
            });
        }
        and_defs.push((lits[0], lits[1], lits[2]));
    }

    // Build the circuit. AIGER variable index → our AigRef.
    let check_var = |lit: u64| -> Result<usize, ParseAigerError> {
        let var = (lit / 2) as usize;
        if var > max_var {
            return Err(ParseAigerError::BadDefinition {
                line: 0,
                reason: "literal exceeds the header's maximum variable",
            });
        }
        Ok(var)
    };
    let mut circuit = Circuit::new(num_in, num_latch);
    let mut var_ref: Vec<Option<AigRef>> = vec![None; max_var + 1];
    for (i, &lit) in input_lits.iter().enumerate() {
        var_ref[check_var(lit)?] = Some(circuit.input_ref(i));
    }
    for (j, &(lit, _, _)) in latch_defs.iter().enumerate() {
        var_ref[check_var(lit)?] = Some(circuit.state_ref(j));
    }

    let resolve = |var_ref: &[Option<AigRef>], lit: u64| -> Result<AigRef, ParseAigerError> {
        if lit <= 1 {
            return Ok(if lit == 1 { AigRef::TRUE } else { AigRef::FALSE });
        }
        let var = (lit / 2) as usize;
        let r = var_ref
            .get(var)
            .copied()
            .flatten()
            .ok_or(ParseAigerError::UndefinedVariable { var })?;
        Ok(if lit % 2 == 1 { !r } else { r })
    };

    // AND definitions are required (by the format) to be in topological
    // order of the lhs, so a single pass suffices.
    for &(lhs, rhs0, rhs1) in &and_defs {
        let lhs_var = check_var(lhs)?;
        let a = resolve(&var_ref, rhs0)?;
        let b = resolve(&var_ref, rhs1)?;
        let g = circuit.aig_mut().and(a, b);
        var_ref[lhs_var] = Some(g);
    }

    for (j, &(lit, next, init)) in latch_defs.iter().enumerate() {
        let f = resolve(&var_ref, next)?;
        circuit.set_latch_next(j, f);
        circuit.set_latch_init(
            j,
            match init {
                None | Some(0) => Some(false),
                Some(1) => Some(true),
                Some(v) if v == lit => None, // uninitialized per AIGER 1.9
                Some(_) => {
                    return Err(ParseAigerError::BadDefinition {
                        line: 0,
                        reason: "latch init must be 0, 1, or the latch literal",
                    })
                }
            },
        );
    }
    for (k, &lit) in output_lits.iter().enumerate() {
        let f = resolve(&var_ref, lit)?;
        circuit.add_output(format!("o{k}"), f);
    }
    Ok(circuit)
}

/// Serializes a circuit as ASCII AIGER.
///
/// The emitted AND section enumerates the circuit's AIG arena in
/// topological order; folded-away constants use literals `0`/`1`.
pub fn write(circuit: &Circuit) -> String {
    use std::fmt::Write;
    let n_in = circuit.num_inputs();
    let n_l = circuit.num_latches();
    let aig = circuit.aig();

    // Assign AIGER variables: inputs 1..=I, latches I+1..=I+L, then ANDs.
    // Map our node indices to AIGER variable numbers.
    let mut var_of_node: Vec<u64> = vec![0; aig.node_count()];
    for i in 0..n_in {
        var_of_node[circuit.input_ref(i).node().index()] = (i + 1) as u64;
    }
    for j in 0..n_l {
        var_of_node[circuit.state_ref(j).node().index()] = (n_in + j + 1) as u64;
    }
    let mut and_rows: Vec<(u64, u64, u64)> = Vec::new();
    let mut next_var = (n_in + n_l) as u64 + 1;
    let lit_of = |var_of_node: &[u64], r: AigRef| -> u64 {
        if r == AigRef::FALSE {
            return 0;
        }
        if r == AigRef::TRUE {
            return 1;
        }
        var_of_node[r.node().index()] * 2 + u64::from(r.is_complemented())
    };
    for idx in 0..aig.node_count() {
        let node = crate::aig::AigNodeId::from_raw_index(idx);
        if let Some((a, b)) = aig.and_fanins(node) {
            var_of_node[idx] = next_var;
            next_var += 1;
            and_rows.push((
                var_of_node[idx] * 2,
                lit_of(&var_of_node, a),
                lit_of(&var_of_node, b),
            ));
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "aag {} {} {} {} {}",
        next_var - 1,
        n_in,
        n_l,
        circuit.num_outputs(),
        and_rows.len()
    );
    for i in 0..n_in {
        let _ = writeln!(out, "{}", (i + 1) * 2);
    }
    for j in 0..n_l {
        let latch_lit = ((n_in + j + 1) * 2) as u64;
        let next_lit = lit_of(&var_of_node, circuit.latch_next(j));
        match circuit.latch_init(j) {
            Some(false) => {
                let _ = writeln!(out, "{latch_lit} {next_lit}");
            }
            Some(true) => {
                let _ = writeln!(out, "{latch_lit} {next_lit} 1");
            }
            None => {
                let _ = writeln!(out, "{latch_lit} {next_lit} {latch_lit}");
            }
        }
    }
    for (_, f) in circuit.outputs() {
        let _ = writeln!(out, "{}", lit_of(&var_of_node, *f));
    }
    for (lhs, rhs0, rhs1) in and_rows {
        let _ = writeln!(out, "{lhs} {rhs0} {rhs1}");
    }
    let _ = writeln!(out, "c");
    let _ = writeln!(out, "{} (written by presat)", circuit.name());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, sim};

    #[test]
    fn parse_toggle() {
        let text = "aag 1 0 1 1 0\n2 3\n2\n";
        let c = parse(text).unwrap();
        assert_eq!(c.num_inputs(), 0);
        assert_eq!(c.num_latches(), 1);
        let trans = sim::enumerate_transitions(&c);
        assert!(trans.contains(&(0, 0, 1)));
        assert!(trans.contains(&(1, 0, 0)));
    }

    #[test]
    fn parse_and_gate() {
        // two inputs, one output = AND.
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let c = parse(text).unwrap();
        let (outs, _) = sim::step(&c, &[0b1101, 0b1011], &[]);
        assert_eq!(outs[0] & 0xF, 0b1001);
    }

    #[test]
    fn parse_constant_literals() {
        // output literal 1 = constant true; latch next = 0.
        let text = "aag 1 0 1 2 0\n2 0\n2\n1\n";
        let c = parse(text).unwrap();
        let trans = sim::enumerate_transitions(&c);
        for (_, _, next) in trans {
            assert_eq!(next, 0, "latch next is constant 0");
        }
    }

    #[test]
    fn parse_latch_init_variants() {
        let text = "aag 3 0 3 0 0\n2 2 0\n4 4 1\n6 6 6\n";
        let c = parse(text).unwrap();
        assert_eq!(c.latch_init(0), Some(false));
        assert_eq!(c.latch_init(1), Some(true));
        assert_eq!(c.latch_init(2), None);
    }

    #[test]
    fn error_on_bad_header() {
        assert!(matches!(parse(""), Err(ParseAigerError::BadHeader)));
        assert!(matches!(parse("aig 1 0 0 0 0\n"), Err(ParseAigerError::BadHeader)));
        assert!(matches!(parse("aag 1 0 0\n"), Err(ParseAigerError::BadHeader)));
    }

    #[test]
    fn error_on_truncated_file() {
        assert!(matches!(parse("aag 2 2 0 0 0\n2\n"), Err(ParseAigerError::Truncated)));
    }

    #[test]
    fn error_on_odd_input_literal() {
        assert!(matches!(
            parse("aag 1 1 0 0 0\n3\n"),
            Err(ParseAigerError::BadDefinition { .. })
        ));
    }

    #[test]
    fn error_on_undefined_variable() {
        assert!(matches!(
            parse("aag 5 1 0 1 0\n2\n10\n"),
            Err(ParseAigerError::UndefinedVariable { var: 5 })
        ));
    }

    #[test]
    fn error_on_literal_beyond_max_var() {
        // Header says max var 2, but the input literal names var 29.
        assert!(matches!(
            parse("aag 2 1 1 0 0\n58\n4 4\n"),
            Err(ParseAigerError::BadDefinition { .. })
        ));
        // AND lhs beyond max var.
        assert!(matches!(
            parse("aag 3 2 0 0 1\n2\n4\n58 2 4\n"),
            Err(ParseAigerError::BadDefinition { .. })
        ));
    }

    #[test]
    fn error_on_inconsistent_counts() {
        assert!(matches!(
            parse("aag 0 1 0 0 0\n2\n"),
            Err(ParseAigerError::InconsistentCounts)
        ));
    }

    #[test]
    fn write_parse_round_trip_generators() {
        for c in [
            generators::counter(4, true),
            generators::parity(3),
            generators::lfsr(5),
            generators::round_robin_arbiter(2),
        ] {
            let text = write(&c);
            let re = parse(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", c.name()));
            assert_eq!(re.num_inputs(), c.num_inputs());
            assert_eq!(re.num_latches(), c.num_latches());
            assert_eq!(
                sim::enumerate_transitions(&re),
                sim::enumerate_transitions(&c),
                "{} round trip diverges",
                c.name()
            );
        }
    }

    #[test]
    fn write_handles_constant_next_state() {
        let mut c = Circuit::new(0, 1);
        c.set_latch_next(0, AigRef::TRUE);
        let text = write(&c);
        let re = parse(&text).unwrap();
        for (_, _, next) in sim::enumerate_transitions(&re) {
            assert_eq!(next, 1);
        }
    }

    #[test]
    fn round_trip_preserves_init_values() {
        let mut c = generators::counter(2, false);
        c.set_latch_init(0, Some(true));
        c.set_latch_init(1, None);
        let re = parse(&write(&c)).unwrap();
        assert_eq!(re.latch_init(0), Some(true));
        assert_eq!(re.latch_init(1), None);
    }
}
