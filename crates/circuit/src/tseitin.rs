//! Tseitin encoding of AIG cones into CNF.

use presat_logic::{Cnf, Lit, Var};

use crate::aig::{Aig, AigNodeId, AigRef};

/// An incremental Tseitin encoder.
///
/// The caller chooses which CNF variable represents each AIG *leaf* (this is
/// how the preimage engine lays out present-state, input, and next-state
/// variable blocks); internal AND gates receive fresh variables on demand.
/// Only the cone of the requested roots is encoded — untouched logic costs
/// nothing.
///
/// # Examples
///
/// ```
/// use presat_circuit::{Aig, Tseitin};
/// use presat_logic::{Var, truth_table};
///
/// let mut g = Aig::new();
/// let a = g.add_leaf();
/// let b = g.add_leaf();
/// let f = g.xor(a, b);
///
/// let leaf_vars = vec![Var::new(0), Var::new(1)];
/// let mut enc = Tseitin::new(&g, leaf_vars);
/// let f_lit = enc.lit_of(f);
/// let mut cnf = enc.into_cnf();
/// cnf.add_unit(f_lit);                  // assert xor(a,b) = 1
/// assert_eq!(truth_table::count_models(&cnf), 2);
/// ```
#[derive(Debug)]
pub struct Tseitin<'a> {
    aig: &'a Aig,
    cnf: Cnf,
    node_lit: Vec<Option<Lit>>,
    const_lit: Option<Lit>,
}

impl<'a> Tseitin<'a> {
    /// Creates an encoder mapping leaf `i` of `aig` to `leaf_vars[i]`.
    /// The CNF variable space starts just past the largest leaf variable.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_vars` is shorter than the AIG's leaf count.
    pub fn new(aig: &'a Aig, leaf_vars: Vec<Var>) -> Self {
        assert!(
            leaf_vars.len() >= aig.leaf_count(),
            "need a CNF variable for every AIG leaf"
        );
        let num_vars = leaf_vars
            .iter()
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0);
        Self::with_base_cnf(aig, leaf_vars, Cnf::new(num_vars))
    }

    /// Like [`Tseitin::new`] but extends an existing CNF (whose variable
    /// space must already cover the leaf variables).
    pub fn with_base_cnf(aig: &'a Aig, leaf_vars: Vec<Var>, mut cnf: Cnf) -> Self {
        assert!(leaf_vars.len() >= aig.leaf_count());
        let need = leaf_vars.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        cnf.ensure_vars(need);
        let mut node_lit = vec![None; aig.node_count()];
        // Pre-seed the leaves.
        for (i, &lv) in leaf_vars.iter().enumerate().take(aig.leaf_count()) {
            let node = aig.leaf(i).node();
            node_lit[node.index()] = Some(Lit::pos(lv));
        }
        Tseitin {
            aig,
            cnf,
            node_lit,
            const_lit: None,
        }
    }

    /// The CNF literal equal to the function of `r`, encoding `r`'s cone
    /// into the CNF if not yet done.
    pub fn lit_of(&mut self, r: AigRef) -> Lit {
        let node_lit = self.encode_node(r.node());
        if r.is_complemented() {
            !node_lit
        } else {
            node_lit
        }
    }

    fn const_true_lit(&mut self) -> Lit {
        if let Some(l) = self.const_lit {
            return l;
        }
        let v = self.cnf.fresh_var();
        let l = Lit::pos(v);
        self.cnf.add_unit(l);
        self.const_lit = Some(l);
        l
    }

    /// Encodes `node` (iteratively, post-order) and returns its literal.
    fn encode_node(&mut self, node: AigNodeId) -> Lit {
        if let Some(l) = self.node_lit[node.index()] {
            return l;
        }
        if self.aig.is_const_node(node) {
            // Constant node function is FALSE (uncomplemented edge).
            let t = self.const_true_lit();
            let l = !t;
            self.node_lit[node.index()] = Some(l);
            return l;
        }
        // Iterative post-order over AND gates to bound stack depth.
        let mut stack: Vec<AigNodeId> = vec![node];
        while let Some(&top) = stack.last() {
            if self.node_lit[top.index()].is_some() {
                stack.pop();
                continue;
            }
            let (a, b) = self
                .aig
                .and_fanins(top)
                .expect("unencoded node that is neither leaf nor const must be an AND");
            // Constants can appear as fanins; encode them eagerly.
            for fanin in [a, b] {
                let n = fanin.node();
                if self.node_lit[n.index()].is_none() && self.aig.is_const_node(n) {
                    let t = self.const_true_lit();
                    self.node_lit[n.index()] = Some(!t);
                }
            }
            let la = self.node_lit[a.node().index()];
            let lb = self.node_lit[b.node().index()];
            match (la, lb) {
                (Some(la), Some(lb)) => {
                    stack.pop();
                    let la = if a.is_complemented() { !la } else { la };
                    let lb = if b.is_complemented() { !lb } else { lb };
                    let z = Lit::pos(self.cnf.fresh_var());
                    // z ↔ la ∧ lb
                    self.cnf.add_clause([!z, la]);
                    self.cnf.add_clause([!z, lb]);
                    self.cnf.add_clause([z, !la, !lb]);
                    self.node_lit[top.index()] = Some(z);
                }
                _ => {
                    if la.is_none() {
                        stack.push(a.node());
                    }
                    if lb.is_none() {
                        stack.push(b.node());
                    }
                }
            }
        }
        self.node_lit[node.index()].expect("just encoded")
    }

    /// The CNF built so far.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Consumes the encoder, returning the CNF.
    pub fn into_cnf(self) -> Cnf {
        self.cnf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::{truth_table, Assignment};

    /// Exhaustively checks that asserting `root = 1` in the encoding yields
    /// exactly the leaf assignments where the AIG evaluates to 1.
    fn check_encoding(aig: &Aig, root: AigRef) {
        let n = aig.leaf_count();
        let leaf_vars: Vec<Var> = Var::range(n).collect();
        let mut enc = Tseitin::new(aig, leaf_vars.clone());
        let rl = enc.lit_of(root);
        let mut cnf = enc.into_cnf();
        cnf.add_unit(rl);
        let projected = truth_table::project_models_set(&cnf, &leaf_vars);
        for bits in 0..(1u64 << n) {
            let a = Assignment::from_bits(bits, n);
            let words: Vec<u64> = (0..n).map(|i| (bits >> i) & 1).collect();
            let expect = aig.eval64(root, &words) & 1 == 1;
            assert_eq!(
                projected.contains_minterm(&a),
                expect,
                "divergence at bits {bits:b}"
            );
        }
    }

    #[test]
    fn encodes_single_and() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        let b = g.add_leaf();
        let f = g.and(a, b);
        check_encoding(&g, f);
    }

    #[test]
    fn encodes_complemented_root() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        let b = g.add_leaf();
        let f = g.and(a, b);
        check_encoding(&g, !f);
    }

    #[test]
    fn encodes_xor_tree() {
        let mut g = Aig::new();
        let leaves: Vec<AigRef> = (0..4).map(|_| g.add_leaf()).collect();
        let f = g.xor_many(&leaves);
        check_encoding(&g, f);
    }

    #[test]
    fn encodes_mux_nest() {
        let mut g = Aig::new();
        let s = g.add_leaf();
        let t = g.add_leaf();
        let e = g.add_leaf();
        let m1 = g.mux(s, t, e);
        let m2 = g.mux(t, m1, s);
        check_encoding(&g, m2);
    }

    #[test]
    fn constant_roots() {
        let mut g = Aig::new();
        let _ = g.add_leaf();
        let leaf_vars: Vec<Var> = Var::range(1).collect();
        let mut enc = Tseitin::new(&g, leaf_vars);
        let t = enc.lit_of(AigRef::TRUE);
        let f = enc.lit_of(AigRef::FALSE);
        assert_eq!(t, !f);
        let mut cnf = enc.into_cnf();
        cnf.add_unit(t);
        assert!(truth_table::is_satisfiable(&cnf));
        let mut cnf2 = cnf.clone();
        cnf2.add_unit(f);
        assert!(!truth_table::is_satisfiable(&cnf2));
    }

    #[test]
    fn shared_cone_encoded_once() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        let b = g.add_leaf();
        let ab = g.and(a, b);
        let f = g.or(ab, a);
        let h = g.xor(ab, b);
        let leaf_vars: Vec<Var> = Var::range(2).collect();
        let mut enc = Tseitin::new(&g, leaf_vars);
        let _ = enc.lit_of(f);
        let clauses_after_f = enc.cnf().num_clauses();
        let _ = enc.lit_of(f);
        assert_eq!(enc.cnf().num_clauses(), clauses_after_f, "no re-encoding");
        let _ = enc.lit_of(h);
        assert!(enc.cnf().num_clauses() > clauses_after_f);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        let b = g.add_leaf();
        let mut f = a;
        for _ in 0..200_000 {
            f = g.xor(f, b);
        }
        let leaf_vars: Vec<Var> = Var::range(2).collect();
        let mut enc = Tseitin::new(&g, leaf_vars);
        let _ = enc.lit_of(f); // must not smash the stack
    }

    #[test]
    fn custom_leaf_layout_respected() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        let b = g.add_leaf();
        let f = g.and(a, b);
        // Map leaves to non-contiguous variables 5 and 3.
        let mut enc = Tseitin::new(&g, vec![Var::new(5), Var::new(3)]);
        let la = enc.lit_of(a);
        let lb = enc.lit_of(b);
        assert_eq!(la, Lit::pos(Var::new(5)));
        assert_eq!(lb, Lit::pos(Var::new(3)));
        let rl = enc.lit_of(f);
        let mut cnf = enc.into_cnf();
        cnf.add_unit(rl);
        // Fresh internal var must be ≥ 6.
        assert!(cnf.num_vars() >= 7);
        assert!(truth_table::is_satisfiable(&cnf));
    }
}
