//! Parametric benchmark-circuit generators.
//!
//! These families stand in for the original testbench netlists (see
//! `DESIGN.md`, *Substitutions*). Each spans a structural regime that
//! matters for the evaluation:
//!
//! * [`counter`] — long reachability chains with 1–2-cube preimages
//!   (backward-reachability workloads, figure F3);
//! * [`shift_register`] — trivially liftable preimages (many don't-care
//!   literals, ablation F4);
//! * [`lfsr`] — permutation-like transition functions (every state has
//!   exactly one predecessor state);
//! * [`parity`] — preimages with exponentially many minterm cubes but a
//!   linear-size solution graph: the blocking-clause killer (figures F1/F2);
//! * [`round_robin_arbiter`] — control logic with mixed cube structure;
//! * [`comparator`] — a transition function whose BDD blows up under the
//!   block variable order the BDD engine must use (table R4 crossover);
//! * [`random_dag`] — seeded random sequential logic for fuzzing.

use presat_logic::rng::SplitMix64;

use crate::aig::AigRef;
use crate::Circuit;

/// An `n`-bit binary up-counter. With `with_enable`, a primary input gates
/// counting (enable=0 holds the state).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn counter(n: usize, with_enable: bool) -> Circuit {
    assert!(n > 0, "counter width must be positive");
    let mut c = Circuit::new(usize::from(with_enable), n);
    c.set_name(format!("cnt{n}{}", if with_enable { "e" } else { "" }));
    let mut carry = if with_enable {
        c.input_ref(0)
    } else {
        AigRef::TRUE
    };
    for j in 0..n {
        let s = c.state_ref(j);
        let next = c.aig_mut().xor(s, carry);
        carry = c.aig_mut().and(carry, s);
        c.set_latch_next(j, next);
    }
    c.add_output("carry_out", carry);
    c
}

/// An `n`-bit serial-in shift register: `s0' = w`, `sj' = s(j-1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn shift_register(n: usize) -> Circuit {
    assert!(n > 0, "shift register width must be positive");
    let mut c = Circuit::new(1, n);
    c.set_name(format!("shift{n}"));
    let w = c.input_ref(0);
    c.set_latch_next(0, w);
    for j in 1..n {
        let prev = c.state_ref(j - 1);
        c.set_latch_next(j, prev);
    }
    let last = c.state_ref(n - 1);
    c.add_output("serial_out", last);
    c
}

/// An `n`-bit Fibonacci LFSR with taps at bit `n-1` and `n/2` (plus bit 0
/// for primitiveness on small sizes); the transition function is a bijection
/// on states, so every state has exactly one predecessor.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn lfsr(n: usize) -> Circuit {
    assert!(n >= 2, "lfsr needs at least 2 bits");
    let mut c = Circuit::new(0, n);
    c.set_name(format!("lfsr{n}"));
    let t1 = c.state_ref(n - 1);
    let t2 = c.state_ref(n / 2);
    let feedback = c.aig_mut().xor(t1, t2);
    c.set_latch_next(0, feedback);
    for j in 1..n {
        let prev = c.state_ref(j - 1);
        c.set_latch_next(j, prev);
    }
    let out = c.state_ref(n - 1);
    c.add_output("bit_out", out);
    c
}

/// `n` data latches loaded from `n` inputs plus one parity latch whose next
/// value is the parity of the *present* data state. The preimage of
/// `parity = 1` is the set of states with odd data parity: `2^(n-1)`
/// minterms, no wider prime cubes — the blocking-clause worst case with a
/// linear-size shared solution graph.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn parity(n: usize) -> Circuit {
    assert!(n > 0, "parity width must be positive");
    let mut c = Circuit::new(n, n + 1);
    c.set_name(format!("parity{n}"));
    for j in 0..n {
        let w = c.input_ref(j);
        c.set_latch_next(j, w);
    }
    let bits: Vec<AigRef> = (0..n).map(|j| c.state_ref(j)).collect();
    let p = c.aig_mut().xor_many(&bits);
    c.set_latch_next(n, p);
    let pl = c.state_ref(n);
    c.add_output("parity", pl);
    c
}

/// A round-robin arbiter over `n` requesters: a one-hot token ring rotates
/// every cycle, and requester `i`'s grant latch loads `req_i ∧ token_i`.
/// `2n` latches (token ring + grants), `n` request inputs.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn round_robin_arbiter(n: usize) -> Circuit {
    assert!(n >= 2, "arbiter needs at least 2 requesters");
    let mut c = Circuit::new(n, 2 * n);
    c.set_name(format!("arb{n}"));
    // Latches 0..n: token ring; latches n..2n: grants.
    for i in 0..n {
        let prev_token = c.state_ref((i + n - 1) % n);
        c.set_latch_next(i, prev_token);
    }
    for i in 0..n {
        let req = c.input_ref(i);
        let tok = c.state_ref(i);
        let grant = c.aig_mut().and(req, tok);
        c.set_latch_next(n + i, grant);
    }
    let grants: Vec<AigRef> = (0..n).map(|i| c.state_ref(n + i)).collect();
    let any = c.aig_mut().or_many(&grants);
    c.add_output("any_grant", any);
    c
}

/// A magnitude comparator: `n` state bits `A` reload from `n` inputs each
/// cycle, and a flag latch stores `A > B` where `B` is a second `n`-bit
/// input vector. Under the block variable order (all state, then all input)
/// that the BDD preimage engine uses, the comparator's transition relation
/// BDD grows exponentially with `n` — the classic SAT-vs-BDD crossover.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn comparator(n: usize) -> Circuit {
    let mut c = Circuit::new(2 * n, n + 1);
    c.set_name(format!("cmp{n}"));
    // Inputs 0..n: next A; inputs n..2n: B.
    for j in 0..n {
        let w = c.input_ref(j);
        c.set_latch_next(j, w);
    }
    // gt = A > B, MSB-first ripple: gt_k = a_k·¬b_k ∨ (a_k ↔ b_k)·gt_{k-1}
    let mut gt = AigRef::FALSE;
    for j in 0..n {
        // j from LSB to MSB; rebuild so MSB dominates.
        let a = c.state_ref(j);
        let b = c.input_ref(n + j);
        let nb = c.aig_mut().not(b);
        let a_gt_b = c.aig_mut().and(a, nb);
        let eq = c.aig_mut().xnor(a, b);
        let keep = c.aig_mut().and(eq, gt);
        gt = c.aig_mut().or(a_gt_b, keep);
    }
    c.set_latch_next(n, gt);
    let flag = c.state_ref(n);
    c.add_output("a_gt_b", flag);
    c
}

/// An `n`-bit Gray-code counter: exactly one state bit flips per cycle.
/// Built as binary-count-then-convert: `g = b ⊕ (b >> 1)` over an internal
/// binary counter would need extra latches, so instead the Gray counter is
/// implemented directly: bit 0 flips when the parity of the state is even;
/// bit `j > 0` flips when `s(j-1) = 1` and all lower bits are `0` and the
/// parity is odd (the standard direct Gray-increment rule, with the top
/// bit's guard relaxed to include the wrap case).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn gray_counter(n: usize) -> Circuit {
    assert!(n >= 2, "gray counter needs at least 2 bits");
    let mut c = Circuit::new(0, n);
    c.set_name(format!("gray{n}"));
    let bits: Vec<AigRef> = (0..n).map(|j| c.state_ref(j)).collect();
    let parity = c.aig_mut().xor_many(&bits);
    // flip0 = even parity
    let mut flips: Vec<AigRef> = vec![!parity];
    // flip_j (0 < j < n-1) = odd parity ∧ s(j-1) ∧ ¬s(j-2..0)
    for j in 1..n {
        let mut cond = parity;
        cond = c.aig_mut().and(cond, bits[j - 1]);
        for &bit in &bits[..j.saturating_sub(1)] {
            cond = c.aig_mut().and(cond, !bit);
        }
        if j == n - 1 {
            // The top bit also flips on wrap (odd parity and all of
            // s(n-3..0) zero with s(n-2)=0 but s(n-1)=1) — fold the wrap in
            // by also flipping when the lower n-1 bits are all zero.
            let mut wrap = parity;
            for &bit in &bits[..n - 1] {
                wrap = c.aig_mut().and(wrap, !bit);
            }
            cond = c.aig_mut().or(cond, wrap);
        }
        flips.push(cond);
    }
    for j in 0..n {
        let next = c.aig_mut().xor(bits[j], flips[j]);
        c.set_latch_next(j, next);
    }
    let top = bits[n - 1];
    c.add_output("msb", top);
    c
}

/// An `n`-stage Johnson (twisted-ring) counter: a shift ring whose feedback
/// is the complement of the last stage. Visits exactly `2n` of the `2^n`
/// states — a natural workload with a small reachable set.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn johnson_counter(n: usize) -> Circuit {
    assert!(n >= 2, "johnson counter needs at least 2 stages");
    let mut c = Circuit::new(0, n);
    c.set_name(format!("johnson{n}"));
    let last = c.state_ref(n - 1);
    c.set_latch_next(0, !last);
    for j in 1..n {
        let prev = c.state_ref(j - 1);
        c.set_latch_next(j, prev);
    }
    let out = c.state_ref(n - 1);
    c.add_output("ring_out", out);
    c
}

/// A two-intersection traffic-light controller: each light is a 2-bit
/// one-hot-ish phase (00=red, 01=green, 10=yellow), advancing on a `tick`
/// input, with an interlock that keeps the second light red unless the
/// first is red. 4 latches, 2 inputs (`tick`, `pedestrian` hold).
pub fn traffic_controller() -> Circuit {
    let mut c = Circuit::new(2, 4);
    c.set_name("traffic");
    let tick = c.input_ref(0);
    let ped = c.input_ref(1);
    // Light A: latches 0 (green), 1 (yellow); red = ¬green ∧ ¬yellow.
    // Light B: latches 2 (green), 3 (yellow).
    let a_g = c.state_ref(0);
    let a_y = c.state_ref(1);
    let b_g = c.state_ref(2);
    let b_y = c.state_ref(3);
    let advance = {
        let np = !ped;
        c.aig_mut().and(tick, np)
    };
    let a_red = {
        let ng = !a_g;
        let ny = !a_y;
        c.aig_mut().and(ng, ny)
    };
    let b_red = {
        let ng = !b_g;
        let ny = !b_y;
        c.aig_mut().and(ng, ny)
    };
    // A: red→green when B is red; green→yellow; yellow→red.
    let a_go = c.aig_mut().and(a_red, b_red);
    let a_g_next = {
        let start = c.aig_mut().and(advance, a_go);
        let hold = {
            let na = !advance;
            c.aig_mut().and(a_g, na)
        };
        c.aig_mut().or(start, hold)
    };
    let a_y_next = {
        let to_y = c.aig_mut().and(advance, a_g);
        let hold = {
            let na = !advance;
            c.aig_mut().and(a_y, na)
        };
        c.aig_mut().or(to_y, hold)
    };
    // B: red→green when A just turned red (A yellow now) ; green→yellow;
    // yellow→red.
    let b_go = c.aig_mut().and(a_y, b_red);
    let b_g_next = {
        let start = c.aig_mut().and(advance, b_go);
        let hold = {
            let na = !advance;
            c.aig_mut().and(b_g, na)
        };
        c.aig_mut().or(start, hold)
    };
    let b_y_next = {
        let to_y = c.aig_mut().and(advance, b_g);
        let hold = {
            let na = !advance;
            c.aig_mut().and(b_y, na)
        };
        c.aig_mut().or(to_y, hold)
    };
    c.set_latch_next(0, a_g_next);
    c.set_latch_next(1, a_y_next);
    c.set_latch_next(2, b_g_next);
    c.set_latch_next(3, b_y_next);
    let both_green = c.aig_mut().and(a_g, b_g);
    c.add_output("conflict", both_green);
    c
}

/// A FIFO occupancy controller for a queue of depth `2^k - 1`: a `k`-bit
/// counter tracking occupancy with `push`/`pop` inputs, saturating at the
/// bounds, plus `full`/`empty` flag latches. `k + 2` latches, 2 inputs.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn fifo_controller(k: usize) -> Circuit {
    assert!(k > 0, "fifo counter width must be positive");
    let mut c = Circuit::new(2, k + 2);
    c.set_name(format!("fifo{k}"));
    let push = c.input_ref(0);
    let pop = c.input_ref(1);
    let count: Vec<AigRef> = (0..k).map(|j| c.state_ref(j)).collect();

    let all_ones = c.aig_mut().and_many(&count);
    let none = {
        let inv: Vec<AigRef> = count.iter().map(|&b| !b).collect();
        c.aig_mut().and_many(&inv)
    };
    // inc when push ∧ ¬pop ∧ ¬full ; dec when pop ∧ ¬push ∧ ¬empty.
    let inc = {
        let np = !pop;
        let t = c.aig_mut().and(push, np);
        let nf = !all_ones;
        c.aig_mut().and(t, nf)
    };
    let dec = {
        let np = !push;
        let t = c.aig_mut().and(pop, np);
        let ne = !none;
        c.aig_mut().and(t, ne)
    };
    // count' = count + inc - dec  (inc and dec are mutually exclusive).
    // Adder: ripple with carry=inc, borrow=dec.
    let mut carry = inc;
    let mut borrow = dec;
    for (j, &b) in count.iter().enumerate().take(k) {
        let x1 = c.aig_mut().xor(b, carry);
        let next = c.aig_mut().xor(x1, borrow);
        let new_carry = c.aig_mut().and(carry, b);
        let nb = !b;
        let new_borrow = c.aig_mut().and(borrow, nb);
        c.set_latch_next(j, next);
        carry = new_carry;
        borrow = new_borrow;
    }
    // Flags are registered views of the *next* occupancy bounds: recompute
    // on the next value by re-deriving from the transition: next_full =
    // (count' == all ones). For simplicity, register current-cycle flags.
    c.set_latch_next(k, all_ones);
    c.set_latch_next(k + 1, none);
    let full = c.state_ref(k);
    let empty = c.state_ref(k + 1);
    c.add_output("full", full);
    c.add_output("empty", empty);
    c
}

/// A seeded random sequential circuit: `gates` random AND/XOR/MUX gates over
/// the leaves and earlier gates; each latch's next-state function and each
/// of two outputs is a random gate. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `num_latches == 0`.
pub fn random_dag(num_inputs: usize, num_latches: usize, gates: usize, seed: u64) -> Circuit {
    assert!(num_latches > 0, "need at least one latch");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut c = Circuit::new(num_inputs, num_latches);
    c.set_name(format!("rnd{num_inputs}x{num_latches}g{gates}s{seed}"));
    let mut pool: Vec<AigRef> = (0..num_inputs)
        .map(|i| c.input_ref(i))
        .chain((0..num_latches).map(|j| c.state_ref(j)))
        .collect();
    for _ in 0..gates {
        let pick = |rng: &mut SplitMix64, pool: &[AigRef]| {
            let r = pool[rng.gen_range(0..pool.len())];
            if rng.gen_bool(0.5) {
                !r
            } else {
                r
            }
        };
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        let g = match rng.gen_range(0..3) {
            0 => c.aig_mut().and(a, b),
            1 => c.aig_mut().xor(a, b),
            _ => {
                let s = pick(&mut rng, &pool);
                c.aig_mut().mux(s, a, b)
            }
        };
        pool.push(g);
    }
    for j in 0..num_latches {
        let f = pool[rng.gen_range(0..pool.len())];
        c.set_latch_next(j, f);
    }
    for k in 0..2 {
        let f = pool[rng.gen_range(0..pool.len())];
        c.add_output(format!("y{k}"), f);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    #[test]
    fn counter_increments_and_wraps() {
        let c = counter(5, false);
        c.validate().unwrap();
        for (s, _w, n) in sim::enumerate_transitions(&c) {
            assert_eq!(n, (s + 1) % 32);
        }
    }

    #[test]
    fn counter_with_enable_holds() {
        let c = counter(3, true);
        for (s, w, n) in sim::enumerate_transitions(&c) {
            if w & 1 == 1 {
                assert_eq!(n, (s + 1) % 8);
            } else {
                assert_eq!(n, s);
            }
        }
    }

    #[test]
    fn shift_register_shifts() {
        let c = shift_register(4);
        for (s, w, n) in sim::enumerate_transitions(&c) {
            let expect = ((s << 1) | (w & 1)) & 0xF;
            assert_eq!(n, expect);
        }
    }

    #[test]
    fn lfsr_is_a_bijection() {
        let c = lfsr(6);
        let mut preds = std::collections::HashMap::new();
        for (s, _w, n) in sim::enumerate_transitions(&c) {
            assert!(preds.insert(n, s).is_none(), "two predecessors for {n}");
        }
        assert_eq!(preds.len(), 64);
    }

    #[test]
    fn parity_latch_tracks_state_parity() {
        let c = parity(3);
        for (s, _w, n) in sim::enumerate_transitions(&c) {
            let data = s & 0b111;
            let expect_parity = (data.count_ones() % 2) as u64;
            assert_eq!((n >> 3) & 1, expect_parity);
        }
    }

    #[test]
    fn arbiter_rotates_token_and_grants() {
        let c = round_robin_arbiter(3);
        for (s, w, n) in sim::enumerate_transitions(&c) {
            let token = s & 0b111;
            let next_token = n & 0b111;
            // Rotation left by 1 within 3 bits.
            let expect = ((token << 1) | (token >> 2)) & 0b111;
            assert_eq!(next_token, expect);
            let grants = (n >> 3) & 0b111;
            assert_eq!(grants, w & token, "grant = req ∧ token");
        }
    }

    #[test]
    fn comparator_compares() {
        let c = comparator(3);
        for (s, w, n) in sim::enumerate_transitions(&c) {
            let a = s & 0b111;
            let next_a = w & 0b111;
            let b = (w >> 3) & 0b111;
            assert_eq!(n & 0b111, next_a, "A reloads from inputs");
            assert_eq!((n >> 3) & 1, u64::from(a > b), "flag = A > B");
        }
    }

    #[test]
    fn random_dag_is_deterministic_in_seed() {
        let a = random_dag(3, 4, 30, 7);
        let b = random_dag(3, 4, 30, 7);
        assert_eq!(
            sim::enumerate_transitions(&a),
            sim::enumerate_transitions(&b)
        );
        let c = random_dag(3, 4, 30, 8);
        // Overwhelmingly likely to differ.
        assert_ne!(
            sim::enumerate_transitions(&a),
            sim::enumerate_transitions(&c)
        );
    }

    #[test]
    fn gray_counter_cycles_through_all_states_one_bit_at_a_time() {
        for n in [3usize, 4, 5] {
            let c = gray_counter(n);
            let mut seen = std::collections::HashSet::new();
            let mut state = 0u64;
            for _ in 0..(1 << n) {
                assert!(seen.insert(state), "gray{n} revisited {state:b} early");
                let words: Vec<u64> = (0..n).map(|j| state >> j & 1).collect();
                let next = sim::next_state(&c, &[], &words);
                let next_bits: u64 =
                    next.iter().enumerate().map(|(j, w)| (w & 1) << j).sum();
                assert_eq!(
                    (state ^ next_bits).count_ones(),
                    1,
                    "gray{n}: {state:b} -> {next_bits:b} flips ≠ 1 bit"
                );
                state = next_bits;
            }
            assert_eq!(state, 0, "gray{n} must return to the origin");
            assert_eq!(seen.len(), 1 << n);
        }
    }

    #[test]
    fn johnson_counter_has_2n_cycle() {
        let n = 5;
        let c = johnson_counter(n);
        let mut state = 0u64;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2 * n {
            assert!(seen.insert(state));
            let words: Vec<u64> = (0..n).map(|j| state >> j & 1).collect();
            let next = sim::next_state(&c, &[], &words);
            state = next.iter().enumerate().map(|(j, w)| (w & 1) << j).sum();
        }
        assert_eq!(state, 0, "johnson cycle length is exactly 2n");
        assert_eq!(seen.len(), 2 * n);
    }

    #[test]
    fn traffic_controller_interlock_holds_from_reset() {
        let c = traffic_controller();
        // From all-red reset, run the tick for a while and check the
        // "conflict" output (both green) never fires.
        let mut state = vec![0u64; 4];
        for step in 0..32 {
            let tick = 1u64; // always ticking, no pedestrian
            let (outs, next) = sim::step(&c, &[tick, 0], &state);
            assert_eq!(outs[0] & 1, 0, "conflict at step {step}");
            state = next;
        }
    }

    #[test]
    fn fifo_counter_saturates() {
        let k = 3;
        let c = fifo_controller(k);
        let step1 = |state: &mut Vec<u64>, push: u64, pop: u64| -> u64 {
            let next = sim::next_state(&c, &[push, pop], state);
            *state = next;
            (0..k).map(|j| (state[j] & 1) << j).sum()
        };
        let mut state = vec![0u64; k + 2];
        // Push past full: must saturate at 7.
        for _ in 0..10 {
            step1(&mut state, 1, 0);
        }
        assert_eq!((0..k).map(|j| (state[j] & 1) << j).sum::<u64>(), 7);
        // Pop past empty: must saturate at 0.
        for _ in 0..10 {
            step1(&mut state, 0, 1);
        }
        assert_eq!((0..k).map(|j| (state[j] & 1) << j).sum::<u64>(), 0);
        // Simultaneous push+pop holds the count.
        step1(&mut state, 1, 0);
        let before: u64 = (0..k).map(|j| (state[j] & 1) << j).sum();
        step1(&mut state, 1, 1);
        let after: u64 = (0..k).map(|j| (state[j] & 1) << j).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn all_generators_validate() {
        for c in [
            counter(8, true),
            shift_register(8),
            lfsr(8),
            parity(8),
            round_robin_arbiter(4),
            comparator(8),
            gray_counter(6),
            johnson_counter(6),
            traffic_controller(),
            fifo_controller(4),
            random_dag(4, 6, 50, 1),
        ] {
            c.validate().unwrap_or_else(|e| panic!("{}: {e}", c.name()));
        }
    }
}
