//! Cone-of-influence analysis: structural support of AIG functions.
//!
//! The success-driven all-SAT solver keys its solution cache on the values
//! of the *support* of the remaining suffix of branching variables; this
//! module computes those supports once per circuit.

use crate::aig::{Aig, AigRef};

/// The set of leaf ordinals (sorted) that `root`'s function structurally
/// depends on.
pub fn support(aig: &Aig, root: AigRef) -> Vec<usize> {
    support_many(aig, &[root])
}

/// The union of the supports of several roots (sorted, deduplicated).
pub fn support_many(aig: &Aig, roots: &[AigRef]) -> Vec<usize> {
    let mut visited = vec![false; aig.node_count()];
    let mut leaves = Vec::new();
    let mut stack: Vec<_> = roots.iter().map(|r| r.node()).collect();
    while let Some(node) = stack.pop() {
        if visited[node.index()] {
            continue;
        }
        visited[node.index()] = true;
        if let Some(k) = aig.leaf_index(node) {
            leaves.push(k);
        } else if let Some((a, b)) = aig.and_fanins(node) {
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    leaves.sort_unstable();
    leaves.dedup();
    leaves
}

/// Number of AND gates in the cone of `roots`.
pub fn cone_size(aig: &Aig, roots: &[AigRef]) -> usize {
    let mut visited = vec![false; aig.node_count()];
    let mut count = 0;
    let mut stack: Vec<_> = roots.iter().map(|r| r.node()).collect();
    while let Some(node) = stack.pop() {
        if visited[node.index()] {
            continue;
        }
        visited[node.index()] = true;
        if let Some((a, b)) = aig.and_fanins(node) {
            count += 1;
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_of_leaf_is_itself() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        let _b = g.add_leaf();
        assert_eq!(support(&g, a), vec![0]);
        assert_eq!(support(&g, !a), vec![0]);
    }

    #[test]
    fn support_of_constant_is_empty() {
        let g = Aig::new();
        assert!(support(&g, AigRef::TRUE).is_empty());
    }

    #[test]
    fn support_unions_fanins() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        let b = g.add_leaf();
        let c = g.add_leaf();
        let ab = g.and(a, b);
        let f = g.or(ab, c);
        assert_eq!(support(&g, f), vec![0, 1, 2]);
        // b folded away: and(a, TRUE) = a
        let trivial = g.and(a, AigRef::TRUE);
        assert_eq!(support(&g, trivial), vec![0]);
    }

    #[test]
    fn support_many_deduplicates() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        let b = g.add_leaf();
        let ab = g.and(a, b);
        let na = g.not(a);
        assert_eq!(support_many(&g, &[ab, na]), vec![0, 1]);
    }

    #[test]
    fn cone_size_counts_shared_gates_once() {
        let mut g = Aig::new();
        let a = g.add_leaf();
        let b = g.add_leaf();
        let ab = g.and(a, b);
        let f = g.xor(ab, a); // xor introduces 3 more ANDs
        let total = cone_size(&g, &[f, ab]);
        assert_eq!(total, g.and_count());
    }
}
