//! Gate-level netlist substrate for `presat`.
//!
//! A sequential circuit here is an And-Inverter Graph ([`Aig`]) whose leaves
//! are primary inputs and latch (present-state) outputs, plus next-state
//! functions and output functions ([`Circuit`]). The crate provides:
//!
//! * [`Aig`] — structurally hashed AIG construction with constant folding;
//! * [`Circuit`] — the sequential model (inputs, latches, outputs);
//! * [`mod@bench`] — an ISCAS89-style `.bench` parser and writer;
//! * [`Tseitin`] — CNF encoding of AIG cones onto a caller-chosen variable
//!   layout (the bridge to `presat-sat`);
//! * [`sim`] — 64-way parallel bit simulation;
//! * [`generators`] — the parametric benchmark family standing in for the
//!   original testbench netlists (see `DESIGN.md` for the substitution
//!   rationale);
//! * [`embedded`] — small public-domain ISCAS89 netlists shipped as text.
//!
//! # Examples
//!
//! Build a 1-bit toggle circuit and simulate two steps:
//!
//! ```
//! use presat_circuit::Circuit;
//!
//! let mut c = Circuit::new(0, 1);            // no inputs, one latch
//! let s = c.state_ref(0);
//! let toggled = c.aig_mut().not(s);
//! c.set_latch_next(0, toggled);
//! c.add_output("q", s);
//!
//! let mut state = vec![0u64];                 // all-zero initial state
//! let (out1, next1) = presat_circuit::sim::step(&c, &[], &state);
//! assert_eq!(out1[0] & 1, 0);
//! state = next1;
//! let (out2, _) = presat_circuit::sim::step(&c, &[], &state);
//! assert_eq!(out2[0] & 1, 1);                 // toggled
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aig;
pub mod aiger;
pub mod bench;
mod circuit;
pub mod cone;
pub mod embedded;
pub mod generators;
pub mod sim;
mod tseitin;

pub use aig::{Aig, AigNodeId, AigRef};
pub use circuit::Circuit;
pub use tseitin::Tseitin;
