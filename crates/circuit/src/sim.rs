//! 64-way parallel bit simulation of sequential circuits.
//!
//! Each leaf carries a 64-bit word; bit *k* of every word belongs to the
//! *k*-th simulated pattern, so one pass evaluates 64 input/state
//! combinations. This is the standard trick used by every logic simulator in
//! the field and is the backbone of the exhaustive oracle for small
//! circuits.

use crate::Circuit;

/// Simulates one clock cycle: given one word per primary input and one word
/// per latch, returns `(output_words, next_state_words)`.
///
/// # Panics
///
/// Panics if the slices do not match the circuit's input/latch counts or a
/// latch lacks a next-state function.
pub fn step(circuit: &Circuit, inputs: &[u64], state: &[u64]) -> (Vec<u64>, Vec<u64>) {
    assert_eq!(inputs.len(), circuit.num_inputs(), "input word count");
    assert_eq!(state.len(), circuit.num_latches(), "state word count");
    let mut leaves = Vec::with_capacity(inputs.len() + state.len());
    leaves.extend_from_slice(inputs);
    leaves.extend_from_slice(state);

    let out_fns: Vec<_> = circuit.outputs().iter().map(|(_, f)| *f).collect();
    let next_fns = circuit.next_state_fns();
    let outputs = circuit.aig().eval64_many(&out_fns, &leaves);
    let next = circuit.aig().eval64_many(&next_fns, &leaves);
    (outputs, next)
}

/// Evaluates only the next-state functions (no outputs).
pub fn next_state(circuit: &Circuit, inputs: &[u64], state: &[u64]) -> Vec<u64> {
    step(circuit, inputs, state).1
}

/// Exhaustively enumerates all `(state, input)` combinations of a small
/// circuit and returns, for each, the successor state, as
/// `(state_bits, input_bits, next_bits)` triples. Used by the preimage
/// oracle.
///
/// # Panics
///
/// Panics if `num_inputs + num_latches > 24` (oracle-scale guard).
pub fn enumerate_transitions(circuit: &Circuit) -> Vec<(u64, u64, u64)> {
    let ni = circuit.num_inputs();
    let nl = circuit.num_latches();
    assert!(ni + nl <= 24, "transition enumeration is oracle-scale only");
    let mut out = Vec::with_capacity(1 << (ni + nl));
    // Process 64 combinations per simulation pass.
    let total: u64 = 1 << (ni + nl);
    let mut base = 0u64;
    while base < total {
        let lanes = 64.min(total - base) as usize;
        // Build leaf words: bit k of word for leaf i = value of leaf i in
        // combination base + k.
        let mut input_words = vec![0u64; ni];
        let mut state_words = vec![0u64; nl];
        for k in 0..lanes {
            let combo = base + k as u64;
            for (i, w) in input_words.iter_mut().enumerate() {
                *w |= ((combo >> i) & 1) << k;
            }
            for (j, w) in state_words.iter_mut().enumerate() {
                *w |= ((combo >> (ni + j)) & 1) << k;
            }
        }
        let next = next_state(circuit, &input_words, &state_words);
        for k in 0..lanes {
            let combo = base + k as u64;
            let input_bits = combo & ((1u64 << ni) - 1);
            let state_bits = combo >> ni;
            let mut next_bits = 0u64;
            for (j, w) in next.iter().enumerate() {
                next_bits |= ((w >> k) & 1) << j;
            }
            out.push((state_bits, input_bits, next_bits));
        }
        base += lanes as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn toggle_circuit_toggles() {
        let mut c = Circuit::new(0, 1);
        let s = c.state_ref(0);
        let ns = c.aig_mut().not(s);
        c.set_latch_next(0, ns);
        let next = next_state(&c, &[], &[0b01]);
        assert_eq!(next[0] & 0b11, 0b10);
    }

    #[test]
    fn counter_counts() {
        let c = generators::counter(4, false);
        // state 5 → 6 in lane 0; state 15 → 0 wraps in lane 1.
        let state_words: Vec<u64> = (0..4)
            .map(|j| {
                let b0 = (5u64 >> j) & 1;
                let b1 = (15u64 >> j) & 1;
                b0 | (b1 << 1)
            })
            .collect();
        let next = next_state(&c, &[], &state_words);
        let decode = |lane: usize| -> u64 {
            (0..4).map(|j| ((next[j] >> lane) & 1) << j).sum()
        };
        assert_eq!(decode(0), 6);
        assert_eq!(decode(1), 0);
    }

    #[test]
    fn enumerate_transitions_toggle() {
        let mut c = Circuit::new(0, 1);
        let s = c.state_ref(0);
        let ns = c.aig_mut().not(s);
        c.set_latch_next(0, ns);
        let trans = enumerate_transitions(&c);
        assert_eq!(trans.len(), 2);
        assert!(trans.contains(&(0, 0, 1)));
        assert!(trans.contains(&(1, 0, 0)));
    }

    #[test]
    fn enumerate_transitions_with_inputs() {
        // 1 latch, 1 input: s' = s XOR w.
        let mut c = Circuit::new(1, 1);
        let w = c.input_ref(0);
        let s = c.state_ref(0);
        let n = c.aig_mut().xor(s, w);
        c.set_latch_next(0, n);
        let trans = enumerate_transitions(&c);
        assert_eq!(trans.len(), 4);
        for (s, w, n) in trans {
            assert_eq!(n, s ^ w);
        }
    }

    #[test]
    fn enumerate_transitions_crosses_word_boundary() {
        // 7 bits of combination space = 128 > 64 lanes: two passes.
        let c = generators::counter(7, false);
        let trans = enumerate_transitions(&c);
        assert_eq!(trans.len(), 128);
        for (s, _w, n) in trans {
            assert_eq!(n, (s + 1) % 128);
        }
    }
}
