use std::collections::BTreeSet;
use std::fmt;

use crate::{Assignment, Cube, Var};

/// A set of [`Cube`]s interpreted as their union: a disjunction of product
/// terms (sum-of-products / DNF), the standard explicit representation of a
/// state set.
///
/// Insertion maintains *absorption*: a cube subsumed by an existing cube is
/// not added, and adding a cube removes every cube it subsumes. The set is
/// therefore irredundant with respect to single-cube containment (though not
/// necessarily a minimum cover).
///
/// # Examples
///
/// ```
/// use presat_logic::{Cube, CubeSet, Lit, Var};
/// let mut s = CubeSet::new();
/// let a = Var::new(0);
/// let b = Var::new(1);
/// s.insert(Cube::from_lits([Lit::pos(a), Lit::pos(b)])?);
/// s.insert(Cube::unit(Lit::pos(a)));       // absorbs the first cube
/// assert_eq!(s.len(), 1);
/// assert_eq!(s.minterm_count(2), 2);       // {10, 11}
/// # Ok::<(), presat_logic::CubeFromLitsError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct CubeSet {
    cubes: Vec<Cube>,
}

impl CubeSet {
    /// The empty set (constant false).
    pub fn new() -> Self {
        CubeSet::default()
    }

    /// The universal set (a single empty cube: constant true).
    pub fn universe() -> Self {
        CubeSet {
            cubes: vec![Cube::top()],
        }
    }

    /// `true` if no cube is present (the set denotes ∅).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// `true` if the set contains the empty cube (and hence denotes the
    /// universe).
    pub fn is_universe(&self) -> bool {
        self.cubes.iter().any(Cube::is_empty)
    }

    /// Number of cubes (not minterms).
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// The cubes, in insertion-dependent order.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Iterates over the cubes.
    pub fn iter(&self) -> std::slice::Iter<'_, Cube> {
        self.cubes.iter()
    }

    /// Inserts a cube with absorption. Returns `true` if the set changed.
    pub fn insert(&mut self, cube: Cube) -> bool {
        if self.cubes.iter().any(|c| c.subsumes(&cube)) {
            return false;
        }
        self.cubes.retain(|c| !cube.subsumes(c));
        self.cubes.push(cube);
        true
    }

    /// Set union (with absorption).
    pub fn union(&self, other: &CubeSet) -> CubeSet {
        let mut out = self.clone();
        for c in &other.cubes {
            out.insert(c.clone());
        }
        out
    }

    /// Set intersection: pairwise cube conjunction, dropping conflicts.
    pub fn intersection(&self, other: &CubeSet) -> CubeSet {
        let mut out = CubeSet::new();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(c) = a.intersect(b) {
                    out.insert(c);
                }
            }
        }
        out
    }

    /// `true` if the (possibly partial) assignment satisfies some cube.
    pub fn contains_minterm(&self, a: &Assignment) -> bool {
        self.cubes.iter().any(|c| c.contains_minterm(a))
    }

    /// `true` if `cube` is entirely contained in this set's union.
    ///
    /// Decided by recursive Shannon splitting, so it is exact even when no
    /// single cube subsumes `cube`. Exponential in the worst case; intended
    /// for the moderate variable counts of test oracles.
    pub fn covers_cube(&self, cube: &Cube, vars: &[Var]) -> bool {
        // Quick wins first.
        if self.cubes.iter().any(|c| c.subsumes(cube)) {
            return true;
        }
        let relevant: Vec<&Cube> = self.cubes.iter().filter(|c| c.intersects(cube)).collect();
        if relevant.is_empty() {
            return false;
        }
        cover_rec(&relevant, cube, vars)
    }

    /// Exact number of minterms over the universe `num_vars` (variables
    /// `x0..x(num_vars-1)`) covered by the union of the cubes.
    ///
    /// Computed by recursive Shannon expansion with cofactoring — worst-case
    /// exponential in `num_vars` but with aggressive short-circuiting
    /// (absorbed branches, universe detection), which is ample for the state
    /// spaces exercised in this workspace (≤ ~30 variables).
    pub fn minterm_count(&self, num_vars: usize) -> u128 {
        let refs: Vec<&Cube> = self.cubes.iter().collect();
        count_rec(&refs, 0, num_vars)
    }

    /// All minterms as total cubes over `vars`, sorted; for test oracles.
    ///
    /// # Panics
    ///
    /// Panics if `vars` has more than 24 variables (oracle-scale guard).
    pub fn enumerate_minterms(&self, vars: &[Var]) -> BTreeSet<Cube> {
        assert!(vars.len() <= 24, "minterm enumeration is oracle-scale only");
        let mut out = BTreeSet::new();
        for c in &self.cubes {
            for m in c.expand_minterms(vars) {
                out.insert(m);
            }
        }
        out
    }

    /// `true` if both sets denote the same Boolean function over `vars`.
    pub fn semantically_eq(&self, other: &CubeSet, vars: &[Var]) -> bool {
        self.enumerate_minterms(vars) == other.enumerate_minterms(vars)
    }
}

/// Is `cube` covered by the union of `cover`? Recursive Shannon split on the
/// first universe variable on which some cover cube disagrees with `cube`.
fn cover_rec(cover: &[&Cube], cube: &Cube, vars: &[Var]) -> bool {
    if cover.iter().any(|c| c.subsumes(cube)) {
        return true;
    }
    // Find a splitting variable: one mentioned by some cover cube but not by
    // `cube`.
    let split = vars
        .iter()
        .copied()
        .find(|&v| !cube.mentions(v) && cover.iter().any(|c| c.mentions(v)));
    let Some(v) = split else {
        // No cover cube constrains anything beyond `cube`, and none subsumes
        // it — so not covered.
        return false;
    };
    for phase in [false, true] {
        let lit = crate::Lit::with_phase(v, phase);
        let sub = cube
            .intersect(&Cube::unit(lit))
            .expect("split variable is unmentioned in cube");
        let reduced: Vec<&Cube> = cover
            .iter()
            .copied()
            .filter(|c| c.intersects(&sub))
            .collect();
        if reduced.is_empty() || !cover_rec(&reduced, &sub, vars) {
            return false;
        }
    }
    true
}

/// Minterm count of the union of `cubes` over variables `next..num_vars`.
fn count_rec(cubes: &[&Cube], next: usize, num_vars: usize) -> u128 {
    if cubes.is_empty() {
        return 0;
    }
    if cubes.iter().any(|c| c.is_empty()) {
        // The ⊤ cube covers everything remaining... but careful: cubes may
        // still mention variables below `next` only if the caller already
        // cofactored them away. An empty cube means all remaining free.
        return 1u128 << (num_vars - next);
    }
    if next >= num_vars {
        // All variables decided; any surviving (non-conflicting) cube covers
        // this single point.
        return 1;
    }
    let v = Var::new(next);
    let mut total = 0u128;
    for phase in [false, true] {
        let lit = crate::Lit::with_phase(v, phase);
        let cof: Vec<Cube> = cubes.iter().filter_map(|c| c.cofactor(lit)).collect();
        let refs: Vec<&Cube> = cof.iter().collect();
        total += count_rec(&refs, next + 1, num_vars);
    }
    total
}

impl FromIterator<Cube> for CubeSet {
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        let mut s = CubeSet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl Extend<Cube> for CubeSet {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl<'a> IntoIterator for &'a CubeSet {
    type Item = &'a Cube;
    type IntoIter = std::slice::Iter<'a, Cube>;

    fn into_iter(self) -> Self::IntoIter {
        self.cubes.iter()
    }
}

impl IntoIterator for CubeSet {
    type Item = Cube;
    type IntoIter = std::vec::IntoIter<Cube>;

    fn into_iter(self) -> Self::IntoIter {
        self.cubes.into_iter()
    }
}

impl fmt::Debug for CubeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CubeSet{{")?;
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for CubeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "⊥");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lit;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_lits(lits.iter().map(|&(v, p)| Lit::with_phase(Var::new(v), p))).unwrap()
    }

    #[test]
    fn empty_set_is_false() {
        let s = CubeSet::new();
        assert!(s.is_empty());
        assert_eq!(s.minterm_count(5), 0);
    }

    #[test]
    fn universe_counts_all() {
        let s = CubeSet::universe();
        assert!(s.is_universe());
        assert_eq!(s.minterm_count(4), 16);
    }

    #[test]
    fn insert_absorbs_subsumed() {
        let mut s = CubeSet::new();
        assert!(s.insert(cube(&[(0, true), (1, true)])));
        assert!(s.insert(cube(&[(0, true)]))); // wider cube absorbs
        assert_eq!(s.len(), 1);
        // narrower cube is now a no-op
        assert!(!s.insert(cube(&[(0, true), (1, false)])));
    }

    #[test]
    fn minterm_count_handles_overlap() {
        let mut s = CubeSet::new();
        s.insert(cube(&[(0, true)])); // covers 10,11 over 2 vars → {01,11}? no: x0=1 → {1x}
        s.insert(cube(&[(1, true)])); // x1=1
        // union over 2 vars: x0 ∨ x1 → 3 minterms
        assert_eq!(s.minterm_count(2), 3);
    }

    #[test]
    fn minterm_count_matches_enumeration() {
        let vars: Vec<Var> = Var::range(4).collect();
        let mut s = CubeSet::new();
        s.insert(cube(&[(0, true), (2, false)]));
        s.insert(cube(&[(1, false)]));
        s.insert(cube(&[(3, true), (0, false)]));
        assert_eq!(s.minterm_count(4), s.enumerate_minterms(&vars).len() as u128);
    }

    #[test]
    fn intersection_distributes() {
        let mut a = CubeSet::new();
        a.insert(cube(&[(0, true)]));
        let mut b = CubeSet::new();
        b.insert(cube(&[(0, false)]));
        b.insert(cube(&[(1, true)]));
        let i = a.intersection(&b);
        // x0 ∧ (¬x0 ∨ x1) = x0 ∧ x1
        assert_eq!(i.minterm_count(2), 1);
    }

    #[test]
    fn covers_cube_multi_cube_cover() {
        let vars: Vec<Var> = Var::range(2).collect();
        let mut s = CubeSet::new();
        s.insert(cube(&[(0, true)]));
        s.insert(cube(&[(0, false)]));
        // neither cube alone subsumes ⊤, but together they cover it
        assert!(s.covers_cube(&Cube::top(), &vars));
        let mut t = CubeSet::new();
        t.insert(cube(&[(0, true)]));
        assert!(!t.covers_cube(&Cube::top(), &vars));
        assert!(t.covers_cube(&cube(&[(0, true), (1, false)]), &vars));
    }

    #[test]
    fn union_and_semantic_equality() {
        let vars: Vec<Var> = Var::range(3).collect();
        let mut a = CubeSet::new();
        a.insert(cube(&[(0, true)]));
        let mut b = CubeSet::new();
        b.insert(cube(&[(0, true), (1, true)]));
        b.insert(cube(&[(0, true), (1, false)]));
        assert!(a.semantically_eq(&b, &vars));
        let u = a.union(&b);
        assert!(u.semantically_eq(&a, &vars));
    }

    #[test]
    fn from_iterator_collects_with_absorption() {
        let s: CubeSet = vec![cube(&[(0, true), (1, true)]), cube(&[(0, true)])]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn contains_minterm_any_cube() {
        let mut s = CubeSet::new();
        s.insert(cube(&[(0, true)]));
        s.insert(cube(&[(1, true)]));
        assert!(s.contains_minterm(&Assignment::from_bits(0b10, 2)));
        assert!(!s.contains_minterm(&Assignment::from_bits(0b00, 2)));
    }
}
