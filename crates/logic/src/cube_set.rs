use std::collections::BTreeSet;
use std::fmt;

use crate::cube_index::{CubeIndex, CubeIndexStats};
use crate::{Assignment, Cube, Var};

/// A set of [`Cube`]s interpreted as their union: a disjunction of product
/// terms (sum-of-products / DNF), the standard explicit representation of a
/// state set.
///
/// Insertion maintains *absorption*: a cube subsumed by an existing cube is
/// not added, and adding a cube removes every cube it subsumes. The set is
/// therefore irredundant with respect to single-cube containment (though not
/// necessarily a minimum cover).
///
/// Inserts are served by an occurrence-indexed subsumption engine (see
/// `cube_index`) that touches only cubes sharing a literal with the incoming
/// one — amortized near-linear set construction instead of the naive O(n²) —
/// while producing exactly the cube sequence the naive two-scan insert
/// would: the order of [`CubeSet::cubes`] is part of the API contract and is
/// pinned against [`crate::NaiveCubeSet`] by the differential suite.
///
/// # Examples
///
/// ```
/// use presat_logic::{Cube, CubeSet, Lit, Var};
/// let mut s = CubeSet::new();
/// let a = Var::new(0);
/// let b = Var::new(1);
/// s.insert(Cube::from_lits([Lit::pos(a), Lit::pos(b)])?);
/// s.insert(Cube::unit(Lit::pos(a)));       // absorbs the first cube
/// assert_eq!(s.len(), 1);
/// assert_eq!(s.minterm_count(2), 2);       // {10, 11}
/// # Ok::<(), presat_logic::CubeFromLitsError>(())
/// ```
#[derive(Clone, Default)]
pub struct CubeSet {
    index: CubeIndex,
}

impl PartialEq for CubeSet {
    fn eq(&self, other: &CubeSet) -> bool {
        // The logical value is the cube sequence; the occurrence indexes
        // and work counters are bookkeeping and may differ between equal
        // sets with different insertion histories.
        self.cubes() == other.cubes()
    }
}

impl Eq for CubeSet {}

impl CubeSet {
    /// The empty set (constant false).
    pub fn new() -> Self {
        CubeSet::default()
    }

    /// The universal set (a single empty cube: constant true).
    pub fn universe() -> Self {
        let mut s = CubeSet::new();
        s.insert(Cube::top());
        s
    }

    /// `true` if no cube is present (the set denotes ∅).
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// `true` if the set contains the empty cube (and hence denotes the
    /// universe).
    pub fn is_universe(&self) -> bool {
        self.index.has_top()
    }

    /// Number of cubes (not minterms).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// The cubes, in insertion-dependent order.
    pub fn cubes(&self) -> &[Cube] {
        self.index.cubes()
    }

    /// Iterates over the cubes.
    pub fn iter(&self) -> std::slice::Iter<'_, Cube> {
        self.index.cubes().iter()
    }

    /// Inserts a cube with absorption. Returns `true` if the set changed.
    pub fn insert(&mut self, cube: Cube) -> bool {
        self.index.insert(cube)
    }

    /// Appends a cube the caller guarantees is subsumption-unrelated to
    /// every cube already stored — neither subsumes nor is subsumed by any
    /// of them. Under that precondition the result is identical to
    /// [`CubeSet::insert`], but both absorption scans are skipped, making
    /// bulk extraction of pairwise-disjoint collections (e.g. the path
    /// cubes of a solution graph) linear. The precondition is checked in
    /// debug builds.
    pub fn push_disjoint(&mut self, cube: Cube) {
        self.index.push_disjoint(cube);
    }

    /// Snapshot of the subsumption-index work counters accumulated by this
    /// set (checks attempted, signature rejects, candidates visited).
    pub fn index_stats(&self) -> CubeIndexStats {
        self.index.stats()
    }

    /// Set union (with absorption).
    pub fn union(&self, other: &CubeSet) -> CubeSet {
        let mut out = self.clone();
        for c in other.iter() {
            out.insert(c.clone());
        }
        out
    }

    /// Set intersection: pairwise cube conjunction, dropping conflicts.
    pub fn intersection(&self, other: &CubeSet) -> CubeSet {
        let mut out = CubeSet::new();
        for a in self.iter() {
            for b in other.iter() {
                if let Some(c) = a.intersect(b) {
                    out.insert(c);
                }
            }
        }
        out
    }

    /// `true` if the (possibly partial) assignment satisfies some cube.
    pub fn contains_minterm(&self, a: &Assignment) -> bool {
        self.iter().any(|c| c.contains_minterm(a))
    }

    /// `true` if `cube` is entirely contained in this set's union.
    ///
    /// Decided by recursive Shannon splitting, so it is exact even when no
    /// single cube subsumes `cube`. Exponential in the worst case; intended
    /// for the moderate variable counts of test oracles. For wide circuits
    /// use [`CubeSet::covers_cube_limited`], which bounds the work.
    pub fn covers_cube(&self, cube: &Cube, vars: &[Var]) -> bool {
        self.covers_cube_limited(cube, vars, u64::MAX)
            .expect("unlimited budget cannot be exhausted")
    }

    /// [`CubeSet::covers_cube`] under a work budget: at most `budget`
    /// recursion steps are spent, and `None` is returned if the question is
    /// still open when they run out — so oracle checks on wide circuits
    /// degrade to "unknown" instead of hanging a test run.
    pub fn covers_cube_limited(&self, cube: &Cube, vars: &[Var], budget: u64) -> Option<bool> {
        // Quick wins first.
        if self.index.contains_subsuming(cube) {
            return Some(true);
        }
        let relevant: Vec<&Cube> = self.iter().filter(|c| c.intersects(cube)).collect();
        if relevant.is_empty() {
            return Some(false);
        }
        // Only variables some relevant cube actually constrains beyond
        // `cube` can ever be split on; precompute them once instead of
        // rescanning the full universe at every recursion level.
        let split_vars: Vec<Var> = vars
            .iter()
            .copied()
            .filter(|&v| !cube.mentions(v) && relevant.iter().any(|c| c.mentions(v)))
            .collect();
        let mut budget = budget;
        cover_rec(&relevant, cube, &split_vars, &mut budget)
    }

    /// Exact number of minterms over the universe `num_vars` (variables
    /// `x0..x(num_vars-1)`) covered by the union of the cubes.
    ///
    /// Computed by recursive Shannon expansion with cofactoring — worst-case
    /// exponential in `num_vars` but with aggressive short-circuiting
    /// (absorbed branches, universe detection). Universes of up to 128
    /// variables run on precomputed per-cube phase bitmasks, so each
    /// cofactor step is a couple of word operations instead of a literal
    ///-list rebuild; wider universes fall back to the literal-list walk.
    pub fn minterm_count(&self, num_vars: usize) -> u128 {
        if num_vars < 128
            && self
                .iter()
                .all(|c| c.lits().last().is_none_or(|l| l.var().index() < num_vars))
        {
            // Per-var table: bit v of `pos`/`neg` says whether the cube
            // requires xv true/false. Cofactoring is then a filter + AND.
            let masks: Vec<(u128, u128)> = self
                .iter()
                .map(|c| {
                    let mut pos = 0u128;
                    let mut neg = 0u128;
                    for &l in c.lits() {
                        if l.is_pos() {
                            pos |= 1u128 << l.var().index();
                        } else {
                            neg |= 1u128 << l.var().index();
                        }
                    }
                    (pos, neg)
                })
                .collect();
            return count_masks(&masks, num_vars as u32);
        }
        let refs: Vec<&Cube> = self.iter().collect();
        count_rec(&refs, 0, num_vars)
    }

    /// All minterms as total cubes over `vars`, sorted; for test oracles.
    ///
    /// # Panics
    ///
    /// Panics if `vars` has more than 24 variables (oracle-scale guard).
    pub fn enumerate_minterms(&self, vars: &[Var]) -> BTreeSet<Cube> {
        assert!(vars.len() <= 24, "minterm enumeration is oracle-scale only");
        let mut out = BTreeSet::new();
        for c in self.iter() {
            for m in c.expand_minterms(vars) {
                out.insert(m);
            }
        }
        out
    }

    /// `true` if both sets denote the same Boolean function over `vars`.
    pub fn semantically_eq(&self, other: &CubeSet, vars: &[Var]) -> bool {
        self.enumerate_minterms(vars) == other.enumerate_minterms(vars)
    }
}

/// Is `cube` covered by the union of `cover`? Recursive Shannon split on the
/// first splittable variable (one mentioned by some cover cube but not by
/// `cube`). Each call consumes one unit of `budget`; returns `None` when it
/// runs out.
fn cover_rec(cover: &[&Cube], cube: &Cube, vars: &[Var], budget: &mut u64) -> Option<bool> {
    if *budget == 0 {
        return None;
    }
    *budget -= 1;
    if cover.iter().any(|c| c.subsumes(cube)) {
        return Some(true);
    }
    let split = vars
        .iter()
        .copied()
        .find(|&v| !cube.mentions(v) && cover.iter().any(|c| c.mentions(v)));
    let Some(v) = split else {
        // No cover cube constrains anything beyond `cube`, and none subsumes
        // it — so not covered.
        return Some(false);
    };
    for phase in [false, true] {
        let lit = crate::Lit::with_phase(v, phase);
        let sub = cube
            .intersect(&Cube::unit(lit))
            .expect("split variable is unmentioned in cube");
        let reduced: Vec<&Cube> = cover
            .iter()
            .copied()
            .filter(|c| c.intersects(&sub))
            .collect();
        if reduced.is_empty() {
            return Some(false);
        }
        match cover_rec(&reduced, &sub, vars, budget) {
            Some(true) => {}
            other => return other,
        }
    }
    Some(true)
}

/// Minterm count of the union of the mask-encoded `cubes` over a universe
/// with `free` undecided variables — the fast path of
/// [`CubeSet::minterm_count`]. Each cube is its per-var phase table, so a
/// cofactor step is a filter plus an AND instead of a literal-list rebuild.
/// Unlike the index-order fallback this branches on the variable the most
/// surviving cubes constrain and closes ⊤ and single-cube leaves
/// arithmetically — the pruning that keeps 40-cube/32-var oracle sets (a
/// pinned regression) countable in milliseconds.
fn count_masks(cubes: &[(u128, u128)], free: u32) -> u128 {
    if cubes.is_empty() {
        return 0;
    }
    if cubes.iter().any(|&(p, n)| p | n == 0) {
        // A ⊤ cofactor covers every remaining assignment.
        return 1u128 << free;
    }
    if let [(p, n)] = cubes {
        // A lone cube covers 2^(free - width) assignments outright.
        return 1u128 << (free - (p | n).count_ones());
    }
    // Split on the variable mentioned by the most cubes (first such index:
    // deterministic). Every branch then resolves or kills the maximum
    // number of cubes, driving the recursion toward the closed leaves.
    let mut occ = [0u32; 128];
    for &(p, n) in cubes {
        let mut m = p | n;
        while m != 0 {
            occ[m.trailing_zeros() as usize] += 1;
            m &= m - 1;
        }
    }
    let mut v = 0;
    for (i, &c) in occ.iter().enumerate() {
        if c > occ[v] {
            v = i;
        }
    }
    let bit = 1u128 << v;
    // Negative branch drops cubes requiring xv=1; positive branch drops
    // cubes requiring xv=0; the survivor masks just lose the decided bit.
    let lo: Vec<(u128, u128)> = cubes
        .iter()
        .filter(|&&(p, _)| p & bit == 0)
        .map(|&(p, n)| (p, n & !bit))
        .collect();
    let hi: Vec<(u128, u128)> = cubes
        .iter()
        .filter(|&&(_, n)| n & bit == 0)
        .map(|&(p, n)| (p & !bit, n))
        .collect();
    count_masks(&lo, free - 1) + count_masks(&hi, free - 1)
}

/// Minterm count of the union of `cubes` over variables `next..num_vars` —
/// the literal-list fallback for universes too wide for the mask fast path.
fn count_rec(cubes: &[&Cube], next: usize, num_vars: usize) -> u128 {
    if cubes.is_empty() {
        return 0;
    }
    if cubes.iter().any(|c| c.is_empty()) {
        // The ⊤ cube covers everything remaining... but careful: cubes may
        // still mention variables below `next` only if the caller already
        // cofactored them away. An empty cube means all remaining free.
        return 1u128 << (num_vars - next);
    }
    if next >= num_vars {
        // All variables decided; any surviving (non-conflicting) cube covers
        // this single point.
        return 1;
    }
    let v = Var::new(next);
    let mut total = 0u128;
    for phase in [false, true] {
        let lit = crate::Lit::with_phase(v, phase);
        let cof: Vec<Cube> = cubes.iter().filter_map(|c| c.cofactor(lit)).collect();
        let refs: Vec<&Cube> = cof.iter().collect();
        total += count_rec(&refs, next + 1, num_vars);
    }
    total
}

impl FromIterator<Cube> for CubeSet {
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        let mut s = CubeSet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl Extend<Cube> for CubeSet {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl<'a> IntoIterator for &'a CubeSet {
    type Item = &'a Cube;
    type IntoIter = std::slice::Iter<'a, Cube>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for CubeSet {
    type Item = Cube;
    type IntoIter = std::vec::IntoIter<Cube>;

    fn into_iter(self) -> Self::IntoIter {
        self.index.into_cubes().into_iter()
    }
}

impl fmt::Debug for CubeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CubeSet{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for CubeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "⊥");
        }
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::Lit;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_lits(lits.iter().map(|&(v, p)| Lit::with_phase(Var::new(v), p))).unwrap()
    }

    #[test]
    fn empty_set_is_false() {
        let s = CubeSet::new();
        assert!(s.is_empty());
        assert_eq!(s.minterm_count(5), 0);
    }

    #[test]
    fn universe_counts_all() {
        let s = CubeSet::universe();
        assert!(s.is_universe());
        assert_eq!(s.minterm_count(4), 16);
    }

    #[test]
    fn insert_absorbs_subsumed() {
        let mut s = CubeSet::new();
        assert!(s.insert(cube(&[(0, true), (1, true)])));
        assert!(s.insert(cube(&[(0, true)]))); // wider cube absorbs
        assert_eq!(s.len(), 1);
        // narrower cube is now a no-op
        assert!(!s.insert(cube(&[(0, true), (1, false)])));
    }

    #[test]
    fn minterm_count_handles_overlap() {
        let mut s = CubeSet::new();
        s.insert(cube(&[(0, true)])); // covers 10,11 over 2 vars → {01,11}? no: x0=1 → {1x}
        s.insert(cube(&[(1, true)])); // x1=1
        // union over 2 vars: x0 ∨ x1 → 3 minterms
        assert_eq!(s.minterm_count(2), 3);
    }

    #[test]
    fn minterm_count_matches_enumeration() {
        let vars: Vec<Var> = Var::range(4).collect();
        let mut s = CubeSet::new();
        s.insert(cube(&[(0, true), (2, false)]));
        s.insert(cube(&[(1, false)]));
        s.insert(cube(&[(3, true), (0, false)]));
        assert_eq!(s.minterm_count(4), s.enumerate_minterms(&vars).len() as u128);
    }

    #[test]
    fn minterm_count_mask_and_fallback_paths_agree() {
        // Random sets over 12 vars: the mask fast path must agree with the
        // brute-force enumeration oracle.
        let vars: Vec<Var> = Var::range(12).collect();
        let mut rng = SplitMix64::seed_from_u64(0xC0DE);
        for _ in 0..20 {
            let mut s = CubeSet::new();
            for _ in 0..10 {
                let width = rng.gen_range(1..5);
                let mut lits = Vec::new();
                for _ in 0..width {
                    lits.push(Lit::with_phase(
                        Var::new(rng.gen_range(0..12)),
                        rng.gen_bool(0.5),
                    ));
                }
                if let Ok(c) = Cube::from_lits(lits) {
                    s.insert(c);
                }
            }
            assert_eq!(
                s.minterm_count(12),
                s.enumerate_minterms(&vars).len() as u128
            );
        }
    }

    #[test]
    fn minterm_count_wide_set_finishes_fast() {
        // Regression guard for the satellite requirement: 40 cubes over a
        // 32-variable universe must count without re-walking literal lists
        // per level. Before the per-var mask table this blew up; now it is
        // a sub-second test-suite item.
        let mut rng = SplitMix64::seed_from_u64(0xFEED);
        let mut s = CubeSet::new();
        while s.len() < 40 {
            let width = rng.gen_range(4..9);
            let mut lits = Vec::new();
            for _ in 0..width {
                lits.push(Lit::with_phase(
                    Var::new(rng.gen_range(0..32)),
                    rng.gen_bool(0.5),
                ));
            }
            if let Ok(c) = Cube::from_lits(lits) {
                s.insert(c);
            }
        }
        let count = s.minterm_count(32);
        assert!(count > 0);
        assert!(count < 1u128 << 32);
    }

    #[test]
    fn intersection_distributes() {
        let mut a = CubeSet::new();
        a.insert(cube(&[(0, true)]));
        let mut b = CubeSet::new();
        b.insert(cube(&[(0, false)]));
        b.insert(cube(&[(1, true)]));
        let i = a.intersection(&b);
        // x0 ∧ (¬x0 ∨ x1) = x0 ∧ x1
        assert_eq!(i.minterm_count(2), 1);
    }

    #[test]
    fn covers_cube_multi_cube_cover() {
        let vars: Vec<Var> = Var::range(2).collect();
        let mut s = CubeSet::new();
        s.insert(cube(&[(0, true)]));
        s.insert(cube(&[(0, false)]));
        // neither cube alone subsumes ⊤, but together they cover it
        assert!(s.covers_cube(&Cube::top(), &vars));
        let mut t = CubeSet::new();
        t.insert(cube(&[(0, true)]));
        assert!(!t.covers_cube(&Cube::top(), &vars));
        assert!(t.covers_cube(&cube(&[(0, true), (1, false)]), &vars));
    }

    #[test]
    fn covers_cube_limited_exhausts_gracefully() {
        let vars: Vec<Var> = Var::range(10).collect();
        let mut s = CubeSet::new();
        // A full disjoint cover of the 10-var universe by minterm pairs on
        // x0..x8 forces deep splitting before the answer is known.
        for bits in 0..512u32 {
            let lits: Vec<Lit> = (0..9)
                .map(|i| Lit::with_phase(Var::new(i), bits >> i & 1 == 1))
                .collect();
            s.insert(Cube::from_lits(lits).unwrap());
        }
        // Unlimited: covered.
        assert_eq!(s.covers_cube_limited(&Cube::top(), &vars, u64::MAX), Some(true));
        // A starved budget must come back unknown, not hang or guess.
        assert_eq!(s.covers_cube_limited(&Cube::top(), &vars, 3), None);
        // And a trivially-false query is cheap regardless of budget.
        let empty = CubeSet::new();
        assert_eq!(empty.covers_cube_limited(&Cube::top(), &vars, 1), Some(false));
    }

    #[test]
    fn union_and_semantic_equality() {
        let vars: Vec<Var> = Var::range(3).collect();
        let mut a = CubeSet::new();
        a.insert(cube(&[(0, true)]));
        let mut b = CubeSet::new();
        b.insert(cube(&[(0, true), (1, true)]));
        b.insert(cube(&[(0, true), (1, false)]));
        assert!(a.semantically_eq(&b, &vars));
        let u = a.union(&b);
        assert!(u.semantically_eq(&a, &vars));
    }

    #[test]
    fn from_iterator_collects_with_absorption() {
        let s: CubeSet = vec![cube(&[(0, true), (1, true)]), cube(&[(0, true)])]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn contains_minterm_any_cube() {
        let mut s = CubeSet::new();
        s.insert(cube(&[(0, true)]));
        s.insert(cube(&[(1, true)]));
        assert!(s.contains_minterm(&Assignment::from_bits(0b10, 2)));
        assert!(!s.contains_minterm(&Assignment::from_bits(0b00, 2)));
    }

    #[test]
    fn equality_ignores_insertion_history() {
        let mut a = CubeSet::new();
        a.insert(cube(&[(0, true), (1, true)]));
        a.insert(cube(&[(0, true)]));
        let mut b = CubeSet::new();
        b.insert(cube(&[(0, true)]));
        assert_eq!(a, b);
        assert_ne!(a.index_stats(), b.index_stats());
    }

    #[test]
    fn push_disjoint_matches_insert_on_disjoint_streams() {
        let mut by_insert = CubeSet::new();
        let mut by_push = CubeSet::new();
        for bits in 0..16u32 {
            let lits: Vec<Lit> = (0..4)
                .map(|i| Lit::with_phase(Var::new(i), bits >> i & 1 == 1))
                .collect();
            let c = Cube::from_lits(lits).unwrap();
            by_insert.insert(c.clone());
            by_push.push_disjoint(c);
        }
        assert_eq!(by_insert.cubes(), by_push.cubes());
        assert_eq!(by_push.minterm_count(4), 16);
    }

    #[test]
    fn index_stats_absorb_is_additive() {
        let mut a = CubeSet::new();
        a.insert(cube(&[(0, true), (1, true)]));
        a.insert(cube(&[(0, true)]));
        let mut total = CubeIndexStats::default();
        total.absorb(&a.index_stats());
        total.absorb(&a.index_stats());
        assert_eq!(
            total.subsumption_checks,
            2 * a.index_stats().subsumption_checks
        );
    }
}
