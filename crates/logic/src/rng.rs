//! A tiny deterministic PRNG for tests, generators, and benchmarks.
//!
//! The workspace builds hermetically offline, so randomized tests use this
//! in-tree [SplitMix64](https://prng.di.unimi.it/splitmix64.c) instead of
//! an external `rand` crate. SplitMix64 passes BigCrush, needs one `u64`
//! of state, and is seedable from a single integer — exactly what seeded
//! property tests and the circuit generators need. The method names mirror
//! the small slice of the `rand` API the repo historically used
//! (`seed_from_u64`, `gen_range`, `gen_bool`, `shuffle`), keeping call
//! sites familiar.
//!
//! Not cryptographically secure; do not use for anything adversarial.
//!
//! # Examples
//!
//! ```
//! use presat_logic::rng::SplitMix64;
//!
//! let mut rng = SplitMix64::seed_from_u64(42);
//! let a = rng.gen_range(0..10);
//! assert!(a < 10);
//! let mut xs = [1, 2, 3, 4, 5];
//! rng.shuffle(&mut xs);
//! // Same seed, same stream:
//! assert_eq!(
//!     SplitMix64::seed_from_u64(7).next_u64(),
//!     SplitMix64::seed_from_u64(7).next_u64(),
//! );
//! ```

use std::ops::Range;

/// A SplitMix64 pseudo-random generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Distinct seeds give
    /// well-separated streams (the whole point of SplitMix64's design).
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[range.start, range.end)`.
    ///
    /// Uses Lemire-style multiply-shift rejection-free mapping; the bias is
    /// at most `range.len() / 2^64`, irrelevant for the small ranges used
    /// in tests and generators.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = (range.end - range.start) as u64;
        let mapped = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + mapped as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against a 53-bit uniform in [0, 1) — exact for p = 0.5,
        // the only probability the repo uses in anger.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Uniform `u64` below `bound` (`bound > 0`).
    pub fn gen_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_u64_below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen reference into a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.gen_range(0..xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Known first output of the reference implementation for seed 0.
        assert_eq!(SplitMix64::seed_from_u64(0).next_u64(), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn distinct_seeds_diverge() {
        assert_ne!(
            SplitMix64::seed_from_u64(1).next_u64(),
            SplitMix64::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.gen_range(2..9);
            assert!((2..9).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SplitMix64::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads={heads}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_and_below_bounds() {
        let mut rng = SplitMix64::seed_from_u64(6);
        let xs = [10, 20, 30];
        for _ in 0..20 {
            assert!(xs.contains(rng.choose(&xs)));
            assert!(rng.gen_u64_below(5) < 5);
        }
    }
}
