use std::fmt;

/// A Boolean variable, identified by a dense zero-based index.
///
/// Variables are plain indices; every container in the workspace (solvers,
/// BDD managers, netlists) allocates its own contiguous variable space and
/// uses `Var` to index into per-variable arrays.
///
/// # Examples
///
/// ```
/// use presat_logic::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "x3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Var(u32);

impl Var {
    /// Creates the variable with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (variable spaces larger than
    /// four billion are outside this workspace's design envelope).
    #[inline]
    pub fn new(index: usize) -> Self {
        Var(u32::try_from(index).expect("variable index exceeds u32 range"))
    }

    /// Returns the zero-based index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the variables `x0, x1, …, x(n-1)` as an iterator.
    ///
    /// ```
    /// use presat_logic::Var;
    /// let vars: Vec<Var> = Var::range(3).collect();
    /// assert_eq!(vars, vec![Var::new(0), Var::new(1), Var::new(2)]);
    /// ```
    pub fn range(n: usize) -> impl DoubleEndedIterator<Item = Var> + ExactSizeIterator {
        (0..n).map(Var::new)
    }
}

impl From<u32> for Var {
    #[inline]
    fn from(index: u32) -> Self {
        Var(index)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 17, 1 << 20] {
            assert_eq!(Var::new(i).index(), i);
        }
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Var::new(0) < Var::new(1));
        assert!(Var::new(41) < Var::new(42));
    }

    #[test]
    fn range_yields_dense_prefix() {
        let vs: Vec<_> = Var::range(4).collect();
        assert_eq!(vs.len(), 4);
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(v.index(), i);
        }
    }

    #[test]
    fn display_is_x_prefixed() {
        assert_eq!(Var::new(7).to_string(), "x7");
    }

    #[test]
    #[should_panic(expected = "variable index exceeds u32 range")]
    fn new_panics_beyond_u32() {
        let _ = Var::new(usize::MAX);
    }
}
