use std::fmt;
use std::ops::Not;

use crate::Var;

/// A literal: a variable or its negation, packed into a single `u32`.
///
/// The encoding is the conventional solver encoding `var << 1 | sign`, where
/// `sign == 1` means the *negative* literal. This makes a literal usable
/// directly as an index into watch lists and gives negation for free.
///
/// # Examples
///
/// ```
/// use presat_logic::{Lit, Var};
/// let v = Var::new(2);
/// let p = Lit::pos(v);
/// assert_eq!(!p, Lit::neg(v));
/// assert_eq!(p.var(), v);
/// assert!(p.is_pos());
/// assert_eq!(p.to_string(), "x2");
/// assert_eq!((!p).to_string(), "!x2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    #[inline]
    pub fn pos(var: Var) -> Self {
        Lit((var.index() as u32) << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn neg(var: Var) -> Self {
        Lit(((var.index() as u32) << 1) | 1)
    }

    /// The literal of `var` with the given phase: `true` gives the positive
    /// literal.
    ///
    /// ```
    /// use presat_logic::{Lit, Var};
    /// let v = Var::new(0);
    /// assert_eq!(Lit::with_phase(v, true), Lit::pos(v));
    /// assert_eq!(Lit::with_phase(v, false), Lit::neg(v));
    /// ```
    #[inline]
    pub fn with_phase(var: Var, phase: bool) -> Self {
        if phase {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// Reconstructs a literal from its packed code (the inverse of
    /// [`Lit::code`]).
    #[inline]
    pub fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// The packed code `var << 1 | sign`; useful as a dense array index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// The variable underlying this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var::from(self.0 >> 1)
    }

    /// `true` if this is a positive (non-negated) literal.
    #[inline]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// `true` if this is a negative (negated) literal.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The phase this literal asserts for its variable: positive literals
    /// assert `true`.
    #[inline]
    pub fn phase(self) -> bool {
        self.is_pos()
    }

    /// Evaluates this literal under a concrete value of its variable.
    ///
    /// ```
    /// use presat_logic::{Lit, Var};
    /// let l = Lit::neg(Var::new(0));
    /// assert!(l.eval(false));
    /// assert!(!l.eval(true));
    /// ```
    #[inline]
    pub fn eval(self, value: bool) -> bool {
        value == self.is_pos()
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lit({}{})", if self.is_neg() { "!" } else { "" }, self.var().index())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_neg() { "!" } else { "" }, self.var())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_is_involutive() {
        let l = Lit::pos(Var::new(5));
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
    }

    #[test]
    fn code_is_dense() {
        assert_eq!(Lit::pos(Var::new(0)).code(), 0);
        assert_eq!(Lit::neg(Var::new(0)).code(), 1);
        assert_eq!(Lit::pos(Var::new(1)).code(), 2);
        assert_eq!(Lit::neg(Var::new(1)).code(), 3);
    }

    #[test]
    fn from_code_round_trips() {
        for code in 0..64u32 {
            let l = Lit::from_code(code);
            assert_eq!(l.code(), code as usize);
        }
    }

    #[test]
    fn var_and_sign_recovered() {
        let v = Var::new(9);
        assert_eq!(Lit::pos(v).var(), v);
        assert_eq!(Lit::neg(v).var(), v);
        assert!(Lit::pos(v).is_pos());
        assert!(Lit::neg(v).is_neg());
    }

    #[test]
    fn eval_matches_phase() {
        let v = Var::new(0);
        assert!(Lit::pos(v).eval(true));
        assert!(!Lit::pos(v).eval(false));
        assert!(Lit::neg(v).eval(false));
        assert!(!Lit::neg(v).eval(true));
    }

    #[test]
    fn with_phase_consistency() {
        let v = Var::new(3);
        assert!(Lit::with_phase(v, true).phase());
        assert!(!Lit::with_phase(v, false).phase());
    }

    #[test]
    fn ordering_groups_by_variable() {
        // pos(v) < neg(v) < pos(v+1)
        let v0 = Var::new(0);
        let v1 = Var::new(1);
        assert!(Lit::pos(v0) < Lit::neg(v0));
        assert!(Lit::neg(v0) < Lit::pos(v1));
    }
}
