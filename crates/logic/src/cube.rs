use std::fmt;

use crate::{Assignment, Lit, Var};

/// Error returned when constructing a [`Cube`] from a literal sequence that
/// contains both a variable and its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CubeFromLitsError {
    /// The variable that appeared in both phases.
    pub var: Var,
}

impl fmt::Display for CubeFromLitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "contradictory literals for {} in cube", self.var)
    }
}

impl std::error::Error for CubeFromLitsError {}

/// A cube: a conjunction of literals over distinct variables, i.e. a partial
/// assignment viewed as a product term.
///
/// Cubes are the unit of currency for all-solutions enumeration — each
/// enumerated solution is a cube over the important variables — and for
/// specifying target state sets. The literal list is kept sorted by variable
/// so that equality, subsumption and intersection are cheap.
///
/// The empty cube is the constant **true** (the universal set).
///
/// # Examples
///
/// ```
/// use presat_logic::{Cube, Lit, Var};
/// let a = Var::new(0);
/// let b = Var::new(1);
/// let c = Cube::from_lits([Lit::pos(a), Lit::neg(b)])?;
/// assert_eq!(c.to_string(), "x0 & !x1");
/// assert!(c.contains_minterm(&presat_logic::Assignment::from_bits(0b01, 2)));
/// # Ok::<(), presat_logic::CubeFromLitsError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Cube {
    /// Sorted by variable index; at most one literal per variable.
    ///
    /// Kept as the first field so the derived lexicographic `Ord` is still
    /// decided by the literal list; `sig` is a pure function of `lits`, so
    /// including it in the derived `PartialEq`/`Hash` changes nothing.
    lits: Vec<Lit>,
    /// Cached variable-signature mask: bit `v % 64` is set for every
    /// mentioned variable `v`. Phase-independent, so `a ⊆ b` on literals
    /// implies `a.sig & !b.sig == 0` — the one-AND subsumption prefilter.
    sig: u64,
}

/// The signature mask of a literal slice (see [`Cube::signature`]).
fn sig_of(lits: &[Lit]) -> u64 {
    lits.iter()
        .fold(0u64, |s, l| s | 1u64 << (l.var().index() & 63))
}

impl Cube {
    /// Builds a cube from an already sorted, deduplicated, conflict-free
    /// literal vector, computing the cached signature.
    fn from_sorted(lits: Vec<Lit>) -> Self {
        let sig = sig_of(&lits);
        Cube { lits, sig }
    }

    /// The empty cube (constant true / the set of all assignments).
    pub fn top() -> Self {
        Cube::default()
    }

    /// Builds a cube from literals, sorting and deduplicating.
    ///
    /// # Errors
    ///
    /// Returns [`CubeFromLitsError`] if some variable occurs in both phases
    /// (the conjunction would be constant false; represent that case with an
    /// empty [`crate::CubeSet`] instead).
    pub fn from_lits<I: IntoIterator<Item = Lit>>(lits: I) -> Result<Self, CubeFromLitsError> {
        let mut v: Vec<Lit> = lits.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        for w in v.windows(2) {
            if w[0].var() == w[1].var() {
                return Err(CubeFromLitsError { var: w[0].var() });
            }
        }
        Ok(Cube::from_sorted(v))
    }

    /// The single-literal cube.
    pub fn unit(lit: Lit) -> Self {
        Cube::from_sorted(vec![lit])
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// `true` for the empty cube (constant true).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// The literals, sorted by variable.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// The cached 64-bit variable-signature mask: bit `v % 64` is set for
    /// every variable `v` this cube mentions, regardless of phase.
    ///
    /// If `a.subsumes(b)` then `a`'s variables are a subset of `b`'s, so
    /// `a.signature() & !b.signature() == 0`; a single AND therefore
    /// refutes most non-subsumptions before any literal comparison.
    pub fn signature(&self) -> u64 {
        self.sig
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }

    /// The phase this cube requires of `var`, if constrained.
    pub fn phase_of(&self, var: Var) -> Option<bool> {
        self.lits
            .binary_search_by_key(&var, |l| l.var())
            .ok()
            .map(|i| self.lits[i].phase())
    }

    /// `true` if this cube constrains `var`.
    pub fn mentions(&self, var: Var) -> bool {
        self.phase_of(var).is_some()
    }

    /// `true` if the total/partial assignment `a` satisfies every literal of
    /// this cube (unassigned variables count as *not* satisfying).
    pub fn contains_minterm(&self, a: &Assignment) -> bool {
        self.lits.iter().all(|&l| a.lit_value(l) == Some(true))
    }

    /// Evaluates under a partial assignment: `Some(false)` if some literal is
    /// falsified, `Some(true)` if all are satisfied, `None` otherwise.
    pub fn eval_partial(&self, a: &Assignment) -> Option<bool> {
        let mut all_true = true;
        for &l in &self.lits {
            match a.lit_value(l) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => all_true = false,
            }
        }
        if all_true {
            Some(true)
        } else {
            None
        }
    }

    /// `true` if `self` subsumes `other`: every assignment in `other`'s set
    /// is in `self`'s set, i.e. `self`'s literals are a subset of `other`'s.
    ///
    /// ```
    /// use presat_logic::{Cube, Lit, Var};
    /// let wide = Cube::unit(Lit::pos(Var::new(0)));
    /// let narrow = Cube::from_lits([Lit::pos(Var::new(0)), Lit::pos(Var::new(1))])?;
    /// assert!(wide.subsumes(&narrow));
    /// assert!(!narrow.subsumes(&wide));
    /// # Ok::<(), presat_logic::CubeFromLitsError>(())
    /// ```
    pub fn subsumes(&self, other: &Cube) -> bool {
        // A subset's variables are a subset: one AND refutes most pairs.
        if self.sig & !other.sig != 0 {
            return false;
        }
        if self.lits.len() > other.lits.len() {
            return false;
        }
        // Both sorted: linear merge check for subset.
        let mut oi = 0;
        'outer: for &l in &self.lits {
            while oi < other.lits.len() {
                match other.lits[oi].cmp(&l) {
                    std::cmp::Ordering::Less => oi += 1,
                    std::cmp::Ordering::Equal => {
                        oi += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Conjunction of two cubes: `None` if they conflict on some variable.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        let mut out = Vec::with_capacity(self.lits.len() + other.lits.len());
        let (mut i, mut j) = (0, 0);
        while i < self.lits.len() && j < other.lits.len() {
            let (a, b) = (self.lits[i], other.lits[j]);
            if a.var() == b.var() {
                if a != b {
                    return None;
                }
                out.push(a);
                i += 1;
                j += 1;
            } else if a.var() < b.var() {
                out.push(a);
                i += 1;
            } else {
                out.push(b);
                j += 1;
            }
        }
        out.extend_from_slice(&self.lits[i..]);
        out.extend_from_slice(&other.lits[j..]);
        Some(Cube::from_sorted(out))
    }

    /// `true` if the two cubes share at least one assignment (no variable is
    /// constrained to opposite phases).
    pub fn intersects(&self, other: &Cube) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.lits.len() && j < other.lits.len() {
            let (a, b) = (self.lits[i], other.lits[j]);
            if a.var() == b.var() {
                if a != b {
                    return false;
                }
                i += 1;
                j += 1;
            } else if a.var() < b.var() {
                i += 1;
            } else {
                j += 1;
            }
        }
        true
    }

    /// The cube with the literal on `var` removed (no-op if absent).
    pub fn without_var(&self, var: Var) -> Cube {
        Cube::from_sorted(self.lits.iter().copied().filter(|l| l.var() != var).collect())
    }

    /// The cofactor of this cube with respect to `lit` being asserted:
    /// `None` if the cube requires `!lit` (empty set), otherwise the cube
    /// with `lit`'s variable dropped.
    pub fn cofactor(&self, lit: Lit) -> Option<Cube> {
        match self.phase_of(lit.var()) {
            Some(p) if p != lit.phase() => None,
            _ => Some(self.without_var(lit.var())),
        }
    }

    /// Number of total assignments over a universe of `num_vars` variables
    /// covered by this cube: `2^(num_vars - len)`.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars < self.len()` or the count overflows `u128`.
    pub fn minterm_count(&self, num_vars: usize) -> u128 {
        let free = num_vars
            .checked_sub(self.len())
            .expect("cube mentions more variables than the universe");
        assert!(free < 128, "minterm count overflows u128");
        1u128 << free
    }

    /// Converts the cube to an [`Assignment`] over `num_vars` variables
    /// (variables not mentioned remain unassigned).
    pub fn to_assignment(&self, num_vars: usize) -> Assignment {
        let mut a = Assignment::new(num_vars);
        for &l in &self.lits {
            a.assign_lit(l);
        }
        a
    }

    /// Enumerates all minterms (total assignments over `vars`) covered by
    /// this cube, restricted to the universe `vars`.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 variables in `vars` are free.
    pub fn expand_minterms(&self, vars: &[Var]) -> Vec<Cube> {
        let free: Vec<Var> = vars.iter().copied().filter(|&v| !self.mentions(v)).collect();
        assert!(free.len() <= 64, "too many free variables to expand");
        let mut out = Vec::with_capacity(1usize << free.len());
        for bits in 0..(1u64 << free.len()) {
            let mut lits: Vec<Lit> = self.lits.clone();
            for (i, &v) in free.iter().enumerate() {
                lits.push(Lit::with_phase(v, bits >> i & 1 == 1));
            }
            out.push(Cube::from_lits(lits).expect("expansion cannot conflict"));
        }
        out
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({self})")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "⊤");
        }
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    #[test]
    fn from_lits_sorts_and_dedups() {
        let c = Cube::from_lits([lit(2, true), lit(0, false), lit(2, true)]).unwrap();
        assert_eq!(c.lits(), &[lit(0, false), lit(2, true)]);
    }

    #[test]
    fn from_lits_rejects_contradiction() {
        let e = Cube::from_lits([lit(1, true), lit(1, false)]).unwrap_err();
        assert_eq!(e.var, Var::new(1));
    }

    #[test]
    fn top_is_empty_and_subsumes_everything() {
        let t = Cube::top();
        let c = Cube::from_lits([lit(0, true)]).unwrap();
        assert!(t.subsumes(&c));
        assert!(t.subsumes(&t));
        assert!(!c.subsumes(&t));
    }

    #[test]
    fn subsumption_is_subset_of_literals() {
        let a = Cube::from_lits([lit(0, true), lit(2, false)]).unwrap();
        let b = Cube::from_lits([lit(0, true), lit(1, true), lit(2, false)]).unwrap();
        assert!(a.subsumes(&b));
        assert!(!b.subsumes(&a));
        let c = Cube::from_lits([lit(0, false), lit(1, true), lit(2, false)]).unwrap();
        assert!(!a.subsumes(&c));
    }

    #[test]
    fn intersect_merges_or_conflicts() {
        let a = Cube::from_lits([lit(0, true)]).unwrap();
        let b = Cube::from_lits([lit(1, false)]).unwrap();
        let ab = a.intersect(&b).unwrap();
        assert_eq!(ab.lits(), &[lit(0, true), lit(1, false)]);
        let c = Cube::from_lits([lit(0, false)]).unwrap();
        assert!(a.intersect(&c).is_none());
        assert!(!a.intersects(&c));
        assert!(a.intersects(&b));
    }

    #[test]
    fn cofactor_drops_or_kills() {
        let c = Cube::from_lits([lit(0, true), lit(1, false)]).unwrap();
        assert_eq!(c.cofactor(lit(0, true)).unwrap().lits(), &[lit(1, false)]);
        assert!(c.cofactor(lit(0, false)).is_none());
        // cofactor w.r.t. unmentioned variable leaves cube unchanged
        assert_eq!(c.cofactor(lit(5, true)).unwrap(), c);
    }

    #[test]
    fn minterm_count_is_power_of_two() {
        let c = Cube::from_lits([lit(0, true)]).unwrap();
        assert_eq!(c.minterm_count(4), 8);
        assert_eq!(Cube::top().minterm_count(3), 8);
    }

    #[test]
    fn expand_minterms_covers_exactly() {
        let vars: Vec<Var> = Var::range(3).collect();
        let c = Cube::from_lits([lit(1, true)]).unwrap();
        let ms = c.expand_minterms(&vars);
        assert_eq!(ms.len(), 4);
        for m in &ms {
            assert_eq!(m.len(), 3);
            assert_eq!(m.phase_of(Var::new(1)), Some(true));
            assert!(c.subsumes(m));
        }
    }

    #[test]
    fn signature_tracks_mentioned_vars() {
        assert_eq!(Cube::top().signature(), 0);
        let c = Cube::from_lits([lit(0, true), lit(65, false)]).unwrap();
        // 65 % 64 == 1: the mask folds high variables onto low bits.
        assert_eq!(c.signature(), 0b11);
        assert_eq!(c.without_var(Var::new(65)).signature(), 0b01);
        let d = c.intersect(&Cube::unit(lit(3, true))).unwrap();
        assert_eq!(d.signature(), 0b1011);
        // Phase-independent: both phases of a variable set the same bit.
        assert_eq!(Cube::unit(lit(2, true)).signature(), Cube::unit(lit(2, false)).signature());
    }

    #[test]
    fn eval_partial_three_valued() {
        let c = Cube::from_lits([lit(0, true), lit(1, true)]).unwrap();
        let mut a = Assignment::new(2);
        assert_eq!(c.eval_partial(&a), None);
        a.assign(Var::new(0), false);
        assert_eq!(c.eval_partial(&a), Some(false));
        a.assign(Var::new(0), true);
        a.assign(Var::new(1), true);
        assert_eq!(c.eval_partial(&a), Some(true));
    }

    #[test]
    fn contains_minterm_requires_all_lits() {
        let c = Cube::from_lits([lit(0, true), lit(1, false)]).unwrap();
        assert!(c.contains_minterm(&Assignment::from_bits(0b01, 2)));
        assert!(!c.contains_minterm(&Assignment::from_bits(0b11, 2)));
    }
}
