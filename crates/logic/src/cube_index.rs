//! Occurrence-indexed cube store: the subsumption engine behind
//! [`crate::CubeSet`].
//!
//! The naive absorbed-insert pays two full scans per cube — `any(subsumes)`
//! forward, `retain(!subsumed)` backward — so building an `n`-cube set is
//! O(n²) cube comparisons. This store keeps two literal-keyed indexes over
//! the live cubes so each insert touches only *candidates*, cubes that
//! provably share a literal with the incoming one:
//!
//! - **Watch-one lists** (forward): every stored non-⊤ cube appears in
//!   exactly one list, keyed by one of its own literals. If a stored cube
//!   `C` subsumes the incoming cube `N` then every literal of `C` — in
//!   particular its watched one — occurs in `N`, so scanning the watch
//!   lists of `N`'s literals visits every possible subsumer exactly once.
//! - **Full occurrence lists** (backward): every stored cube appears in the
//!   list of each of its literals. A stored cube `D` absorbed by `N`
//!   contains all of `N`'s literals, so scanning the single *shortest*
//!   occurrence list among `N`'s literals visits every victim once.
//!
//! Each list stores the entries' [`Cube::signature`]s and cube ids as two
//! parallel arrays, so the one-AND prefilter is a tight scan over packed
//! 8-byte signatures — the id array, the liveness table, and the cube
//! array are only touched for the rare candidates that survive it. Ids are
//! allocated in insertion order and stable removal preserves order, so the
//! dense id array stays strictly ascending and id→position resolution is a
//! binary search — there is no position map to maintain, which is what
//! makes removal cheap: a victim costs one `Vec::remove` memmove of the
//! dense tail, and its index entries are tombstoned in the liveness table
//! and dropped lazily when a scan's surviving prefilter reaches them.
//!
//! **Order preservation.** The result is bit-identical to the naive store:
//! the forward check is a pure existence test (order-irrelevant), the
//! backward sweep removes exactly the subsumed cubes while keeping the
//! survivors' relative order (stable in-order compaction, like `retain`),
//! and the new cube is appended last. The differential suite in
//! `tests/cubeset_index.rs` pins this against the retained
//! [`crate::NaiveCubeSet`].

use crate::Cube;

/// One literal's index list, in structure-of-arrays form: `sigs[i]` is the
/// cached signature of the cube with id `ids[i]`. Keeping the signatures
/// packed (8 bytes each, no id padding) means the prefilter scan streams
/// half the memory and the hot signature arrays stay cache-resident.
#[derive(Clone, Default)]
struct EntryList {
    sigs: Vec<u64>,
    ids: Vec<u32>,
}

impl EntryList {
    fn len(&self) -> usize {
        self.sigs.len()
    }

    fn push(&mut self, id: u32, sig: u64) {
        self.sigs.push(sig);
        self.ids.push(id);
    }

    fn clear(&mut self) {
        self.sigs.clear();
        self.ids.clear();
    }

    fn truncate(&mut self, len: usize) {
        self.sigs.truncate(len);
        self.ids.truncate(len);
    }

    /// Moves entry `r` to slot `w` (compaction step; `w <= r`).
    fn shift(&mut self, w: usize, r: usize) {
        self.sigs[w] = self.sigs[r];
        self.ids[w] = self.ids[r];
    }
}

/// Index of the first signature that may denote a *subset* of `sig`
/// (`s & !sig == 0`). The scan runs branchless over 8-wide chunks — the
/// pass test is a couple of word ops, so letting the compiler vectorize
/// the no-hit case (by far the most common) is worth re-testing a chunk
/// on the rare hit.
fn first_sub(sigs: &[u64], sig: u64) -> Option<usize> {
    let mask = !sig;
    let mut base = 0;
    let mut chunks = sigs.chunks_exact(8);
    for ch in &mut chunks {
        let mut any = false;
        for &s in ch {
            any |= s & mask == 0;
        }
        if any {
            for (j, &s) in ch.iter().enumerate() {
                if s & mask == 0 {
                    return Some(base + j);
                }
            }
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&s| s & mask == 0)
        .map(|j| base + j)
}

/// Index of the first signature that may denote a *superset* of `sig`
/// (`sig & !s == 0`, i.e. `s & sig == sig`). Same shape as [`first_sub`].
fn first_sup(sigs: &[u64], sig: u64) -> Option<usize> {
    let mut base = 0;
    let mut chunks = sigs.chunks_exact(8);
    for ch in &mut chunks {
        let mut any = false;
        for &s in ch {
            any |= s & sig == sig;
        }
        if any {
            for (j, &s) in ch.iter().enumerate() {
                if s & sig == sig {
                    return Some(base + j);
                }
            }
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&s| s & sig == sig)
        .map(|j| base + j)
}

/// Work counters for the indexed subsumption engine, surfaced through the
/// observability layer as `subsumption_checks`, `sig_rejects`, and
/// `index_candidates`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CubeIndexStats {
    /// Candidate cube pairs tested for subsumption (a signature-level
    /// rejection counts: the test ran, it just finished in one AND).
    pub subsumption_checks: u64,
    /// Candidate pairs dismissed by the signature prefilter alone, before
    /// any literal comparison.
    pub sig_rejects: u64,
    /// Index entries visited while walking occurrence lists — the
    /// per-insert work the index actually does, to compare against the
    /// store size a naive scan would have touched.
    pub index_candidates: u64,
}

impl CubeIndexStats {
    /// Accumulates another snapshot; all three are additive work counters.
    pub fn absorb(&mut self, other: &CubeIndexStats) {
        self.subsumption_checks += other.subsumption_checks;
        self.sig_rejects += other.sig_rejects;
        self.index_candidates += other.index_candidates;
    }
}

/// The indexed store. Logical value is the dense `cubes` vector — the
/// index arrays are derived bookkeeping and the counters are diagnostics,
/// so neither participates in equality (handled by the wrapping
/// [`crate::CubeSet`]).
#[derive(Clone, Default)]
pub(crate) struct CubeIndex {
    /// Live cubes in canonical (naive-identical) order.
    cubes: Vec<Cube>,
    /// Stable id of each dense slot (parallel to `cubes`). Ids are handed
    /// out in insertion order and removal is stable, so this array is
    /// strictly ascending: id→position is a binary search, and removing a
    /// cube needs no index rewriting at all.
    ids: Vec<u32>,
    /// Liveness of every id ever allocated; flipped off when the cube is
    /// removed. Grows by one per successful insert.
    alive: Vec<bool>,
    /// Watch-one lists keyed by literal code: each live non-⊤ cube sits in
    /// exactly one list, under the literal whose list was shortest when the
    /// cube was inserted. May contain tombstoned ids (pruned lazily).
    watch: Vec<EntryList>,
    /// Full occurrence lists keyed by literal code: each live cube appears
    /// once per literal it contains. May contain tombstoned ids.
    occ: Vec<EntryList>,
    /// Whether the store is exactly `{⊤}` (the ⊤ cube has no literals and
    /// therefore lives in no occurrence list).
    has_top: bool,
    /// Work counters; reset never, absorbed by clones.
    stats: CubeIndexStats,
}

impl CubeIndex {
    /// Number of live cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// `true` if no cube is stored.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The live cubes, in canonical order.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// `true` if the store is exactly `{⊤}`.
    pub fn has_top(&self) -> bool {
        self.has_top
    }

    /// Snapshot of the work counters.
    pub fn stats(&self) -> CubeIndexStats {
        self.stats
    }

    /// Consumes the store, returning the cube vector.
    pub fn into_cubes(self) -> Vec<Cube> {
        self.cubes
    }

    /// Read-only forward check: is `cube` subsumed by some stored cube?
    /// Same candidate walk as [`CubeIndex::insert`]'s first phase, but
    /// without pruning or counter updates (usable through `&self`).
    pub fn contains_subsuming(&self, cube: &Cube) -> bool {
        if self.has_top {
            return true;
        }
        let sig = cube.signature();
        for &l in cube.lits() {
            let Some(list) = self.watch.get(l.code()) else {
                continue;
            };
            for (r, &csig) in list.sigs.iter().enumerate() {
                if csig & !sig != 0 {
                    continue;
                }
                let id = list.ids[r];
                if self.alive[id as usize] && self.cubes[self.dense_pos(id)].subsumes(cube) {
                    return true;
                }
            }
        }
        false
    }

    /// Absorbed insert, semantically identical to the naive
    /// `any`/`retain`/`push` sequence. Returns `true` if the store changed.
    pub fn insert(&mut self, cube: Cube) -> bool {
        // Forward: is the new cube subsumed by a stored one? Every subsumer
        // watches one of `cube`'s literals, so the watch lists of those
        // literals cover all candidates (⊤ watches nothing; flag-checked).
        if self.has_top {
            self.stats.subsumption_checks += 1;
            return false;
        }
        let sig = cube.signature();
        let mut candidates = 0u64;
        let mut rejects = 0u64;
        for i in 0..cube.lits().len() {
            let code = cube.lits()[i].code();
            if code >= self.watch.len() {
                continue;
            }
            let mut hit = false;
            let list = &mut self.watch[code];
            // Fast path: almost every entry is a signature reject, which
            // needs no pruning and no per-entry bookkeeping — scan the
            // packed signature array until one passes the prefilter, then
            // account for the whole run at once. Lists with no passing
            // entry (the common case) never enter the slow loop below.
            let mut r = match first_sub(&list.sigs, sig) {
                None => {
                    let n = list.len() as u64;
                    candidates += n;
                    rejects += n;
                    continue;
                }
                Some(p) => {
                    candidates += p as u64;
                    rejects += p as u64;
                    p
                }
            };
            let mut w = r;
            while r < list.len() {
                let csig = list.sigs[r];
                candidates += 1;
                if csig & !sig != 0 {
                    // Signature reject: stale entries stay until a
                    // surviving prefilter reaches them.
                    rejects += 1;
                    list.shift(w, r);
                    w += 1;
                    r += 1;
                    continue;
                }
                let id = list.ids[r];
                r += 1;
                if !self.alive[id as usize] {
                    continue; // drop the stale entry
                }
                list.sigs[w] = csig;
                list.ids[w] = id;
                w += 1;
                let p = self.ids.binary_search(&id).expect("live id is stored");
                if self.cubes[p].subsumes(&cube) {
                    hit = true;
                    // Keep the unvisited tail; only the compaction shift
                    // remains to do.
                    while r < list.len() {
                        list.shift(w, r);
                        w += 1;
                        r += 1;
                    }
                }
            }
            list.truncate(w);
            if hit {
                self.stats.index_candidates += candidates;
                self.stats.subsumption_checks += candidates;
                self.stats.sig_rejects += rejects;
                return false;
            }
        }

        // Backward: remove every stored cube the new one absorbs. ⊤
        // absorbs everything; otherwise every victim contains all of
        // `cube`'s literals, so one occurrence list suffices — the
        // shortest.
        if cube.is_empty() {
            self.stats.index_candidates += candidates;
            self.stats.subsumption_checks += candidates;
            self.stats.sig_rejects += rejects;
            self.reset_to_top();
            return true;
        }
        let mut best: Option<usize> = None;
        let mut complete = true;
        for &l in cube.lits() {
            let len = match self.occ.get(l.code()) {
                Some(list) => list.len(),
                None => 0,
            };
            if len == 0 {
                // No stored cube contains this literal, so none is absorbed.
                complete = false;
                break;
            }
            if best.is_none_or(|b| len < self.occ[b].len()) {
                best = Some(l.code());
            }
        }
        let mut victims: Vec<usize> = Vec::new();
        if complete {
            let code = best.expect("non-⊤ cube has a literal");
            let list = &mut self.occ[code];
            // Same fast path as the forward scan: burn through the leading
            // run of signature rejects without touching anything.
            let mut r = match first_sup(&list.sigs, sig) {
                None => {
                    let n = list.len() as u64;
                    candidates += n;
                    rejects += n;
                    list.len()
                }
                Some(p) => {
                    candidates += p as u64;
                    rejects += p as u64;
                    p
                }
            };
            let mut w = r;
            while r < list.len() {
                let csig = list.sigs[r];
                candidates += 1;
                if sig & !csig != 0 {
                    rejects += 1;
                    list.shift(w, r);
                    w += 1;
                    r += 1;
                    continue;
                }
                let id = list.ids[r];
                r += 1;
                if !self.alive[id as usize] {
                    continue; // drop the stale entry
                }
                let p = self.ids.binary_search(&id).expect("live id is stored");
                if cube.subsumes(&self.cubes[p]) {
                    // Tombstone; the entry is dropped from this list now
                    // and from the other lists lazily.
                    self.alive[id as usize] = false;
                    victims.push(p);
                } else {
                    list.sigs[w] = csig;
                    list.ids[w] = id;
                    w += 1;
                }
            }
            list.truncate(w);
        }
        self.stats.index_candidates += candidates;
        self.stats.subsumption_checks += candidates;
        self.stats.sig_rejects += rejects;
        // Stable removal, highest position first so earlier indices stay
        // valid. With no position map to rewrite, each victim costs one
        // memmove of the dense tail — `Vec::remove` — and nothing else.
        victims.sort_unstable_by(|a, b| b.cmp(a));
        for p in victims {
            self.cubes.remove(p);
            self.ids.remove(p);
        }
        self.push_raw(cube);
        true
    }

    /// Appends a cube known to be subsumption-unrelated to every stored
    /// cube (neither subsumes nor is subsumed — e.g. the pairwise-disjoint
    /// path cubes of a solution graph). Skips both scans; the result is
    /// identical to [`CubeIndex::insert`] under that precondition.
    pub fn push_disjoint(&mut self, cube: Cube) {
        debug_assert!(
            !self.contains_subsuming(&cube),
            "push_disjoint: cube is subsumed by a stored cube"
        );
        debug_assert!(
            !self.cubes.iter().any(|c| cube.subsumes(c)),
            "push_disjoint: cube absorbs a stored cube"
        );
        if cube.is_empty() {
            debug_assert!(self.cubes.is_empty(), "⊤ is related to every cube");
            self.has_top = true;
        }
        self.push_raw(cube);
    }

    /// Dense position of a live id: a binary search, since `ids` is
    /// strictly ascending by construction.
    fn dense_pos(&self, id: u32) -> usize {
        self.ids.binary_search(&id).expect("live id is stored")
    }

    /// Drops everything and stores exactly `{⊤}`.
    fn reset_to_top(&mut self) {
        self.cubes.clear();
        self.ids.clear();
        self.alive.clear();
        for list in &mut self.watch {
            list.clear();
        }
        for list in &mut self.occ {
            list.clear();
        }
        self.has_top = true;
        self.push_raw(Cube::top());
    }

    /// Appends `cube` to the dense array and registers it in the indexes.
    fn push_raw(&mut self, cube: Cube) {
        let id = u32::try_from(self.alive.len()).expect("cube id space exhausted");
        let sig = cube.signature();
        self.alive.push(true);
        self.ids.push(id);
        // Grow the literal-keyed tables to the widest literal.
        if let Some(last) = cube.lits().last() {
            let need = last.code() + 1;
            if self.watch.len() < need {
                self.watch.resize_with(need, EntryList::default);
                self.occ.resize_with(need, EntryList::default);
            }
        }
        for &l in cube.lits() {
            self.occ[l.code()].push(id, sig);
        }
        // Watch the literal whose list is currently shortest: balances the
        // forward-scan load. The first minimum wins, so the choice — like
        // everything here — is deterministic.
        let watched = cube
            .lits()
            .iter()
            .min_by_key(|l| self.watch[l.code()].len());
        if let Some(&l) = watched {
            self.watch[l.code()].push(id, sig);
        }
        self.cubes.push(cube);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lit, Var};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_lits(lits.iter().map(|&(v, p)| Lit::with_phase(Var::new(v), p))).unwrap()
    }

    #[test]
    fn insert_forward_and_backward_match_naive_semantics() {
        let mut s = CubeIndex::default();
        assert!(s.insert(cube(&[(0, true), (1, true)])));
        assert!(s.insert(cube(&[(2, false), (3, true)])));
        // Wider cube absorbs the first, keeps the second's position.
        assert!(s.insert(cube(&[(0, true)])));
        assert_eq!(s.cubes(), &[cube(&[(2, false), (3, true)]), cube(&[(0, true)])]);
        // Subsumed duplicate region: rejected.
        assert!(!s.insert(cube(&[(0, true), (5, false)])));
        assert!(!s.insert(cube(&[(0, true)])));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn top_absorbs_everything_and_is_terminal() {
        let mut s = CubeIndex::default();
        s.insert(cube(&[(0, true)]));
        s.insert(cube(&[(1, false), (2, true)]));
        assert!(s.insert(Cube::top()));
        assert!(s.has_top());
        assert_eq!(s.cubes(), &[Cube::top()]);
        assert!(!s.insert(Cube::top()));
        assert!(!s.insert(cube(&[(7, true)])));
        assert_eq!(s.cubes(), &[Cube::top()]);
    }

    #[test]
    fn contains_subsuming_is_read_only_forward_check() {
        let mut s = CubeIndex::default();
        s.insert(cube(&[(0, true)]));
        assert!(s.contains_subsuming(&cube(&[(0, true), (1, true)])));
        assert!(!s.contains_subsuming(&cube(&[(1, true)])));
        assert!(!s.contains_subsuming(&Cube::top()));
        s.insert(Cube::top());
        assert!(s.contains_subsuming(&Cube::top()));
    }

    #[test]
    fn counters_track_candidates_and_sig_rejects() {
        let mut s = CubeIndex::default();
        s.insert(cube(&[(0, true), (1, true)]));
        // Shares x0 with the stored cube: visited as a candidate in both
        // directions, dismissed by the signature mask both times.
        s.insert(cube(&[(0, true), (2, false)]));
        // Absorbs both stored cubes after full literal checks.
        s.insert(cube(&[(0, true)]));
        assert_eq!(s.len(), 1);
        let st = s.stats();
        assert!(st.index_candidates >= 3, "{st:?}");
        assert!(st.subsumption_checks >= st.index_candidates, "{st:?}");
        assert!(st.sig_rejects >= 1, "{st:?}");
        assert!(st.sig_rejects < st.subsumption_checks, "{st:?}");
    }

    #[test]
    fn push_disjoint_appends_without_scans() {
        let mut s = CubeIndex::default();
        s.push_disjoint(cube(&[(0, true), (1, true)]));
        s.push_disjoint(cube(&[(0, true), (1, false)]));
        s.push_disjoint(cube(&[(0, false)]));
        assert_eq!(s.len(), 3);
        // The index stays live: a later absorbed insert still works.
        assert!(!s.insert(cube(&[(0, false), (9, true)])));
        assert!(s.insert(Cube::top()));
        assert_eq!(s.cubes(), &[Cube::top()]);
    }

    #[test]
    fn stale_entries_are_pruned_when_the_prefilter_passes_them() {
        // Build cubes that share a variable (so later scans revisit the
        // same lists), absorb some, and keep inserting: the store must
        // stay correct with stale entries in flight.
        let mut s = CubeIndex::default();
        s.insert(cube(&[(0, true), (1, true)]));
        s.insert(cube(&[(0, true), (2, true)]));
        s.insert(cube(&[(0, true)])); // absorbs both
        assert_eq!(s.len(), 1);
        // Rejected by the (possibly stale-laden) watch list of x0.
        assert!(!s.insert(cube(&[(0, true), (1, true)])));
        // Unrelated insert still lands.
        assert!(s.insert(cube(&[(1, false)])));
        assert_eq!(s.len(), 2);
    }
}
