//! The naive reference cube store: the original two-full-scans absorbed
//! insert, retained verbatim as the ground truth for the indexed store.
//!
//! [`crate::CubeSet`] routes every insert through the occurrence-indexed
//! engine in `cube_index`; this module keeps the O(n²) implementation it
//! replaced so the differential suite (`tests/cubeset_index.rs`) can pin
//! the indexed store's output bit-for-bit, and so the `cubeset_scaling`
//! bench has an honest baseline. **Nothing on a hot path may use this** —
//! `scripts/verify.sh` greps for the linear-scan idiom outside this file.

use crate::Cube;

/// A cube set with absorbed inserts implemented by two linear scans.
///
/// Semantically identical to [`crate::CubeSet`] (the indexed store is
/// defined as producing exactly this sequence of surviving cubes), but
/// quadratic in the number of stored cubes. For tests and benches only.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NaiveCubeSet {
    cubes: Vec<Cube>,
}

impl NaiveCubeSet {
    /// The empty set.
    pub fn new() -> Self {
        NaiveCubeSet::default()
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// `true` if no cube is present.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The cubes, in insertion-dependent order.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Inserts a cube with absorption — the original reference semantics:
    /// reject if any stored cube subsumes it, otherwise drop every stored
    /// cube it subsumes (preserving order) and append it. Returns `true`
    /// if the set changed.
    pub fn insert(&mut self, cube: Cube) -> bool {
        if self.cubes.iter().any(|c| c.subsumes(&cube)) {
            return false;
        }
        self.cubes.retain(|c| !cube.subsumes(c));
        self.cubes.push(cube);
        true
    }

    /// Consumes the set, returning the cube vector.
    pub fn into_cubes(self) -> Vec<Cube> {
        self.cubes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lit, Var};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_lits(lits.iter().map(|&(v, p)| Lit::with_phase(Var::new(v), p))).unwrap()
    }

    #[test]
    fn reference_insert_absorbs_both_ways() {
        let mut s = NaiveCubeSet::new();
        assert!(s.insert(cube(&[(0, true), (1, true)])));
        assert!(s.insert(cube(&[(0, true)])));
        assert_eq!(s.len(), 1);
        assert!(!s.insert(cube(&[(0, true), (1, false)])));
        assert!(s.insert(Cube::top()));
        assert_eq!(s.cubes(), &[Cube::top()]);
        assert!(!s.insert(Cube::top()));
    }
}
