//! Boolean foundations for the `presat` workspace.
//!
//! This crate provides the vocabulary shared by every other `presat` crate:
//! variables ([`Var`]) and literals ([`Lit`]), partial and total assignments
//! ([`Assignment`]), cubes ([`Cube`]) and cube sets ([`CubeSet`]) for
//! representing sets of states, CNF formulas ([`Cnf`]), DIMACS input/output
//! ([`dimacs`]), and a brute-force truth-table oracle ([`truth_table`]) used
//! throughout the test suites to validate the clever engines against an
//! unarguably correct one.
//!
//! # Examples
//!
//! ```
//! use presat_logic::{Cnf, Lit, Var};
//!
//! let a = Var::new(0);
//! let b = Var::new(1);
//! let mut cnf = Cnf::new(2);
//! cnf.add_clause([Lit::pos(a), Lit::pos(b)]);   // a ∨ b
//! cnf.add_clause([Lit::neg(a), Lit::neg(b)]);   // ¬a ∨ ¬b
//! // exactly the two assignments where a ≠ b satisfy this formula
//! assert_eq!(presat_logic::truth_table::count_models(&cnf), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod cnf;
mod cube;
mod cube_index;
mod cube_set;
pub mod dimacs;
mod lit;
mod naive;
pub mod rng;
pub mod truth_table;
mod var;

pub use assignment::Assignment;
pub use cnf::{Clause, Cnf};
pub use cube::{Cube, CubeFromLitsError};
pub use cube_index::CubeIndexStats;
pub use cube_set::CubeSet;
pub use lit::Lit;
pub use naive::NaiveCubeSet;
pub use var::Var;
