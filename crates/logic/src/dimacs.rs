//! DIMACS CNF reading and writing.
//!
//! The standard interchange format for SAT instances: a header
//! `p cnf <vars> <clauses>` followed by zero-terminated clauses of signed
//! 1-based variable numbers. Comment lines start with `c`.
//!
//! # Examples
//!
//! ```
//! use presat_logic::dimacs;
//! let text = "c tiny instance\np cnf 2 2\n1 2 0\n-1 -2 0\n";
//! let cnf = dimacs::parse(text)?;
//! assert_eq!(cnf.num_vars(), 2);
//! assert_eq!(cnf.num_clauses(), 2);
//! let round = dimacs::write(&cnf);
//! assert_eq!(dimacs::parse(&round)?, cnf);
//! # Ok::<(), dimacs::ParseDimacsError>(())
//! ```

use std::fmt;

use crate::{Cnf, Lit, Var};

/// Error produced while parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDimacsError {
    /// The `p cnf` header is missing or malformed.
    BadHeader {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// A token was not an integer.
    BadToken {
        /// 1-based line number of the offending token.
        line: usize,
        /// The token text.
        token: String,
    },
    /// A literal referenced variable 0 or a variable beyond the header count.
    VarOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending signed DIMACS literal.
        value: i64,
    },
    /// The final clause was not terminated with `0`.
    UnterminatedClause,
    /// More clauses appeared than the header declared.
    TooManyClauses {
        /// The number declared in the header.
        declared: usize,
    },
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::BadHeader { line } => {
                write!(f, "missing or malformed `p cnf` header at line {line}")
            }
            ParseDimacsError::BadToken { line, token } => {
                write!(f, "invalid token {token:?} at line {line}")
            }
            ParseDimacsError::VarOutOfRange { line, value } => {
                write!(f, "literal {value} out of declared range at line {line}")
            }
            ParseDimacsError::UnterminatedClause => {
                write!(f, "unexpected end of input inside a clause")
            }
            ParseDimacsError::TooManyClauses { declared } => {
                write!(f, "more clauses than the {declared} declared in the header")
            }
        }
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses DIMACS CNF text into a [`Cnf`].
///
/// The clause count in the header is treated as an upper bound check; a file
/// with *fewer* clauses than declared is accepted (common in the wild).
///
/// # Errors
///
/// Returns a [`ParseDimacsError`] describing the first problem found.
pub fn parse(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut header: Option<(usize, usize)> = None;
    let mut cnf = Cnf::new(0);
    let mut current: Vec<Lit> = Vec::new();
    let mut clause_open = false;

    for (lineno0, line) in text.lines().enumerate() {
        let line_no = lineno0 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') || trimmed.starts_with('%') {
            continue;
        }
        if trimmed.starts_with('p') {
            let mut it = trimmed.split_whitespace();
            let (p, fmt_kw) = (it.next(), it.next());
            let nv = it.next().and_then(|t| t.parse::<usize>().ok());
            let nc = it.next().and_then(|t| t.parse::<usize>().ok());
            match (p, fmt_kw, nv, nc) {
                (Some("p"), Some("cnf"), Some(nv), Some(nc)) => {
                    header = Some((nv, nc));
                    cnf = Cnf::new(nv);
                }
                _ => return Err(ParseDimacsError::BadHeader { line: line_no }),
            }
            continue;
        }
        let (num_vars, num_clauses) =
            header.ok_or(ParseDimacsError::BadHeader { line: line_no })?;
        for token in trimmed.split_whitespace() {
            let value: i64 = token
                .parse()
                .map_err(|_| ParseDimacsError::BadToken {
                    line: line_no,
                    token: token.to_string(),
                })?;
            if value == 0 {
                if cnf.num_clauses() >= num_clauses {
                    return Err(ParseDimacsError::TooManyClauses {
                        declared: num_clauses,
                    });
                }
                cnf.add_clause(current.drain(..));
                clause_open = false;
                continue;
            }
            let var_no = value.unsigned_abs() as usize;
            if var_no == 0 || var_no > num_vars {
                return Err(ParseDimacsError::VarOutOfRange {
                    line: line_no,
                    value,
                });
            }
            let var = Var::new(var_no - 1);
            current.push(Lit::with_phase(var, value > 0));
            clause_open = true;
        }
    }
    if clause_open {
        return Err(ParseDimacsError::UnterminatedClause);
    }
    if header.is_none() {
        return Err(ParseDimacsError::BadHeader { line: 1 });
    }
    Ok(cnf)
}

/// Serializes a [`Cnf`] as DIMACS text (including a header comment).
pub fn write(cnf: &Cnf) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "c generated by presat");
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses());
    for clause in cnf.clauses() {
        for &l in clause {
            let v = l.var().index() as i64 + 1;
            let _ = write!(out, "{} ", if l.is_pos() { v } else { -v });
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal() {
        let cnf = parse("p cnf 1 1\n1 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 1);
        assert_eq!(cnf.clauses()[0], vec![Lit::pos(Var::new(0))]);
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let cnf = parse("c hello\n\nc world\np cnf 2 1\n-1 2 0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(
            cnf.clauses()[0],
            vec![Lit::neg(Var::new(0)), Lit::pos(Var::new(1))]
        );
    }

    #[test]
    fn parse_multi_line_clause() {
        let cnf = parse("p cnf 3 1\n1\n2\n3 0\n").unwrap();
        assert_eq!(cnf.clauses()[0].len(), 3);
    }

    #[test]
    fn error_on_missing_header() {
        assert!(matches!(
            parse("1 0\n"),
            Err(ParseDimacsError::BadHeader { .. })
        ));
        assert!(matches!(parse(""), Err(ParseDimacsError::BadHeader { .. })));
    }

    #[test]
    fn error_on_bad_token() {
        assert!(matches!(
            parse("p cnf 1 1\nx 0\n"),
            Err(ParseDimacsError::BadToken { .. })
        ));
    }

    #[test]
    fn error_on_out_of_range_var() {
        assert!(matches!(
            parse("p cnf 1 1\n2 0\n"),
            Err(ParseDimacsError::VarOutOfRange { value: 2, .. })
        ));
    }

    #[test]
    fn error_on_unterminated_clause() {
        assert!(matches!(
            parse("p cnf 1 1\n1\n"),
            Err(ParseDimacsError::UnterminatedClause)
        ));
    }

    #[test]
    fn error_on_too_many_clauses() {
        assert!(matches!(
            parse("p cnf 1 1\n1 0\n-1 0\n"),
            Err(ParseDimacsError::TooManyClauses { declared: 1 })
        ));
    }

    #[test]
    fn write_then_parse_round_trips() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([Lit::pos(Var::new(0)), Lit::neg(Var::new(2))]);
        cnf.add_clause([Lit::neg(Var::new(1))]);
        cnf.add_clause([]);
        let text = write(&cnf);
        assert_eq!(parse(&text).unwrap(), cnf);
    }
}
