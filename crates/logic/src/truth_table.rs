//! Brute-force truth-table oracle.
//!
//! Everything in here is deliberately naive — `O(2^n)` enumeration over the
//! full variable space — because its only job is to be *obviously correct*.
//! The SAT solver, the all-solutions engines, and the BDD package are all
//! validated against these functions on small instances in their test
//! suites.

use std::collections::BTreeSet;

use crate::{Assignment, Cnf, Cube, CubeSet, Var};

/// Hard cap on oracle variable counts, to protect tests from accidental
/// exponential blow-ups.
pub const MAX_ORACLE_VARS: usize = 26;

fn check_width(n: usize) {
    assert!(
        n <= MAX_ORACLE_VARS,
        "truth-table oracle limited to {MAX_ORACLE_VARS} variables, got {n}"
    );
}

/// Enumerates every total assignment over `cnf.num_vars()` variables that
/// satisfies the formula.
///
/// # Panics
///
/// Panics if the formula has more than [`MAX_ORACLE_VARS`] variables.
pub fn enumerate_models(cnf: &Cnf) -> Vec<Assignment> {
    let n = cnf.num_vars();
    check_width(n);
    let mut out = Vec::new();
    for bits in 0..(1u64 << n) {
        let a = Assignment::from_bits(bits, n);
        if cnf.eval(&a) == Some(true) {
            out.push(a);
        }
    }
    out
}

/// Counts satisfying total assignments of `cnf`.
///
/// # Panics
///
/// Panics if the formula has more than [`MAX_ORACLE_VARS`] variables.
pub fn count_models(cnf: &Cnf) -> u64 {
    let n = cnf.num_vars();
    check_width(n);
    (0..(1u64 << n))
        .filter(|&bits| cnf.eval(&Assignment::from_bits(bits, n)) == Some(true))
        .count() as u64
}

/// `true` if `cnf` has at least one model (decided by enumeration).
///
/// # Panics
///
/// Panics if the formula has more than [`MAX_ORACLE_VARS`] variables.
pub fn is_satisfiable(cnf: &Cnf) -> bool {
    let n = cnf.num_vars();
    check_width(n);
    (0..(1u64 << n)).any(|bits| cnf.eval(&Assignment::from_bits(bits, n)) == Some(true))
}

/// The exact projection of `cnf`'s models onto `vars`: the set of minterm
/// cubes over `vars` for which *some* completion over the remaining
/// variables satisfies `cnf`.
///
/// This is precisely the mathematical object the all-solutions engines
/// compute (the preimage, when `vars` are the present-state variables), so it
/// is the reference oracle for every enumeration engine.
///
/// # Panics
///
/// Panics if `cnf` has more than [`MAX_ORACLE_VARS`] variables.
pub fn project_models(cnf: &Cnf, vars: &[Var]) -> BTreeSet<Cube> {
    enumerate_models(cnf)
        .iter()
        .map(|a| a.project(vars))
        .collect()
}

/// The projection of `cnf`'s models onto `vars` as a [`CubeSet`] of
/// minterms.
///
/// # Panics
///
/// Panics if `cnf` has more than [`MAX_ORACLE_VARS`] variables.
pub fn project_models_set(cnf: &Cnf, vars: &[Var]) -> CubeSet {
    project_models(cnf, vars).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lit;

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    #[test]
    fn xor_has_two_models() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        cnf.add_clause([lit(0, false), lit(1, false)]);
        assert_eq!(count_models(&cnf), 2);
        assert!(is_satisfiable(&cnf));
        let models = enumerate_models(&cnf);
        assert_eq!(models.len(), 2);
        for m in models {
            assert!(m.is_total());
            assert_ne!(m.value(Var::new(0)), m.value(Var::new(1)));
        }
    }

    #[test]
    fn empty_clause_unsat() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([]);
        assert!(!is_satisfiable(&cnf));
        assert_eq!(count_models(&cnf), 0);
    }

    #[test]
    fn projection_collapses_hidden_vars() {
        // (x0 ∨ x1): projected on x0, both x0=0 (via x1=1) and x0=1 work.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let proj = project_models(&cnf, &[Var::new(0)]);
        assert_eq!(proj.len(), 2);
    }

    #[test]
    fn projection_excludes_unreachable() {
        // x0 must be true: projection on x0 is the single cube x0.
        let mut cnf = Cnf::new(2);
        cnf.add_unit(lit(0, true));
        let proj = project_models_set(&cnf, &[Var::new(0)]);
        assert_eq!(proj.len(), 1);
        assert_eq!(proj.cubes()[0], Cube::unit(lit(0, true)));
    }

    #[test]
    #[should_panic(expected = "oracle limited")]
    fn oracle_guard_trips() {
        let cnf = Cnf::new(MAX_ORACLE_VARS + 1);
        let _ = count_models(&cnf);
    }
}
