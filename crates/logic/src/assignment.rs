use std::fmt;

use crate::{Cube, Lit, Var};

/// A (possibly partial) assignment of Boolean values to a dense variable
/// space.
///
/// Internally one `Option<bool>` per variable. This is the exchange format
/// between the SAT solver (which reports total models), the all-solutions
/// engines (which work with partial assignments), and the simulation /
/// truth-table oracles.
///
/// # Examples
///
/// ```
/// use presat_logic::{Assignment, Lit, Var};
/// let mut a = Assignment::new(3);
/// a.assign(Var::new(0), true);
/// a.assign_lit(Lit::neg(Var::new(2)));
/// assert_eq!(a.value(Var::new(0)), Some(true));
/// assert_eq!(a.value(Var::new(1)), None);
/// assert_eq!(a.value(Var::new(2)), Some(false));
/// assert_eq!(a.assigned_count(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Assignment {
    values: Vec<Option<bool>>,
}

impl Assignment {
    /// Creates an empty (all-unassigned) assignment over `num_vars`
    /// variables.
    pub fn new(num_vars: usize) -> Self {
        Assignment {
            values: vec![None; num_vars],
        }
    }

    /// Builds a total assignment from the low `num_vars` bits of `bits`
    /// (bit *i* gives the value of variable *i*).
    ///
    /// ```
    /// use presat_logic::{Assignment, Var};
    /// let a = Assignment::from_bits(0b101, 3);
    /// assert_eq!(a.value(Var::new(0)), Some(true));
    /// assert_eq!(a.value(Var::new(1)), Some(false));
    /// assert_eq!(a.value(Var::new(2)), Some(true));
    /// ```
    pub fn from_bits(bits: u64, num_vars: usize) -> Self {
        assert!(num_vars <= 64, "from_bits supports at most 64 variables");
        Assignment {
            values: (0..num_vars).map(|i| Some(bits >> i & 1 == 1)).collect(),
        }
    }

    /// Number of variables in the underlying variable space (assigned or
    /// not).
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Number of variables currently assigned.
    pub fn assigned_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// `true` if every variable has a value.
    pub fn is_total(&self) -> bool {
        self.values.iter().all(|v| v.is_some())
    }

    /// The value of `var`, or `None` if unassigned.
    ///
    /// # Panics
    ///
    /// Panics if `var` is outside the variable space.
    #[inline]
    pub fn value(&self, var: Var) -> Option<bool> {
        self.values[var.index()]
    }

    /// Evaluates a literal: `Some(true)` if satisfied, `Some(false)` if
    /// falsified, `None` if its variable is unassigned.
    #[inline]
    pub fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|v| lit.eval(v))
    }

    /// Assigns `var := value`, overwriting any previous value.
    #[inline]
    pub fn assign(&mut self, var: Var, value: bool) {
        self.values[var.index()] = Some(value);
    }

    /// Makes `lit` true (assigns its variable to the literal's phase).
    #[inline]
    pub fn assign_lit(&mut self, lit: Lit) {
        self.assign(lit.var(), lit.phase());
    }

    /// Removes the value of `var`.
    #[inline]
    pub fn unassign(&mut self, var: Var) {
        self.values[var.index()] = None;
    }

    /// Clears every assignment, keeping the variable space.
    pub fn clear(&mut self) {
        self.values.fill(None);
    }

    /// Iterates over the `(var, value)` pairs that are assigned, in
    /// ascending variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, bool)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|b| (Var::new(i), b)))
    }

    /// The satisfied literals of this assignment, in ascending variable
    /// order (the canonical cube of the assignment).
    pub fn literals(&self) -> impl Iterator<Item = Lit> + '_ {
        self.iter().map(|(v, b)| Lit::with_phase(v, b))
    }

    /// Projects this assignment onto `vars`, producing the [`Cube`] of the
    /// values it assigns to those variables. Unassigned variables in `vars`
    /// are skipped.
    ///
    /// ```
    /// use presat_logic::{Assignment, Var};
    /// let a = Assignment::from_bits(0b10, 2);
    /// let c = a.project(&[Var::new(1)]);
    /// assert_eq!(c.to_string(), "x1");
    /// ```
    pub fn project(&self, vars: &[Var]) -> Cube {
        Cube::from_lits(
            vars.iter()
                .filter_map(|&v| self.value(v).map(|b| Lit::with_phase(v, b))),
        )
        .expect("projection of an assignment cannot contain contradictory literals")
    }

    /// Packs the assignment into an integer, bit *i* holding variable *i*.
    /// Unassigned variables pack as `0`.
    ///
    /// # Panics
    ///
    /// Panics if the variable space exceeds 64 variables.
    pub fn to_bits(&self) -> u64 {
        assert!(self.values.len() <= 64, "to_bits supports at most 64 variables");
        self.iter()
            .fold(0u64, |acc, (v, b)| acc | (u64::from(b) << v.index()))
    }
}

impl FromIterator<(Var, bool)> for Assignment {
    /// Collects `(var, value)` pairs into an assignment sized to the largest
    /// variable mentioned.
    fn from_iter<I: IntoIterator<Item = (Var, bool)>>(iter: I) -> Self {
        let pairs: Vec<_> = iter.into_iter().collect();
        let n = pairs.iter().map(|(v, _)| v.index() + 1).max().unwrap_or(0);
        let mut a = Assignment::new(n);
        for (v, b) in pairs {
            a.assign(v, b);
        }
        a
    }
}

impl fmt::Debug for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Assignment{{")?;
        let mut first = true;
        for (v, b) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{v}={}", u8::from(b))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_assignment_is_empty() {
        let a = Assignment::new(4);
        assert_eq!(a.num_vars(), 4);
        assert_eq!(a.assigned_count(), 0);
        assert!(!a.is_total());
    }

    #[test]
    fn assign_and_unassign() {
        let mut a = Assignment::new(2);
        a.assign(Var::new(1), true);
        assert_eq!(a.value(Var::new(1)), Some(true));
        a.unassign(Var::new(1));
        assert_eq!(a.value(Var::new(1)), None);
    }

    #[test]
    fn lit_value_respects_phase() {
        let mut a = Assignment::new(1);
        a.assign(Var::new(0), false);
        assert_eq!(a.lit_value(Lit::pos(Var::new(0))), Some(false));
        assert_eq!(a.lit_value(Lit::neg(Var::new(0))), Some(true));
    }

    #[test]
    fn bits_round_trip() {
        for bits in 0..16u64 {
            let a = Assignment::from_bits(bits, 4);
            assert!(a.is_total());
            assert_eq!(a.to_bits(), bits);
        }
    }

    #[test]
    fn projection_skips_unassigned() {
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), true);
        let cube = a.project(&[Var::new(0), Var::new(2)]);
        assert_eq!(cube.len(), 1);
        assert_eq!(cube.lits()[0], Lit::pos(Var::new(0)));
    }

    #[test]
    fn from_iterator_sizes_to_max_var() {
        let a: Assignment = [(Var::new(5), true)].into_iter().collect();
        assert_eq!(a.num_vars(), 6);
        assert_eq!(a.value(Var::new(5)), Some(true));
    }

    #[test]
    fn clear_resets_all() {
        let mut a = Assignment::from_bits(0b111, 3);
        a.clear();
        assert_eq!(a.assigned_count(), 0);
        assert_eq!(a.num_vars(), 3);
    }

    #[test]
    fn literals_are_sorted_by_variable() {
        let a = Assignment::from_bits(0b01, 2);
        let lits: Vec<_> = a.literals().collect();
        assert_eq!(lits, vec![Lit::pos(Var::new(0)), Lit::neg(Var::new(1))]);
    }
}
