use std::fmt;

use crate::{Assignment, Cube, Lit, Var};

/// A clause: a disjunction of literals. The empty clause is constant false.
pub type Clause = Vec<Lit>;

/// A propositional formula in conjunctive normal form.
///
/// `Cnf` is the interchange format between the circuit encoder
/// (`presat-circuit`), the CDCL solver (`presat-sat`), and the all-solutions
/// engines (`presat-allsat`). It owns a dense variable space `x0..x(n-1)` and
/// a clause list; clauses are stored as given (no preprocessing) so that
/// encoders stay in control of structure.
///
/// # Examples
///
/// ```
/// use presat_logic::{Assignment, Cnf, Lit, Var};
/// let mut cnf = Cnf::new(2);
/// cnf.add_clause([Lit::pos(Var::new(0)), Lit::pos(Var::new(1))]);
/// assert!(cnf.eval(&Assignment::from_bits(0b01, 2)).unwrap());
/// assert!(!cnf.eval(&Assignment::from_bits(0b00, 2)).unwrap());
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates a CNF with `num_vars` variables and no clauses (constant
    /// true).
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables in the formula's variable space.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences across all clauses.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Allocates a fresh variable and returns it.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Grows the variable space to at least `n` variables.
    pub fn ensure_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Adds a clause. Duplicate literals are kept as given; tautological
    /// clauses are the caller's responsibility (the solver tolerates them).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a literal references a variable outside
    /// the variable space.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let clause: Clause = lits.into_iter().collect();
        debug_assert!(
            clause.iter().all(|l| l.var().index() < self.num_vars),
            "clause literal outside variable space"
        );
        self.clauses.push(clause);
    }

    /// Adds the unit clause `lit`.
    pub fn add_unit(&mut self, lit: Lit) {
        self.add_clause([lit]);
    }

    /// Asserts the conjunction `cube` (one unit clause per literal).
    pub fn assert_cube(&mut self, cube: &Cube) {
        for &l in cube.lits() {
            self.add_unit(l);
        }
    }

    /// Adds the blocking clause for `cube`: the clause `¬l1 ∨ … ∨ ¬lk`,
    /// which excludes exactly the assignments covered by the cube.
    pub fn block_cube(&mut self, cube: &Cube) {
        self.add_clause(cube.lits().iter().map(|&l| !l));
    }

    /// Conjoins another CNF over the same variable space.
    pub fn append(&mut self, other: &Cnf) {
        self.num_vars = self.num_vars.max(other.num_vars);
        self.clauses.extend(other.clauses.iter().cloned());
    }

    /// Evaluates the CNF under a total assignment: `None` if some clause has
    /// only unassigned literals left undetermined, otherwise the value.
    ///
    /// For a partial assignment this is three-valued: a clause with a
    /// satisfied literal is true; a clause with all literals falsified makes
    /// the CNF false; otherwise the result is undetermined (`None`).
    pub fn eval(&self, a: &Assignment) -> Option<bool> {
        let mut undetermined = false;
        for clause in &self.clauses {
            let mut sat = false;
            let mut open = false;
            for &l in clause {
                match a.lit_value(l) {
                    Some(true) => {
                        sat = true;
                        break;
                    }
                    Some(false) => {}
                    None => open = true,
                }
            }
            if sat {
                continue;
            }
            if open {
                undetermined = true;
            } else {
                return Some(false);
            }
        }
        if undetermined {
            None
        } else {
            Some(true)
        }
    }

    /// `true` if the total assignment satisfies every clause.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not total over the formula's variable space in debug
    /// builds (use [`Cnf::eval`] for partial assignments).
    pub fn is_satisfied_by(&self, a: &Assignment) -> bool {
        debug_assert!(a.num_vars() >= self.num_vars);
        self.eval(a) == Some(true)
    }

    /// The variables that actually occur in some clause, sorted and
    /// deduplicated.
    pub fn support(&self) -> Vec<Var> {
        let mut seen = vec![false; self.num_vars];
        for clause in &self.clauses {
            for &l in clause {
                seen[l.var().index()] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| Var::new(i))
            .collect()
    }
}

impl fmt::Debug for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cnf({} vars, {} clauses)", self.num_vars, self.clauses.len())
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "(")?;
            for (j, l) in clause.iter().enumerate() {
                if j > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
        if self.clauses.is_empty() {
            write!(f, "⊤")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    #[test]
    fn empty_cnf_is_true() {
        let cnf = Cnf::new(2);
        assert_eq!(cnf.eval(&Assignment::new(2)), Some(true));
    }

    #[test]
    fn empty_clause_is_false() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([]);
        assert_eq!(cnf.eval(&Assignment::new(1)), Some(false));
    }

    #[test]
    fn eval_three_valued() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let mut a = Assignment::new(2);
        assert_eq!(cnf.eval(&a), None);
        a.assign(Var::new(0), true);
        assert_eq!(cnf.eval(&a), Some(true));
        a.assign(Var::new(0), false);
        assert_eq!(cnf.eval(&a), None);
        a.assign(Var::new(1), false);
        assert_eq!(cnf.eval(&a), Some(false));
    }

    #[test]
    fn fresh_var_extends_space() {
        let mut cnf = Cnf::new(1);
        let v = cnf.fresh_var();
        assert_eq!(v.index(), 1);
        assert_eq!(cnf.num_vars(), 2);
    }

    #[test]
    fn block_cube_excludes_exactly_cube() {
        let mut cnf = Cnf::new(2);
        let c = Cube::from_lits([lit(0, true), lit(1, false)]).unwrap();
        cnf.block_cube(&c);
        // assignment 01 (x0=1, x1=0) is now excluded
        assert_eq!(cnf.eval(&Assignment::from_bits(0b01, 2)), Some(false));
        assert_eq!(cnf.eval(&Assignment::from_bits(0b11, 2)), Some(true));
        assert_eq!(cnf.eval(&Assignment::from_bits(0b00, 2)), Some(true));
    }

    #[test]
    fn assert_cube_forces_cube() {
        let mut cnf = Cnf::new(2);
        let c = Cube::from_lits([lit(0, true)]).unwrap();
        cnf.assert_cube(&c);
        assert_eq!(cnf.eval(&Assignment::from_bits(0b01, 2)), Some(true));
        assert_eq!(cnf.eval(&Assignment::from_bits(0b10, 2)), Some(false));
    }

    #[test]
    fn support_reports_used_vars() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause([lit(1, true), lit(3, false)]);
        assert_eq!(cnf.support(), vec![Var::new(1), Var::new(3)]);
    }

    #[test]
    fn append_conjoins() {
        let mut a = Cnf::new(1);
        a.add_unit(lit(0, true));
        let mut b = Cnf::new(2);
        b.add_unit(lit(1, false));
        a.append(&b);
        assert_eq!(a.num_vars(), 2);
        assert_eq!(a.num_clauses(), 2);
        assert_eq!(a.eval(&Assignment::from_bits(0b01, 2)), Some(true));
    }

    #[test]
    fn literal_count() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        cnf.add_clause([lit(2, false)]);
        assert_eq!(cnf.num_literals(), 3);
    }
}
