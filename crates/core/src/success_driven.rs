//! The novel engine: success-driven search with a shared solution graph.

use std::collections::HashMap;

use presat_logic::{Assignment, Cnf, Lit, Var};
use presat_obs::{Event, ObsSink, StopReason};
use presat_sat::{SolveResult, Solver};

use crate::engine::{AllSatEngine, AllSatProblem, AllSatResult, EnumerationStats};
use crate::limits::EnumLimits;
use crate::signature::{ConnectivityIndex, ResidualIndex, ResidualSignature};
use crate::solution_graph::{SolutionGraph, SolutionNodeId};

/// How the success-driven engine recognizes equivalent subspaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SignatureMode {
    /// No reuse: plain model-guided backtracking (ablation baseline).
    None,
    /// Static connectivity signature: prefixes agreeing on the
    /// structurally relevant prefix variables share a subgraph. Cheap but
    /// conservative ([`ConnectivityIndex`]).
    Static,
    /// Dynamic residual-cone signature: prefixes whose unit-propagated
    /// residual suffix cones are identical share a subgraph. More work per
    /// node, dramatically more reuse ([`ResidualIndex`]). The default.
    #[default]
    Dynamic,
}

/// All-solutions enumeration by backtracking over the important variables
/// with **no blocking clauses**.
///
/// The search branches on the important variables in problem order; at each
/// node a CDCL sub-solver decides (under the branching prefix as
/// assumptions) whether the subspace still contains solutions, pruning dead
/// subtrees wholesale. Two mechanisms make this dramatically cheaper than
/// plain exhaustive search:
///
/// 1. **Model guidance** — a satisfying model returned at a node is a
///    certificate for the entire branch that agrees with it, so that branch
///    descends without further solver calls until it diverges from the
///    model.
/// 2. **Success-driven learning** — once a subspace has been completely
///    enumerated, the resulting [`SolutionGraph`] node is cached under a
///    sound subspace signature (see [`SignatureMode`]); re-entering an
///    equivalent subspace reuses the whole subgraph, turning exponentially
///    many isomorphic subspaces into one.
///
/// The output solution graph doubles as a compact representation of the
/// enumerated set (the preimage, in `presat-preimage`); no explicit cube
/// explosion ever happens, which is the headline claim of the reproduced
/// paper.
///
/// Both mechanisms can be toggled for ablation studies.
///
/// # Examples
///
/// ```
/// use presat_allsat::{AllSatEngine, AllSatProblem, SuccessDrivenAllSat};
/// use presat_logic::{Cnf, Lit, Var};
///
/// // odd parity over three important variables
/// let vars: Vec<Var> = (0..3).map(Var::new).collect();
/// let mut cnf = Cnf::new(3);
/// for bits in 0..8u32 {
///     if bits.count_ones() % 2 == 0 {
///         // block each even-parity assignment
///         cnf.add_clause((0..3).map(|i| Lit::with_phase(vars[i], bits >> i & 1 == 0)));
///     }
/// }
/// let problem = AllSatProblem::new(cnf, vars);
/// let result = SuccessDrivenAllSat::default().enumerate(&problem);
/// assert_eq!(result.minterm_count(3), 4);
/// assert_eq!(result.stats.blocking_clauses, 0);   // never any
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuccessDrivenAllSat {
    pub(crate) signature: SignatureMode,
    pub(crate) model_guidance: bool,
}

impl Default for SuccessDrivenAllSat {
    fn default() -> Self {
        SuccessDrivenAllSat {
            signature: SignatureMode::Dynamic,
            model_guidance: true,
        }
    }
}

impl SuccessDrivenAllSat {
    /// The full engine (dynamic signatures, model guidance on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the subspace-signature mode (ablation).
    pub fn with_signature(mut self, mode: SignatureMode) -> Self {
        self.signature = mode;
        self
    }

    /// Enables or disables success-driven subspace reuse (ablation);
    /// shorthand for selecting [`SignatureMode::Dynamic`] or
    /// [`SignatureMode::None`].
    pub fn with_reuse(mut self, on: bool) -> Self {
        self.signature = if on {
            SignatureMode::Dynamic
        } else {
            SignatureMode::None
        };
        self
    }

    /// Enables or disables model guidance (ablation).
    pub fn with_model_guidance(mut self, on: bool) -> Self {
        self.model_guidance = on;
        self
    }
}

/// Exact cache key; never hashed lossily, so reuse cannot be unsound.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) enum SigKey {
    /// Depth, connectivity signature of the prefix, and the *forced*
    /// suffix `(depth, phase)` pairs still ahead (partition-cube levels —
    /// empty in sequential mode). Two prefixes only share a subspace if
    /// the constraints the cube imposes below this depth agree too.
    Static(u32, Vec<bool>, Vec<(u32, bool)>),
    /// Depth, unit-implied suffix values, residual suffix cone. (Forced
    /// cube literals ride in `prefix_lits`, so they already show up in the
    /// implied suffix values — no extra component needed.)
    Dynamic(u32, Vec<(u32, bool)>, ResidualSignature),
}

/// One in-flight enumeration: the sub-solver, the signature indices, the
/// solution graph under construction, and the branching prefix. The
/// sequential engine runs one `Search` for the whole problem; the parallel
/// engine (`crate::parallel`) runs one per partition cube, threading the
/// persistent pieces (solver, indices, graph, cache) through a worker so
/// they warm up across that worker's cubes; the incremental session
/// (`crate::incremental`) threads them across whole `enumerate` calls.
///
/// `prefix_lits` may carry extra non-branching assumptions (activation
/// literals) *ahead* of the branching prefix: `prefix_vals` indexes
/// branching positions only, so the two vectors are allowed to differ in
/// length by the number of base assumptions.
pub(crate) struct Search<'p> {
    pub(crate) cnf: &'p Cnf,
    pub(crate) important: &'p [Var],
    pub(crate) solver: Solver,
    pub(crate) conn: Option<ConnectivityIndex>,
    pub(crate) residual: Option<ResidualIndex>,
    pub(crate) graph: SolutionGraph,
    pub(crate) cache: HashMap<SigKey, SolutionNodeId>,
    pub(crate) stats: EnumerationStats,
    pub(crate) prefix_lits: Vec<Lit>,
    pub(crate) prefix_vals: Vec<bool>,
    /// Branching levels pinned by a partition cube (indexed by depth;
    /// empty when nothing is forced, as in sequential mode). A forced
    /// level does not branch: the forced phase's child is explored, the
    /// other child is `BOTTOM` by construction, and the forced literal is
    /// expected to already sit in `prefix_lits` as a base assumption.
    /// Exploring the full important-variable tree this way yields the
    /// canonical reduced DAG of `f ∧ cube`, which is what makes the
    /// adaptive parallel merge (union over disjoint cubes) bit-identical
    /// to the sequential result.
    pub(crate) forced: Vec<Option<bool>>,
    pub(crate) model_guidance: bool,
    pub(crate) sink: &'p mut dyn ObsSink,
    /// Solution-count cap ([`EnumLimits::max_solutions`]); solutions are
    /// only counted when it is set.
    pub(crate) max_solutions: Option<u64>,
    /// Minterms enumerated so far (tracked only under `max_solutions`).
    pub(crate) solutions_found: u64,
    /// Sticky early-stop marker. Once set, [`Search::explore`] returns
    /// `BOTTOM` for every still-unexplored subspace (the partial result
    /// stays a disjoint subset of the full one) and stops inserting into
    /// the signature cache (a truncated subgraph must never be reused as
    /// the canonical answer for its signature).
    pub(crate) stopped: Option<StopReason>,
}

impl Search<'_> {
    /// Computes the cache key for the current prefix at `depth`, or `None`
    /// if reuse is off. `Some(Err(()))` signals that unit propagation under
    /// the prefix already conflicts (the subspace is empty).
    fn signature_at(&mut self, depth: usize) -> Option<Result<SigKey, ()>> {
        if let Some(conn) = &self.conn {
            let forced_suffix: Vec<(u32, bool)> = self
                .forced
                .iter()
                .enumerate()
                .skip(depth)
                .filter_map(|(d, p)| p.map(|b| (d as u32, b)))
                .collect();
            return Some(Ok(SigKey::Static(
                depth as u32,
                conn.signature(depth, &self.prefix_vals).1,
                forced_suffix,
            )));
        }
        let residual = self.residual.as_ref()?;
        let Some(alpha) = self.solver.propagate_under(&self.prefix_lits) else {
            return Some(Err(()));
        };
        let suffix = &self.important[depth..];
        let implied: Vec<(u32, bool)> = suffix
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| alpha.value(v).map(|b| ((depth + i) as u32, b)))
            .collect();
        let cone = residual.signature(self.cnf, &alpha, suffix);
        Some(Ok(SigKey::Dynamic(depth as u32, implied, cone)))
    }

    /// Enumerates the subspace under the current prefix (of length `depth`)
    /// and returns its solution-graph node. The prefix may be any seeded
    /// partial assignment of the first `depth` branching levels — the
    /// parallel engine seeds it with a partition cube.
    pub(crate) fn explore(&mut self, depth: usize, hint: Option<Assignment>) -> SolutionNodeId {
        // Anytime unwinding: once stopped, every unexplored subspace
        // reports empty — the accumulated result stays a disjoint subset
        // of the exhaustive answer, flagged incomplete by the caller.
        if self.stopped.is_some() {
            return SolutionNodeId::BOTTOM;
        }
        // A hint is a model consistent with the current prefix; without
        // one, ask the sub-solver whether the subspace is still live.
        let model = match hint {
            Some(m) => m,
            None => {
                self.stats.solver_calls += 1;
                let db = self.solver.stats().problem_clauses + self.solver.live_learnt_count() as u64;
                self.stats.db_clauses_peak = self.stats.db_clauses_peak.max(db);
                match self.solver.solve_with_assumptions(&self.prefix_lits) {
                    SolveResult::Unsat => return SolutionNodeId::BOTTOM,
                    SolveResult::Unknown(reason) => {
                        // Inconclusive is NOT empty-and-proven: mark the
                        // stop and under-approximate this subspace.
                        self.stopped = Some(reason);
                        return SolutionNodeId::BOTTOM;
                    }
                    SolveResult::Sat(m) => m,
                }
            }
        };
        let k = self.important.len();
        if depth == k {
            self.count_solutions(1);
            return SolutionNodeId::TOP;
        }
        let sig = match self.signature_at(depth) {
            Some(Ok(sig)) => {
                if let Some(&node) = self.cache.get(&sig) {
                    self.stats.cache_hits += 1;
                    self.sink.record(&Event::CacheHit {
                        depth: depth as u32,
                    });
                    if self.max_solutions.is_some() {
                        // The reused subgraph is complete: its minterms all
                        // enter the result in one step.
                        let found = self.graph.minterm_count_from(node, depth as u32);
                        self.count_solutions(u64::try_from(found).unwrap_or(u64::MAX));
                    }
                    return node;
                }
                self.stats.cache_misses += 1;
                self.sink.record(&Event::CacheMiss {
                    depth: depth as u32,
                });
                Some(sig)
            }
            // Propagation conflict: the subspace is provably empty. (With a
            // model in hand this cannot happen, but the check is sound.)
            Some(Err(())) => return SolutionNodeId::BOTTOM,
            None => None,
        };

        let var = self.important[depth];
        if let Some(phase) = self.forced.get(depth).copied().flatten() {
            // Partition-cube level: no branch. The forced literal already
            // sits in `prefix_lits` as a base assumption, so only the
            // branching-value vector advances; the opposite child is empty
            // by construction (the cube partitions the space).
            self.prefix_vals.push(phase);
            let child = self.explore(depth + 1, self.model_guidance.then_some(model));
            self.prefix_vals.pop();
            let (lo, hi) = if phase {
                (SolutionNodeId::BOTTOM, child)
            } else {
                (child, SolutionNodeId::BOTTOM)
            };
            let node = self.graph.mk(depth, lo, hi);
            if let Some(sig) = sig {
                if self.stopped.is_none() {
                    self.cache.insert(sig, node);
                }
            }
            return node;
        }
        let hint_phase = model
            .value(var)
            .expect("solver models are total over the formula space");

        // Hinted branch first: the model certifies it, so with guidance on
        // it descends solver-free until it diverges from the model.
        self.prefix_lits.push(Lit::with_phase(var, hint_phase));
        self.prefix_vals.push(hint_phase);
        let hinted = self.explore(depth + 1, self.model_guidance.then(|| model.clone()));
        self.prefix_lits.pop();
        self.prefix_vals.pop();

        self.prefix_lits.push(Lit::with_phase(var, !hint_phase));
        self.prefix_vals.push(!hint_phase);
        let other = self.explore(depth + 1, None);
        self.prefix_lits.pop();
        self.prefix_vals.pop();

        let (lo, hi) = if hint_phase {
            (other, hinted)
        } else {
            (hinted, other)
        };
        let node = self.graph.mk(depth, lo, hi);
        if let Some(sig) = sig {
            // A node finished after a stop may be truncated; caching it
            // would let a later (possibly complete) run silently reuse an
            // under-approximation. Only exhaustively explored subspaces
            // enter the cache.
            if self.stopped.is_none() {
                self.cache.insert(sig, node);
            }
        }
        node
    }

    /// Accounts `n` newly enumerated minterms against the solution cap.
    fn count_solutions(&mut self, n: u64) {
        if let Some(max) = self.max_solutions {
            self.solutions_found = self.solutions_found.saturating_add(n);
            if self.solutions_found >= max && self.stopped.is_none() {
                self.stopped = Some(StopReason::MaxSolutions);
            }
        }
    }
}

impl AllSatEngine for SuccessDrivenAllSat {
    fn name(&self) -> &'static str {
        "success-driven"
    }

    fn enumerate_limited(
        &self,
        problem: &AllSatProblem,
        limits: &EnumLimits,
        sink: &mut dyn ObsSink,
    ) -> AllSatResult {
        let k = problem.important.len();
        let mut solver = Solver::from_cnf(&problem.cnf);
        solver.set_budget(limits.budget);
        solver.set_cancel(limits.cancel.clone());
        let mut search = Search {
            cnf: &problem.cnf,
            important: &problem.important,
            solver,
            conn: (self.signature == SignatureMode::Static)
                .then(|| ConnectivityIndex::build(&problem.cnf, &problem.important)),
            residual: (self.signature == SignatureMode::Dynamic)
                .then(|| ResidualIndex::build(&problem.cnf)),
            graph: SolutionGraph::new(k),
            cache: HashMap::new(),
            stats: EnumerationStats::default(),
            prefix_lits: Vec::with_capacity(k),
            prefix_vals: Vec::with_capacity(k),
            forced: Vec::new(),
            model_guidance: self.model_guidance,
            sink,
            max_solutions: limits.max_solutions,
            solutions_found: 0,
            stopped: None,
        };
        let root = search.explore(0, None);
        search.stats.graph_nodes = search.graph.reachable_count(root) as u64;
        search.stats.sat = *search.solver.stats();
        let db = search.stats.sat.problem_clauses + search.solver.live_learnt_count() as u64;
        search.stats.db_clauses_peak = search.stats.db_clauses_peak.max(db);
        search.stats.sat_conflicts = search.stats.sat.conflicts;
        search.stats.sat_decisions = search.stats.sat.decisions;
        let cubes = search.graph.to_cube_set(root, &problem.important);
        search.stats.cubes_emitted = cubes.len() as u64;
        for cube in &cubes {
            search.sink.record(&Event::Solution {
                width: cube.len() as u32,
            });
        }
        if let Some(reason) = search.stopped {
            search.stats.budget_stops = 1;
            search.sink.record(&Event::BudgetStop { reason });
        }
        AllSatResult {
            cubes,
            graph: Some((search.graph, root)),
            stats: search.stats,
            complete: search.stopped.is_none(),
            stop_reason: search.stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::BlockingAllSat;
    use presat_logic::{truth_table, Cnf, Var};

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    fn parity_cnf(n: usize) -> Cnf {
        // Clauses blocking every even-parity assignment of x0..x(n-1).
        let mut cnf = Cnf::new(n);
        for bits in 0..(1u32 << n) {
            if bits.count_ones() % 2 == 0 {
                cnf.add_clause((0..n).map(|i| lit(i, bits >> i & 1 == 0)));
            }
        }
        cnf
    }

    #[test]
    fn simple_projection() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let p = AllSatProblem::new(cnf.clone(), vec![Var::new(0), Var::new(1)]);
        let r = SuccessDrivenAllSat::new().enumerate(&p);
        let expect = truth_table::project_models_set(&cnf, &p.important);
        assert!(r.cubes.semantically_eq(&expect, &p.important));
        assert_eq!(r.minterm_count(2), 3);
    }

    #[test]
    fn unsat_gives_bottom() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([]);
        let p = AllSatProblem::new(cnf, vec![Var::new(0)]);
        let r = SuccessDrivenAllSat::new().enumerate(&p);
        assert!(r.cubes.is_empty());
        let (g, root) = r.graph.expect("graph always built");
        assert_eq!(root, SolutionNodeId::BOTTOM);
        assert_eq!(g.minterm_count(root), 0);
    }

    #[test]
    fn empty_important_sat() {
        let mut cnf = Cnf::new(1);
        cnf.add_unit(lit(0, true));
        let p = AllSatProblem::new(cnf, vec![]);
        let r = SuccessDrivenAllSat::new().enumerate(&p);
        assert!(r.cubes.is_universe());
    }

    #[test]
    fn no_blocking_clauses_ever() {
        let p = AllSatProblem::new(parity_cnf(6), (0..6).map(Var::new).collect());
        let r = SuccessDrivenAllSat::new().enumerate(&p);
        assert_eq!(r.stats.blocking_clauses, 0);
        assert_eq!(r.minterm_count(6), 32);
    }

    #[test]
    fn parity_graph_is_linear_while_blocking_explodes() {
        let n = 8;
        let p = AllSatProblem::new(parity_cnf(n), (0..n).map(Var::new).collect());
        let sd = SuccessDrivenAllSat::new().enumerate(&p);
        let bl = BlockingAllSat::new().enumerate(&p);
        assert_eq!(sd.minterm_count(n), 1 << (n - 1));
        assert_eq!(bl.stats.blocking_clauses, 1 << (n - 1));
        assert!(
            sd.stats.graph_nodes <= (2 * n + 2) as u64,
            "graph should be linear in n, got {}",
            sd.stats.graph_nodes
        );
        assert!(sd.stats.cache_hits > 0, "parity must trigger reuse");
    }

    #[test]
    fn reuse_cuts_solver_calls_on_parity() {
        let n = 8;
        let p = AllSatProblem::new(parity_cnf(n), (0..n).map(Var::new).collect());
        let with = SuccessDrivenAllSat::new().enumerate(&p);
        let without = SuccessDrivenAllSat::new().with_reuse(false).enumerate(&p);
        assert!(
            with.stats.solver_calls < without.stats.solver_calls,
            "reuse {} !< no-reuse {}",
            with.stats.solver_calls,
            without.stats.solver_calls
        );
        // Same semantics either way.
        let vars: Vec<Var> = (0..n).map(Var::new).collect();
        assert!(with.cubes.semantically_eq(&without.cubes, &vars));
    }

    #[test]
    fn ablations_agree_with_oracle_on_random_formulas() {
        use presat_logic::rng::SplitMix64;
        use presat_logic::Lit;
        let mut rng = SplitMix64::seed_from_u64(5);
        let engines = [
            SuccessDrivenAllSat::new(),
            SuccessDrivenAllSat::new().with_signature(SignatureMode::Static),
            SuccessDrivenAllSat::new().with_signature(SignatureMode::None),
            SuccessDrivenAllSat::new().with_model_guidance(false),
            SuccessDrivenAllSat::new()
                .with_signature(SignatureMode::None)
                .with_model_guidance(false),
        ];
        for round in 0..20 {
            let n = 7;
            let mut cnf = Cnf::new(n);
            for _ in 0..10 {
                let c: Vec<Lit> = (0..3)
                    .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                    .collect();
                cnf.add_clause(c);
            }
            let important: Vec<Var> = Var::range(4).collect();
            let p = AllSatProblem::new(cnf.clone(), important.clone());
            let expect = truth_table::project_models_set(&cnf, &important);
            for engine in engines {
                let r = engine.enumerate(&p);
                assert!(
                    r.cubes.semantically_eq(&expect, &important),
                    "round {round}, engine config {engine:?}"
                );
                // Graph and cube set must agree on cardinality.
                let (g, root) = r.graph.expect("graph");
                assert_eq!(
                    g.minterm_count(root),
                    expect.enumerate_minterms(&important).len() as u128
                );
            }
        }
    }

    #[test]
    fn model_guidance_reduces_solver_calls() {
        let n = 8;
        let p = AllSatProblem::new(parity_cnf(n), (0..n).map(Var::new).collect());
        let with = SuccessDrivenAllSat::new().with_reuse(false).enumerate(&p);
        let without = SuccessDrivenAllSat::new()
            .with_reuse(false)
            .with_model_guidance(false)
            .enumerate(&p);
        assert!(with.stats.solver_calls < without.stats.solver_calls);
    }

    #[test]
    fn hidden_aux_variables_are_handled() {
        // Tseitin-ish: aux x3 ↔ (x0 ∧ x1); assert aux ∨ x2.
        let mut cnf = Cnf::new(4);
        cnf.add_clause([lit(3, false), lit(0, true)]);
        cnf.add_clause([lit(3, false), lit(1, true)]);
        cnf.add_clause([lit(3, true), lit(0, false), lit(1, false)]);
        cnf.add_clause([lit(3, true), lit(2, true)]);
        let important: Vec<Var> = Var::range(3).collect();
        let p = AllSatProblem::new(cnf.clone(), important.clone());
        let r = SuccessDrivenAllSat::new().enumerate(&p);
        let expect = truth_table::project_models_set(&cnf, &important);
        assert!(r.cubes.semantically_eq(&expect, &important));
    }

    #[test]
    fn implied_suffix_values_distinguish_subspaces() {
        // x0 → x1 and ¬x0 → ¬x1: both prefixes leave an empty residual
        // cone at depth 1 but imply different x1 values; the signature must
        // not merge them.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, false), lit(1, true)]);
        cnf.add_clause([lit(0, true), lit(1, false)]);
        let important = vec![Var::new(0), Var::new(1)];
        let p = AllSatProblem::new(cnf.clone(), important.clone());
        let r = SuccessDrivenAllSat::new().enumerate(&p);
        let expect = truth_table::project_models_set(&cnf, &important);
        assert!(r.cubes.semantically_eq(&expect, &important));
        assert_eq!(r.minterm_count(2), 2);
    }
}
