//! Resource limits for anytime all-SAT enumeration.
//!
//! [`EnumLimits`] bundles everything that can stop an enumeration before it
//! is exhaustive: a solver [`Budget`] (conflicts, propagations, wall-clock
//! deadline), a shared [`CancelToken`], and a solution-count cap. Every
//! engine accepts an `EnumLimits` via
//! [`AllSatEngine::enumerate_limited`](crate::AllSatEngine::enumerate_limited);
//! a run that stops early returns a *partial but sound* result — the cubes
//! found so far, flagged `complete = false` with a [`StopReason`] — never a
//! spurious empty set.

use presat_sat::{Budget, CancelToken, StopReason};

/// Limits for one enumeration run. The default is unlimited.
///
/// * `budget` — forwarded to the CDCL sub-solver(s). On the parallel
///   engine, counter limits (conflicts/propagations) apply **per worker**;
///   the wall-clock deadline is absolute and thus shared.
/// * `cancel` — a shared cooperative flag; every sub-solver polls it.
/// * `max_solutions` — stop once at least this many solutions (projected
///   minterms) have been enumerated. The result may slightly overshoot the
///   cap: subspace reuse and parallel workers account solutions in batches,
///   and everything already verified is kept rather than discarded.
#[derive(Clone, Debug, Default)]
pub struct EnumLimits {
    /// Sub-solver resource budget.
    pub budget: Budget,
    /// Cooperative cancellation flag shared with the caller.
    pub cancel: Option<CancelToken>,
    /// Stop after at least this many solution minterms.
    pub max_solutions: Option<u64>,
}

impl EnumLimits {
    /// No limits (same as `EnumLimits::default()`).
    pub fn none() -> Self {
        EnumLimits::default()
    }

    /// Sets the sub-solver budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Caps the number of enumerated solutions.
    pub fn with_max_solutions(mut self, max: u64) -> Self {
        self.max_solutions = Some(max);
        self
    }

    /// `true` if nothing is limited (the default).
    pub fn is_unlimited(&self) -> bool {
        self.budget.is_unlimited() && self.cancel.is_none() && self.max_solutions.is_none()
    }
}

/// Internal helper: the merged stop outcome of an enumeration — `None`
/// means the run was exhaustive.
pub(crate) fn first_reason(reasons: impl IntoIterator<Item = Option<StopReason>>) -> Option<StopReason> {
    reasons.into_iter().flatten().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        assert!(EnumLimits::none().is_unlimited());
        assert!(!EnumLimits::none()
            .with_budget(Budget::unlimited().with_conflicts(1))
            .is_unlimited());
        assert!(!EnumLimits::none()
            .with_cancel(CancelToken::new())
            .is_unlimited());
        assert!(!EnumLimits::none().with_max_solutions(1).is_unlimited());
    }

    #[test]
    fn first_reason_picks_earliest_some() {
        assert_eq!(
            first_reason([None, Some(StopReason::Deadline), Some(StopReason::Cancelled)]),
            Some(StopReason::Deadline)
        );
        assert_eq!(first_reason([None, None]), None);
    }
}
