//! Parallel cube-partitioned all-solutions enumeration.
//!
//! The search space over the important variables is split into `2^kp`
//! disjoint *partition cubes* — every phase combination of the first `kp`
//! branching levels (the guiding-path prefix). Worker threads pull cube
//! indices from a shared atomic counter (work stealing: fast workers drain
//! the queue), enumerate each cube's subspace with the sequential
//! success-driven engine seeded with the cube as its branching prefix, and
//! the results are merged into one solution graph **in cube order, not
//! completion order**.
//!
//! # Determinism
//!
//! The merged result is bit-identical to the sequential engine's output at
//! any thread count, which the test suite asserts structurally:
//!
//! * Each worker subspace result is a *reduced, hash-consed* decision DAG —
//!   the canonical representation of that subspace's exact solution set, a
//!   function of the problem alone, never of scheduling.
//! * [`SolutionGraph::import`] canonicalises each subspace root into the
//!   master graph, and the per-level [`SolutionGraph::mk`] combine rebuilds
//!   the prefix levels; reduced DAGs of equal functions are isomorphic, so
//!   the master graph matches the sequential graph node-for-node.
//! * [`SolutionGraph::to_cube_set`] walks the DAG in a fixed lo-then-hi
//!   order, so even the *order* of the emitted cubes matches.
//!
//! Work counters (decisions, conflicts, propagations) legitimately vary
//! with scheduling — a cube enumerated by a warmed-up solver clone does
//! less work — but solutions, cubes, and graph shape never do.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use presat_logic::{Cnf, Lit, Var};
use presat_obs::{Event, ObsSink, StopReason, VecSink};
use presat_sat::{CancelToken, Solver};

use crate::engine::{AllSatEngine, AllSatProblem, AllSatResult, EnumerationStats};
use crate::limits::{first_reason, EnumLimits};
use crate::signature::{ConnectivityIndex, ResidualIndex};
use crate::solution_graph::{SolutionGraph, SolutionNodeId};
use crate::success_driven::{Search, SignatureMode, SuccessDrivenAllSat};

/// Upper bound on the partition-prefix length: `2^8 = 256` cubes saturates
/// any sane thread count while keeping per-cube solver overhead bounded.
const MAX_PREFIX: usize = 8;

/// The parallel wrapper around [`SuccessDrivenAllSat`]: partitions the
/// branching space into disjoint prefix cubes, enumerates them on worker
/// threads, and merges deterministically.
///
/// `jobs == 1` (the default) delegates to the sequential engine outright;
/// `jobs == 0` asks the OS for the available parallelism. Construction is
/// cheap; all state lives inside `enumerate_with_sink`.
///
/// # Examples
///
/// ```
/// use presat_allsat::{AllSatEngine, AllSatProblem, ParallelAllSat, SuccessDrivenAllSat};
/// use presat_logic::{Cnf, Lit, Var};
///
/// let vars: Vec<Var> = (0..3).map(Var::new).collect();
/// let mut cnf = Cnf::new(3);
/// cnf.add_clause([Lit::pos(vars[0]), Lit::pos(vars[1]), Lit::pos(vars[2])]);
/// let problem = AllSatProblem::new(cnf, vars);
///
/// let seq = SuccessDrivenAllSat::new().enumerate(&problem);
/// let par = ParallelAllSat::new(4).enumerate(&problem);
/// // Not merely the same set: the identical cube list, in the same order.
/// assert_eq!(par.cubes, seq.cubes);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelAllSat {
    inner: SuccessDrivenAllSat,
    jobs: usize,
}

impl Default for ParallelAllSat {
    fn default() -> Self {
        ParallelAllSat {
            inner: SuccessDrivenAllSat::new(),
            jobs: 1,
        }
    }
}

impl ParallelAllSat {
    /// An engine running with `jobs` worker threads (`0` = auto-detect).
    pub fn new(jobs: usize) -> Self {
        ParallelAllSat {
            inner: SuccessDrivenAllSat::new(),
            jobs,
        }
    }

    /// Sets the worker-thread count (`0` = auto-detect).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Selects the subspace-signature mode of the underlying engine.
    pub fn with_signature(mut self, mode: SignatureMode) -> Self {
        self.inner = self.inner.with_signature(mode);
        self
    }

    /// Enables or disables model guidance in the underlying engine.
    pub fn with_model_guidance(mut self, on: bool) -> Self {
        self.inner = self.inner.with_model_guidance(on);
        self
    }

    /// The effective thread count (resolving `jobs == 0` to the OS value).
    fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.jobs
        }
    }
}

/// Partition-prefix length for `jobs` workers over `k` important
/// variables: enough levels that the cube queue (`2^kp` entries) keeps
/// every worker busy (~4 cubes each for stealing slack), capped at
/// [`MAX_PREFIX`] and at `k` itself.
pub(crate) fn prefix_len(jobs: usize, k: usize) -> usize {
    let want = usize::BITS as usize - (4 * jobs).saturating_sub(1).leading_zeros() as usize;
    want.clamp(1, MAX_PREFIX.min(k))
}

/// What one partition cube produced: the subspace root in its worker's
/// graph, the per-cube work-counter delta, and the per-cube event trace
/// (replayed into the caller's sink at merge time, in cube order).
struct CubeOutcome {
    index: usize,
    worker: usize,
    root: SolutionNodeId,
    stats: EnumerationStats,
    events: Vec<Event>,
    /// The cube's own early-stop reason, if its enumeration was cut short.
    stopped: Option<StopReason>,
    /// `true` if the cube was drained unexplored after a global stop
    /// (reported as `BOTTOM` so the merge still accounts every cube).
    cancelled: bool,
}

impl AllSatEngine for ParallelAllSat {
    fn name(&self) -> &'static str {
        "success-driven-parallel"
    }

    fn enumerate_limited(
        &self,
        problem: &AllSatProblem,
        limits: &EnumLimits,
        sink: &mut dyn ObsSink,
    ) -> AllSatResult {
        let jobs = self.effective_jobs();
        let k = problem.important.len();
        if jobs <= 1 || k == 0 {
            return self.inner.enumerate_limited(problem, limits, sink);
        }

        // One warm template: parsing/watcher setup happens once, workers
        // clone it at the root.
        let template = Solver::from_cnf(&problem.cnf);
        let mut master = SolutionGraph::new(k);
        let (root, mut stats, stop) = enumerate_partitioned(
            self.inner,
            jobs,
            &problem.cnf,
            &problem.important,
            &template,
            &[],
            limits,
            &mut master,
            sink,
        );

        // Totals that must describe the *merged* result, not a sum of the
        // per-cube views (subspace graphs overlap after canonicalisation).
        stats.graph_nodes = master.reachable_count(root) as u64;
        let cubes = master.to_cube_set(root, &problem.important);
        stats.cubes_emitted = cubes.len() as u64;
        for cube in &cubes {
            sink.record(&Event::Solution {
                width: cube.len() as u32,
            });
        }
        AllSatResult {
            cubes,
            graph: Some((master, root)),
            stats,
            complete: stop.is_none(),
            stop_reason: stop,
        }
    }
}

/// Cube-partitioned enumeration into a caller-owned master graph.
///
/// Splits the branching space over `important` into `2^kp` prefix cubes,
/// enumerates them on worker threads (each worker clones `template` at the
/// root and assumes `base` ahead of its cube prefix), and merges the
/// subspace roots into `master` strictly in cube-index order, returning the
/// merged root and the absorbed work counters (`graph_nodes` and
/// `cubes_emitted` are left for the caller, which owns the master graph).
///
/// This is shared between [`ParallelAllSat`] (fresh template and master per
/// call, empty `base`) and the incremental session
/// (`crate::IncrementalAllSat`: persistent template solver and master
/// graph, the iteration's activation literal as `base`). Requires
/// `jobs >= 2` and a non-empty `important` set.
///
/// # Anytime behavior under `limits`
///
/// Counter budgets (conflicts/propagations) apply **per worker**; the
/// wall-clock deadline is absolute and therefore shared; the external
/// cancel token is installed in every worker's solver. The first worker to
/// stop fires an internal all-workers token; remaining queue cubes are
/// drained as unexplored-`BOTTOM` outcomes (counted in `cancelled_cubes`)
/// so the merge still accounts every partition cube in cube-index order.
/// The returned stop reason is the first stopped cube's, in cube order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn enumerate_partitioned(
    config: SuccessDrivenAllSat,
    jobs: usize,
    cnf: &Cnf,
    important: &[Var],
    template: &Solver,
    base: &[Lit],
    limits: &EnumLimits,
    master: &mut SolutionGraph,
    sink: &mut dyn ObsSink,
) -> (SolutionNodeId, EnumerationStats, Option<StopReason>) {
    let k = important.len();
    debug_assert!(jobs >= 2 && k > 0);
    let kp = prefix_len(jobs, k);
    let num_cubes = 1usize << kp;
    let workers = jobs.min(num_cubes);
    let next_cube = AtomicUsize::new(0);
    // Internal stop-the-fleet token (distinct from the caller's): fired by
    // the first worker that stops, checked by all between cubes.
    let stop_all = CancelToken::new();
    let solutions_total = AtomicU64::new(0);

    let mut worker_results: Vec<(SolutionGraph, Vec<CubeOutcome>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker_id| {
                let template = &template;
                let next_cube = &next_cube;
                let stop_all = &stop_all;
                let solutions_total = &solutions_total;
                scope.spawn(move || {
                    run_worker(
                        worker_id,
                        config,
                        cnf,
                        important,
                        template,
                        base,
                        limits,
                        next_cube,
                        stop_all,
                        solutions_total,
                        num_cubes,
                        kp,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("enumeration worker panicked"))
            .collect()
    });

    // ---- Deterministic merge: strictly in cube-index order. ----
    let mut outcomes: Vec<CubeOutcome> = Vec::with_capacity(num_cubes);
    for (_, outs) in &mut worker_results {
        outcomes.append(outs);
    }
    outcomes.sort_unstable_by_key(|o| o.index);
    debug_assert_eq!(outcomes.len(), num_cubes, "every cube accounted for");

    let mut stats = EnumerationStats::default();
    let mut layer: Vec<SolutionNodeId> = Vec::with_capacity(num_cubes);
    for o in &outcomes {
        layer.push(master.import(&worker_results[o.worker].0, o.root));
        for e in &o.events {
            sink.record(e);
        }
        sink.record(&Event::CubeDone {
            cube_index: o.index as u32,
            solver_calls: o.stats.solver_calls,
        });
        stats.absorb(&o.stats);
    }
    // Rebuild the prefix levels bottom-up: bit `level` of a cube index
    // is the phase of branching level `level`, so at each level the
    // lo/hi pair of an index differs in the current top bit.
    for level in (0..kp).rev() {
        let half = 1usize << level;
        layer = (0..half)
            .map(|i| master.mk(level, layer[i], layer[i + half]))
            .collect();
    }
    let root = layer[0];
    stats.sat_conflicts = stats.sat.conflicts;
    stats.sat_decisions = stats.sat.decisions;
    let stop = first_reason(outcomes.iter().map(|o| o.stopped)).or_else(|| {
        // Only drained cubes and no recorded reason can happen when the
        // caller's token fired between a worker's stop check and its first
        // solver poll; the honest reason is the cancellation itself.
        outcomes
            .iter()
            .any(|o| o.cancelled)
            .then_some(StopReason::Cancelled)
    });
    if let Some(reason) = stop {
        sink.record(&Event::BudgetStop { reason });
    }
    (root, stats, stop)
}

/// One worker: pulls cube indices from the shared counter until the queue
/// is dry, enumerating each with persistent per-worker state (a solver
/// clone, the signature indices, one solution graph, one signature cache)
/// so later cubes benefit from everything earlier cubes learnt. The clone
/// is cheap — the flat clause arena copies as one contiguous buffer, not
/// one allocation per clause (table R8) — so spawning workers stays
/// O(bytes) even when the template carries a large warm session database.
///
/// The worker carries its own remaining counter budget across cubes
/// (`solver.reset_stats()` per cube makes per-call budgets, so the residue
/// is re-installed each time); once the fleet-stop token fires, the rest of
/// the queue is drained as unexplored-`BOTTOM` outcomes without touching
/// the solver.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    worker_id: usize,
    config: SuccessDrivenAllSat,
    cnf: &Cnf,
    important: &[Var],
    template: &Solver,
    base: &[Lit],
    limits: &EnumLimits,
    next_cube: &AtomicUsize,
    stop_all: &CancelToken,
    solutions_total: &AtomicU64,
    num_cubes: usize,
    kp: usize,
) -> (SolutionGraph, Vec<CubeOutcome>) {
    let k = important.len();
    let mut solver = template.clone_at_root();
    solver.set_cancel(limits.cancel.clone());
    // Per-worker residue of the counter budget; the deadline is an absolute
    // instant, so copying it shares it.
    let mut remaining = limits.budget;
    let mut conn = (config.signature == SignatureMode::Static)
        .then(|| ConnectivityIndex::build(cnf, important));
    let mut residual =
        (config.signature == SignatureMode::Dynamic).then(|| ResidualIndex::build(cnf));
    let mut graph = SolutionGraph::new(k);
    let mut cache = HashMap::new();
    let mut outcomes = Vec::new();

    loop {
        let index = next_cube.fetch_add(1, Ordering::Relaxed);
        if index >= num_cubes {
            break;
        }
        if stop_all.is_cancelled() {
            // Drain mode: keep the cube accounted for, do no work.
            let stats = EnumerationStats {
                cancelled_cubes: 1,
                ..EnumerationStats::default()
            };
            outcomes.push(CubeOutcome {
                index,
                worker: worker_id,
                root: SolutionNodeId::BOTTOM,
                stats,
                events: Vec::new(),
                stopped: None,
                cancelled: true,
            });
            continue;
        }
        // `base` (e.g. a session activation literal) rides ahead of the
        // cube prefix in `prefix_lits`; `prefix_vals` stays branching-only.
        let mut prefix_lits: Vec<Lit> = base.to_vec();
        let mut prefix_vals: Vec<bool> = Vec::with_capacity(kp);
        for (level, &var) in important.iter().take(kp).enumerate() {
            let phase = index >> level & 1 == 1;
            prefix_lits.push(Lit::with_phase(var, phase));
            prefix_vals.push(phase);
        }
        solver.reset_stats();
        solver.set_budget(remaining);
        let found_before = limits
            .max_solutions
            .map(|_| solutions_total.load(Ordering::Relaxed))
            .unwrap_or(0);
        let mut events = VecSink::new();
        let mut search = Search {
            cnf,
            important,
            solver,
            conn: conn.take(),
            residual: residual.take(),
            graph,
            cache,
            stats: EnumerationStats::default(),
            prefix_lits,
            prefix_vals,
            model_guidance: config.model_guidance,
            sink: &mut events,
            max_solutions: limits.max_solutions,
            solutions_found: found_before,
            stopped: None,
        };
        let root = search.explore(kp, None);
        search.stats.sat = *search.solver.stats();
        if limits.max_solutions.is_some() {
            let delta = search.solutions_found.saturating_sub(found_before);
            solutions_total.fetch_add(delta, Ordering::Relaxed);
        }
        if let Some(c) = remaining.conflicts.as_mut() {
            *c = c.saturating_sub(search.stats.sat.conflicts);
        }
        if let Some(p) = remaining.propagations.as_mut() {
            *p = p.saturating_sub(search.stats.sat.propagations);
        }
        let stopped = search.stopped;
        if stopped.is_some() {
            search.stats.budget_stops = 1;
            stop_all.cancel();
        }
        // Hand the persistent pieces back for the next cube.
        solver = search.solver;
        conn = search.conn;
        residual = search.residual;
        graph = search.graph;
        cache = search.cache;
        let stats = search.stats;
        outcomes.push(CubeOutcome {
            index,
            worker: worker_id,
            root,
            stats,
            events: events.events,
            stopped,
            cancelled: false,
        });
    }
    (graph, outcomes)
}

/// Enumerates with the parallel engine and also returns the raw per-cube
/// outcomes' stats (index, per-cube counters), for tests and the bench
/// harness to check that per-worker work sums cleanly.
pub fn enumerate_detailed(
    engine: &ParallelAllSat,
    problem: &AllSatProblem,
) -> (AllSatResult, Vec<(u32, u64)>) {
    let mut sink = VecSink::new();
    let result = engine.enumerate_with_sink(problem, &mut sink);
    let per_cube = sink
        .events
        .iter()
        .filter_map(|e| match e {
            Event::CubeDone {
                cube_index,
                solver_calls,
            } => Some((*cube_index, *solver_calls)),
            _ => None,
        })
        .collect();
    (result, per_cube)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::{truth_table, Cnf, Var};

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    fn random_cnf(seed: u64, n: usize, m: usize) -> Cnf {
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut cnf = Cnf::new(n);
        for _ in 0..m {
            let c: Vec<Lit> = (0..3)
                .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                .collect();
            cnf.add_clause(c);
        }
        cnf
    }

    #[test]
    fn prefix_len_is_monotone_and_capped() {
        assert_eq!(prefix_len(2, 20), 3); // 8 cubes for 2 workers
        assert_eq!(prefix_len(4, 20), 4); // 16 cubes for 4
        assert_eq!(prefix_len(64, 20), MAX_PREFIX);
        assert_eq!(prefix_len(4, 2), 2); // capped at k
        assert_eq!(prefix_len(1, 20), 2);
    }

    #[test]
    fn matches_sequential_bit_for_bit() {
        for seed in 0..8 {
            let n = 8;
            let cnf = random_cnf(seed, n, 18);
            let important: Vec<Var> = Var::range(6).collect();
            let p = AllSatProblem::new(cnf, important);
            let seq = SuccessDrivenAllSat::new().enumerate(&p);
            for jobs in [2, 3, 4, 7] {
                let par = ParallelAllSat::new(jobs).enumerate(&p);
                assert_eq!(par.cubes, seq.cubes, "seed {seed} jobs {jobs}");
                assert_eq!(
                    par.stats.graph_nodes, seq.stats.graph_nodes,
                    "seed {seed} jobs {jobs}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_truth_table_oracle() {
        for seed in 20..26 {
            let n = 7;
            let cnf = random_cnf(seed, n, 14);
            let important: Vec<Var> = Var::range(5).collect();
            let p = AllSatProblem::new(cnf.clone(), important.clone());
            let expect = truth_table::project_models_set(&cnf, &important);
            let r = ParallelAllSat::new(4).enumerate(&p);
            assert!(r.cubes.semantically_eq(&expect, &important), "seed {seed}");
        }
    }

    #[test]
    fn unsat_problem_yields_empty_set() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(0, true)]);
        cnf.add_clause([lit(0, false)]);
        let p = AllSatProblem::new(cnf, (0..3).map(Var::new).collect());
        let r = ParallelAllSat::new(4).enumerate(&p);
        assert!(r.cubes.is_empty());
        let (_, root) = r.graph.expect("graph always built");
        assert_eq!(root, SolutionNodeId::BOTTOM);
    }

    #[test]
    fn tautology_collapses_to_universe() {
        // No constraints at all: every cube's subspace is TOP, and the
        // merge must collapse the whole prefix tree back to TOP.
        let cnf = Cnf::new(4);
        let p = AllSatProblem::new(cnf, (0..4).map(Var::new).collect());
        let r = ParallelAllSat::new(4).enumerate(&p);
        assert!(r.cubes.is_universe());
        let (_, root) = r.graph.expect("graph");
        assert_eq!(root, SolutionNodeId::TOP);
        assert_eq!(r.stats.graph_nodes, 1);
    }

    #[test]
    fn jobs_one_delegates_to_sequential() {
        let cnf = random_cnf(3, 6, 10);
        let p = AllSatProblem::new(cnf, (0..4).map(Var::new).collect());
        let seq = SuccessDrivenAllSat::new().enumerate(&p);
        let par = ParallelAllSat::new(1).enumerate(&p);
        assert_eq!(par.cubes, seq.cubes);
        // Delegation means identical work, too.
        assert_eq!(par.stats.solver_calls, seq.stats.solver_calls);
    }

    #[test]
    fn ablation_configs_stay_deterministic() {
        let cnf = random_cnf(11, 7, 15);
        let important: Vec<Var> = Var::range(5).collect();
        let p = AllSatProblem::new(cnf, important);
        for mode in [
            SignatureMode::None,
            SignatureMode::Static,
            SignatureMode::Dynamic,
        ] {
            let seq = SuccessDrivenAllSat::new()
                .with_signature(mode)
                .enumerate(&p);
            let par = ParallelAllSat::new(4).with_signature(mode).enumerate(&p);
            assert_eq!(par.cubes, seq.cubes, "mode {mode:?}");
        }
    }

    #[test]
    fn cube_done_events_cover_every_partition_cube() {
        let cnf = random_cnf(5, 7, 12);
        let p = AllSatProblem::new(cnf, (0..5).map(Var::new).collect());
        let engine = ParallelAllSat::new(2);
        let (result, per_cube) = enumerate_detailed(&engine, &p);
        let kp = prefix_len(2, 5);
        assert_eq!(per_cube.len(), 1 << kp);
        // Replayed in cube order, covering 0..2^kp exactly once.
        let indices: Vec<u32> = per_cube.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, (0..1u32 << kp).collect::<Vec<_>>());
        // Per-cube solver calls sum to the merged total.
        let total: u64 = per_cube.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, result.stats.solver_calls);
    }
}
