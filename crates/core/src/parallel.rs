//! Parallel cube-partitioned all-solutions enumeration, with adaptive
//! cube-and-conquer splitting.
//!
//! The search space over the important variables is split into disjoint
//! *partition cubes*. Two partitioners share the worker/merge machinery:
//!
//! * **Static** (`--no-adaptive`): `2^kp` cubes over the *first* `kp`
//!   branching levels (the guiding-path prefix). Workers pull cube indices
//!   from a shared atomic counter and enumerate each cube's subspace with
//!   the sequential success-driven engine seeded with the cube as its
//!   branching prefix.
//! * **Adaptive** (the default): an *uneven cube tree* in the style of
//!   lookahead-based decomposition (Kondratiev et al., see PAPERS.md).
//!   A cheap propagation lookahead ([`presat_sat::Solver::probe_lit`])
//!   scores every important variable by its reduction measure — the
//!   product of the two phases' implied-assignment counts — and the
//!   initial `2^kp` cubes branch on the `kp` *highest-scoring* variables
//!   instead of the first `kp`. At run time, a worker whose cube crosses a
//!   conflict threshold abandons it, splits it on the next best-scored
//!   unforced variable, and pushes both children onto a shared work
//!   queue, so pathological subspaces recursively fan out across the
//!   fleet while easy ones finish in one shot.
//!
//! # Determinism
//!
//! The merged result is bit-identical to the sequential engine's output at
//! any thread count — even though *which* cubes split (and therefore the
//! shape of the cube tree) depends on scheduling. The argument:
//!
//! * Each finished leaf explores the **full** important-variable tree with
//!   its cube literals as *forced levels* (see `Search::forced`), so its
//!   result is the reduced, hash-consed decision DAG of `f ∧ cube` — the
//!   canonical representation of that subspace's exact solution set, a
//!   function of the problem alone, never of scheduling.
//! * The leaves partition the space, so the union of their solution sets
//!   is exactly the solution set of `f`. [`SolutionGraph::import`]
//!   canonicalises each leaf root into the master graph and
//!   [`SolutionGraph::union`] accumulates them; reduced DAGs of equal
//!   functions are isomorphic, so the master root matches the sequential
//!   graph node-for-node *regardless of the tree shape*.
//! * [`SolutionGraph::to_cube_set`] walks the DAG in a fixed lo-then-hi
//!   order, so even the *order* of the emitted cubes matches.
//!
//! Leaves are merged in cube-*tree* DFS order (each outcome carries its
//! tree path, not a flat index), which pins down the event replay order
//! and the master graph's construction order deterministically for a
//! given tree shape.
//!
//! Work counters (decisions, conflicts, propagations, splits) legitimately
//! vary with scheduling — a cube enumerated by a warmed-up solver clone
//! does less work and may split elsewhere — but solutions, cubes, and
//! graph shape never do.
//!
//! # Budgets
//!
//! Counter budgets (conflicts/propagations) are held in one shared
//! [`BudgetPool`] that every worker charges per conflict, so the fleet
//! spends the *caller's* budget once — not once per worker. The wall-clock
//! deadline is an absolute instant and therefore shared by construction.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use presat_logic::{Cnf, Lit, Var};
use presat_obs::{Event, ObsSink, StopReason, VecSink};
use presat_sat::{Budget, BudgetPool, CancelToken, Solver};

use crate::engine::{AllSatEngine, AllSatProblem, AllSatResult, EnumerationStats};
use crate::limits::{first_reason, EnumLimits};
use crate::signature::{ConnectivityIndex, ResidualIndex};
use crate::solution_graph::{SolutionGraph, SolutionNodeId};
use crate::success_driven::{Search, SignatureMode, SuccessDrivenAllSat};

/// Upper bound on the partition-prefix length: `2^8 = 256` cubes saturates
/// any sane thread count while keeping per-cube solver overhead bounded.
const MAX_PREFIX: usize = 8;

/// Upper bound on a cube-tree path length (initial prefix plus dynamic
/// splits). Paths are packed into a `u32`; 24 levels is orders of
/// magnitude deeper than any useful split cascade.
const MAX_TREE_DEPTH: usize = 24;

/// Default conflict threshold at which a worker abandons its cube and
/// splits it ([`ParTuning::split_threshold`]).
pub const DEFAULT_SPLIT_THRESHOLD: u64 = 1024;

/// Default `important × clauses` size product below which a *preimage
/// step* skips the worker fleet and runs sequentially (see
/// [`ParTuning::par_threshold`]). This is the default for the preimage
/// layer (`SatPreimage`), tuned so small reachability steps (cnt5-class
/// encodings) stay sequential while parity11-class steps still fan out;
/// the bare [`ParallelAllSat`] engine defaults to `0` (always parallel).
pub const DEFAULT_PAR_THRESHOLD: u64 = 4096;

/// Tuning knobs of the parallel partitioner, shared by [`ParallelAllSat`]
/// and the incremental session (`crate::IncrementalAllSat`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParTuning {
    /// Use the adaptive cube tree (lookahead-scored initial split plus
    /// dynamic work splitting). `false` selects the static `2^kp` prefix
    /// partition over the first `kp` branching levels.
    pub adaptive: bool,
    /// Conflict count at which a worker abandons its current cube and
    /// splits it into two children (`0` = never split). Ignored in static
    /// mode.
    pub split_threshold: u64,
    /// Spawn gate: problems whose `important × clauses` product falls
    /// below this skip the fleet and run sequentially (`0` = always
    /// parallel).
    pub par_threshold: u64,
}

impl Default for ParTuning {
    fn default() -> Self {
        ParTuning {
            adaptive: true,
            split_threshold: DEFAULT_SPLIT_THRESHOLD,
            // The bare engine always spawns; the preimage layer installs
            // DEFAULT_PAR_THRESHOLD where tiny reach steps are the issue.
            par_threshold: 0,
        }
    }
}

impl ParTuning {
    /// `true` if spawning the worker fleet cannot pay for itself: either
    /// the problem is too small to amortize spawn-and-merge, or the host
    /// has no hardware parallelism at all (threads would serialize on one
    /// CPU and every fleet cost would be pure overhead). Both checks are
    /// only active when the gate itself is (`par_threshold > 0`), so
    /// forcing `par_threshold = 0` still exercises the real fleet — the
    /// determinism suites rely on that. Gating never changes the result:
    /// the sequential and parallel paths are bit-identical by contract.
    pub(crate) fn gates_sequential(&self, k: usize, num_clauses: usize) -> bool {
        if self.par_threshold == 0 {
            return false;
        }
        // Cached: the gate runs once per enumeration (hundreds of times
        // in a reachability fixed point) and the parallelism probe is a
        // syscall. A host whose parallelism cannot be probed counts as
        // single-CPU, matching `effective_jobs`' auto-detect fallback.
        static SINGLE_CPU: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        let single_cpu = *SINGLE_CPU.get_or_init(|| effective_jobs(0) <= 1);
        single_cpu || (k as u64).saturating_mul(num_clauses as u64) < self.par_threshold
    }
}

/// The parallel wrapper around [`SuccessDrivenAllSat`]: partitions the
/// branching space into disjoint cubes, enumerates them on worker
/// threads, and merges deterministically.
///
/// `jobs == 1` (the default) delegates to the sequential engine outright;
/// `jobs == 0` asks the OS for the available parallelism. Construction is
/// cheap; all state lives inside `enumerate_with_sink`.
///
/// # Examples
///
/// ```
/// use presat_allsat::{AllSatEngine, AllSatProblem, ParallelAllSat, SuccessDrivenAllSat};
/// use presat_logic::{Cnf, Lit, Var};
///
/// let vars: Vec<Var> = (0..3).map(Var::new).collect();
/// let mut cnf = Cnf::new(3);
/// cnf.add_clause([Lit::pos(vars[0]), Lit::pos(vars[1]), Lit::pos(vars[2])]);
/// let problem = AllSatProblem::new(cnf, vars);
///
/// let seq = SuccessDrivenAllSat::new().enumerate(&problem);
/// let par = ParallelAllSat::new(4).enumerate(&problem);
/// // Not merely the same set: the identical cube list, in the same order.
/// assert_eq!(par.cubes, seq.cubes);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelAllSat {
    inner: SuccessDrivenAllSat,
    jobs: usize,
    tuning: ParTuning,
}

impl Default for ParallelAllSat {
    fn default() -> Self {
        ParallelAllSat {
            inner: SuccessDrivenAllSat::new(),
            jobs: 1,
            tuning: ParTuning::default(),
        }
    }
}

impl ParallelAllSat {
    /// An engine running with `jobs` worker threads (`0` = auto-detect).
    pub fn new(jobs: usize) -> Self {
        ParallelAllSat {
            jobs,
            ..ParallelAllSat::default()
        }
    }

    /// Sets the worker-thread count (`0` = auto-detect).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Selects the subspace-signature mode of the underlying engine.
    pub fn with_signature(mut self, mode: SignatureMode) -> Self {
        self.inner = self.inner.with_signature(mode);
        self
    }

    /// Enables or disables model guidance in the underlying engine.
    pub fn with_model_guidance(mut self, on: bool) -> Self {
        self.inner = self.inner.with_model_guidance(on);
        self
    }

    /// Enables or disables the adaptive cube tree (see
    /// [`ParTuning::adaptive`]).
    pub fn with_adaptive(mut self, on: bool) -> Self {
        self.tuning.adaptive = on;
        self
    }

    /// Sets the dynamic-split conflict threshold (`0` = never split).
    pub fn with_split_threshold(mut self, threshold: u64) -> Self {
        self.tuning.split_threshold = threshold;
        self
    }

    /// Sets the sequential-fallback spawn gate (`0` = always parallel).
    pub fn with_par_threshold(mut self, threshold: u64) -> Self {
        self.tuning.par_threshold = threshold;
        self
    }

    /// Sets all partitioner tuning knobs at once.
    pub fn with_tuning(mut self, tuning: ParTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// The effective thread count (resolving `jobs == 0` to the OS value).
    fn effective_jobs(&self) -> usize {
        effective_jobs(self.jobs)
    }
}

/// Resolves a requested worker count to the effective one: `0` means
/// "auto-detect" and asks the OS for the available parallelism (falling
/// back to `1` when the query fails, e.g. in restricted sandboxes); any
/// other value is taken literally. Every `--jobs`-style knob in the
/// workspace — the parallel engines, the incremental sessions, the bench
/// binaries, the service daemon's scheduler — resolves through this one
/// helper so the fallback cannot drift.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Partition-prefix length for `jobs` workers over `k` important
/// variables: enough levels that the cube queue (`2^kp` entries) keeps
/// every worker busy (~4 cubes each for stealing slack), capped at
/// [`MAX_PREFIX`] and at `k` itself.
pub(crate) fn prefix_len(jobs: usize, k: usize) -> usize {
    let want = usize::BITS as usize - (4 * jobs).saturating_sub(1).leading_zeros() as usize;
    want.clamp(1, MAX_PREFIX.min(k))
}

/// What one cube-tree leaf produced: the subspace root in its worker's
/// graph, the per-leaf work-counter delta (including work carried from
/// abandoned ancestors, so leaves still sum to the merged totals), and the
/// per-leaf event trace (replayed into the caller's sink at merge time, in
/// tree DFS order).
struct LeafOutcome {
    /// Tree path: bit `j` = phase chosen at tree level `j`.
    path_bits: u32,
    /// Number of valid bits in `path_bits`.
    path_len: u8,
    worker: usize,
    root: SolutionNodeId,
    stats: EnumerationStats,
    events: Vec<Event>,
    /// The leaf's own early-stop reason, if its enumeration was cut short.
    stopped: Option<StopReason>,
    /// `true` if the leaf was drained unexplored after a global stop
    /// (reported as `BOTTOM` so the merge still accounts every leaf).
    cancelled: bool,
}

/// One dynamic split, recorded by the worker that performed it and
/// replayed as an [`Event::CubeSplit`] in merge (tree DFS) order.
struct SplitRecord {
    path_bits: u32,
    path_len: u8,
    var: u32,
}

/// DFS-lexicographic order on cube-tree paths: walk the bits from the
/// root; at the first level where the paths differ, `false` (lo) sorts
/// before `true` (hi). Leaves form an antichain (no path prefixes
/// another), so the first differing level always decides; the length
/// tie-break orders a split node before its descendants.
fn path_cmp(a_bits: u32, a_len: u8, b_bits: u32, b_len: u8) -> std::cmp::Ordering {
    let n = a_len.min(b_len);
    for level in 0..n {
        let a = a_bits >> level & 1;
        let b = b_bits >> level & 1;
        if a != b {
            return a.cmp(&b);
        }
    }
    a_len.cmp(&b_len)
}

/// `true` if path `(p_bits, p_len)` is a (non-strict) prefix of
/// `(q_bits, q_len)`.
fn path_is_prefix(p_bits: u32, p_len: u8, q_bits: u32, q_len: u8) -> bool {
    p_len <= q_len && (q_bits & ((1u32 << p_len) - 1)) == p_bits
}

impl AllSatEngine for ParallelAllSat {
    fn name(&self) -> &'static str {
        "success-driven-parallel"
    }

    fn enumerate_limited(
        &self,
        problem: &AllSatProblem,
        limits: &EnumLimits,
        sink: &mut dyn ObsSink,
    ) -> AllSatResult {
        let jobs = self.effective_jobs();
        let k = problem.important.len();
        if jobs <= 1
            || k == 0
            || self
                .tuning
                .gates_sequential(k, problem.cnf.num_clauses())
        {
            return self.inner.enumerate_limited(problem, limits, sink);
        }

        // One warm template: parsing/watcher setup happens once, workers
        // clone it at the root.
        let template = Solver::from_cnf(&problem.cnf);
        let mut master = SolutionGraph::new(k);
        let (root, mut stats, stop) = enumerate_partitioned(
            self.inner,
            self.tuning,
            jobs,
            &problem.cnf,
            &problem.important,
            &template,
            &[],
            limits,
            &mut master,
            sink,
        );

        // Totals that must describe the *merged* result, not a sum of the
        // per-cube views (subspace graphs overlap after canonicalisation).
        stats.graph_nodes = master.reachable_count(root) as u64;
        let cubes = master.to_cube_set(root, &problem.important);
        stats.cubes_emitted = cubes.len() as u64;
        for cube in &cubes {
            sink.record(&Event::Solution {
                width: cube.len() as u32,
            });
        }
        AllSatResult {
            cubes,
            graph: Some((master, root)),
            stats,
            complete: stop.is_none(),
            stop_reason: stop,
        }
    }
}

/// Cube-partitioned enumeration into a caller-owned master graph.
///
/// Splits the branching space over `important` into disjoint cubes (a
/// static `2^kp` prefix partition, or an adaptive cube tree per
/// `tuning`), enumerates them on worker threads (each worker clones
/// `template` at the root and assumes `base` ahead of its cube literals),
/// and merges the subspace roots into `master` strictly in cube/tree DFS
/// order, returning the merged root and the absorbed work counters
/// (`graph_nodes` and `cubes_emitted` are left for the caller, which owns
/// the master graph).
///
/// This is shared between [`ParallelAllSat`] (fresh template and master
/// per call, empty `base`) and the incremental session
/// (`crate::IncrementalAllSat`: persistent template solver and master
/// graph, the iteration's activation literal as `base`). Requires
/// `jobs >= 2` and a non-empty `important` set.
///
/// # Anytime behavior under `limits`
///
/// Counter budgets (conflicts/propagations) are spent from one shared
/// [`BudgetPool`], so the fleet spends the caller's budget exactly once
/// (plus at most one conflict of overshoot per worker); the wall-clock
/// deadline is absolute and therefore shared; the external cancel token is
/// installed in every worker's solver. The first worker to stop fires an
/// internal all-workers token; remaining queue cubes are drained as
/// unexplored-`BOTTOM` outcomes (counted in `cancelled_cubes`) so the
/// merge still accounts every cube. The returned stop reason is the first
/// stopped cube's, in merge order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn enumerate_partitioned(
    config: SuccessDrivenAllSat,
    tuning: ParTuning,
    jobs: usize,
    cnf: &Cnf,
    important: &[Var],
    template: &Solver,
    base: &[Lit],
    limits: &EnumLimits,
    master: &mut SolutionGraph,
    sink: &mut dyn ObsSink,
) -> (SolutionNodeId, EnumerationStats, Option<StopReason>) {
    if tuning.adaptive {
        enumerate_adaptive(
            config, tuning, jobs, cnf, important, template, base, limits, master, sink,
        )
    } else {
        enumerate_static(
            config, jobs, cnf, important, template, base, limits, master, sink,
        )
    }
}

/// Scores every important variable by propagation lookahead under `base`
/// and returns the branching depths sorted best-first.
///
/// The measure is the product of the two phases' implied-assignment
/// counts ([`Solver::probe_lit`]): a variable that propagates far in
/// *both* phases cuts the search space most evenly and deeply. A failed
/// or already-implied phase scores zero — splitting there would leave one
/// child empty. Ties break on the phase sum, then on depth, so the order
/// is a pure function of the solver state and never of scheduling.
fn lookahead_order(
    template: &Solver,
    important: &[Var],
    base: &[Lit],
    stats: &mut EnumerationStats,
) -> Vec<u32> {
    let mut probe = template.clone_at_root();
    let mut scored: Vec<(u128, u64, u32)> = Vec::with_capacity(important.len());
    for (depth, &var) in important.iter().enumerate() {
        let npos = probe.probe_lit(base, Lit::pos(var));
        let nneg = probe.probe_lit(base, Lit::neg(var));
        let (product, sum) = match (npos, nneg) {
            (Some(p), Some(n)) if p > 0 && n > 0 => {
                (u128::from(p) * u128::from(n), u64::from(p) + u64::from(n))
            }
            _ => (0, 0),
        };
        scored.push((product, sum, depth as u32));
    }
    stats.sat.absorb(probe.stats());
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
    scored.into_iter().map(|(_, _, depth)| depth).collect()
}

/// One unit of adaptive work: a cube of the tree, described by its tree
/// path (for merge ordering) and its forced branching levels (for the
/// search itself). `carried` accumulates the work counters of abandoned
/// partial runs up the lo-spine, so finished leaves still sum to the
/// fleet's true totals.
struct WorkItem {
    path_bits: u32,
    path_len: u8,
    /// `(branching depth, phase)` per tree level, in tree-level order.
    forced: Vec<(u32, bool)>,
    carried: EnumerationStats,
}

/// The shared adaptive work queue: a deque of cubes plus an in-flight
/// count. Workers block on the condvar when the deque is momentarily
/// empty but cubes are still in flight (an in-flight cube may split and
/// refill the deque); when the deque is empty and nothing is in flight,
/// the enumeration is over.
struct WorkQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
}

struct QueueState {
    items: VecDeque<WorkItem>,
    in_flight: usize,
}

impl WorkQueue {
    fn new(items: VecDeque<WorkItem>) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                items,
                in_flight: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Pops the next cube, blocking while the deque is empty but cubes
    /// are in flight. Returns `None` once no cube exists or can appear.
    /// Each blocking wait is counted into `steal_waits`.
    fn pop(&self, steal_waits: &mut u64) -> Option<WorkItem> {
        let mut st = self.state.lock().expect("work queue poisoned");
        loop {
            if let Some(item) = st.items.pop_front() {
                st.in_flight += 1;
                return Some(item);
            }
            if st.in_flight == 0 {
                return None;
            }
            *steal_waits += 1;
            st = self.cond.wait(st).expect("work queue poisoned");
        }
    }

    /// Marks the current cube finished (it became a leaf).
    fn finish(&self) {
        let mut st = self.state.lock().expect("work queue poisoned");
        st.in_flight -= 1;
        if st.in_flight == 0 && st.items.is_empty() {
            // Enumeration over: wake every blocked worker so it can exit.
            self.cond.notify_all();
        }
    }

    /// Replaces the current cube with its two children.
    fn split_into(&self, lo: WorkItem, hi: WorkItem) {
        let mut st = self.state.lock().expect("work queue poisoned");
        st.items.push_back(lo);
        st.items.push_back(hi);
        st.in_flight -= 1;
        self.cond.notify_all();
    }
}

/// The first `split_order` depth not yet forced by the cube, if any —
/// the variable a dynamic split would branch on. Deterministic: depends
/// only on the (root-computed) order and the cube itself.
fn next_split_depth(split_order: &[u32], forced: &[(u32, bool)]) -> Option<u32> {
    split_order
        .iter()
        .copied()
        .find(|d| !forced.iter().any(|&(fd, _)| fd == *d))
}

/// Adaptive cube-tree enumeration (see the module docs).
#[allow(clippy::too_many_arguments)]
fn enumerate_adaptive(
    config: SuccessDrivenAllSat,
    tuning: ParTuning,
    jobs: usize,
    cnf: &Cnf,
    important: &[Var],
    template: &Solver,
    base: &[Lit],
    limits: &EnumLimits,
    master: &mut SolutionGraph,
    sink: &mut dyn ObsSink,
) -> (SolutionNodeId, EnumerationStats, Option<StopReason>) {
    let k = important.len();
    debug_assert!(jobs >= 2 && k > 0);
    let mut stats = EnumerationStats::default();

    // Root lookahead: one deterministic scoring pass on the master thread
    // decides the initial branching levels AND every later dynamic split
    // point, so workers never probe (probing on warmed worker clones
    // would make the tree shape — though never the result — depend on
    // scheduling more than necessary, and would repeat work).
    let split_order = lookahead_order(template, important, base, &mut stats);
    let kp = prefix_len(jobs, k);
    let num_cubes = 1usize << kp;

    let mut initial = VecDeque::with_capacity(num_cubes);
    for bits in 0..num_cubes as u32 {
        let forced: Vec<(u32, bool)> = (0..kp)
            .map(|level| (split_order[level], bits >> level & 1 == 1))
            .collect();
        initial.push_back(WorkItem {
            path_bits: bits,
            path_len: kp as u8,
            forced,
            carried: EnumerationStats::default(),
        });
    }
    let queue = WorkQueue::new(initial);
    let stop_all = CancelToken::new();
    let solutions_total = AtomicU64::new(0);
    let pool = BudgetPool::from_budget(&limits.budget);
    let split_threshold = tuning.split_threshold;

    let worker_results: Vec<AdaptiveWorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|worker_id| {
                let queue = &queue;
                let stop_all = &stop_all;
                let solutions_total = &solutions_total;
                let pool = pool.clone();
                let split_order = &split_order;
                scope.spawn(move || {
                    run_adaptive_worker(
                        worker_id,
                        config,
                        cnf,
                        important,
                        template,
                        base,
                        limits,
                        queue,
                        stop_all,
                        solutions_total,
                        pool,
                        split_order,
                        split_threshold,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("enumeration worker panicked"))
            .collect()
    });

    // ---- Deterministic merge: strictly in cube-tree DFS order. ----
    let mut leaves: Vec<LeafOutcome> = Vec::new();
    let mut splits: Vec<SplitRecord> = Vec::new();
    for out in &worker_results {
        stats.steal_waits += out.steal_waits;
    }
    let mut worker_graphs: Vec<SolutionGraph> = Vec::with_capacity(worker_results.len());
    for out in worker_results {
        leaves.extend(out.leaves);
        splits.extend(out.splits);
        worker_graphs.push(out.graph);
    }
    leaves.sort_by(|a, b| path_cmp(a.path_bits, a.path_len, b.path_bits, b.path_len));
    debug_assert_eq!(
        leaves.len(),
        num_cubes + splits.len(),
        "every split adds exactly one leaf"
    );

    // Each split event replays immediately before the first (DFS-wise)
    // leaf below it, outermost split first.
    let mut splits_at: Vec<Vec<&SplitRecord>> = vec![Vec::new(); leaves.len()];
    for s in &splits {
        let pos = leaves
            .iter()
            .position(|l| path_is_prefix(s.path_bits, s.path_len, l.path_bits, l.path_len))
            .expect("split node has leaves below it");
        splits_at[pos].push(s);
    }
    for bucket in &mut splits_at {
        bucket.sort_by_key(|s| s.path_len);
    }

    let mut acc = SolutionNodeId::BOTTOM;
    for (i, leaf) in leaves.iter().enumerate() {
        for s in &splits_at[i] {
            sink.record(&Event::CubeSplit {
                path: s.path_bits,
                depth: s.path_len,
                var: s.var,
            });
        }
        let node = master.import(&worker_graphs[leaf.worker], leaf.root);
        acc = master.union(acc, node);
        for e in &leaf.events {
            sink.record(e);
        }
        sink.record(&Event::CubeDone {
            cube_index: i as u32,
            solver_calls: leaf.stats.solver_calls,
        });
        stats.absorb(&leaf.stats);
    }
    stats.sat_conflicts = stats.sat.conflicts;
    stats.sat_decisions = stats.sat.decisions;
    let stop = first_reason(leaves.iter().map(|l| l.stopped)).or_else(|| {
        leaves
            .iter()
            .any(|l| l.cancelled)
            .then_some(StopReason::Cancelled)
    });
    if let Some(reason) = stop {
        sink.record(&Event::BudgetStop { reason });
    }
    (acc, stats, stop)
}

/// Everything one adaptive worker hands back to the merge.
struct AdaptiveWorkerOutput {
    graph: SolutionGraph,
    leaves: Vec<LeafOutcome>,
    splits: Vec<SplitRecord>,
    steal_waits: u64,
}

/// One adaptive worker: pulls cubes from the shared queue until no cube
/// exists or can appear, enumerating each with persistent per-worker state
/// (a solver clone, the signature indices, one solution graph, one
/// signature cache) so later cubes benefit from everything earlier cubes
/// learnt.
///
/// A cube eligible for splitting runs under a local conflict threshold;
/// when the threshold trips (and the shared pool is not the real culprit),
/// the partial run is discarded — its work counters are carried into the
/// lo child so totals still add up, and its partial subspace root is
/// *not* kept (completed sub-subspaces already cached stay, they are
/// sound) — and both children go back on the queue for whoever is idle.
#[allow(clippy::too_many_arguments)]
fn run_adaptive_worker(
    worker_id: usize,
    config: SuccessDrivenAllSat,
    cnf: &Cnf,
    important: &[Var],
    template: &Solver,
    base: &[Lit],
    limits: &EnumLimits,
    queue: &WorkQueue,
    stop_all: &CancelToken,
    solutions_total: &AtomicU64,
    pool: Option<BudgetPool>,
    split_order: &[u32],
    split_threshold: u64,
) -> AdaptiveWorkerOutput {
    let k = important.len();
    let mut solver = template.clone_at_root();
    solver.set_cancel(limits.cancel.clone());
    solver.set_pool(pool.clone());
    let mut conn = (config.signature == SignatureMode::Static)
        .then(|| ConnectivityIndex::build(cnf, important));
    let mut residual =
        (config.signature == SignatureMode::Dynamic).then(|| ResidualIndex::build(cnf));
    let mut graph = SolutionGraph::new(k);
    let mut cache = HashMap::new();
    let mut leaves = Vec::new();
    let mut splits = Vec::new();
    let mut steal_waits = 0u64;

    while let Some(item) = queue.pop(&mut steal_waits) {
        if stop_all.is_cancelled() {
            // Drain mode: keep the cube (and any counters an abandoned
            // ancestor carried into it) accounted for, do no work.
            let mut stats = item.carried;
            stats.cancelled_cubes += 1;
            leaves.push(LeafOutcome {
                path_bits: item.path_bits,
                path_len: item.path_len,
                worker: worker_id,
                root: SolutionNodeId::BOTTOM,
                stats,
                events: Vec::new(),
                stopped: None,
                cancelled: true,
            });
            queue.finish();
            continue;
        }

        let split_depth = next_split_depth(split_order, &item.forced);
        // Decided *before* running: a cube that cannot split further must
        // not run under the local threshold, or a threshold stop would
        // discard work that cannot be re-queued.
        let can_split = split_threshold > 0
            && (item.path_len as usize) < MAX_TREE_DEPTH
            && split_depth.is_some();

        // Cube literals ride ahead of the branching prefix as base
        // assumptions; the search itself walks the FULL tree from depth 0
        // with the cube levels forced, so the leaf result is the
        // canonical DAG of f ∧ cube (see the module docs).
        let mut prefix_lits: Vec<Lit> = base.to_vec();
        let mut forced: Vec<Option<bool>> = vec![None; k];
        for &(depth, phase) in &item.forced {
            prefix_lits.push(Lit::with_phase(important[depth as usize], phase));
            forced[depth as usize] = Some(phase);
        }
        solver.reset_stats();
        solver.set_budget(Budget {
            conflicts: can_split.then_some(split_threshold),
            propagations: None,
            deadline: limits.budget.deadline,
        });
        let found_before = limits
            .max_solutions
            .map(|_| solutions_total.load(Ordering::Relaxed))
            .unwrap_or(0);
        let mut events = VecSink::new();
        let mut search = Search {
            cnf,
            important,
            solver,
            conn: conn.take(),
            residual: residual.take(),
            graph,
            cache,
            stats: EnumerationStats::default(),
            prefix_lits,
            prefix_vals: Vec::with_capacity(k),
            forced,
            model_guidance: config.model_guidance,
            sink: &mut events,
            max_solutions: limits.max_solutions,
            solutions_found: found_before,
            stopped: None,
        };
        let root = search.explore(0, None);
        search.stats.sat = *search.solver.stats();
        let stopped = search.stopped;
        let solutions_found = search.solutions_found;
        // Hand the persistent pieces back for the next cube.
        solver = search.solver;
        conn = search.conn;
        residual = search.residual;
        graph = search.graph;
        cache = search.cache;
        let mut stats = search.stats;

        // A Conflicts stop is ambiguous: the local split threshold and
        // the shared pool surface the same reason. The pool's exhaustion
        // state disambiguates; without a pool, Conflicts can only mean
        // the local threshold.
        let pool_dry = pool.as_ref().is_some_and(|p| p.exhausted().is_some());
        if stopped == Some(StopReason::Conflicts) && can_split && !pool_dry {
            // Split: discard the partial subspace (completed sub-subspace
            // cache entries survive — they are exhaustive and sound),
            // carry the counters into the lo child, re-queue both halves.
            let depth = split_depth.expect("can_split checked it");
            stats.cubes_split += 1;
            let mut carried = item.carried;
            carried.absorb(&stats);
            splits.push(SplitRecord {
                path_bits: item.path_bits,
                path_len: item.path_len,
                var: important[depth as usize].index() as u32,
            });
            let mut lo_forced = item.forced.clone();
            lo_forced.push((depth, false));
            let mut hi_forced = item.forced;
            hi_forced.push((depth, true));
            let lo = WorkItem {
                path_bits: item.path_bits,
                path_len: item.path_len + 1,
                forced: lo_forced,
                carried,
            };
            let hi = WorkItem {
                path_bits: item.path_bits | 1 << item.path_len,
                path_len: item.path_len + 1,
                forced: hi_forced,
                carried: EnumerationStats::default(),
            };
            queue.split_into(lo, hi);
            continue;
        }

        // Finished leaf (exhaustive, or a real stop whose partial result
        // is kept — explore() reported unexplored subspaces as BOTTOM).
        stats.max_cube_conflicts = stats.max_cube_conflicts.max(stats.sat.conflicts);
        if limits.max_solutions.is_some() {
            let delta = solutions_found.saturating_sub(found_before);
            solutions_total.fetch_add(delta, Ordering::Relaxed);
        }
        if stopped.is_some() {
            stats.budget_stops = 1;
            stop_all.cancel();
        }
        let mut full = item.carried;
        full.absorb(&stats);
        leaves.push(LeafOutcome {
            path_bits: item.path_bits,
            path_len: item.path_len,
            worker: worker_id,
            root,
            stats: full,
            events: events.events,
            stopped,
            cancelled: false,
        });
        queue.finish();
    }
    AdaptiveWorkerOutput {
        graph,
        leaves,
        splits,
        steal_waits,
    }
}

/// Static `2^kp` prefix partitioning (`--no-adaptive`): cube *j*'s phases
/// are the bits of *j* over the first `kp` branching levels, workers pull
/// indices from an atomic counter, and the merge rebuilds the prefix
/// levels with a bottom-up [`SolutionGraph::mk`] chain.
#[allow(clippy::too_many_arguments)]
fn enumerate_static(
    config: SuccessDrivenAllSat,
    jobs: usize,
    cnf: &Cnf,
    important: &[Var],
    template: &Solver,
    base: &[Lit],
    limits: &EnumLimits,
    master: &mut SolutionGraph,
    sink: &mut dyn ObsSink,
) -> (SolutionNodeId, EnumerationStats, Option<StopReason>) {
    let k = important.len();
    debug_assert!(jobs >= 2 && k > 0);
    let kp = prefix_len(jobs, k);
    let num_cubes = 1usize << kp;
    let workers = jobs.min(num_cubes);
    let next_cube = AtomicUsize::new(0);
    // Internal stop-the-fleet token (distinct from the caller's): fired by
    // the first worker that stops, checked by all between cubes.
    let stop_all = CancelToken::new();
    let solutions_total = AtomicU64::new(0);
    let pool = BudgetPool::from_budget(&limits.budget);

    let mut worker_results: Vec<(SolutionGraph, Vec<LeafOutcome>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker_id| {
                let template = &template;
                let next_cube = &next_cube;
                let stop_all = &stop_all;
                let solutions_total = &solutions_total;
                let pool = pool.clone();
                scope.spawn(move || {
                    run_static_worker(
                        worker_id,
                        config,
                        cnf,
                        important,
                        template,
                        base,
                        limits,
                        next_cube,
                        stop_all,
                        solutions_total,
                        pool,
                        num_cubes,
                        kp,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("enumeration worker panicked"))
            .collect()
    });

    // ---- Deterministic merge: strictly in cube-index order. ----
    let mut outcomes: Vec<LeafOutcome> = Vec::with_capacity(num_cubes);
    for (_, outs) in &mut worker_results {
        outcomes.append(outs);
    }
    outcomes.sort_unstable_by_key(|o| o.path_bits);
    debug_assert_eq!(outcomes.len(), num_cubes, "every cube accounted for");

    let mut stats = EnumerationStats::default();
    let mut layer: Vec<SolutionNodeId> = Vec::with_capacity(num_cubes);
    for o in &outcomes {
        layer.push(master.import(&worker_results[o.worker].0, o.root));
        for e in &o.events {
            sink.record(e);
        }
        sink.record(&Event::CubeDone {
            cube_index: o.path_bits,
            solver_calls: o.stats.solver_calls,
        });
        stats.absorb(&o.stats);
    }
    // Rebuild the prefix levels bottom-up: bit `level` of a cube index
    // is the phase of branching level `level`, so at each level the
    // lo/hi pair of an index differs in the current top bit.
    for level in (0..kp).rev() {
        let half = 1usize << level;
        layer = (0..half)
            .map(|i| master.mk(level, layer[i], layer[i + half]))
            .collect();
    }
    let root = layer[0];
    stats.sat_conflicts = stats.sat.conflicts;
    stats.sat_decisions = stats.sat.decisions;
    let stop = first_reason(outcomes.iter().map(|o| o.stopped)).or_else(|| {
        // Only drained cubes and no recorded reason can happen when the
        // caller's token fired between a worker's stop check and its first
        // solver poll; the honest reason is the cancellation itself.
        outcomes
            .iter()
            .any(|o| o.cancelled)
            .then_some(StopReason::Cancelled)
    });
    if let Some(reason) = stop {
        sink.record(&Event::BudgetStop { reason });
    }
    (root, stats, stop)
}

/// One static worker: pulls cube indices from the shared counter until the
/// queue is dry, enumerating each with persistent per-worker state (a
/// solver clone, the signature indices, one solution graph, one signature
/// cache) so later cubes benefit from everything earlier cubes learnt. The
/// clone is cheap — the flat clause arena copies as one contiguous buffer,
/// not one allocation per clause (table R8) — so spawning workers stays
/// O(bytes) even when the template carries a large warm session database.
///
/// Counter budgets are charged to the shared [`BudgetPool`] (never a
/// per-worker residue, which would let the fleet spend N× the caller's
/// budget); once the fleet-stop token fires, the rest of the queue is
/// drained as unexplored-`BOTTOM` outcomes without touching the solver.
#[allow(clippy::too_many_arguments)]
fn run_static_worker(
    worker_id: usize,
    config: SuccessDrivenAllSat,
    cnf: &Cnf,
    important: &[Var],
    template: &Solver,
    base: &[Lit],
    limits: &EnumLimits,
    next_cube: &AtomicUsize,
    stop_all: &CancelToken,
    solutions_total: &AtomicU64,
    pool: Option<BudgetPool>,
    num_cubes: usize,
    kp: usize,
) -> (SolutionGraph, Vec<LeafOutcome>) {
    let k = important.len();
    let mut solver = template.clone_at_root();
    solver.set_cancel(limits.cancel.clone());
    solver.set_pool(pool);
    // The deadline is an absolute instant, so copying it shares it; the
    // counter limits live in the shared pool instead.
    let worker_budget = Budget {
        conflicts: None,
        propagations: None,
        deadline: limits.budget.deadline,
    };
    let mut conn = (config.signature == SignatureMode::Static)
        .then(|| ConnectivityIndex::build(cnf, important));
    let mut residual =
        (config.signature == SignatureMode::Dynamic).then(|| ResidualIndex::build(cnf));
    let mut graph = SolutionGraph::new(k);
    let mut cache = HashMap::new();
    let mut outcomes = Vec::new();

    loop {
        let index = next_cube.fetch_add(1, Ordering::Relaxed);
        if index >= num_cubes {
            break;
        }
        if stop_all.is_cancelled() {
            // Drain mode: keep the cube accounted for, do no work.
            let stats = EnumerationStats {
                cancelled_cubes: 1,
                ..EnumerationStats::default()
            };
            outcomes.push(LeafOutcome {
                path_bits: index as u32,
                path_len: kp as u8,
                worker: worker_id,
                root: SolutionNodeId::BOTTOM,
                stats,
                events: Vec::new(),
                stopped: None,
                cancelled: true,
            });
            continue;
        }
        // `base` (e.g. a session activation literal) rides ahead of the
        // cube prefix in `prefix_lits`; `prefix_vals` stays branching-only.
        let mut prefix_lits: Vec<Lit> = base.to_vec();
        let mut prefix_vals: Vec<bool> = Vec::with_capacity(kp);
        for (level, &var) in important.iter().take(kp).enumerate() {
            let phase = index >> level & 1 == 1;
            prefix_lits.push(Lit::with_phase(var, phase));
            prefix_vals.push(phase);
        }
        solver.reset_stats();
        solver.set_budget(worker_budget);
        let found_before = limits
            .max_solutions
            .map(|_| solutions_total.load(Ordering::Relaxed))
            .unwrap_or(0);
        let mut events = VecSink::new();
        let mut search = Search {
            cnf,
            important,
            solver,
            conn: conn.take(),
            residual: residual.take(),
            graph,
            cache,
            stats: EnumerationStats::default(),
            prefix_lits,
            prefix_vals,
            forced: Vec::new(),
            model_guidance: config.model_guidance,
            sink: &mut events,
            max_solutions: limits.max_solutions,
            solutions_found: found_before,
            stopped: None,
        };
        let root = search.explore(kp, None);
        search.stats.sat = *search.solver.stats();
        if limits.max_solutions.is_some() {
            let delta = search.solutions_found.saturating_sub(found_before);
            solutions_total.fetch_add(delta, Ordering::Relaxed);
        }
        let stopped = search.stopped;
        if stopped.is_some() {
            search.stats.budget_stops = 1;
            stop_all.cancel();
        }
        // Hand the persistent pieces back for the next cube.
        solver = search.solver;
        conn = search.conn;
        residual = search.residual;
        graph = search.graph;
        cache = search.cache;
        let mut stats = search.stats;
        stats.max_cube_conflicts = stats.max_cube_conflicts.max(stats.sat.conflicts);
        outcomes.push(LeafOutcome {
            path_bits: index as u32,
            path_len: kp as u8,
            worker: worker_id,
            root,
            stats,
            events: events.events,
            stopped,
            cancelled: false,
        });
    }
    (graph, outcomes)
}

/// Enumerates with the parallel engine and also returns the raw per-cube
/// outcomes' stats (index, per-cube counters), for tests and the bench
/// harness to check that per-worker work sums cleanly.
pub fn enumerate_detailed(
    engine: &ParallelAllSat,
    problem: &AllSatProblem,
) -> (AllSatResult, Vec<(u32, u64)>) {
    let mut sink = VecSink::new();
    let result = engine.enumerate_with_sink(problem, &mut sink);
    let per_cube = sink
        .events
        .iter()
        .filter_map(|e| match e {
            Event::CubeDone {
                cube_index,
                solver_calls,
            } => Some((*cube_index, *solver_calls)),
            _ => None,
        })
        .collect();
    (result, per_cube)
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::{truth_table, Cnf, Var};

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    fn random_cnf(seed: u64, n: usize, m: usize) -> Cnf {
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut cnf = Cnf::new(n);
        for _ in 0..m {
            let c: Vec<Lit> = (0..3)
                .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                .collect();
            cnf.add_clause(c);
        }
        cnf
    }

    #[test]
    fn prefix_len_is_monotone_and_capped() {
        assert_eq!(prefix_len(2, 20), 3); // 8 cubes for 2 workers
        assert_eq!(prefix_len(4, 20), 4); // 16 cubes for 4
        assert_eq!(prefix_len(64, 20), MAX_PREFIX);
        assert_eq!(prefix_len(4, 2), 2); // capped at k
        assert_eq!(prefix_len(1, 20), 2);
    }

    #[test]
    fn path_order_is_dfs() {
        use std::cmp::Ordering::*;
        // 00 < 010 < 011 < 1 (bit 0 = tree level 0).
        assert_eq!(path_cmp(0b00, 2, 0b010, 3), Less);
        assert_eq!(path_cmp(0b010, 3, 0b110, 3), Less);
        assert_eq!(path_cmp(0b110, 3, 0b1, 1), Less);
        assert_eq!(path_cmp(0b1, 1, 0b00, 2), Greater);
        // A split node sorts before its descendants.
        assert_eq!(path_cmp(0b01, 2, 0b001, 3), Less);
        assert!(path_is_prefix(0b01, 2, 0b101, 3));
        assert!(!path_is_prefix(0b11, 2, 0b101, 3));
    }

    #[test]
    fn matches_sequential_bit_for_bit() {
        for seed in 0..8 {
            let n = 8;
            let cnf = random_cnf(seed, n, 18);
            let important: Vec<Var> = Var::range(6).collect();
            let p = AllSatProblem::new(cnf, important);
            let seq = SuccessDrivenAllSat::new().enumerate(&p);
            for jobs in [2, 3, 4, 7] {
                let par = ParallelAllSat::new(jobs).enumerate(&p);
                assert_eq!(par.cubes, seq.cubes, "seed {seed} jobs {jobs}");
                assert_eq!(
                    par.stats.graph_nodes, seq.stats.graph_nodes,
                    "seed {seed} jobs {jobs}"
                );
            }
        }
    }

    #[test]
    fn split_storm_matches_sequential_bit_for_bit() {
        // Threshold 1: every cube that survives one conflict splits, so
        // the tree fans out maximally — the result must not move.
        for seed in 0..8 {
            let cnf = random_cnf(seed, 8, 18);
            let important: Vec<Var> = Var::range(6).collect();
            let p = AllSatProblem::new(cnf, important);
            let seq = SuccessDrivenAllSat::new().enumerate(&p);
            for jobs in [2, 4, 7] {
                let par = ParallelAllSat::new(jobs)
                    .with_split_threshold(1)
                    .enumerate(&p);
                assert_eq!(par.cubes, seq.cubes, "seed {seed} jobs {jobs}");
                assert_eq!(
                    par.stats.graph_nodes, seq.stats.graph_nodes,
                    "seed {seed} jobs {jobs}"
                );
            }
        }
    }

    #[test]
    fn static_partitioning_matches_sequential_bit_for_bit() {
        for seed in 0..6 {
            let cnf = random_cnf(seed, 8, 16);
            let important: Vec<Var> = Var::range(6).collect();
            let p = AllSatProblem::new(cnf, important);
            let seq = SuccessDrivenAllSat::new().enumerate(&p);
            let par = ParallelAllSat::new(4).with_adaptive(false).enumerate(&p);
            assert_eq!(par.cubes, seq.cubes, "seed {seed}");
            assert_eq!(par.stats.graph_nodes, seq.stats.graph_nodes);
        }
    }

    #[test]
    fn agrees_with_truth_table_oracle() {
        for seed in 20..26 {
            let n = 7;
            let cnf = random_cnf(seed, n, 14);
            let important: Vec<Var> = Var::range(5).collect();
            let p = AllSatProblem::new(cnf.clone(), important.clone());
            let expect = truth_table::project_models_set(&cnf, &important);
            let r = ParallelAllSat::new(4).enumerate(&p);
            assert!(r.cubes.semantically_eq(&expect, &important), "seed {seed}");
        }
    }

    #[test]
    fn unsat_problem_yields_empty_set() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(0, true)]);
        cnf.add_clause([lit(0, false)]);
        let p = AllSatProblem::new(cnf, (0..3).map(Var::new).collect());
        let r = ParallelAllSat::new(4).enumerate(&p);
        assert!(r.cubes.is_empty());
        let (_, root) = r.graph.expect("graph always built");
        assert_eq!(root, SolutionNodeId::BOTTOM);
    }

    #[test]
    fn tautology_collapses_to_universe() {
        // No constraints at all: every cube's subspace is TOP, and the
        // merge must collapse the whole prefix tree back to TOP.
        let cnf = Cnf::new(4);
        let p = AllSatProblem::new(cnf, (0..4).map(Var::new).collect());
        for engine in [
            ParallelAllSat::new(4),
            ParallelAllSat::new(4).with_adaptive(false),
        ] {
            let r = engine.enumerate(&p);
            assert!(r.cubes.is_universe());
            let (_, root) = r.graph.expect("graph");
            assert_eq!(root, SolutionNodeId::TOP);
            assert_eq!(r.stats.graph_nodes, 1);
        }
    }

    #[test]
    fn jobs_one_delegates_to_sequential() {
        let cnf = random_cnf(3, 6, 10);
        let p = AllSatProblem::new(cnf, (0..4).map(Var::new).collect());
        let seq = SuccessDrivenAllSat::new().enumerate(&p);
        let par = ParallelAllSat::new(1).enumerate(&p);
        assert_eq!(par.cubes, seq.cubes);
        // Delegation means identical work, too.
        assert_eq!(par.stats.solver_calls, seq.stats.solver_calls);
    }

    #[test]
    fn par_threshold_gates_small_problems_sequential() {
        let cnf = random_cnf(3, 6, 10);
        let p = AllSatProblem::new(cnf, (0..4).map(Var::new).collect());
        let seq = SuccessDrivenAllSat::new().enumerate(&p);
        // k * clauses = 40 < 1000: the gate must route to the sequential
        // engine (identical work), despite jobs = 4.
        let gated = ParallelAllSat::new(4).with_par_threshold(1000).enumerate(&p);
        assert_eq!(gated.cubes, seq.cubes);
        assert_eq!(gated.stats.solver_calls, seq.stats.solver_calls);
        assert_eq!(gated.stats.sat.lookahead_probes, 0);
        // Threshold 0 disables the gate: the fleet runs and probes.
        let par = ParallelAllSat::new(4).with_par_threshold(0).enumerate(&p);
        assert_eq!(par.cubes, seq.cubes);
        assert!(par.stats.sat.lookahead_probes > 0);
    }

    #[test]
    fn ablation_configs_stay_deterministic() {
        let cnf = random_cnf(11, 7, 15);
        let important: Vec<Var> = Var::range(5).collect();
        let p = AllSatProblem::new(cnf, important);
        for mode in [
            SignatureMode::None,
            SignatureMode::Static,
            SignatureMode::Dynamic,
        ] {
            let seq = SuccessDrivenAllSat::new()
                .with_signature(mode)
                .enumerate(&p);
            for adaptive in [false, true] {
                for threshold in [0, 1, DEFAULT_SPLIT_THRESHOLD] {
                    let par = ParallelAllSat::new(4)
                        .with_signature(mode)
                        .with_adaptive(adaptive)
                        .with_split_threshold(threshold)
                        .enumerate(&p);
                    assert_eq!(
                        par.cubes, seq.cubes,
                        "mode {mode:?} adaptive {adaptive} threshold {threshold}"
                    );
                }
            }
        }
    }

    #[test]
    fn cube_done_events_cover_every_partition_cube() {
        let cnf = random_cnf(5, 7, 12);
        let p = AllSatProblem::new(cnf, (0..5).map(Var::new).collect());
        let engine = ParallelAllSat::new(2);
        let (result, per_cube) = enumerate_detailed(&engine, &p);
        let kp = prefix_len(2, 5);
        assert_eq!(per_cube.len(), 1 << kp);
        // Replayed in cube order, covering 0..2^kp exactly once.
        let indices: Vec<u32> = per_cube.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, (0..1u32 << kp).collect::<Vec<_>>());
        // Per-cube solver calls sum to the merged total.
        let total: u64 = per_cube.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, result.stats.solver_calls);
    }

    #[test]
    fn split_events_replay_in_merge_order_and_account_leaves() {
        let cnf = random_cnf(7, 8, 20);
        let p = AllSatProblem::new(cnf, (0..6).map(Var::new).collect());
        let engine = ParallelAllSat::new(4).with_split_threshold(1);
        let mut sink = VecSink::new();
        let result = engine.enumerate_with_sink(&p, &mut sink);
        assert!(result.complete);
        let splits = sink.count(|e| matches!(e, Event::CubeSplit { .. }));
        let leaves = sink.count(|e| matches!(e, Event::CubeDone { .. }));
        let kp = prefix_len(4, 6);
        // Every split turns one cube into two: leaf count grows by one.
        assert_eq!(leaves, (1 << kp) + splits);
        assert_eq!(result.stats.cubes_split, splits as u64);
        // Leaf solver calls (carried work included) sum to the total.
        let total: u64 = sink
            .events
            .iter()
            .filter_map(|e| match e {
                Event::CubeDone { solver_calls, .. } => Some(*solver_calls),
                _ => None,
            })
            .sum();
        assert_eq!(total, result.stats.solver_calls);
        // Each CubeSplit replays before the first CubeDone below it, so
        // cube indices in the replay stay strictly increasing.
        let indices: Vec<u32> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                Event::CubeDone { cube_index, .. } => Some(*cube_index),
                _ => None,
            })
            .collect();
        assert_eq!(indices, (0..leaves as u32).collect::<Vec<_>>());
    }

    #[test]
    fn lookahead_order_prefers_propagating_variables() {
        // x0 is inert (appears in no clause); x1 implies x2 and x3 both
        // ways, so it must outrank x0 and come first.
        let mut cnf = Cnf::new(4);
        cnf.add_clause([lit(1, false), lit(2, true)]);
        cnf.add_clause([lit(1, true), lit(2, false)]);
        cnf.add_clause([lit(1, false), lit(3, true)]);
        cnf.add_clause([lit(1, true), lit(3, false)]);
        let important: Vec<Var> = Var::range(4).collect();
        let template = Solver::from_cnf(&cnf);
        let mut stats = EnumerationStats::default();
        let order = lookahead_order(&template, &important, &[], &mut stats);
        assert_eq!(order[0], 1, "x1 propagates furthest: {order:?}");
        assert!(stats.sat.lookahead_probes >= 8);
    }
}
