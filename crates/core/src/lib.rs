//! All-solutions SAT engines for preimage computation.
//!
//! This crate is the primary contribution of the reproduced system: given a
//! CNF formula and a designated set of *important* variables (the
//! present-state variables, in preimage computation), enumerate the exact
//! projection of the formula's models onto the important variables.
//!
//! Four engines implement the common [`AllSatEngine`] interface:
//!
//! * [`BlockingAllSat`] — the classical baseline: repeat (solve → project
//!   model → add a minterm blocking clause) until UNSAT. One clause per
//!   solution minterm; `O(2^n)` clauses in the worst case.
//! * [`MinimizedBlockingAllSat`] — the stronger baseline: each model's
//!   projected cube is first *lifted* (literals are dropped while a
//!   clause-coverage certificate shows the cube still lies inside the
//!   projection), so each blocking clause eliminates `2^(n-k)` minterms at
//!   once.
//! * [`SuccessDrivenAllSat`] — the novel solver: a backtracking search over
//!   the important variables with a CDCL sub-solver for the don't-care
//!   variables, **no blocking clauses at all**, and *success-driven
//!   learning*: every fully-explored subspace is recorded in a shared
//!   [`SolutionGraph`] keyed by a sound connectivity signature, so
//!   isomorphic subspaces are solved once and reused. The solution graph is
//!   simultaneously the compact output representation of the preimage.
//! * [`ChronoAllSat`] — the modern blocking-clause-free alternative
//!   (Spallitta–Sebastiani–Biere): on each model, chronologically backtrack
//!   one level and flip the deepest open decision instead of asserting a
//!   blocking clause. Disjoint cubes, and a clause database whose size is
//!   independent of the solution count.
//!
//! # Examples
//!
//! Enumerate the projection of `(x0 ∨ x1) ∧ (aux ↔ x0)` onto `{x0, x1}`:
//!
//! ```
//! use presat_allsat::{AllSatEngine, AllSatProblem, SuccessDrivenAllSat};
//! use presat_logic::{Cnf, Lit, Var};
//!
//! let x0 = Var::new(0);
//! let x1 = Var::new(1);
//! let aux = Var::new(2);
//! let mut cnf = Cnf::new(3);
//! cnf.add_clause([Lit::pos(x0), Lit::pos(x1)]);
//! cnf.add_clause([Lit::neg(aux), Lit::pos(x0)]);
//! cnf.add_clause([Lit::pos(aux), Lit::neg(x0)]);
//!
//! let problem = AllSatProblem::new(cnf, vec![x0, x1]);
//! let result = SuccessDrivenAllSat::default().enumerate(&problem);
//! // three of the four (x0, x1) combinations satisfy x0 ∨ x1
//! assert_eq!(result.cubes.minterm_count(2), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocking;
mod chrono;
mod engine;
mod incremental;
mod iter;
mod lift;
mod limits;
mod min_blocking;
mod ordering;
mod parallel;
mod signature;
mod solution_graph;
mod success_driven;

pub use blocking::BlockingAllSat;
pub use chrono::ChronoAllSat;
pub use engine::{AllSatEngine, AllSatProblem, AllSatResult, EnumerationStats};
pub use incremental::IncrementalAllSat;
pub use iter::CubeIter;
pub use lift::lift_cube;
pub use limits::EnumLimits;
pub use min_blocking::MinimizedBlockingAllSat;
pub use ordering::{order_important, BranchOrder};
pub use parallel::{
    effective_jobs, enumerate_detailed, ParTuning, ParallelAllSat, DEFAULT_PAR_THRESHOLD,
    DEFAULT_SPLIT_THRESHOLD,
};
pub use signature::{ConnectivityIndex, ResidualIndex};
pub use solution_graph::{SolutionGraph, SolutionNodeId};
pub use success_driven::{SignatureMode, SuccessDrivenAllSat};

// Re-export the limit/cancellation vocabulary so downstream crates can
// build an `EnumLimits` without depending on `presat-sat` directly.
pub use presat_sat::{Budget, CancelToken, StopReason};
