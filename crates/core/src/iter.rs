//! Streaming enumeration: consume solutions one cube at a time.
//!
//! The [`AllSatEngine`](crate::AllSatEngine) interface materializes the
//! whole solution set; many consumers (test generators, coverage loops)
//! want to stop early instead — after the first `k` cubes, or as soon as a
//! cube with some property appears. [`CubeIter`] wraps the
//! minimized-blocking strategy as a lazy iterator: each `next()` performs
//! one solve + lift + block round, so abandoning the iterator abandons the
//! remaining work.

use presat_logic::{Cube, Var};
use presat_obs::StopReason;
use presat_sat::{SolveResult, Solver};

use crate::engine::AllSatProblem;
use crate::lift::lift_cube;
use crate::limits::EnumLimits;

/// A lazy all-solutions iterator (minimized-blocking strategy).
///
/// Yields pairwise-disjointness is *not* guaranteed (lifted cubes may
/// overlap earlier ones only in already-blocked space, so enumeration
/// never repeats a solution, but emitted cubes can intersect). The union
/// of all yielded cubes equals the projection of the formula's models on
/// the important variables.
///
/// # Examples
///
/// ```
/// use presat_allsat::{AllSatProblem, CubeIter};
/// use presat_logic::{Cnf, Lit, Var};
///
/// let mut cnf = Cnf::new(3);
/// cnf.add_clause([Lit::pos(Var::new(0)), Lit::pos(Var::new(1))]);
/// let problem = AllSatProblem::new(cnf, (0..2).map(Var::new).collect());
/// // take just the first cube and stop — no full enumeration happens
/// let first = CubeIter::new(&problem).next().expect("satisfiable");
/// assert!(!first.is_empty() || first.is_empty()); // a cube over x0..x1
/// ```
#[derive(Debug)]
pub struct CubeIter {
    solver: Solver,
    cnf: presat_logic::Cnf,
    important: Vec<Var>,
    exhausted: bool,
    stopped: Option<StopReason>,
}

impl CubeIter {
    /// Creates the iterator; no solving happens until the first `next()`.
    pub fn new(problem: &AllSatProblem) -> Self {
        Self::with_limits(problem, &EnumLimits::none())
    }

    /// Creates the iterator with a budget/cancellation installed on the
    /// underlying solver (`limits.max_solutions` is ignored — cap a lazy
    /// iterator with [`Iterator::take`]). When a limit trips, iteration
    /// ends with [`is_exhausted`](CubeIter::is_exhausted) still `false`
    /// and [`stop_reason`](CubeIter::stop_reason) set: the cubes already
    /// yielded are verified solutions, not the whole projection.
    pub fn with_limits(problem: &AllSatProblem, limits: &EnumLimits) -> Self {
        let mut solver = Solver::from_cnf(&problem.cnf);
        solver.set_budget(limits.budget);
        solver.set_cancel(limits.cancel.clone());
        CubeIter {
            solver,
            cnf: problem.cnf.clone(),
            important: problem.important.clone(),
            exhausted: false,
            stopped: None,
        }
    }

    /// `true` once the underlying formula has been proven exhausted (only
    /// meaningful after `next()` returned `None`). A budget-stopped
    /// iterator returns `None` with `is_exhausted() == false`.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Why iteration stopped early, if it did.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stopped
    }
}

impl Iterator for CubeIter {
    type Item = Cube;

    fn next(&mut self) -> Option<Cube> {
        if self.exhausted || self.stopped.is_some() {
            return None;
        }
        match self.solver.solve() {
            SolveResult::Unsat => {
                self.exhausted = true;
                None
            }
            SolveResult::Unknown(reason) => {
                // Out of budget, not out of solutions: do NOT claim
                // exhaustion.
                self.stopped = Some(reason);
                None
            }
            SolveResult::Sat(model) => {
                let cube = lift_cube(&self.cnf, &model, &self.important);
                if !self.solver.add_clause(cube.lits().iter().map(|&l| !l)) {
                    // Blocking the last cube emptied the formula; the
                    // *next* call will report exhaustion.
                    self.exhausted = true;
                }
                Some(cube)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::{truth_table, Cnf, CubeSet, Lit};

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    #[test]
    fn collects_to_full_projection() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        cnf.add_clause([lit(2, false), lit(1, true)]);
        let important: Vec<Var> = Var::range(3).collect();
        let p = AllSatProblem::new(cnf.clone(), important.clone());
        let cubes: CubeSet = CubeIter::new(&p).collect();
        let expect = truth_table::project_models_set(&cnf, &important);
        assert!(cubes.semantically_eq(&expect, &important));
    }

    #[test]
    fn early_stop_does_no_extra_work() {
        // A formula with many solutions: take(1) must terminate instantly
        // and the iterator must remain usable.
        let cnf = Cnf::new(20); // no clauses: 2^20 models
        let important: Vec<Var> = Var::range(20).collect();
        let p = AllSatProblem::new(cnf, important);
        let mut it = CubeIter::new(&p);
        let first = it.next().expect("satisfiable");
        // With no clauses everything lifts away: the single ⊤ cube.
        assert!(first.is_empty());
        assert_eq!(it.next(), None);
        assert!(it.is_exhausted());
    }

    #[test]
    fn unsat_yields_nothing() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([]);
        let p = AllSatProblem::new(cnf, vec![Var::new(0)]);
        let mut it = CubeIter::new(&p);
        assert_eq!(it.next(), None);
        assert!(it.is_exhausted());
    }

    #[test]
    fn fused_after_exhaustion() {
        let mut cnf = Cnf::new(1);
        cnf.add_unit(lit(0, true));
        let p = AllSatProblem::new(cnf, vec![Var::new(0)]);
        let mut it = CubeIter::new(&p);
        assert!(it.next().is_some());
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn yielded_cubes_never_repeat_solutions() {
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(77);
        for round in 0..15 {
            let n = 6;
            let mut cnf = Cnf::new(n);
            for _ in 0..8 {
                let c: Vec<Lit> = (0..3)
                    .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                    .collect();
                cnf.add_clause(c);
            }
            let important: Vec<Var> = Var::range(4).collect();
            let p = AllSatProblem::new(cnf.clone(), important.clone());
            let mut seen = CubeSet::new();
            let mut running = CubeSet::new();
            for cube in CubeIter::new(&p) {
                // Each new cube must contain at least one minterm not yet
                // covered (otherwise the solver revisited blocked space).
                let fresh = cube
                    .expand_minterms(&important)
                    .into_iter()
                    .any(|m| !running.contains_minterm(&m.to_assignment(4)));
                assert!(fresh, "round {round}: repeated cube {cube}");
                running.insert(cube.clone());
                seen.insert(cube);
            }
            let expect = truth_table::project_models_set(&cnf, &important);
            assert!(seen.semantically_eq(&expect, &important), "round {round}");
        }
    }
}
