//! The classical blocking-clause all-SAT baseline.

use presat_logic::CubeSet;
use presat_obs::{Event, ObsSink, StopReason};
use presat_sat::{SolveResult, Solver};

use crate::engine::{AllSatEngine, AllSatProblem, AllSatResult, EnumerationStats};
use crate::limits::EnumLimits;

/// Naive all-solutions enumeration: solve, project the model onto the
/// important variables, add a blocking clause over the *full* projected
/// minterm, repeat until UNSAT.
///
/// This is the reference point every all-SAT paper of the era starts from:
/// correct, simple, and linear in the number of solution **minterms** — i.e.
/// exponential in the number of important variables on dense solution sets.
///
/// # Examples
///
/// ```
/// use presat_allsat::{AllSatEngine, AllSatProblem, BlockingAllSat};
/// use presat_logic::{Cnf, Lit, Var};
///
/// let mut cnf = Cnf::new(2);
/// cnf.add_clause([Lit::pos(Var::new(0)), Lit::pos(Var::new(1))]);
/// let problem = AllSatProblem::new(cnf, vec![Var::new(0), Var::new(1)]);
/// let result = BlockingAllSat::default().enumerate(&problem);
/// assert_eq!(result.stats.blocking_clauses, 3); // one per minterm
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockingAllSat;

impl BlockingAllSat {
    /// Creates the engine (stateless).
    pub fn new() -> Self {
        BlockingAllSat
    }
}

impl AllSatEngine for BlockingAllSat {
    fn name(&self) -> &'static str {
        "blocking"
    }

    fn enumerate_limited(
        &self,
        problem: &AllSatProblem,
        limits: &EnumLimits,
        sink: &mut dyn ObsSink,
    ) -> AllSatResult {
        let mut solver = Solver::from_cnf(&problem.cnf);
        solver.set_budget(limits.budget);
        solver.set_cancel(limits.cancel.clone());
        let mut stats = EnumerationStats::default();
        let mut cubes = CubeSet::new();
        let mut stopped: Option<StopReason> = None;
        loop {
            stats.solver_calls += 1;
            match solver.solve() {
                SolveResult::Unsat => break,
                SolveResult::Unknown(reason) => {
                    // Partial but sound: everything blocked so far is a
                    // verified solution minterm; report it, never `Unsat`.
                    stopped = Some(reason);
                    break;
                }
                SolveResult::Sat(model) => {
                    let minterm = model.project(&problem.important);
                    stats.cubes_emitted += 1;
                    stats.literals_before_lift += minterm.len() as u64;
                    stats.literals_after_lift += minterm.len() as u64;
                    sink.record(&Event::Solution {
                        width: minterm.len() as u32,
                    });
                    // Block exactly this minterm.
                    let blocked = solver.add_clause(minterm.lits().iter().map(|&l| !l));
                    stats.blocking_clauses += 1;
                    let db = solver.stats().problem_clauses + solver.live_learnt_count() as u64;
                    stats.db_clauses_peak = stats.db_clauses_peak.max(db);
                    sink.record(&Event::BlockingClause {
                        width: minterm.len() as u32,
                    });
                    cubes.insert(minterm);
                    if !blocked {
                        // Blocking the last remaining projection point made
                        // the formula unsatisfiable at level 0.
                        break;
                    }
                    if limits
                        .max_solutions
                        .is_some_and(|max| stats.cubes_emitted >= max)
                    {
                        stopped = Some(StopReason::MaxSolutions);
                        break;
                    }
                }
            }
        }
        stats.sat = *solver.stats();
        stats.sat_conflicts = stats.sat.conflicts;
        stats.sat_decisions = stats.sat.decisions;
        if let Some(reason) = stopped {
            stats.budget_stops = 1;
            sink.record(&Event::BudgetStop { reason });
        }
        AllSatResult {
            cubes,
            graph: None,
            stats,
            complete: stopped.is_none(),
            stop_reason: stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::{truth_table, Cnf, Lit, Var};

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    #[test]
    fn enumerates_or_projection() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let p = AllSatProblem::new(cnf.clone(), vec![Var::new(0), Var::new(1)]);
        let r = BlockingAllSat::new().enumerate(&p);
        let expect = truth_table::project_models_set(&cnf, &p.important);
        assert!(r.cubes.semantically_eq(&expect, &p.important));
        assert_eq!(r.stats.cubes_emitted, 3);
    }

    #[test]
    fn unsat_formula_yields_empty_set() {
        let mut cnf = Cnf::new(1);
        cnf.add_unit(lit(0, true));
        cnf.add_unit(lit(0, false));
        let p = AllSatProblem::new(cnf, vec![Var::new(0)]);
        let r = BlockingAllSat::new().enumerate(&p);
        assert!(r.cubes.is_empty());
        assert_eq!(r.stats.cubes_emitted, 0);
    }

    #[test]
    fn hidden_variables_are_projected_away() {
        // x1 (hidden) free, x0 forced true: projection on x0 is one cube.
        let mut cnf = Cnf::new(2);
        cnf.add_unit(lit(0, true));
        let p = AllSatProblem::new(cnf, vec![Var::new(0)]);
        let r = BlockingAllSat::new().enumerate(&p);
        assert_eq!(r.cubes.len(), 1);
        assert_eq!(r.minterm_count(1), 1);
        // Both completions of x1 map to the same projection: exactly one
        // blocking clause needed.
        assert_eq!(r.stats.blocking_clauses, 1);
    }

    #[test]
    fn empty_important_set() {
        let mut cnf = Cnf::new(1);
        cnf.add_unit(lit(0, true));
        let p = AllSatProblem::new(cnf, vec![]);
        let r = BlockingAllSat::new().enumerate(&p);
        assert!(r.cubes.is_universe());
    }

    #[test]
    fn matches_oracle_on_random_formulas() {
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(21);
        for round in 0..25 {
            let n = 6;
            let mut cnf = Cnf::new(n);
            for _ in 0..8 {
                let c: Vec<Lit> = (0..3)
                    .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                    .collect();
                cnf.add_clause(c);
            }
            let important: Vec<Var> = Var::range(3).collect();
            let p = AllSatProblem::new(cnf.clone(), important.clone());
            let r = BlockingAllSat::new().enumerate(&p);
            let expect = truth_table::project_models_set(&cnf, &important);
            assert!(
                r.cubes.semantically_eq(&expect, &important),
                "divergence on round {round}"
            );
        }
    }
}
