//! Branching-order heuristics for the important variables.
//!
//! The success-driven solver branches on the important variables in the
//! order the problem lists them; that order is also the level order of the
//! resulting [`crate::SolutionGraph`], so — exactly as with BDDs — a bad
//! order can blow the graph up while a good one keeps it linear. These
//! helpers compute orders from the CNF's structure; the enumerated *set*
//! is order-independent (asserted by tests), only cost varies.

use presat_logic::rng::SplitMix64;
use presat_logic::{Cnf, Var};

/// A branching-order heuristic for [`order_important`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BranchOrder {
    /// Keep the caller's order (for circuits: latch order).
    #[default]
    Natural,
    /// The caller's order, reversed.
    Reversed,
    /// Most-occurring variables first (branch on the most constrained
    /// variables early, so conflicts prune high in the tree).
    OccurrenceDescending,
    /// Least-occurring variables first (the adversarial dual, useful as an
    /// ablation worst case).
    OccurrenceAscending,
    /// Deterministic pseudo-random shuffle of the caller's order.
    Shuffled(u64),
}

/// Reorders `important` according to the heuristic, relative to `cnf`.
///
/// # Examples
///
/// ```
/// use presat_allsat::{order_important, BranchOrder};
/// use presat_logic::{Cnf, Lit, Var};
///
/// let mut cnf = Cnf::new(3);
/// cnf.add_clause([Lit::pos(Var::new(2)), Lit::pos(Var::new(1))]);
/// cnf.add_clause([Lit::neg(Var::new(2))]);
/// let important: Vec<Var> = (0..3).map(Var::new).collect();
/// let ordered = order_important(&cnf, &important, BranchOrder::OccurrenceDescending);
/// assert_eq!(ordered[0], Var::new(2)); // occurs twice
/// ```
pub fn order_important(cnf: &Cnf, important: &[Var], order: BranchOrder) -> Vec<Var> {
    match order {
        BranchOrder::Natural => important.to_vec(),
        BranchOrder::Reversed => important.iter().rev().copied().collect(),
        BranchOrder::OccurrenceDescending | BranchOrder::OccurrenceAscending => {
            let mut counts = vec![0usize; cnf.num_vars()];
            for clause in cnf.clauses() {
                for &l in clause {
                    counts[l.var().index()] += 1;
                }
            }
            let mut v = important.to_vec();
            // Stable sort keeps the natural order among ties.
            v.sort_by_key(|var| counts[var.index()]);
            if order == BranchOrder::OccurrenceDescending {
                v.reverse();
            }
            v
        }
        BranchOrder::Shuffled(seed) => {
            // Fisher–Yates with a splitmix64 stream: deterministic and
            // dependency-free. The XOR separates this stream from other
            // users of the same raw seed.
            let mut v = important.to_vec();
            let mut rng = SplitMix64::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
            rng.shuffle(&mut v);
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllSatEngine, AllSatProblem, SuccessDrivenAllSat};
    use presat_logic::{truth_table, Lit};

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    #[test]
    fn natural_and_reversed() {
        let cnf = Cnf::new(3);
        let vars: Vec<Var> = Var::range(3).collect();
        assert_eq!(order_important(&cnf, &vars, BranchOrder::Natural), vars);
        assert_eq!(
            order_important(&cnf, &vars, BranchOrder::Reversed),
            vec![Var::new(2), Var::new(1), Var::new(0)]
        );
    }

    #[test]
    fn occurrence_orders_are_duals() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(1, true), lit(2, true)]);
        cnf.add_clause([lit(1, false)]);
        let vars: Vec<Var> = Var::range(3).collect();
        let desc = order_important(&cnf, &vars, BranchOrder::OccurrenceDescending);
        let asc = order_important(&cnf, &vars, BranchOrder::OccurrenceAscending);
        assert_eq!(desc[0], Var::new(1));
        assert_eq!(asc[0], Var::new(0));
    }

    #[test]
    fn shuffle_is_deterministic_and_a_permutation() {
        let cnf = Cnf::new(8);
        let vars: Vec<Var> = Var::range(8).collect();
        let a = order_important(&cnf, &vars, BranchOrder::Shuffled(42));
        let b = order_important(&cnf, &vars, BranchOrder::Shuffled(42));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, vars);
        let c = order_important(&cnf, &vars, BranchOrder::Shuffled(43));
        assert_ne!(a, c, "different seeds should differ on 8 elements");
    }

    #[test]
    fn enumeration_is_order_independent() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for round in 0..10 {
            let n = 6;
            let mut cnf = Cnf::new(n);
            for _ in 0..9 {
                let c: Vec<Lit> = (0..3)
                    .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                    .collect();
                cnf.add_clause(c);
            }
            let important: Vec<Var> = Var::range(4).collect();
            let expect = truth_table::project_models_set(&cnf, &important);
            for order in [
                BranchOrder::Natural,
                BranchOrder::Reversed,
                BranchOrder::OccurrenceDescending,
                BranchOrder::OccurrenceAscending,
                BranchOrder::Shuffled(round),
            ] {
                let ordered = order_important(&cnf, &important, order);
                let p = AllSatProblem::new(cnf.clone(), ordered);
                let r = SuccessDrivenAllSat::new().enumerate(&p);
                assert!(
                    r.cubes.semantically_eq(&expect, &important),
                    "round {round}, {order:?}"
                );
            }
        }
    }
}
