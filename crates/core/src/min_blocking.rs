//! Blocking-clause enumeration with cube minimization (literal lifting).

use presat_logic::CubeSet;
use presat_obs::{Event, ObsSink, StopReason};
use presat_sat::{SolveResult, Solver};

use crate::engine::{AllSatEngine, AllSatProblem, AllSatResult, EnumerationStats};
use crate::lift::lift_cube;
use crate::limits::EnumLimits;

/// All-solutions enumeration with *lifted* blocking clauses: each model's
/// projected cube is first enlarged by dropping irrelevant literals
/// ([`lift_cube`]), and the blocking clause excludes the whole enlarged
/// cube — `2^(n-k)` minterms at a stroke.
///
/// This is the stronger classical baseline (McMillan-style cube
/// enlargement); it collapses the minterm explosion wherever single cubes
/// cover large subspaces, but still re-explores *shared* structure that is
/// not axis-aligned, which is exactly the gap the success-driven engine
/// closes.
///
/// # Examples
///
/// ```
/// use presat_allsat::{AllSatEngine, AllSatProblem, MinimizedBlockingAllSat};
/// use presat_logic::{Cnf, Lit, Var};
///
/// // x0 forced; x1, x2 free: one lifted cube instead of four minterms.
/// let mut cnf = Cnf::new(3);
/// cnf.add_clause([Lit::pos(Var::new(0))]);
/// let problem = AllSatProblem::new(cnf, (0..3).map(Var::new).collect());
/// let result = MinimizedBlockingAllSat::default().enumerate(&problem);
/// assert_eq!(result.stats.blocking_clauses, 1);
/// assert_eq!(result.minterm_count(3), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinimizedBlockingAllSat;

impl MinimizedBlockingAllSat {
    /// Creates the engine (stateless).
    pub fn new() -> Self {
        MinimizedBlockingAllSat
    }
}

impl AllSatEngine for MinimizedBlockingAllSat {
    fn name(&self) -> &'static str {
        "min-blocking"
    }

    fn enumerate_limited(
        &self,
        problem: &AllSatProblem,
        limits: &EnumLimits,
        sink: &mut dyn ObsSink,
    ) -> AllSatResult {
        let mut solver = Solver::from_cnf(&problem.cnf);
        solver.set_budget(limits.budget);
        solver.set_cancel(limits.cancel.clone());
        let mut stats = EnumerationStats::default();
        let mut cubes = CubeSet::new();
        let mut stopped: Option<StopReason> = None;
        loop {
            stats.solver_calls += 1;
            match solver.solve() {
                SolveResult::Unsat => break,
                SolveResult::Unknown(reason) => {
                    // Everything blocked so far is verified; stop honestly.
                    stopped = Some(reason);
                    break;
                }
                SolveResult::Sat(model) => {
                    let minterm_len = problem.important.len() as u64;
                    let cube = lift_cube(&problem.cnf, &model, &problem.important);
                    stats.cubes_emitted += 1;
                    stats.literals_before_lift += minterm_len;
                    stats.literals_after_lift += cube.len() as u64;
                    sink.record(&Event::Solution {
                        width: cube.len() as u32,
                    });
                    let blocked = solver.add_clause(cube.lits().iter().map(|&l| !l));
                    stats.blocking_clauses += 1;
                    let db = solver.stats().problem_clauses + solver.live_learnt_count() as u64;
                    stats.db_clauses_peak = stats.db_clauses_peak.max(db);
                    sink.record(&Event::BlockingClause {
                        width: cube.len() as u32,
                    });
                    cubes.insert(cube);
                    if !blocked {
                        break;
                    }
                    // Lifted cubes can cover many minterms; counting cubes
                    // (not minterms) keeps the cap a cheap lower bound.
                    if limits
                        .max_solutions
                        .is_some_and(|max| stats.cubes_emitted >= max)
                    {
                        stopped = Some(StopReason::MaxSolutions);
                        break;
                    }
                }
            }
        }
        stats.sat = *solver.stats();
        stats.sat_conflicts = stats.sat.conflicts;
        stats.sat_decisions = stats.sat.decisions;
        if let Some(reason) = stopped {
            stats.budget_stops = 1;
            sink.record(&Event::BudgetStop { reason });
        }
        AllSatResult {
            cubes,
            graph: None,
            stats,
            complete: stopped.is_none(),
            stop_reason: stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::{truth_table, Cnf, Lit, Var};

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    #[test]
    fn lifting_reduces_clause_count() {
        // x0 forced, x1..x4 free: naive blocking needs 16 clauses, lifted
        // needs 1.
        let mut cnf = Cnf::new(5);
        cnf.add_unit(lit(0, true));
        let p = AllSatProblem::new(cnf, (0..5).map(Var::new).collect());
        let r = MinimizedBlockingAllSat::new().enumerate(&p);
        assert_eq!(r.stats.blocking_clauses, 1);
        assert_eq!(r.minterm_count(5), 16);
    }

    #[test]
    fn matches_naive_engine_semantics() {
        use crate::blocking::BlockingAllSat;
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(33);
        for round in 0..25 {
            let n = 6;
            let mut cnf = Cnf::new(n);
            for _ in 0..9 {
                let c: Vec<Lit> = (0..3)
                    .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                    .collect();
                cnf.add_clause(c);
            }
            let important: Vec<Var> = Var::range(4).collect();
            let p = AllSatProblem::new(cnf, important.clone());
            let naive = BlockingAllSat::new().enumerate(&p);
            let lifted = MinimizedBlockingAllSat::new().enumerate(&p);
            assert!(
                naive.cubes.semantically_eq(&lifted.cubes, &important),
                "divergence on round {round}"
            );
            assert!(lifted.stats.blocking_clauses <= naive.stats.blocking_clauses);
            assert!(lifted.stats.literals_after_lift <= lifted.stats.literals_before_lift);
        }
    }

    #[test]
    fn oracle_equivalence_with_hidden_variables() {
        let mut cnf = Cnf::new(4);
        // hidden x3 couples x0 and x1: (x0 ∨ x3)(¬x3 ∨ x1)
        cnf.add_clause([lit(0, true), lit(3, true)]);
        cnf.add_clause([lit(3, false), lit(1, true)]);
        let important: Vec<Var> = Var::range(3).collect();
        let p = AllSatProblem::new(cnf.clone(), important.clone());
        let r = MinimizedBlockingAllSat::new().enumerate(&p);
        let expect = truth_table::project_models_set(&cnf, &important);
        assert!(r.cubes.semantically_eq(&expect, &important));
    }

    #[test]
    fn unsat_yields_empty() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([]);
        let p = AllSatProblem::new(cnf, vec![Var::new(0)]);
        let r = MinimizedBlockingAllSat::new().enumerate(&p);
        assert!(r.cubes.is_empty());
    }
}
