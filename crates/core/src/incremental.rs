//! A persistent all-SAT engine for *iterated* enumeration.
//!
//! The preimage fixed point asks the same structural question — "project
//! this transition formula onto the state variables" — over and over, with
//! only the target side changing per iteration. [`IncrementalAllSat`] keeps
//! **one** CDCL solver, **one** solution graph, and **one** signature cache
//! alive across `enumerate` calls: the caller grows the formula
//! monotonically (activation-literal-tagged target clauses, reached-state
//! blocking clauses), enumerates under per-call assumptions, and retires
//! activation groups when an iteration's target is done. Learnt clauses,
//! saved phases, and VSIDS activities all survive between calls, which is
//! the whole point.
//!
//! # Soundness across calls
//!
//! * **Learnt clauses** are consequences of the problem clauses present
//!   when they were derived; the formula only grows, so they stay sound.
//!   Clauses learnt while an activation group was assumed contain the
//!   negated activation literal (assumption negations are pushed into
//!   learnt clauses by conflict analysis), so they become inert — never
//!   wrong — once the group is retired.
//! * **The dynamic signature cache** persists: a [`SigKey::Dynamic`] key
//!   captures the implied suffix values and the exact surviving-literal
//!   contents of the residual suffix cone, which *determine* the suffix
//!   solution set given that the global formula is satisfiable under the
//!   prefix — and the engine certifies satisfiability with a fresh model
//!   before ever consulting the cache. New clauses added between calls
//!   (blocking clauses over state variables, activation-tagged target
//!   clauses under a *currently assumed* activation literal) appear in the
//!   cone while unsatisfied, so they change the key exactly when they can
//!   change the suffix set.
//! * **Static connectivity keys** are *not* stable under formula growth (a
//!   new clause can connect previously independent variables), so in
//!   [`SignatureMode::Static`] the cache is cleared and the connectivity
//!   index rebuilt on every call. Static mode exists for ablation only.
//!
//! The persistent [`SolutionGraph`] is shared, hash-consed storage: nodes
//! cached in iteration *k* are reused verbatim in iteration *k+1* when
//! their signature recurs.

use std::collections::HashMap;

use presat_logic::{Cnf, Lit, Var};
use presat_obs::{Event, NullSink, ObsSink, StopReason};
use presat_sat::{Budget, Solver};

use crate::engine::{AllSatResult, EnumerationStats};
use crate::limits::EnumLimits;
use crate::parallel::{enumerate_partitioned, ParTuning};
use crate::signature::{ConnectivityIndex, ResidualIndex};
use crate::solution_graph::{SolutionGraph, SolutionNodeId};
use crate::success_driven::{Search, SigKey, SignatureMode, SuccessDrivenAllSat};

/// An all-SAT engine whose solver, solution graph, and signature cache
/// persist across `enumerate` calls over one monotonically growing formula.
///
/// Protocol per iteration:
///
/// 1. [`add_var`](IncrementalAllSat::add_var) a fresh activation literal
///    `a`, then [`add_clause`](IncrementalAllSat::add_clause) the
///    iteration's clauses with `¬a` disjoined in.
/// 2. [`enumerate_with_sink`](IncrementalAllSat::enumerate_with_sink) with
///    `a` among the assumptions.
/// 3. [`retire`](IncrementalAllSat::retire)`(a)` — the group's clauses are
///    permanently satisfied and garbage-collected from the solver.
/// 4. Optionally `add_clause` permanent clauses (e.g. blocking enumerated
///    states) before the next round.
///
/// # Examples
///
/// ```
/// use presat_allsat::IncrementalAllSat;
/// use presat_logic::{Cnf, Lit, Var};
///
/// let vars: Vec<Var> = (0..2).map(Var::new).collect();
/// let mut cnf = Cnf::new(2);
/// cnf.add_clause([Lit::pos(vars[0]), Lit::pos(vars[1])]);
/// let mut inc = IncrementalAllSat::new(cnf, vars, Default::default(), 1);
///
/// // Iteration 1: additionally require x1, via an activation group.
/// let a = Lit::pos(inc.add_var());
/// inc.add_clause(vec![!a, Lit::pos(Var::new(1))]);
/// let r1 = inc.enumerate(&[a]);
/// assert_eq!(r1.cubes.minterm_count(2), 2); // {x1} = {01, 11}
/// inc.retire(a);
///
/// // Iteration 2: the group is gone; only x0 ∨ x1 remains.
/// let r2 = inc.enumerate(&[]);
/// assert_eq!(r2.cubes.minterm_count(2), 3);
/// ```
#[derive(Debug)]
pub struct IncrementalAllSat {
    config: SuccessDrivenAllSat,
    jobs: usize,
    /// Parallel-partitioner tuning (adaptive splitting, spawn gate). The
    /// default keeps `par_threshold = 0` so a session constructed with
    /// `jobs > 1` always partitions; the preimage layer raises the gate.
    tuning: ParTuning,
    /// Mirror of the solver's problem clauses (not its learnt clauses):
    /// the signature machinery reads clause *contents*, which the solver
    /// does not expose. Retired groups stay in the mirror — their
    /// activation unit makes propagation mark them satisfied, so they
    /// vanish from every residual cone.
    cnf: Cnf,
    important: Vec<Var>,
    solver: Solver,
    graph: SolutionGraph,
    cache: HashMap<SigKey, SolutionNodeId>,
    residual: Option<ResidualIndex>,
    /// Clause count already covered by `residual`.
    indexed_clauses: usize,
    /// Arena compactions (and clauses they reclaimed) that ran *between*
    /// enumeration calls — `retire` triggers garbage collection after the
    /// previous call's stats snapshot was taken. Folded into the next
    /// call's snapshot exactly once, so per-call stats sum to session
    /// totals.
    pending_compactions: u64,
    pending_reclaimed: u64,
    /// Root-level inprocessing work that likewise ran between calls
    /// (`retire` runs the solver's inprocessor after dropping the group);
    /// folded into the next call's snapshot exactly once, like the GC
    /// counters above.
    pending_inprocess_rounds: u64,
    pending_subsumed: u64,
    pending_strengthened: u64,
    pending_vivified: u64,
}

impl IncrementalAllSat {
    /// Creates a session over `cnf`, projecting onto `important`, with the
    /// given engine configuration and worker count (`0` = auto-detect,
    /// `1` = sequential; parallel calls partition each enumeration the same
    /// way [`crate::ParallelAllSat`] does, cloning the persistent solver at
    /// the root).
    ///
    /// # Panics
    ///
    /// Panics if `important` contains duplicates or variables outside the
    /// formula's variable space (same contract as
    /// [`crate::AllSatProblem::new`]).
    pub fn new(cnf: Cnf, important: Vec<Var>, config: SuccessDrivenAllSat, jobs: usize) -> Self {
        let mut seen = vec![false; cnf.num_vars()];
        for &v in &important {
            assert!(
                v.index() < cnf.num_vars(),
                "important variable {v} outside formula space"
            );
            assert!(!seen[v.index()], "duplicate important variable {v}");
            seen[v.index()] = true;
        }
        let solver = Solver::from_cnf(&cnf);
        let residual =
            (config.signature == SignatureMode::Dynamic).then(|| ResidualIndex::build(&cnf));
        let indexed_clauses = cnf.num_clauses();
        let k = important.len();
        IncrementalAllSat {
            config,
            jobs,
            tuning: ParTuning::default(),
            cnf,
            important,
            solver,
            graph: SolutionGraph::new(k),
            cache: HashMap::new(),
            residual,
            indexed_clauses,
            pending_compactions: 0,
            pending_reclaimed: 0,
            pending_inprocess_rounds: 0,
            pending_subsumed: 0,
            pending_strengthened: 0,
            pending_vivified: 0,
        }
    }

    /// Adds a fresh variable to the formula and the solver (typically an
    /// activation literal).
    pub fn add_var(&mut self) -> Var {
        let v = self.cnf.fresh_var();
        let sv = self.solver.add_var();
        debug_assert_eq!(v, sv, "mirror and solver variable spaces diverged");
        v
    }

    /// Adds a clause to the formula and the solver. Must be called between
    /// enumerations (the solver is always at decision level 0 there).
    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        self.cnf.add_clause(lits.iter().copied());
        self.solver.add_clause(lits);
    }

    /// Permanently retires the activation group of `act`: asserts `¬act`
    /// and garbage-collects the group's clauses from the solver arena. The
    /// mirror keeps them — propagation sees them satisfied by `¬act`, so
    /// they drop out of every residual signature. Returns the number of
    /// clauses collected.
    ///
    /// Retirement is also the session's inprocessing point: with the
    /// solver's [`presat_sat::SolverConfig::inprocess`] knob on (the
    /// default), the surviving problem and learnt clauses are subsumed,
    /// strengthened, and vivified at the root. Inprocessing is
    /// equivalence-preserving, so enumeration results are unchanged — only
    /// the work counters and the live clause volume move.
    pub fn retire(&mut self, act: Lit) -> u64 {
        let before = *self.solver.stats();
        let removed = self.solver.retire_group(act);
        self.solver.inprocess();
        let after = self.solver.stats();
        self.pending_compactions += after.db_compactions - before.db_compactions;
        self.pending_reclaimed += after.clauses_reclaimed - before.clauses_reclaimed;
        self.pending_inprocess_rounds += after.inprocess_rounds - before.inprocess_rounds;
        self.pending_subsumed += after.subsumed_clauses - before.subsumed_clauses;
        self.pending_strengthened += after.strengthened_lits - before.strengthened_lits;
        self.pending_vivified += after.vivified_clauses - before.vivified_clauses;
        removed
    }

    /// Enables or disables the solver's root-level inprocessing at
    /// retirement points (on by default; see
    /// [`IncrementalAllSat::retire`]).
    pub fn set_inprocess(&mut self, on: bool) {
        self.solver.set_inprocess(on);
    }

    /// Sets the parallel-partitioner tuning (adaptive cube splitting and
    /// the sequential spawn gate) used by `jobs > 1` enumerations.
    pub fn set_tuning(&mut self, tuning: ParTuning) {
        self.tuning = tuning;
    }

    /// Number of live learnt clauses currently carried by the persistent
    /// solver (the `learnts_carried` observability counter).
    pub fn live_learnts(&self) -> usize {
        self.solver.live_learnt_count()
    }

    /// Bytes currently resident in the persistent solver's clause arena —
    /// the session's live memory footprint, which the `presatd` admission
    /// controller sums across sessions against its ceiling.
    pub fn arena_bytes(&self) -> u64 {
        self.solver.arena_bytes() as u64
    }

    /// The persistent solution graph (shared storage across calls).
    pub fn graph(&self) -> &SolutionGraph {
        &self.graph
    }

    /// Enumerates the projection of the current formula's models, under
    /// `assumptions` (activation literals), onto the important variables.
    ///
    /// Results are bit-identical to a cold
    /// [`crate::SuccessDrivenAllSat`] / [`crate::ParallelAllSat`] run on
    /// the same formula + assumptions: the persistent state is pure
    /// acceleration (learnt clauses, cached canonical subgraphs), never
    /// semantics. Work counters in the returned stats cover this call only.
    pub fn enumerate_with_sink(
        &mut self,
        assumptions: &[Lit],
        sink: &mut dyn ObsSink,
    ) -> AllSatResult {
        self.enumerate_limited(assumptions, &EnumLimits::none(), sink)
    }

    /// [`enumerate_with_sink`](IncrementalAllSat::enumerate_with_sink)
    /// under resource `limits`, which apply to **this call only** — the
    /// installed budget/cancel are removed from the persistent solver
    /// before returning, so a later unlimited call runs unlimited.
    ///
    /// A stopped call returns a partial result flagged `complete = false`;
    /// the session stays fully usable, and nothing the truncated run
    /// explored is allowed to poison the persistent signature cache (only
    /// exhaustively enumerated subspaces are ever cached).
    pub fn enumerate_limited(
        &mut self,
        assumptions: &[Lit],
        limits: &EnumLimits,
        sink: &mut dyn ObsSink,
    ) -> AllSatResult {
        let k = self.important.len();
        let jobs = self.effective_jobs();
        let mut stats;
        let root;
        let stop: Option<StopReason>;
        if jobs > 1 && k > 0 && !self.tuning.gates_sequential(k, self.cnf.num_clauses()) {
            // Partitioned: workers clone the persistent solver at the root
            // (inheriting its learnt clauses and phases) and merge into the
            // persistent graph. Per-worker learnts die with the workers —
            // learnt *carrying* is the sequential path's job.
            let (r, s, st) = enumerate_partitioned(
                self.config,
                self.tuning,
                jobs,
                &self.cnf,
                &self.important,
                &self.solver,
                assumptions,
                limits,
                &mut self.graph,
                sink,
            );
            root = r;
            stats = s;
            stop = st;
        } else {
            match self.config.signature {
                // Static connectivity is not stable under formula growth:
                // rebuild the index and drop the cache every call.
                SignatureMode::Static => self.cache.clear(),
                SignatureMode::Dynamic => {
                    let residual = self.residual.as_mut().expect("built in new()");
                    residual.extend(&self.cnf, self.indexed_clauses);
                    self.indexed_clauses = self.cnf.num_clauses();
                }
                SignatureMode::None => {}
            }
            let conn = (self.config.signature == SignatureMode::Static)
                .then(|| ConnectivityIndex::build(&self.cnf, &self.important));
            self.solver.reset_stats();
            self.solver.set_budget(limits.budget);
            self.solver.set_cancel(limits.cancel.clone());
            let mut search = Search {
                cnf: &self.cnf,
                important: &self.important,
                solver: std::mem::replace(&mut self.solver, Solver::new(0)),
                conn,
                residual: self.residual.take(),
                graph: std::mem::replace(&mut self.graph, SolutionGraph::new(k)),
                cache: std::mem::take(&mut self.cache),
                stats: EnumerationStats::default(),
                prefix_lits: assumptions.to_vec(),
                prefix_vals: Vec::with_capacity(k),
                forced: Vec::new(),
                model_guidance: self.config.model_guidance,
                sink,
                max_solutions: limits.max_solutions,
                solutions_found: 0,
                stopped: None,
            };
            root = search.explore(0, None);
            search.stats.sat = *search.solver.stats();
            search.stats.sat_conflicts = search.stats.sat.conflicts;
            search.stats.sat_decisions = search.stats.sat.decisions;
            stop = search.stopped;
            let Search {
                solver,
                residual,
                graph,
                cache,
                stats: s,
                ..
            } = search;
            self.solver = solver;
            self.residual = residual;
            self.graph = graph;
            self.cache = cache;
            stats = s;
            // This call's limits must not outlive it: the persistent
            // solver returns to unlimited, un-cancellable operation.
            self.solver.set_budget(Budget::unlimited());
            self.solver.set_cancel(None);
            if let Some(reason) = stop {
                stats.budget_stops = 1;
                sink.record(&Event::BudgetStop { reason });
            }
        }
        // Attribute between-call garbage collection (from `retire`) to
        // this call's snapshot, exactly once.
        stats.sat.db_compactions += self.pending_compactions;
        stats.sat.clauses_reclaimed += self.pending_reclaimed;
        stats.sat.inprocess_rounds += self.pending_inprocess_rounds;
        stats.sat.subsumed_clauses += self.pending_subsumed;
        stats.sat.strengthened_lits += self.pending_strengthened;
        stats.sat.vivified_clauses += self.pending_vivified;
        self.pending_compactions = 0;
        self.pending_reclaimed = 0;
        self.pending_inprocess_rounds = 0;
        self.pending_subsumed = 0;
        self.pending_strengthened = 0;
        self.pending_vivified = 0;
        stats.graph_nodes = self.graph.reachable_count(root) as u64;
        let cubes = self.graph.to_cube_set(root, &self.important);
        stats.cubes_emitted = cubes.len() as u64;
        for cube in &cubes {
            sink.record(&Event::Solution {
                width: cube.len() as u32,
            });
        }
        AllSatResult {
            cubes,
            graph: None,
            stats,
            complete: stop.is_none(),
            stop_reason: stop,
        }
    }

    /// [`enumerate_with_sink`](IncrementalAllSat::enumerate_with_sink)
    /// without an event trace.
    pub fn enumerate(&mut self, assumptions: &[Lit]) -> AllSatResult {
        self.enumerate_with_sink(assumptions, &mut NullSink)
    }

    fn effective_jobs(&self) -> usize {
        crate::parallel::effective_jobs(self.jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AllSatEngine, AllSatProblem};
    use crate::parallel::ParallelAllSat;
    use presat_logic::rng::SplitMix64;

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    fn random_cnf(seed: u64, n: usize, m: usize) -> Cnf {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut cnf = Cnf::new(n);
        for _ in 0..m {
            let c: Vec<Lit> = (0..3)
                .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                .collect();
            cnf.add_clause(c);
        }
        cnf
    }

    /// Oracle: the session's answer after any history must equal a cold
    /// engine run on (mirror CNF + pending activation units + assumptions).
    fn cold_answer(
        cnf: &Cnf,
        important: &[Var],
        retired: &[Lit],
        assumptions: &[Lit],
        config: SuccessDrivenAllSat,
    ) -> AllSatResult {
        let mut full = cnf.clone();
        for &dead in retired {
            full.add_unit(!dead);
        }
        for &a in assumptions {
            full.add_unit(a);
        }
        let p = AllSatProblem::new(full, important.to_vec());
        config.enumerate(&p)
    }

    #[test]
    fn iterated_groups_match_cold_runs_all_modes_and_jobs() {
        for mode in [
            SignatureMode::None,
            SignatureMode::Static,
            SignatureMode::Dynamic,
        ] {
            for jobs in [1usize, 4] {
                let config = SuccessDrivenAllSat::new().with_signature(mode);
                for seed in 0..4u64 {
                    let n = 7;
                    let base = random_cnf(seed, n, 12);
                    let important: Vec<Var> = Var::range(5).collect();
                    let mut inc =
                        IncrementalAllSat::new(base.clone(), important.clone(), config, jobs);
                    let mut retired: Vec<Lit> = Vec::new();
                    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xfeed);
                    for round in 0..5 {
                        let act = Lit::pos(inc.add_var());
                        // 1–2 random clauses tagged with the group literal.
                        for _ in 0..rng.gen_range(1..3) {
                            let mut c: Vec<Lit> = (0..2)
                                .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                                .collect();
                            c.push(!act);
                            inc.add_clause(c.clone());
                        }
                        let got = inc.enumerate(&[act]);
                        let want = cold_answer(
                            // The mirror *is* the reference formula.
                            &inc.cnf,
                            &important,
                            &retired,
                            &[act],
                            config,
                        );
                        assert_eq!(
                            got.cubes, want.cubes,
                            "mode {mode:?} jobs {jobs} seed {seed} round {round}"
                        );
                        inc.retire(act);
                        retired.push(act);
                        // A permanent blocking clause between iterations.
                        if round % 2 == 0 {
                            let c: Vec<Lit> = (0..3)
                                .map(|_| lit(rng.gen_range(0..5), rng.gen_bool(0.5)))
                                .collect();
                            inc.add_clause(c);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_group_yields_bottom_and_session_survives() {
        let cnf = random_cnf(9, 6, 10);
        let important: Vec<Var> = Var::range(4).collect();
        let mut inc = IncrementalAllSat::new(cnf.clone(), important.clone(), Default::default(), 1);
        let act = Lit::pos(inc.add_var());
        // The group forces a contradiction: enumeration under it is empty.
        inc.add_clause(vec![!act, lit(0, true)]);
        inc.add_clause(vec![!act, lit(0, false)]);
        let r = inc.enumerate(&[act]);
        assert!(r.cubes.is_empty());
        inc.retire(act);
        // The session is still usable and matches a cold run.
        let got = inc.enumerate(&[]);
        let want = cold_answer(&inc.cnf, &important, &[act], &[], Default::default());
        assert_eq!(got.cubes, want.cubes);
    }

    #[test]
    fn stats_cover_each_call_separately() {
        let cnf = random_cnf(2, 7, 12);
        let important: Vec<Var> = Var::range(5).collect();
        let mut inc = IncrementalAllSat::new(cnf, important, Default::default(), 1);
        let r1 = inc.enumerate(&[]);
        let r2 = inc.enumerate(&[]);
        assert!(r1.stats.solver_calls > 0);
        // Second call re-proves the same space; counters must not be
        // cumulative across calls.
        assert!(r2.stats.solver_calls <= r1.stats.solver_calls);
    }

    #[test]
    fn parallel_session_matches_parallel_engine() {
        for seed in 0..3u64 {
            let cnf = random_cnf(seed.wrapping_mul(77).wrapping_add(5), 8, 16);
            let important: Vec<Var> = Var::range(6).collect();
            let cold = ParallelAllSat::new(4)
                .enumerate(&AllSatProblem::new(cnf.clone(), important.clone()));
            let mut inc = IncrementalAllSat::new(cnf, important, Default::default(), 4);
            let got = inc.enumerate(&[]);
            assert_eq!(got.cubes, cold.cubes, "seed {seed}");
            assert_eq!(got.stats.graph_nodes, cold.stats.graph_nodes);
        }
    }

    #[test]
    fn learnts_survive_across_calls() {
        // A dense random instance, to exercise the counter plumbing.
        let cnf = random_cnf(123, 9, 30);
        let important: Vec<Var> = Var::range(6).collect();
        let mut inc = IncrementalAllSat::new(cnf, important, Default::default(), 1);
        let _ = inc.enumerate(&[]);
        let carried = inc.live_learnts();
        let _ = inc.enumerate(&[]);
        // The count never resets to a fresh solver's zero unless the solver
        // actually had nothing to learn.
        assert!(inc.live_learnts() >= carried);
    }
}
