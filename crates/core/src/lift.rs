//! Cube minimization (literal lifting).
//!
//! Given a total model of the CNF and the projection cube it induces on the
//! important variables, lifting drops important literals whose value is
//! irrelevant: a literal may be dropped when every clause remains *covered*
//! by another literal that the model satisfies and that is still kept. The
//! surviving (non-important) part of the model is then a single witness
//! completion valid for **every** assignment inside the reduced cube, so the
//! reduced cube is guaranteed to lie entirely inside the projection.
//!
//! This is the standard cube-enlargement technique the paper's novel engine
//! is measured against (and that the minimized-blocking baseline uses).

use presat_logic::{Assignment, Cnf, Cube, Var};

/// Lifts the projection of `model` onto `important`: returns a cube over
/// the important variables that (a) contains the model's projection and
/// (b) is contained in the projection of `cnf`'s models.
///
/// Literals are dropped greedily in reverse `important` order; the result
/// is a maximal-for-this-order (not globally minimum) implicant.
///
/// # Panics
///
/// Panics if `model` is not a model of `cnf` (debug builds), or if `model`
/// leaves an important variable unassigned.
pub fn lift_cube(cnf: &Cnf, model: &Assignment, important: &[Var]) -> Cube {
    debug_assert_eq!(cnf.eval(model), Some(true), "lifting requires a model");
    let num_vars = cnf.num_vars();

    // Which variables are important, by index.
    let mut is_important = vec![false; num_vars];
    for &v in important {
        is_important[v.index()] = true;
    }

    // For every clause, the number of its literals satisfied by the model
    // and currently kept. Initially every model-satisfied literal is kept.
    let mut cover_count: Vec<u32> = Vec::with_capacity(cnf.num_clauses());
    // For every important variable, the clauses in which its model literal
    // is a satisfier.
    let mut critical_in: Vec<Vec<u32>> = vec![Vec::new(); num_vars];
    let mut dedup = Vec::new();
    for (ci, clause) in cnf.clauses().iter().enumerate() {
        // Duplicate literals inside a clause must count as one satisfier,
        // or the drop condition below would double-count them.
        dedup.clear();
        dedup.extend_from_slice(clause);
        dedup.sort_unstable();
        dedup.dedup();
        let mut count = 0;
        for &l in &dedup {
            if model.lit_value(l) == Some(true) {
                count += 1;
                if is_important[l.var().index()] {
                    critical_in[l.var().index()].push(ci as u32);
                }
            }
        }
        cover_count.push(count);
    }

    // Greedy drop pass, reverse order: later branching variables first, so
    // the success-driven engine's deepest levels benefit most.
    let mut dropped = vec![false; num_vars];
    for &v in important.iter().rev() {
        let vi = v.index();
        assert!(
            model.value(v).is_some(),
            "important variable {v} unassigned in model"
        );
        if critical_in[vi]
            .iter()
            .all(|&ci| cover_count[ci as usize] >= 2)
        {
            dropped[vi] = true;
            for &ci in &critical_in[vi] {
                cover_count[ci as usize] -= 1;
            }
        }
    }

    model.project(
        &important
            .iter()
            .copied()
            .filter(|v| !dropped[v.index()])
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::{truth_table, Lit};

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    #[test]
    fn lifts_unconstrained_variable() {
        // x0 must be true; x1 is unconstrained.
        let mut cnf = Cnf::new(2);
        cnf.add_unit(lit(0, true));
        let model = Assignment::from_bits(0b01, 2);
        let important: Vec<Var> = Var::range(2).collect();
        let cube = lift_cube(&cnf, &model, &important);
        assert_eq!(cube.len(), 1);
        assert_eq!(cube.lits()[0], lit(0, true));
    }

    #[test]
    fn keeps_required_literal() {
        // (x0 ∨ x1) with model 01 (x0=1, x1=0): x0 is the only satisfier of
        // the clause, x1 can be dropped.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let model = Assignment::from_bits(0b01, 2);
        let important: Vec<Var> = Var::range(2).collect();
        let cube = lift_cube(&cnf, &model, &important);
        assert_eq!(cube.lits(), &[lit(0, true)]);
    }

    #[test]
    fn double_cover_allows_one_drop() {
        // (x0 ∨ x1) with model 11: both satisfy; reverse order drops x1,
        // then x0 becomes critical and is kept.
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let model = Assignment::from_bits(0b11, 2);
        let important: Vec<Var> = Var::range(2).collect();
        let cube = lift_cube(&cnf, &model, &important);
        assert_eq!(cube.lits(), &[lit(0, true)]);
    }

    #[test]
    fn lifted_cube_stays_inside_projection() {
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(3);
        for round in 0..40 {
            let n = 7;
            let mut cnf = Cnf::new(n);
            for _ in 0..12 {
                let c: Vec<Lit> = (0..3)
                    .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                    .collect();
                cnf.add_clause(c);
            }
            let important: Vec<Var> = Var::range(4).collect(); // x0..x3
            let projection = truth_table::project_models_set(&cnf, &important);
            for m in truth_table::enumerate_models(&cnf) {
                let cube = lift_cube(&cnf, &m, &important);
                // The model's own projection is inside the cube.
                assert!(cube.subsumes(&m.project(&important)), "round {round}");
                // Every minterm of the cube is in the projection.
                assert!(
                    projection.covers_cube(&cube, &important),
                    "round {round}: lifted cube {cube} escapes projection"
                );
            }
        }
    }

    #[test]
    fn aux_variable_witness_is_reused() {
        // aux ↔ x0, clause (aux ∨ x1). Model x0=1,aux=1,x1=0:
        // clause satisfied by aux; x1 droppable, x0 droppable? dropping x0
        // is fine because aux=1 remains the witness... but aux ↔ x0 pins
        // aux to x0; the lift must keep x0 because (¬x0 ∨ aux) is satisfied
        // only by aux... Let's just verify soundness via the oracle.
        let mut cnf = Cnf::new(3); // x0, x1, aux=x2
        cnf.add_clause([lit(2, false), lit(0, true)]);
        cnf.add_clause([lit(2, true), lit(0, false)]);
        cnf.add_clause([lit(2, true), lit(1, true)]);
        let important: Vec<Var> = vec![Var::new(0), Var::new(1)];
        let projection = truth_table::project_models_set(&cnf, &important);
        for m in truth_table::enumerate_models(&cnf) {
            let cube = lift_cube(&cnf, &m, &important);
            assert!(projection.covers_cube(&cube, &important));
        }
    }

    #[test]
    fn empty_important_gives_top_cube() {
        let mut cnf = Cnf::new(1);
        cnf.add_unit(lit(0, true));
        let model = Assignment::from_bits(0b1, 1);
        let cube = lift_cube(&cnf, &model, &[]);
        assert!(cube.is_empty());
    }
}
