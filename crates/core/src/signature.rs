//! Sound subspace signatures for success-driven learning.
//!
//! Two branching prefixes lead to the *same* set of suffix solutions
//! whenever they agree on the variables that can still influence the
//! suffix. This module computes, once per problem, the *relevant prefix
//! positions* for every branching depth: a prefix position `p < d` is
//! relevant at depth `d` iff its variable is connected to some suffix
//! variable (position `≥ d`) in the CNF's variable co-occurrence graph via
//! a path whose intermediate vertices are all non-important (auxiliary)
//! variables.
//!
//! Soundness sketch: fix a prefix assignment. The CNF decomposes into
//! connected components; the suffix solution set is determined by the
//! components containing suffix variables, which touch exactly the relevant
//! prefix variables (a prefix variable inside such a component is, by
//! definition, connected through auxiliary vertices). Components not
//! containing suffix variables only decide global satisfiability, which the
//! success-driven engine re-checks with a dedicated solver call *before*
//! consulting the cache. Agreement on relevant values therefore implies
//! identical cached subgraphs. The signature is conservative (it is
//! computed on the unreduced formula, a superset of the reduced-formula
//! connectivity), so over-distinguishing — never unsoundness — is the
//! failure mode.

use presat_logic::{Cnf, Var};

/// Precomputed relevant-prefix index for a problem.
#[derive(Clone, Debug)]
pub struct ConnectivityIndex {
    /// `relevant[d]` = sorted prefix positions (`< d`) relevant for the
    /// suffix starting at depth `d`, for `d` in `0..=k`.
    relevant: Vec<Vec<u32>>,
}

/// A cache key: the depth plus the values of the relevant prefix positions.
pub(crate) type Signature = (u32, Vec<bool>);

impl ConnectivityIndex {
    /// Builds the index for `cnf` with branching order `important`.
    pub fn build(cnf: &Cnf, important: &[Var]) -> Self {
        let num_vars = cnf.num_vars();
        let k = important.len();

        // position_of[v] = Some(branching position) for important vars.
        let mut position_of: Vec<Option<u32>> = vec![None; num_vars];
        for (i, &v) in important.iter().enumerate() {
            position_of[v.index()] = Some(i as u32);
        }

        // Var ↔ clause incidence.
        let mut clauses_of_var: Vec<Vec<u32>> = vec![Vec::new(); num_vars];
        for (ci, clause) in cnf.clauses().iter().enumerate() {
            for &l in clause {
                clauses_of_var[l.var().index()].push(ci as u32);
            }
        }

        let mut relevant: Vec<Vec<u32>> = Vec::with_capacity(k + 1);
        // Depth d: BFS from suffix vars (positions ≥ d); expand through
        // auxiliary and suffix variables; record prefix positions.
        for d in 0..=k {
            let mut var_seen = vec![false; num_vars];
            let mut clause_seen = vec![false; cnf.num_clauses()];
            let mut frontier: Vec<usize> = important[d..].iter().map(|v| v.index()).collect();
            for &v in &frontier {
                var_seen[v] = true;
            }
            let mut found: Vec<u32> = Vec::new();
            while let Some(v) = frontier.pop() {
                for &ci in &clauses_of_var[v] {
                    if clause_seen[ci as usize] {
                        continue;
                    }
                    clause_seen[ci as usize] = true;
                    for &l in &cnf.clauses()[ci as usize] {
                        let w = l.var().index();
                        if var_seen[w] {
                            continue;
                        }
                        var_seen[w] = true;
                        match position_of[w] {
                            Some(p) if (p as usize) < d => found.push(p),
                            // Suffix or auxiliary variable: keep expanding.
                            _ => frontier.push(w),
                        }
                    }
                }
            }
            found.sort_unstable();
            relevant.push(found);
        }
        ConnectivityIndex { relevant }
    }

    /// The relevant prefix positions at `depth`.
    pub fn relevant_at(&self, depth: usize) -> &[u32] {
        &self.relevant[depth]
    }

    /// Builds the cache key for a prefix: `prefix_values[p]` is the value
    /// assigned to branching position `p` (`p < depth`).
    pub(crate) fn signature(&self, depth: usize, prefix_values: &[bool]) -> Signature {
        debug_assert!(prefix_values.len() >= depth);
        (
            depth as u32,
            self.relevant[depth]
                .iter()
                .map(|&p| prefix_values[p as usize])
                .collect(),
        )
    }

    /// Average number of relevant positions across depths — a compactness
    /// diagnostic reported by the benchmark tables (smaller = more reuse).
    pub fn mean_relevant(&self) -> f64 {
        if self.relevant.is_empty() {
            return 0.0;
        }
        let total: usize = self.relevant.iter().map(Vec::len).sum();
        total as f64 / self.relevant.len() as f64
    }
}

/// Dynamic (residual-cone) signature computation.
///
/// Where [`ConnectivityIndex`] inspects the *unreduced* formula, the
/// residual signature looks at the formula **after unit propagation under
/// the prefix**: clauses satisfied by the propagation are gone, falsified
/// literals are deleted from the survivors, and the suffix subspace is
/// characterized exactly by the *contents* of the surviving clauses
/// reachable from the suffix variables. Two prefixes with identical residual
/// cones have identical suffix solution sets, even when the prefixes
/// themselves differ everywhere — e.g. all even-parity prefixes of a parity
/// constraint share one cone.
///
/// The signature is exact (clauses are compared by surviving literal
/// content, not hashed), so reuse is never unsound.
#[derive(Clone, Debug)]
pub struct ResidualIndex {
    /// Var index → clause indices containing it.
    clauses_of_var: Vec<Vec<u32>>,
}

/// The exact residual-cone key: the sorted, deduplicated list of surviving
/// clauses in the suffix component, each as its sorted surviving literal
/// codes.
pub(crate) type ResidualSignature = Vec<Vec<u32>>;

impl ResidualIndex {
    /// Builds the incidence index for `cnf`.
    pub fn build(cnf: &Cnf) -> Self {
        let mut clauses_of_var: Vec<Vec<u32>> = vec![Vec::new(); cnf.num_vars()];
        for (ci, clause) in cnf.clauses().iter().enumerate() {
            for &l in clause {
                clauses_of_var[l.var().index()].push(ci as u32);
            }
        }
        ResidualIndex { clauses_of_var }
    }

    /// Extends the incidence index to cover clauses (and variables) added
    /// to `cnf` since the index was built or last extended;
    /// `first_new_clause` is the clause count at that point. Used by the
    /// incremental session, which grows one CNF across enumerate calls.
    pub fn extend(&mut self, cnf: &Cnf, first_new_clause: usize) {
        self.clauses_of_var.resize(cnf.num_vars(), Vec::new());
        for (ci, clause) in cnf.clauses().iter().enumerate().skip(first_new_clause) {
            for &l in clause {
                self.clauses_of_var[l.var().index()].push(ci as u32);
            }
        }
    }

    /// Computes the residual signature of the suffix starting at the given
    /// variables, under the propagated partial assignment `alpha`.
    ///
    /// `alpha` must assign every prefix variable (it is the result of unit
    /// propagation under the prefix); suffix variables must be unassigned
    /// in it.
    pub(crate) fn signature(
        &self,
        cnf: &Cnf,
        alpha: &presat_logic::Assignment,
        suffix: &[Var],
    ) -> ResidualSignature {
        let mut clause_seen = vec![false; cnf.num_clauses()];
        let mut var_seen = vec![false; cnf.num_vars()];
        let mut frontier: Vec<usize> = Vec::new();
        for &v in suffix {
            if alpha.value(v).is_none() && !var_seen[v.index()] {
                var_seen[v.index()] = true;
                frontier.push(v.index());
            }
        }
        let mut residuals: Vec<Vec<u32>> = Vec::new();
        while let Some(v) = frontier.pop() {
            for &ci in &self.clauses_of_var[v] {
                if clause_seen[ci as usize] {
                    continue;
                }
                clause_seen[ci as usize] = true;
                let clause = &cnf.clauses()[ci as usize];
                let mut satisfied = false;
                let mut surviving: Vec<u32> = Vec::with_capacity(clause.len());
                for &l in clause {
                    match alpha.lit_value(l) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => surviving.push(l.code() as u32),
                    }
                }
                if satisfied {
                    continue;
                }
                for &code in &surviving {
                    let w = (code >> 1) as usize;
                    if !var_seen[w] {
                        var_seen[w] = true;
                        frontier.push(w);
                    }
                }
                surviving.sort_unstable();
                surviving.dedup();
                residuals.push(surviving);
            }
        }
        residuals.sort_unstable();
        residuals.dedup();
        residuals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::Lit;

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    #[test]
    fn independent_variables_have_empty_relevance() {
        // Two unrelated unit clauses on x0 and x1.
        let mut cnf = Cnf::new(2);
        cnf.add_unit(lit(0, true));
        cnf.add_unit(lit(1, true));
        let idx = ConnectivityIndex::build(&cnf, &[Var::new(0), Var::new(1)]);
        assert!(idx.relevant_at(0).is_empty());
        assert!(idx.relevant_at(1).is_empty(), "x0 does not touch x1");
        assert!(idx.relevant_at(2).is_empty());
    }

    #[test]
    fn direct_clause_link_is_relevant() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let idx = ConnectivityIndex::build(&cnf, &[Var::new(0), Var::new(1)]);
        assert_eq!(idx.relevant_at(1), &[0]);
    }

    #[test]
    fn link_through_auxiliary_is_relevant() {
        // x0 — aux(x2) — x1
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(0, true), lit(2, true)]);
        cnf.add_clause([lit(2, false), lit(1, true)]);
        let idx = ConnectivityIndex::build(&cnf, &[Var::new(0), Var::new(1)]);
        assert_eq!(idx.relevant_at(1), &[0]);
    }

    #[test]
    fn link_blocked_by_important_variable_is_not_relevant() {
        // Chain x0 — x1 — x2 over important {x0, x1, x2}: at depth 2
        // (suffix {x2}), x1 is adjacent (relevant) but x0 is only reachable
        // through the important vertex x1, hence irrelevant.
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        cnf.add_clause([lit(1, false), lit(2, true)]);
        let idx = ConnectivityIndex::build(&cnf, &[Var::new(0), Var::new(1), Var::new(2)]);
        assert_eq!(idx.relevant_at(2), &[1]);
    }

    #[test]
    fn signature_filters_prefix_values() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(1, true), lit(2, true)]);
        let idx = ConnectivityIndex::build(&cnf, &[Var::new(0), Var::new(1), Var::new(2)]);
        // At depth 2, only position 1 matters.
        let s1 = idx.signature(2, &[true, false]);
        let s2 = idx.signature(2, &[false, false]);
        assert_eq!(s1, s2, "x0's value must not distinguish signatures");
        let s3 = idx.signature(2, &[true, true]);
        assert_ne!(s1, s3);
    }

    #[test]
    fn residual_signature_merges_equivalent_prefixes() {
        use presat_logic::Assignment;
        // Parity over 3 vars, direct encoding: prefixes 00 and 11 (even
        // parity) must share a signature at depth 2; 01/10 share the other.
        let n = 3;
        let mut cnf = Cnf::new(n);
        for bits in 0..8u32 {
            if bits.count_ones() % 2 == 0 {
                cnf.add_clause((0..n).map(|i| lit(i, bits >> i & 1 == 0)));
            }
        }
        let idx = ResidualIndex::build(&cnf);
        let suffix = [Var::new(2)];
        let sig = |b0: bool, b1: bool| {
            let mut a = Assignment::new(n);
            a.assign(Var::new(0), b0);
            a.assign(Var::new(1), b1);
            idx.signature(&cnf, &a, &suffix)
        };
        assert_eq!(sig(false, false), sig(true, true));
        assert_eq!(sig(false, true), sig(true, false));
        assert_ne!(sig(false, false), sig(false, true));
    }

    #[test]
    fn residual_signature_drops_satisfied_clauses() {
        use presat_logic::Assignment;
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let idx = ResidualIndex::build(&cnf);
        let mut a = Assignment::new(2);
        a.assign(Var::new(0), true); // clause satisfied → empty residual
        assert!(idx.signature(&cnf, &a, &[Var::new(1)]).is_empty());
        a.assign(Var::new(0), false); // clause shrinks to (x1)
        let s = idx.signature(&cnf, &a, &[Var::new(1)]);
        assert_eq!(s, vec![vec![Lit::pos(Var::new(1)).code() as u32]]);
    }

    #[test]
    fn residual_signature_reaches_through_aux() {
        use presat_logic::Assignment;
        // suffix x1 — aux x2 — clause with prefix x0 falsified literal.
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(1, true), lit(2, true)]);
        cnf.add_clause([lit(2, false), lit(0, true)]);
        let idx = ResidualIndex::build(&cnf);
        let mut a = Assignment::new(3);
        a.assign(Var::new(0), false);
        let s = idx.signature(&cnf, &a, &[Var::new(1)]);
        // Both clauses survive: (x1 ∨ x2) and (¬x2) [x0 literal removed].
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn mean_relevant_reports_average() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let idx = ConnectivityIndex::build(&cnf, &[Var::new(0), Var::new(1)]);
        // relevants: d0: [], d1: [0], d2: [] → mean 1/3
        assert!((idx.mean_relevant() - 1.0 / 3.0).abs() < 1e-9);
    }
}
