//! Blocking-clause-free enumeration via chronological backtracking.
//!
//! The engine of Spallitta–Sebastiani–Biere ("Disjoint Partial Enumeration
//! without Blocking Clauses"): drive the decision stack from outside the
//! solver, and on each total model *flip the deepest open decision* instead
//! of asserting a blocking clause. The clause database therefore stays flat
//! in the number of solutions — the property the blocking baseline loses on
//! dense solution sets — while the emitted cubes remain pairwise disjoint.
//!
//! # How disjointness survives lifting
//!
//! A naive combination of chronological backtracking with cube lifting is
//! unsound: dropping an important decision literal from an emitted cube
//! while its decision level stays open lets a later flip of that level
//! re-enter the emitted region. The engine instead uses a
//! disjointness-preserving *absorb rule*:
//!
//! 1. Lift the total model over the important variables, yielding the kept
//!    set `K` (a sound implicant of the projection).
//! 2. Scanning from the deepest decision level, absorb a level iff no kept
//!    literal was assigned at it **and** the level is open or an auxiliary
//!    (non-important) decision. Stop at the first level `L*` that fails.
//! 3. Emit the cube of **all** important trail literals at levels `≤ L*`,
//!    then flip `L*` (or, if `L*` is already closed, the deepest open level
//!    below it).
//!
//! Every emitted cube is a superset of `K`'s literals, hence a sound
//! implicant. Because important variables are decided before auxiliaries,
//! no important literal is ever assigned at an auxiliary level, so
//! absorbing auxiliary subtrees (whose siblings differ only in don't-care
//! variables) and open important levels (both phases covered by the emitted
//! cube) loses no solutions. Closed important levels are never absorbed —
//! their siblings produced earlier cubes — so any cube emitted while a
//! closed important level is on the trail contains that level's flipped
//! decision literal, which is what makes the cube set pairwise disjoint.
//!
//! No code path of this engine calls `add_clause`: `scripts/verify.sh`
//! greps for exactly that.

use presat_logic::{Cube, CubeSet, Lit, Var};
use presat_obs::{Event, ObsSink, StopReason};
use presat_sat::Solver;

use crate::engine::{AllSatEngine, AllSatProblem, AllSatResult, EnumerationStats};
use crate::lift::lift_cube;
use crate::limits::EnumLimits;
use crate::solution_graph::SolutionGraph;

/// Budget-poll stride for the wall-clock check, mirroring the CDCL loop's
/// `TIME_POLL_STRIDE`.
const TIME_POLL_STRIDE: u64 = 64;

/// One driver-side decision level; `levels[i]` corresponds to solver
/// decision level `i + 1`.
#[derive(Clone, Copy, Debug)]
struct ChronoLevel {
    /// The decision literal asserted at this level.
    decision: Lit,
    /// `true` once this is the second (flipped) phase: the sibling subtree
    /// is exhausted and the level must not be flipped again.
    closed: bool,
    /// Whether the decision variable is important (projection) — closed
    /// important levels anchor disjointness and are never absorbed.
    important: bool,
}

/// All-solutions enumeration by chronological backtracking: no blocking
/// clauses, no clause learning, a clause database of constant size, and a
/// pairwise-disjoint cube output.
///
/// # Examples
///
/// ```
/// use presat_allsat::{AllSatEngine, AllSatProblem, ChronoAllSat};
/// use presat_logic::{Cnf, Lit, Var};
///
/// let mut cnf = Cnf::new(2);
/// cnf.add_clause([Lit::pos(Var::new(0)), Lit::pos(Var::new(1))]);
/// let problem = AllSatProblem::new(cnf, vec![Var::new(0), Var::new(1)]);
/// let result = ChronoAllSat::new().enumerate(&problem);
/// assert_eq!(result.minterm_count(2), 3);
/// assert_eq!(result.stats.blocking_clauses, 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChronoAllSat;

impl ChronoAllSat {
    /// Creates the engine (stateless).
    pub fn new() -> Self {
        ChronoAllSat
    }
}

/// Flips the deepest open level: pops every deeper (closed or absorbed)
/// level, re-decides the negation marked closed, and resolves any chain of
/// immediate conflicts the same way. Returns `false` when no open level
/// remains — the decision tree is exhausted.
fn flip_deepest_open(
    solver: &mut Solver,
    levels: &mut Vec<ChronoLevel>,
    stats: &mut EnumerationStats,
) -> bool {
    loop {
        let Some(pos) = levels.iter().rposition(|l| !l.closed) else {
            solver.backtrack(0);
            return false;
        };
        let flip = levels[pos];
        levels.truncate(pos);
        solver.backtrack(pos);
        stats.chrono_backtracks += 1;
        let lit = !flip.decision;
        levels.push(ChronoLevel {
            decision: lit,
            closed: true,
            important: flip.important,
        });
        if solver.decide(lit) {
            return true;
        }
        // The flipped branch conflicts immediately: keep unwinding.
    }
}

impl AllSatEngine for ChronoAllSat {
    fn name(&self) -> &'static str {
        "chrono"
    }

    fn enumerate_limited(
        &self,
        problem: &AllSatProblem,
        limits: &EnumLimits,
        sink: &mut dyn ObsSink,
    ) -> AllSatResult {
        let k = problem.important.len();
        let num_vars = problem.cnf.num_vars();
        let mut is_important = vec![false; num_vars];
        for &v in &problem.important {
            is_important[v.index()] = true;
        }

        let mut solver = Solver::from_cnf(&problem.cnf);
        solver.set_budget(limits.budget);
        solver.set_cancel(limits.cancel.clone());
        let mut stats = EnumerationStats {
            solver_calls: 1,
            ..Default::default()
        };
        let mut cubes = CubeSet::new();
        let mut stopped: Option<StopReason> = None;
        let mut levels: Vec<ChronoLevel> = Vec::new();
        let mut polls = 0u64;
        let mut minterms_emitted = 0u64;

        // The DB gauge the flatness bench reads: constant here, because the
        // loop below never allocates a clause (no blocking, no learning).
        let stamp_db_peak = |solver: &Solver, stats: &mut EnumerationStats| {
            let db = solver.stats().problem_clauses + solver.live_learnt_count() as u64;
            stats.db_clauses_peak = stats.db_clauses_peak.max(db);
        };

        if solver.resource_exhausted() {
            // The input formula itself did not fit: nothing provable.
            stats.sat = *solver.stats();
            stats.budget_stops = 1;
            sink.record(&Event::BudgetStop {
                reason: StopReason::ResourceExhausted,
            });
            return AllSatResult {
                cubes,
                graph: None,
                stats,
                complete: false,
                stop_reason: Some(StopReason::ResourceExhausted),
            };
        }

        let refuted = !solver.is_ok() || !solver.propagate_root();
        stamp_db_peak(&solver, &mut stats);
        let mut exhausted = refuted;
        while !exhausted {
            polls += 1;
            if let Some(reason) = solver.poll_budget(polls.is_multiple_of(TIME_POLL_STRIDE)) {
                stopped = Some(reason);
                break;
            }
            // Branch important variables first, in problem order; only when
            // all are assigned descend into the auxiliaries (index order).
            // Important-first branching is what guarantees that auxiliary
            // levels never assign an important variable.
            let next = problem
                .important
                .iter()
                .copied()
                .find(|&v| solver.value(v).is_none())
                .map(|v| (v, true))
                .or_else(|| solver.next_unassigned(Var::new(0)).map(|v| (v, false)));
            let Some((var, important)) = next else {
                // Total model. Lift it, absorb fully-covered deep levels,
                // emit, and flip to the next branch.
                let model = solver.model_snapshot();
                let lifted = lift_cube(&problem.cnf, &model, &problem.important);
                let mut level_has_kept = vec![false; levels.len() + 1];
                for l in lifted.lits() {
                    let lv = solver.level_of(l.var()).expect("model literal assigned");
                    level_has_kept[lv] = true;
                }
                let mut lstar = levels.len();
                while lstar > 0 {
                    let dl = &levels[lstar - 1];
                    if level_has_kept[lstar] || (dl.closed && dl.important) {
                        break;
                    }
                    lstar -= 1;
                }
                let cube = Cube::from_lits(
                    solver
                        .trail_prefix(lstar)
                        .iter()
                        .copied()
                        .filter(|l| is_important[l.var().index()]),
                )
                .expect("trail variables are distinct");
                stats.cubes_emitted += 1;
                stats.literals_before_lift += k as u64;
                stats.literals_after_lift += cube.len() as u64;
                sink.record(&Event::Solution {
                    width: cube.len() as u32,
                });
                let free = (k - cube.len()).min(63) as u32;
                minterms_emitted = minterms_emitted.saturating_add(1u64 << free);
                cubes.insert(cube);
                if limits.max_solutions.is_some_and(|max| minterms_emitted >= max) {
                    stopped = Some(StopReason::MaxSolutions);
                    break;
                }
                if lstar == 0 {
                    // The emitted cube covers everything reachable below
                    // level 0 — only possible before any flip, so this is
                    // the first and last emission.
                    break;
                }
                levels.truncate(lstar);
                solver.backtrack(lstar);
                if !flip_deepest_open(&mut solver, &mut levels, &mut stats) {
                    break;
                }
                continue;
            };
            let lit = Lit::with_phase(var, false);
            levels.push(ChronoLevel {
                decision: lit,
                closed: false,
                important,
            });
            if !solver.decide(lit) && !flip_deepest_open(&mut solver, &mut levels, &mut stats) {
                exhausted = true;
            }
        }
        solver.backtrack(0);
        if stopped.is_none() && solver.resource_exhausted() {
            stopped = Some(StopReason::ResourceExhausted);
        }
        stamp_db_peak(&solver, &mut stats);
        stats.sat = *solver.stats();
        stats.sat_conflicts = stats.sat.conflicts;
        stats.sat_decisions = stats.sat.decisions;
        let (graph, root) = SolutionGraph::from_cube_set(&cubes, &problem.important);
        stats.graph_nodes = graph.reachable_count(root) as u64;
        if let Some(reason) = stopped {
            stats.budget_stops = 1;
            sink.record(&Event::BudgetStop { reason });
        }
        AllSatResult {
            cubes,
            graph: Some((graph, root)),
            stats,
            complete: stopped.is_none(),
            stop_reason: stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::{truth_table, Cnf};

    fn lit(v: usize, pos: bool) -> Lit {
        Lit::with_phase(Var::new(v), pos)
    }

    fn check_exact(cnf: &Cnf, important: &[Var], label: &str) {
        let p = AllSatProblem::new(cnf.clone(), important.to_vec());
        let r = ChronoAllSat::new().enumerate(&p);
        assert!(r.complete, "{label}: incomplete without limits");
        let expect = truth_table::project_models_set(cnf, important);
        assert!(
            r.cubes.semantically_eq(&expect, important),
            "{label}: cube set diverges from the truth table"
        );
        // Disjointness: the minterm counts of the cubes must add up.
        let total: u128 = r
            .cubes
            .iter()
            .map(|c| 1u128 << (important.len() - c.len()))
            .sum();
        assert_eq!(
            total,
            expect.minterm_count_approx(important),
            "{label}: cubes overlap"
        );
        assert_eq!(r.stats.blocking_clauses, 0, "{label}: blocked a clause");
    }

    /// Truth-table minterm count over the important variables.
    trait MintermApprox {
        fn minterm_count_approx(&self, important: &[Var]) -> u128;
    }
    impl MintermApprox for CubeSet {
        fn minterm_count_approx(&self, important: &[Var]) -> u128 {
            self.enumerate_minterms(important).len() as u128
        }
    }

    #[test]
    fn enumerates_or_projection() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        let important: Vec<Var> = Var::range(2).collect();
        check_exact(&cnf, &important, "or2");
    }

    #[test]
    fn unsat_formula_yields_empty_complete_set() {
        let mut cnf = Cnf::new(1);
        cnf.add_unit(lit(0, true));
        cnf.add_unit(lit(0, false));
        let p = AllSatProblem::new(cnf, vec![Var::new(0)]);
        let r = ChronoAllSat::new().enumerate(&p);
        assert!(r.complete);
        assert!(r.cubes.is_empty());
    }

    #[test]
    fn empty_important_set_gives_universe() {
        let mut cnf = Cnf::new(1);
        cnf.add_unit(lit(0, true));
        let p = AllSatProblem::new(cnf, vec![]);
        let r = ChronoAllSat::new().enumerate(&p);
        assert!(r.complete);
        assert!(r.cubes.is_universe());
    }

    #[test]
    fn hidden_variables_are_projected_away() {
        let mut cnf = Cnf::new(2);
        cnf.add_unit(lit(0, true));
        let p = AllSatProblem::new(cnf, vec![Var::new(0)]);
        let r = ChronoAllSat::new().enumerate(&p);
        assert_eq!(r.cubes.len(), 1);
        assert_eq!(r.minterm_count(1), 1);
    }

    #[test]
    fn matches_oracle_on_random_formulas() {
        use presat_logic::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(97);
        for round in 0..40 {
            let n = 7;
            let mut cnf = Cnf::new(n);
            for _ in 0..10 {
                let c: Vec<Lit> = (0..3)
                    .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
                    .collect();
                cnf.add_clause(c);
            }
            let important: Vec<Var> = Var::range(4).collect();
            check_exact(&cnf, &important, &format!("round {round}"));
        }
    }

    #[test]
    fn db_stays_flat_and_counts_backtracks() {
        // One wide clause over 6 important variables: 63 solution minterms,
        // yet the database never grows past the single problem clause.
        let n = 6;
        let mut cnf = Cnf::new(n);
        cnf.add_clause((0..n).map(|v| lit(v, true)));
        let important: Vec<Var> = Var::range(n).collect();
        let p = AllSatProblem::new(cnf, important);
        let r = ChronoAllSat::new().enumerate(&p);
        assert!(r.complete);
        assert_eq!(r.minterm_count(n), 63);
        assert_eq!(r.stats.db_clauses_peak, 1);
        assert!(r.stats.chrono_backtracks > 0);
        assert_eq!(r.stats.sat.learnt_clauses, 0);
    }

    #[test]
    fn deterministic_across_calls() {
        let mut cnf = Cnf::new(5);
        cnf.add_clause([lit(0, true), lit(2, false), lit(4, true)]);
        cnf.add_clause([lit(1, false), lit(3, true)]);
        let important: Vec<Var> = Var::range(3).collect();
        let p = AllSatProblem::new(cnf, important);
        let a = ChronoAllSat::new().enumerate(&p);
        let b = ChronoAllSat::new().enumerate(&p);
        assert_eq!(a.cubes.cubes(), b.cubes.cubes());
        assert_eq!(a.stats.chrono_backtracks, b.stats.chrono_backtracks);
    }
}
