//! The shared solution graph: the compact output representation of the
//! success-driven solver.
//!
//! A solution graph is a reduced, ordered decision DAG over the *branching
//! positions* `0..k` of the important variables (position, not `Var` index:
//! the graph is agnostic of the CNF's variable numbering). Structurally it
//! is an ROBDD over those positions — hash-consed nodes `(level, lo, hi)`
//! with terminals ⊥/⊤ — but it is built *bottom-up by the enumeration
//! search* rather than by Boolean operations, which is exactly what the
//! paper's success-driven learning produces: fully-explored subspaces become
//! shared subgraphs.

use std::collections::HashMap;
use std::fmt;

use presat_logic::{Cube, CubeSet, Lit, Var};

/// Handle to a node of a [`SolutionGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SolutionNodeId(u32);

impl SolutionNodeId {
    /// The empty-set terminal.
    pub const BOTTOM: SolutionNodeId = SolutionNodeId(0);
    /// The full-subspace terminal.
    pub const TOP: SolutionNodeId = SolutionNodeId(1);

    /// `true` for either terminal.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Copy, Debug)]
struct GraphNode {
    level: u32,
    lo: SolutionNodeId,
    hi: SolutionNodeId,
}

/// A reduced ordered decision DAG over branching positions `0..k`,
/// representing a set of assignments to the important variables.
///
/// # Examples
///
/// ```
/// use presat_allsat::{SolutionGraph, SolutionNodeId};
///
/// let mut g = SolutionGraph::new(2);
/// // the set {00, 11}: level-1 nodes then a level-0 node
/// let only0 = g.mk(1, SolutionNodeId::TOP, SolutionNodeId::BOTTOM);
/// let only1 = g.mk(1, SolutionNodeId::BOTTOM, SolutionNodeId::TOP);
/// let root = g.mk(0, only0, only1);
/// assert_eq!(g.minterm_count(root), 2);
/// ```
#[derive(Clone, Debug)]
pub struct SolutionGraph {
    nodes: Vec<GraphNode>,
    unique: HashMap<(u32, SolutionNodeId, SolutionNodeId), SolutionNodeId>,
    num_levels: usize,
}

impl SolutionGraph {
    /// Creates an empty graph over `num_levels` branching positions.
    pub fn new(num_levels: usize) -> Self {
        SolutionGraph {
            nodes: vec![
                GraphNode {
                    level: u32::MAX,
                    lo: SolutionNodeId::BOTTOM,
                    hi: SolutionNodeId::BOTTOM,
                },
                GraphNode {
                    level: u32::MAX,
                    lo: SolutionNodeId::TOP,
                    hi: SolutionNodeId::TOP,
                },
            ],
            unique: HashMap::new(),
            num_levels,
        }
    }

    /// Number of branching positions.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Total number of nodes ever created (including the two terminals) —
    /// the memory metric reported against blocking-clause counts.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes reachable from `root` (including terminals).
    pub fn reachable_count(&self, root: SolutionNodeId) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if seen[n.index()] {
                continue;
            }
            seen[n.index()] = true;
            count += 1;
            if !n.is_terminal() {
                stack.push(self.nodes[n.index()].lo);
                stack.push(self.nodes[n.index()].hi);
            }
        }
        count
    }

    /// Find-or-create a node (with the BDD reduction rule `lo == hi`).
    ///
    /// # Panics
    ///
    /// Panics if `level` is outside the graph or the children's levels are
    /// not strictly below `level`.
    pub fn mk(&mut self, level: usize, lo: SolutionNodeId, hi: SolutionNodeId) -> SolutionNodeId {
        assert!(level < self.num_levels, "level outside graph");
        let lvl = level as u32;
        assert!(
            lvl < self.level_of(lo) && lvl < self.level_of(hi),
            "solution graph ordering violated"
        );
        if lo == hi {
            return lo;
        }
        if let Some(&id) = self.unique.get(&(lvl, lo, hi)) {
            return id;
        }
        let id = SolutionNodeId(u32::try_from(self.nodes.len()).expect("graph overflow"));
        self.nodes.push(GraphNode { level: lvl, lo, hi });
        self.unique.insert((lvl, lo, hi), id);
        id
    }

    fn level_of(&self, n: SolutionNodeId) -> u32 {
        self.nodes[n.index()].level
    }

    /// Exact number of important-variable minterms represented by `root`
    /// (over all `num_levels` positions).
    pub fn minterm_count(&self, root: SolutionNodeId) -> u128 {
        self.minterm_count_from(root, 0)
    }

    /// Exact number of minterms represented by `root` counted over the
    /// suffix positions `from..num_levels` only. `root` must sit at level
    /// `>= from` (every node created at depth `from` does). The enumeration
    /// search uses this to account reused subgraphs against a
    /// solution-count cap without re-walking them.
    pub fn minterm_count_from(&self, root: SolutionNodeId, from: u32) -> u128 {
        let mut memo: HashMap<SolutionNodeId, u128> = HashMap::new();
        self.count_rec(root, from, &mut memo)
    }

    fn count_rec(
        &self,
        n: SolutionNodeId,
        from: u32,
        memo: &mut HashMap<SolutionNodeId, u128>,
    ) -> u128 {
        if n == SolutionNodeId::BOTTOM {
            return 0;
        }
        let level = if n == SolutionNodeId::TOP {
            self.num_levels as u32
        } else {
            self.level_of(n)
        };
        let below = if n == SolutionNodeId::TOP {
            1
        } else if let Some(&c) = memo.get(&n) {
            c
        } else {
            let node = self.nodes[n.index()];
            let c = self.count_rec(node.lo, node.level + 1, memo)
                + self.count_rec(node.hi, node.level + 1, memo);
            memo.insert(n, c);
            c
        };
        below << (level - from)
    }

    /// `true` if the total position assignment `bits` (bit *i* = value at
    /// level *i*) is in the set.
    pub fn contains_bits(&self, root: SolutionNodeId, bits: u64) -> bool {
        let mut cur = root;
        while !cur.is_terminal() {
            let node = self.nodes[cur.index()];
            cur = if bits >> node.level & 1 == 1 {
                node.hi
            } else {
                node.lo
            };
        }
        cur == SolutionNodeId::TOP
    }

    /// Extracts the set as cubes over the given important variables
    /// (`vars[i]` is the variable at level *i*). One cube per ⊤-path;
    /// levels skipped on a path are left free. Distinct ⊤-paths disagree
    /// on the branch variable of their lowest common node, so the cubes
    /// are pairwise disjoint and bypass the store's absorption scans.
    ///
    /// # Panics
    ///
    /// Panics if `vars.len() != num_levels`.
    pub fn to_cube_set(&self, root: SolutionNodeId, vars: &[Var]) -> CubeSet {
        assert_eq!(vars.len(), self.num_levels, "variable list length mismatch");
        let mut out = CubeSet::new();
        let mut path: Vec<Lit> = Vec::new();
        self.paths_rec(root, vars, &mut path, &mut out);
        out
    }

    /// Number of ⊤-paths from `root` — i.e. how many cubes
    /// [`Self::to_cube_set`] would produce, without materialising them.
    /// The daemon reports this per live session as the accumulated
    /// result-set cube count.
    pub fn cube_count(&self, root: SolutionNodeId) -> u64 {
        let mut memo: HashMap<SolutionNodeId, u64> = HashMap::new();
        self.cube_count_rec(root, &mut memo)
    }

    fn cube_count_rec(&self, n: SolutionNodeId, memo: &mut HashMap<SolutionNodeId, u64>) -> u64 {
        if n == SolutionNodeId::BOTTOM {
            return 0;
        }
        if n == SolutionNodeId::TOP {
            return 1;
        }
        if let Some(&c) = memo.get(&n) {
            return c;
        }
        let node = self.nodes[n.index()];
        let c = self.cube_count_rec(node.lo, memo) + self.cube_count_rec(node.hi, memo);
        memo.insert(n, c);
        c
    }

    fn paths_rec(&self, n: SolutionNodeId, vars: &[Var], path: &mut Vec<Lit>, out: &mut CubeSet) {
        if n == SolutionNodeId::BOTTOM {
            return;
        }
        if n == SolutionNodeId::TOP {
            out.push_disjoint(Cube::from_lits(path.iter().copied()).expect("distinct path literals"));
            return;
        }
        let node = self.nodes[n.index()];
        let v = vars[node.level as usize];
        path.push(Lit::neg(v));
        self.paths_rec(node.lo, vars, path, out);
        path.pop();
        path.push(Lit::pos(v));
        self.paths_rec(node.hi, vars, path, out);
        path.pop();
    }

    /// Builds a graph from a cube set (used in tests and for converting
    /// baseline-engine output into the graph representation for size
    /// comparisons). `vars[i]` is the variable at level *i*.
    ///
    /// # Panics
    ///
    /// Panics if a cube mentions a variable not in `vars`.
    pub fn from_cube_set(set: &CubeSet, vars: &[Var]) -> (SolutionGraph, SolutionNodeId) {
        let mut g = SolutionGraph::new(vars.len());
        let root = g.add_cube_set(set, vars);
        (g, root)
    }

    /// Adds a cube set into an existing graph and returns the node of its
    /// union. `vars[i]` is the variable at level *i*.
    ///
    /// # Panics
    ///
    /// Panics if a cube mentions a variable not in `vars` or
    /// `vars.len() != num_levels`.
    pub fn add_cube_set(&mut self, set: &CubeSet, vars: &[Var]) -> SolutionNodeId {
        assert_eq!(vars.len(), self.num_levels, "variable list length mismatch");
        let position: HashMap<Var, usize> = vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut root = SolutionNodeId::BOTTOM;
        for cube in set {
            let mut node = SolutionNodeId::TOP;
            // Build the cube bottom-up in descending level order.
            let mut lits: Vec<(usize, bool)> = cube
                .lits()
                .iter()
                .map(|l| {
                    (
                        *position
                            .get(&l.var())
                            .unwrap_or_else(|| panic!("cube variable {} not a level", l.var())),
                        l.phase(),
                    )
                })
                .collect();
            lits.sort_unstable_by_key(|&(level, _)| std::cmp::Reverse(level));
            for (level, phase) in lits {
                node = if phase {
                    self.mk(level, SolutionNodeId::BOTTOM, node)
                } else {
                    self.mk(level, node, SolutionNodeId::BOTTOM)
                };
            }
            root = self.union(root, node);
        }
        root
    }

    /// Copies the subgraph rooted at `root` in `other` into this graph,
    /// returning the corresponding node here. Hash-consing canonicalises
    /// the copy: shared substructure in `other` stays shared, and nodes
    /// already present in this graph (from earlier imports) are reused
    /// rather than duplicated. The parallel enumeration engine merges its
    /// per-worker graphs with this, importing in partition-cube order so
    /// the merged graph is independent of worker scheduling.
    ///
    /// # Panics
    ///
    /// Panics if the two graphs have different level counts.
    pub fn import(&mut self, other: &SolutionGraph, root: SolutionNodeId) -> SolutionNodeId {
        assert_eq!(
            other.num_levels, self.num_levels,
            "graph level count mismatch"
        );
        let mut memo: HashMap<SolutionNodeId, SolutionNodeId> = HashMap::new();
        self.import_rec(other, root, &mut memo)
    }

    fn import_rec(
        &mut self,
        other: &SolutionGraph,
        n: SolutionNodeId,
        memo: &mut HashMap<SolutionNodeId, SolutionNodeId>,
    ) -> SolutionNodeId {
        if n.is_terminal() {
            return n;
        }
        if let Some(&r) = memo.get(&n) {
            return r;
        }
        let node = other.nodes[n.index()];
        let lo = self.import_rec(other, node.lo, memo);
        let hi = self.import_rec(other, node.hi, memo);
        let r = self.mk(node.level as usize, lo, hi);
        memo.insert(n, r);
        r
    }

    /// Set union of two nodes (standard recursive apply).
    pub fn union(&mut self, a: SolutionNodeId, b: SolutionNodeId) -> SolutionNodeId {
        let mut memo = HashMap::new();
        self.union_rec(a, b, &mut memo)
    }

    fn union_rec(
        &mut self,
        a: SolutionNodeId,
        b: SolutionNodeId,
        memo: &mut HashMap<(SolutionNodeId, SolutionNodeId), SolutionNodeId>,
    ) -> SolutionNodeId {
        if a == SolutionNodeId::TOP || b == SolutionNodeId::TOP {
            return SolutionNodeId::TOP;
        }
        if a == SolutionNodeId::BOTTOM {
            return b;
        }
        if b == SolutionNodeId::BOTTOM || a == b {
            return a;
        }
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let top = self.level_of(a).min(self.level_of(b));
        let (a0, a1) = self.children_at(a, top);
        let (b0, b1) = self.children_at(b, top);
        let lo = self.union_rec(a0, b0, memo);
        let hi = self.union_rec(a1, b1, memo);
        let r = self.mk(top as usize, lo, hi);
        memo.insert(key, r);
        r
    }

    fn children_at(&self, n: SolutionNodeId, level: u32) -> (SolutionNodeId, SolutionNodeId) {
        if !n.is_terminal() && self.level_of(n) == level {
            let node = self.nodes[n.index()];
            (node.lo, node.hi)
        } else {
            (n, n)
        }
    }

    /// Set intersection of two nodes.
    pub fn intersect(&mut self, a: SolutionNodeId, b: SolutionNodeId) -> SolutionNodeId {
        let mut memo = HashMap::new();
        self.intersect_rec(a, b, &mut memo)
    }

    fn intersect_rec(
        &mut self,
        a: SolutionNodeId,
        b: SolutionNodeId,
        memo: &mut HashMap<(SolutionNodeId, SolutionNodeId), SolutionNodeId>,
    ) -> SolutionNodeId {
        if a == SolutionNodeId::BOTTOM || b == SolutionNodeId::BOTTOM {
            return SolutionNodeId::BOTTOM;
        }
        if a == SolutionNodeId::TOP {
            return b;
        }
        if b == SolutionNodeId::TOP || a == b {
            return a;
        }
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let top = self.level_of(a).min(self.level_of(b));
        let (a0, a1) = self.children_at(a, top);
        let (b0, b1) = self.children_at(b, top);
        let lo = self.intersect_rec(a0, b0, memo);
        let hi = self.intersect_rec(a1, b1, memo);
        let r = self.mk(top as usize, lo, hi);
        memo.insert(key, r);
        r
    }

    /// Set difference `a \ b`.
    pub fn diff(&mut self, a: SolutionNodeId, b: SolutionNodeId) -> SolutionNodeId {
        let mut memo = HashMap::new();
        self.diff_rec(a, b, &mut memo)
    }

    fn diff_rec(
        &mut self,
        a: SolutionNodeId,
        b: SolutionNodeId,
        memo: &mut HashMap<(SolutionNodeId, SolutionNodeId), SolutionNodeId>,
    ) -> SolutionNodeId {
        if a == SolutionNodeId::BOTTOM || b == SolutionNodeId::TOP || a == b {
            return SolutionNodeId::BOTTOM;
        }
        if b == SolutionNodeId::BOTTOM {
            return a;
        }
        if let Some(&r) = memo.get(&(a, b)) {
            return r;
        }
        let top = if a == SolutionNodeId::TOP {
            self.level_of(b)
        } else if b == SolutionNodeId::TOP {
            self.level_of(a)
        } else {
            self.level_of(a).min(self.level_of(b))
        };
        let (a0, a1) = self.children_at(a, top);
        let (b0, b1) = self.children_at(b, top);
        let lo = self.diff_rec(a0, b0, memo);
        let hi = self.diff_rec(a1, b1, memo);
        let r = self.mk(top as usize, lo, hi);
        memo.insert((a, b), r);
        r
    }
}

impl SolutionGraph {
    /// Don't-care simplification (sibling substitution, the decision-DAG
    /// analogue of BDD `restrict`): returns a node `g` that agrees with
    /// `f` everywhere inside `care` and is typically smaller. Used by the
    /// reachability loop to enlarge frontiers within the already-reached
    /// don't-care space.
    ///
    /// # Panics
    ///
    /// Panics if `care` is the empty set.
    pub fn simplify(&mut self, f: SolutionNodeId, care: SolutionNodeId) -> SolutionNodeId {
        assert_ne!(
            care,
            SolutionNodeId::BOTTOM,
            "simplify needs a nonempty care set"
        );
        let mut memo = HashMap::new();
        self.simplify_rec(f, care, &mut memo)
    }

    fn simplify_rec(
        &mut self,
        f: SolutionNodeId,
        care: SolutionNodeId,
        memo: &mut HashMap<(SolutionNodeId, SolutionNodeId), SolutionNodeId>,
    ) -> SolutionNodeId {
        if care == SolutionNodeId::TOP || f.is_terminal() {
            return f;
        }
        if let Some(&r) = memo.get(&(f, care)) {
            return r;
        }
        let top = self.level_of(f).min(self.level_of(care));
        let (c0, c1) = self.children_at(care, top);
        let r = if c0 == SolutionNodeId::BOTTOM {
            let (_, f1) = self.children_at(f, top);
            self.simplify_rec(f1, c1, memo)
        } else if c1 == SolutionNodeId::BOTTOM {
            let (f0, _) = self.children_at(f, top);
            self.simplify_rec(f0, c0, memo)
        } else {
            let (f0, f1) = self.children_at(f, top);
            let lo = self.simplify_rec(f0, c0, memo);
            let hi = self.simplify_rec(f1, c1, memo);
            self.mk(top as usize, lo, hi)
        };
        memo.insert((f, care), r);
        r
    }

    /// Renders the DAG rooted at `root` in Graphviz DOT syntax (dashed
    /// edges = low branch), labelling levels with `vars` when provided.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is provided with the wrong length.
    pub fn to_dot(&self, root: SolutionNodeId, vars: Option<&[Var]>, name: &str) -> String {
        use fmt::Write;
        if let Some(vars) = vars {
            assert_eq!(vars.len(), self.num_levels, "variable list length mismatch");
        }
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  bot [shape=box,label=\"⊥\"];");
        let _ = writeln!(out, "  top [shape=box,label=\"⊤\"];");
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n.index()];
            let label = match vars {
                Some(vars) => vars[node.level as usize].to_string(),
                None => format!("L{}", node.level),
            };
            let _ = writeln!(out, "  n{} [label=\"{label}\"];", n.index());
            let child = |c: SolutionNodeId| match c {
                SolutionNodeId::BOTTOM => "bot".to_string(),
                SolutionNodeId::TOP => "top".to_string(),
                other => format!("n{}", other.index()),
            };
            let _ = writeln!(
                out,
                "  n{} -> {} [style=dashed];",
                n.index(),
                child(node.lo)
            );
            let _ = writeln!(out, "  n{} -> {};", n.index(), child(node.hi));
            stack.push(node.lo);
            stack.push(node.hi);
        }
        let _ = writeln!(out, "}}");
        out
    }
}

impl fmt::Display for SolutionGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SolutionGraph({} levels, {} nodes)",
            self.num_levels,
            self.nodes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_lits(lits.iter().map(|&(v, p)| Lit::with_phase(Var::new(v), p))).unwrap()
    }

    #[test]
    fn terminals_count() {
        let g = SolutionGraph::new(3);
        assert_eq!(g.minterm_count(SolutionNodeId::TOP), 8);
        assert_eq!(g.minterm_count(SolutionNodeId::BOTTOM), 0);
    }

    #[test]
    fn mk_reduces_equal_children() {
        let mut g = SolutionGraph::new(1);
        assert_eq!(
            g.mk(0, SolutionNodeId::TOP, SolutionNodeId::TOP),
            SolutionNodeId::TOP
        );
    }

    #[test]
    fn mk_hash_conses() {
        let mut g = SolutionGraph::new(1);
        let a = g.mk(0, SolutionNodeId::TOP, SolutionNodeId::BOTTOM);
        let b = g.mk(0, SolutionNodeId::TOP, SolutionNodeId::BOTTOM);
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    #[should_panic(expected = "ordering violated")]
    fn mk_rejects_misordered_children() {
        let mut g = SolutionGraph::new(2);
        let low = g.mk(1, SolutionNodeId::TOP, SolutionNodeId::BOTTOM);
        let upper = g.mk(0, low, SolutionNodeId::BOTTOM);
        // level 1 node with a level-0 child: must panic
        let _ = g.mk(1, upper, SolutionNodeId::BOTTOM);
    }

    #[test]
    fn contains_and_count_agree() {
        let mut g = SolutionGraph::new(3);
        // set = {bits : bit1 == 1}
        let n = g.mk(1, SolutionNodeId::BOTTOM, SolutionNodeId::TOP);
        assert_eq!(g.minterm_count(n), 4);
        let members = (0..8u64).filter(|&b| g.contains_bits(n, b)).count();
        assert_eq!(members, 4);
        for b in 0..8u64 {
            assert_eq!(g.contains_bits(n, b), b >> 1 & 1 == 1);
        }
    }

    #[test]
    fn cube_set_round_trip() {
        let vars: Vec<Var> = Var::range(4).collect();
        let mut set = CubeSet::new();
        set.insert(cube(&[(0, true), (2, false)]));
        set.insert(cube(&[(1, false)]));
        set.insert(cube(&[(3, true)]));
        let (g, root) = SolutionGraph::from_cube_set(&set, &vars);
        assert_eq!(g.minterm_count(root), set.minterm_count(4));
        let back = g.to_cube_set(root, &vars);
        assert!(back.semantically_eq(&set, &vars));
    }

    #[test]
    fn union_is_set_union() {
        let vars: Vec<Var> = Var::range(3).collect();
        let mut a_set = CubeSet::new();
        a_set.insert(cube(&[(0, true)]));
        let mut b_set = CubeSet::new();
        b_set.insert(cube(&[(1, true)]));
        let (mut g, a) = SolutionGraph::from_cube_set(&a_set, &vars);
        // Rebuild b in the same graph.
        let bn = g.mk(1, SolutionNodeId::BOTTOM, SolutionNodeId::TOP);
        let u = g.union(a, bn);
        assert_eq!(g.minterm_count(u), 6); // |x0 ∨ x1| over 3 vars
    }

    #[test]
    fn sharing_beats_cube_explosion() {
        // Odd-parity set over 8 levels: 128 minterm cubes, but a linear
        // number of graph nodes.
        let n = 8;
        let vars: Vec<Var> = Var::range(n).collect();
        let mut set = CubeSet::new();
        for bits in 0..(1u64 << n) {
            if bits.count_ones() % 2 == 1 {
                set.insert(cube(
                    &(0..n).map(|i| (i, bits >> i & 1 == 1)).collect::<Vec<_>>(),
                ));
            }
        }
        assert_eq!(set.len(), 128);
        let (g, root) = SolutionGraph::from_cube_set(&set, &vars);
        assert_eq!(g.minterm_count(root), 128);
        // Parity has 2 nodes per level plus terminals.
        assert!(
            g.reachable_count(root) <= 2 * n + 2,
            "parity graph should be linear, got {}",
            g.reachable_count(root)
        );
    }

    #[test]
    fn intersect_and_diff_match_set_semantics() {
        let n = 4;
        let vars: Vec<Var> = Var::range(n).collect();
        // A = {bits : bit0 = 1}, B = {bits : parity odd}
        let mut a_set = CubeSet::new();
        a_set.insert(cube(&[(0, true)]));
        let mut b_set = CubeSet::new();
        for bits in 0..(1u64 << n) {
            if bits.count_ones() % 2 == 1 {
                b_set.insert(cube(
                    &(0..n).map(|i| (i, bits >> i & 1 == 1)).collect::<Vec<_>>(),
                ));
            }
        }
        let (mut g, a) = SolutionGraph::from_cube_set(&a_set, &vars);
        let b = {
            // Rebuild B inside the same graph.
            let (gb, rb) = SolutionGraph::from_cube_set(&b_set, &vars);
            let cubes = gb.to_cube_set(rb, &vars);
            let mut node = SolutionNodeId::BOTTOM;
            for c in &cubes {
                let mut leaf = SolutionNodeId::TOP;
                let mut lits: Vec<(usize, bool)> = c
                    .lits()
                    .iter()
                    .map(|l| (l.var().index(), l.phase()))
                    .collect();
                lits.sort_unstable_by_key(|&(level, _)| std::cmp::Reverse(level));
                for (lvl, ph) in lits {
                    leaf = if ph {
                        g.mk(lvl, SolutionNodeId::BOTTOM, leaf)
                    } else {
                        g.mk(lvl, leaf, SolutionNodeId::BOTTOM)
                    };
                }
                node = g.union(node, leaf);
            }
            node
        };
        let inter = g.intersect(a, b);
        let diff = g.diff(a, b);
        for bits in 0..(1u64 << n) {
            let in_a = g.contains_bits(a, bits);
            let in_b = g.contains_bits(b, bits);
            assert_eq!(g.contains_bits(inter, bits), in_a && in_b, "bits {bits}");
            assert_eq!(g.contains_bits(diff, bits), in_a && !in_b, "bits {bits}");
        }
        // |A| = 8, |A∩B| + |A\B| = |A|
        assert_eq!(g.minterm_count(inter) + g.minterm_count(diff), 8);
    }

    #[test]
    fn import_preserves_function_and_sharing() {
        let n = 6;
        let vars: Vec<Var> = Var::range(n).collect();
        // Odd parity: maximal sharing, so the import memo is exercised.
        let mut set = CubeSet::new();
        for bits in 0..(1u64 << n) {
            if bits.count_ones() % 2 == 1 {
                set.insert(cube(
                    &(0..n).map(|i| (i, bits >> i & 1 == 1)).collect::<Vec<_>>(),
                ));
            }
        }
        let (src, src_root) = SolutionGraph::from_cube_set(&set, &vars);
        let mut dst = SolutionGraph::new(n);
        let dst_root = dst.import(&src, src_root);
        for bits in 0..(1u64 << n) {
            assert_eq!(
                dst.contains_bits(dst_root, bits),
                src.contains_bits(src_root, bits),
                "bits {bits:b}"
            );
        }
        assert_eq!(
            dst.reachable_count(dst_root),
            src.reachable_count(src_root),
            "import must preserve sharing"
        );
        // Importing again is a no-op thanks to hash-consing.
        let nodes_before = dst.node_count();
        assert_eq!(dst.import(&src, src_root), dst_root);
        assert_eq!(dst.node_count(), nodes_before);
    }

    #[test]
    fn import_terminals_are_identity() {
        let src = SolutionGraph::new(2);
        let mut dst = SolutionGraph::new(2);
        assert_eq!(dst.import(&src, SolutionNodeId::TOP), SolutionNodeId::TOP);
        assert_eq!(
            dst.import(&src, SolutionNodeId::BOTTOM),
            SolutionNodeId::BOTTOM
        );
    }

    #[test]
    fn diff_with_terminals() {
        let mut g = SolutionGraph::new(2);
        let a = g.mk(0, SolutionNodeId::BOTTOM, SolutionNodeId::TOP);
        assert_eq!(g.diff(a, SolutionNodeId::TOP), SolutionNodeId::BOTTOM);
        assert_eq!(g.diff(a, SolutionNodeId::BOTTOM), a);
        let complement = g.diff(SolutionNodeId::TOP, a);
        assert_eq!(g.minterm_count(complement), 2);
        for bits in 0..4u64 {
            assert_eq!(g.contains_bits(complement, bits), !g.contains_bits(a, bits));
        }
    }

    #[test]
    fn empty_cube_set_gives_bottom() {
        let vars: Vec<Var> = Var::range(2).collect();
        let (g, root) = SolutionGraph::from_cube_set(&CubeSet::new(), &vars);
        assert_eq!(root, SolutionNodeId::BOTTOM);
        assert_eq!(g.minterm_count(root), 0);
    }

    #[test]
    fn simplify_agrees_inside_care_set() {
        let n = 5;
        let vars: Vec<Var> = Var::range(n).collect();
        let mut f_set = CubeSet::new();
        f_set.insert(cube(&[(0, true), (2, false)]));
        f_set.insert(cube(&[(1, true), (3, true)]));
        let mut c_set = CubeSet::new();
        c_set.insert(cube(&[(0, true)]));
        c_set.insert(cube(&[(4, false)]));
        let (mut g, f) = SolutionGraph::from_cube_set(&f_set, &vars);
        let care = g.add_cube_set(&c_set, &vars);
        let s = g.simplify(f, care);
        for bits in 0..(1u64 << n) {
            if g.contains_bits(care, bits) {
                assert_eq!(
                    g.contains_bits(s, bits),
                    g.contains_bits(f, bits),
                    "bits {bits:b}"
                );
            }
        }
        assert!(g.reachable_count(s) <= g.reachable_count(f));
    }

    #[test]
    fn simplify_with_full_care_is_identity() {
        let vars: Vec<Var> = Var::range(3).collect();
        let mut set = CubeSet::new();
        set.insert(cube(&[(1, true)]));
        let (mut g, f) = SolutionGraph::from_cube_set(&set, &vars);
        assert_eq!(g.simplify(f, SolutionNodeId::TOP), f);
    }

    #[test]
    #[should_panic(expected = "nonempty care set")]
    fn simplify_rejects_empty_care() {
        let mut g = SolutionGraph::new(1);
        let f = g.mk(0, SolutionNodeId::BOTTOM, SolutionNodeId::TOP);
        let _ = g.simplify(f, SolutionNodeId::BOTTOM);
    }

    #[test]
    fn to_dot_names_levels_and_edges() {
        let vars: Vec<Var> = Var::range(2).collect();
        let mut set = CubeSet::new();
        set.insert(cube(&[(0, true), (1, false)]));
        let (g, root) = SolutionGraph::from_cube_set(&set, &vars);
        let dot = g.to_dot(root, Some(&vars), "demo");
        assert!(dot.starts_with("digraph \"demo\""));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
        // Unlabelled variant.
        let dot2 = g.to_dot(root, None, "demo");
        assert!(dot2.contains("L0"));
    }

    #[test]
    fn cube_count_matches_extracted_set() {
        let vars: Vec<Var> = Var::range(4).collect();
        let mut set = CubeSet::new();
        set.insert(cube(&[(0, true), (2, false)]));
        set.insert(cube(&[(1, false)]));
        set.insert(cube(&[(3, true)]));
        let (g, root) = SolutionGraph::from_cube_set(&set, &vars);
        let extracted = g.to_cube_set(root, &vars);
        assert_eq!(g.cube_count(root), extracted.len() as u64);
        assert_eq!(g.cube_count(SolutionNodeId::BOTTOM), 0);
        assert_eq!(g.cube_count(SolutionNodeId::TOP), 1);
    }

    #[test]
    fn universe_cube_set_gives_top() {
        let vars: Vec<Var> = Var::range(2).collect();
        let (g, root) = SolutionGraph::from_cube_set(&CubeSet::universe(), &vars);
        assert_eq!(root, SolutionNodeId::TOP);
        assert_eq!(g.minterm_count(root), 4);
    }
}
