//! The common interface of all-solutions engines.

use presat_logic::{Cnf, CubeSet, Var};
use presat_obs::{NullSink, ObsSink, StopReason};

use crate::limits::EnumLimits;
use crate::solution_graph::{SolutionGraph, SolutionNodeId};

/// An all-SAT instance: a CNF formula plus the ordered list of *important*
/// variables onto which the model set is projected.
///
/// The order of `important` is the branching order used by the
/// success-driven engine and the level order of the resulting
/// [`SolutionGraph`]; the enumerated *set* is independent of it.
#[derive(Clone, Debug)]
pub struct AllSatProblem {
    /// The formula.
    pub cnf: Cnf,
    /// Projection/branching variables, each distinct and inside the
    /// formula's variable space.
    pub important: Vec<Var>,
}

impl AllSatProblem {
    /// Creates a problem.
    ///
    /// # Panics
    ///
    /// Panics if `important` contains duplicates or variables outside the
    /// formula's variable space.
    pub fn new(cnf: Cnf, important: Vec<Var>) -> Self {
        let mut seen = vec![false; cnf.num_vars()];
        for &v in &important {
            assert!(
                v.index() < cnf.num_vars(),
                "important variable {v} outside formula space"
            );
            assert!(!seen[v.index()], "duplicate important variable {v}");
            seen[v.index()] = true;
        }
        AllSatProblem { cnf, important }
    }

    /// Number of important variables.
    pub fn num_important(&self) -> usize {
        self.important.len()
    }
}

/// Work counters shared by every engine, reported in the evaluation tables.
///
/// The canonical definition lives in `presat-obs` (as
/// [`presat_obs::AllSatCounters`], which also nests the sub-solver's full
/// counter snapshot in its `sat` field); this alias keeps the historical
/// name.
pub use presat_obs::AllSatCounters as EnumerationStats;

/// The outcome of an enumeration: the projected solution set as cubes, the
/// solution graph when the engine builds one, and work counters.
///
/// # Anytime semantics
///
/// An enumeration running under [`EnumLimits`] may stop before it is
/// exhaustive; the result is then *partial but sound*: `complete` is
/// `false`, `stop_reason` says why, and `cubes` holds only verified
/// solutions — a subset of what the uninterrupted run would return, with
/// the graph engines' disjoint-cube guarantee intact (every cube is a
/// distinct path of the decision DAG). A complete run always has
/// `complete == true` and `stop_reason == None`.
#[derive(Clone, Debug)]
pub struct AllSatResult {
    /// The projection of the formula's models onto the important variables,
    /// as a union of cubes (absorbed, not necessarily minimal).
    pub cubes: CubeSet,
    /// The shared solution graph, for engines that construct one.
    pub graph: Option<(SolutionGraph, SolutionNodeId)>,
    /// Work counters.
    pub stats: EnumerationStats,
    /// `false` if the run stopped early on a budget, deadline,
    /// cancellation, or solution cap; `cubes` is then a partial result.
    pub complete: bool,
    /// Why the run stopped early; `None` on a complete run.
    pub stop_reason: Option<StopReason>,
}

impl AllSatResult {
    /// Exact number of important-variable minterms in the solution set.
    pub fn minterm_count(&self, num_important: usize) -> u128 {
        match &self.graph {
            Some((g, root)) => g.minterm_count(*root),
            None => self.cubes.minterm_count_over(num_important),
        }
    }

    /// The work counters with the result store's occurrence-index
    /// bookkeeping (`subsumption_checks`, `sig_rejects`,
    /// `index_candidates`) folded in. Emission sites use this instead of
    /// reading `stats` raw so `--stats` output reflects the absorption
    /// work done building `cubes`.
    pub fn stats_with_store(&self) -> EnumerationStats {
        let mut stats = self.stats;
        let store = self.cubes.index_stats();
        stats.subsumption_checks += store.subsumption_checks;
        stats.sig_rejects += store.sig_rejects;
        stats.index_candidates += store.index_candidates;
        stats
    }
}

/// Extension used by [`AllSatResult::minterm_count`]: counting over the
/// important-variable universe rather than variable indices requires the
/// cube set to mention only important variables, which every engine
/// guarantees; the count treats the `num_important` branching positions as
/// the universe.
trait CubeSetExt {
    fn minterm_count_over(&self, num_important: usize) -> u128;
}

impl CubeSetExt for CubeSet {
    fn minterm_count_over(&self, num_important: usize) -> u128 {
        // The cube variables are arbitrary `Var`s; remap each distinct
        // variable to a dense position so `CubeSet::minterm_count` (which
        // counts over x0..x(n-1)) can be reused.
        use presat_logic::{Cube, Lit};
        use std::collections::HashMap;
        let mut positions: HashMap<Var, usize> = HashMap::new();
        for c in self {
            for l in c.iter() {
                let next = positions.len();
                positions.entry(l.var()).or_insert(next);
            }
        }
        assert!(
            positions.len() <= num_important,
            "cube set mentions more variables than the important set"
        );
        let remapped: CubeSet = self
            .iter()
            .map(|c| {
                Cube::from_lits(
                    c.iter()
                        .map(|l| Lit::with_phase(Var::new(positions[&l.var()]), l.phase())),
                )
                .expect("remapping preserves distinctness")
            })
            .collect();
        remapped.minterm_count(num_important)
    }
}

/// The interface every all-solutions engine implements.
///
/// Engines are value types configured at construction; `enumerate` is
/// deterministic for a given problem.
pub trait AllSatEngine {
    /// A short machine-readable engine name for tables (`"blocking"`,
    /// `"min-blocking"`, `"success-driven"`).
    fn name(&self) -> &'static str;

    /// Enumerates the projection of `problem.cnf`'s models onto
    /// `problem.important` under the given resource `limits`, reporting
    /// enumeration-level events (solutions, blocking clauses, cache hits,
    /// budget stops) to `sink` as they happen. With [`EnumLimits::none`]
    /// this is exhaustive and bit-identical to
    /// [`enumerate_with_sink`](AllSatEngine::enumerate_with_sink); with a
    /// limit installed the run may return a partial result flagged
    /// `complete = false` — never a spuriously empty "complete" set.
    fn enumerate_limited(
        &self,
        problem: &AllSatProblem,
        limits: &EnumLimits,
        sink: &mut dyn ObsSink,
    ) -> AllSatResult;

    /// Exhaustive enumeration with an event trace (no limits).
    fn enumerate_with_sink(&self, problem: &AllSatProblem, sink: &mut dyn ObsSink) -> AllSatResult {
        self.enumerate_limited(problem, &EnumLimits::none(), sink)
    }

    /// [`AllSatEngine::enumerate_with_sink`] without an event trace.
    fn enumerate(&self, problem: &AllSatProblem) -> AllSatResult {
        self.enumerate_with_sink(problem, &mut NullSink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_logic::{Cube, Lit};

    #[test]
    #[should_panic(expected = "duplicate important variable")]
    fn rejects_duplicate_important() {
        let cnf = Cnf::new(2);
        let _ = AllSatProblem::new(cnf, vec![Var::new(0), Var::new(0)]);
    }

    #[test]
    #[should_panic(expected = "outside formula space")]
    fn rejects_out_of_range_important() {
        let cnf = Cnf::new(1);
        let _ = AllSatProblem::new(cnf, vec![Var::new(3)]);
    }

    #[test]
    fn minterm_count_over_remaps_sparse_vars() {
        let mut s = CubeSet::new();
        s.insert(Cube::unit(Lit::pos(Var::new(17))));
        assert_eq!(s.minterm_count_over(3), 4);
    }

    #[test]
    fn stats_display_is_compact() {
        let st = EnumerationStats::default();
        let line = st.to_string();
        assert!(line.contains("calls=0"));
    }
}
