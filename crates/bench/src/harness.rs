//! A minimal in-tree wall-clock benchmark harness.
//!
//! The workspace builds hermetically offline, so the benches cannot pull
//! Criterion; this module provides the small subset actually used: run a
//! closure `N` times after a warm-up, report the median (with min/max
//! spread) per labelled case. Benches are plain `fn main()` binaries
//! (`harness = false` in `Cargo.toml`) and run under
//! `cargo bench -p presat-bench`.
//!
//! Sample counts can be overridden without recompiling via the
//! `PRESAT_BENCH_SAMPLES` environment variable.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing summary of one benchmark case.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Fastest sample.
    pub min: Duration,
    /// Median sample (the headline number).
    pub median: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Number of timed samples.
    pub samples: usize,
}

/// Runs `f` once untimed (warm-up), then `samples` timed iterations, and
/// returns the min/median/max spread. The closure's result is passed
/// through [`black_box`] so the work cannot be optimized away.
pub fn measure<T>(samples: usize, mut f: impl FnMut() -> T) -> Measurement {
    let samples = samples.max(1);
    black_box(f());
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    Measurement {
        min: times[0],
        median: times[times.len() / 2],
        max: times[times.len() - 1],
        samples,
    }
}

/// One benchmark group: prints a header on creation and one aligned row
/// per [`Bench::case`] call.
pub struct Bench {
    group: String,
    samples: usize,
}

impl Bench {
    /// Creates a group with the default sample count (10, overridable via
    /// the `PRESAT_BENCH_SAMPLES` environment variable).
    pub fn new(group: &str) -> Self {
        let samples = std::env::var("PRESAT_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        println!("\n# {group} ({samples} samples per case)");
        Bench {
            group: group.to_string(),
            samples,
        }
    }

    /// Overrides the sample count for this group.
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Times one case and prints its row immediately.
    pub fn case<T>(&self, label: &str, f: impl FnMut() -> T) -> Measurement {
        let m = measure(self.samples, f);
        println!(
            "{:<40} median {:>10}  (min {}, max {})",
            format!("{}/{}", self.group, label),
            fmt_duration(m.median),
            fmt_duration(m.min),
            fmt_duration(m.max),
        );
        m
    }
}

/// Formats a duration with an adaptive unit, e.g. `3.21ms` or `870ns`.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_orders_the_spread() {
        let mut x = 0u64;
        let m = measure(5, || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert_eq!(m.samples, 5);
        assert!(m.min <= m.median && m.median <= m.max);
    }

    #[test]
    fn durations_format_with_adaptive_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(870)), "870ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
