//! Shared workload definitions for the benchmark harness.
//!
//! Both the Criterion benches (`benches/`) and the `tables` binary (which
//! regenerates every reconstructed table and figure of `EXPERIMENTS.md`)
//! draw their circuits and targets from here, so the numbers they report
//! describe the same experiments.

pub mod workloads;
