//! Shared workload definitions and timing harness for the benchmarks.
//!
//! Both the wall-clock benches (`benches/`, plain binaries built on
//! [`harness`]) and the `tables` binary (which regenerates every
//! reconstructed table and figure of `EXPERIMENTS.md`) draw their circuits
//! and targets from [`workloads`], so the numbers they report describe the
//! same experiments.

#![forbid(unsafe_code)]

pub mod harness;
pub mod workloads;
